//! # gumbo — Parallel Evaluation of Multi-Semi-Joins
//!
//! A Rust reproduction of *Parallel Evaluation of Multi-Semi-Joins*
//! (Daenen, Neven, Tan, Vansummeren, 2016): evaluation of Strictly Guarded
//! Fragment (SGF) queries on a MapReduce substrate using the multi-semi-join
//! operator `MSJ(S)`, the `EVAL` job for Boolean combinations, and the
//! cost-model-driven `Greedy-BSGF` / `Greedy-SGF` planners, together with
//! the baselines (SEQ, PAR, simulated Pig/Hive) the paper compares against.
//!
//! ## Quick start
//!
//! ```
//! use gumbo::prelude::*;
//!
//! // A database: R(x, y) with conditional relations S and T.
//! let mut db = Database::new();
//! for (rel, tuple) in [
//!     ("R", vec![1i64, 10]),
//!     ("R", vec![2, 20]),
//!     ("R", vec![3, 30]),
//!     ("S", vec![1]),
//!     ("S", vec![2]),
//!     ("T", vec![20]),
//! ] {
//!     db.insert_fact(Fact::new(rel, Tuple::from_ints(&tuple))).unwrap();
//! }
//!
//! // The paper's SQL-like SGF syntax.
//! let query = parse_program(
//!     "Answer := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);",
//! ).unwrap();
//!
//! // Plan + execute on the simulated MapReduce cluster. Swap `SimDfs`
//! // for `FileDfs::create(path, cache_bytes)` to persist every relation
//! // to disk — answers and metered statistics are identical.
//! let engine = GumboEngine::with_defaults();
//! let dfs = SimDfs::from_database(&db);
//! let (stats, answer) = engine.eval().run_with_output(&dfs, &query).unwrap();
//!
//! assert_eq!(answer.len(), 1); // only R(1, 10) survives
//! assert!(stats.net_time() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`gumbo_common`] | values, tuples, facts, relations, databases |
//! | [`gumbo_sgf`] | SGF/BSGF ASTs, parser, dependency graphs, naive evaluator |
//! | [`gumbo_storage`] | `Dfs` trait with simulated and durable file-segment backends, byte accounting, LRU block cache, sampling |
//! | [`gumbo_obs`] | zero-dependency tracing and metrics: spans, events, counters, ring/JSONL/Chrome-trace sinks |
//! | [`gumbo_mr`] | `Executor` trait with simulated + multi-threaded runtimes, job DAGs, cluster model, cost models |
//! | [`gumbo_sched`] | dependency-driven DAG scheduler, multi-tenant submissions |
//! | [`gumbo_core`] | MSJ, EVAL, 1-ROUND fusion, plans, greedy + optimal planners |
//! | [`gumbo_service`] | resident multi-tenant query service: TCP protocol, fair-share admission, streaming client |
//! | [`gumbo_baselines`] | SEQ chains, PAR presets, Pig/Hive simulators |
//! | [`gumbo_datagen`] | the paper's workloads (A1–A5, B1/B2, C1–C4, sweeps) |
//!
//! ## Two runtimes
//!
//! Execution is routed through the [`mr::Executor`] trait. The default
//! runtime is the deterministic metered **simulator** ([`mr::Engine`]);
//! the **multi-threaded** runtime ([`mr::ParallelExecutor`]) runs map,
//! shuffle and reduce tasks on a real worker pool and produces
//! byte-identical answers and identical metered statistics. Select one
//! with [`mr::ExecutorKind`]:
//!
//! ```
//! use gumbo::prelude::*;
//!
//! let engine = GumboEngine::with_executor(
//!     EngineConfig::default(),
//!     ExecutorKind::Parallel { threads: 4 },
//!     EvalOptions::default(),
//! );
//! assert_eq!(engine.runtime().name(), "parallel");
//! ```

pub use gumbo_baselines as baselines;
pub use gumbo_common as common;
pub use gumbo_core as core;
pub use gumbo_datagen as datagen;
pub use gumbo_mr as mr;
pub use gumbo_obs as obs;
pub use gumbo_sched as sched;
pub use gumbo_service as service;
pub use gumbo_sgf as sgf;
pub use gumbo_storage as storage;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use gumbo_baselines::{
        greedy_engine, greedy_sgf_engine, one_round_engine, par_engine, parunit_engine,
        sequnit_engine, HiveSim, PigSim, SeqStrategy,
    };
    pub use gumbo_common::{ByteSize, Database, Fact, GumboError, Relation, Result, Tuple, Value};
    pub use gumbo_core::{
        BsgfSetPlan, EvalOptions, EvalRequest, Grouping, GumboEngine, PayloadMode, QueryContext,
        SortStrategy,
    };
    pub use gumbo_datagen::{DataSpec, Workload};
    pub use gumbo_mr::{
        Cluster, CostConstants, CostModelKind, DataPlane, Engine, EngineConfig, Executor,
        ExecutorKind, JobConfig, JobDag, JobEstimate, MrProgram, ParallelExecutor, ProgramStats,
        SimulatedExecutor,
    };
    pub use gumbo_obs::{
        ChromeTraceSink, Counter, Gauge, JsonlSink, RingSink, TraceFormat, TraceSink,
    };
    pub use gumbo_sched::{
        AdmissionConfig, AdmissionQueue, DagScheduler, FairShareLedger, PlacementPolicy,
        SchedulerConfig, Submission, SubmissionReport,
    };
    pub use gumbo_service::{
        serve, QueryReply, ServeConfig, ServeSummary, ServerHandle, ServiceClient, ServiceError,
    };
    pub use gumbo_sgf::{
        parse_program, parse_query, Atom, BsgfQuery, Condition, DependencyGraph, NaiveEvaluator,
        SgfQuery, Term, Var,
    };
    pub use gumbo_storage::{CacheStats, Dfs, FileDfs, RelationScan, SimDfs, DEFAULT_CACHE_BYTES};
}
