//! `gumbo-cli` — run SGF queries over TSV relations from the command line,
//! or serve them to concurrent tenants over TCP.
//!
//! Three subcommands wrap the resident query service (`gumbo::service`):
//!
//! ```text
//! gumbo-cli serve    [--listen ADDR] (--preset NAME [--tuples N] | --data DIR)
//!                    [--dfs sim|file:PATH] [--dfs-cache BYTES]
//!                    [--executor sim|parallel|parallel:N] [--max-jobs N]
//!                    [--mem-budget BYTES|unlimited] [--data-plane pairs|columnar]
//!                    [--queue-cap N] [--inflight N] [--default-weight W]
//!                    [--trace PATH] [--trace-format chrome|jsonl] [--metrics-dump]
//! gumbo-cli query    [--addr ADDR] [--tenant NAME] [--weight W]
//!                    (--query FILE | --sgf TEXT | --preset NAME)
//!                    [--out DIR] [--stats-json PATH]
//! gumbo-cli shutdown [--addr ADDR]
//! ```
//!
//! `serve` loads the database once (preset or TSV directory), binds a
//! TCP listener, and answers line-delimited JSON query requests with
//! estimate-weighted fair-share admission between tenants; answers are
//! byte-identical to one-shot evaluation. SIGTERM/SIGINT (or a client's
//! `shutdown` request) triggers a graceful drain: every accepted
//! submission finishes and streams out before the process exits, and
//! the exit code is nonzero if any accepted work was lost. `query`
//! submits one program and writes the streamed relations/stats exactly
//! like the one-shot flags of the same name. `shutdown` asks a running
//! server to drain.
//!
//! Without a subcommand, the classic one-shot mode:
//!
//! ```text
//! gumbo-cli --data DIR --query FILE | --preset NAME [--tuples N]
//!           [--strategy greedy|par|sequnit|parunit|one-round|dynamic]
//!           [--executor sim|parallel|parallel:N]
//!           [--scheduler rounds|dag] [--max-jobs N]
//!           [--placement fifo|sjf|cp] [--cores N]
//!           [--mem-budget BYTES|unlimited] [--spill-compress]
//!           [--data-plane pairs|columnar]
//!           [--shuffle-filter off|bloom[:BITS]|auto[:BITS]]
//!           [--dfs sim|file:PATH] [--dfs-cache BYTES]
//!           [--trace PATH] [--trace-format chrome|jsonl]
//!           [--metrics-dump] [--stats-json PATH]
//!           [--scale N] [--nodes N] [--out DIR] [--explain]
//! ```
//!
//! `DIR` holds one `Name.tsv` per relation (tab-separated, integers or
//! strings); `FILE` holds an SGF program in the paper's SQL-like syntax.
//! Alternatively `--preset` runs one of the paper's generated workloads
//! (`a1`–`a5`, `b1`, `b2`, `c1`–`c4`) without any files. Every output
//! relation (final and intermediate `Z`s) is written back to `--out` (if
//! given) as TSV, and the paper's four metrics are printed.
//!
//! `--scheduler dag` executes the planned jobs on the dependency-driven
//! DAG scheduler (at most `--max-jobs` concurrent jobs) instead of the
//! default round-barrier path; results and statistics are identical.
//! `--placement` picks the ready-queue order (`fifo` arrival order,
//! `sjf` shortest-estimated-job-first, `cp` critical-path) over the
//! estimation layer's per-job cost annotations; `--cores N` sizes each
//! job's worker pool from its estimate under a total-core budget (the
//! parallel runtime only). All policies produce byte-identical results —
//! scheduled runs additionally report the predicted DAG net time.
//!
//! `--mem-budget` bounds tracked shuffle memory (bytes, with optional
//! `k`/`m`/`g` binary suffix): per-reducer buffers spill sorted runs to a
//! job-scoped temp directory instead of exceeding the budget, and a
//! `shuffle memory:` summary line (spilled bytes — raw and on-disk —
//! run files, merge passes, peak) is printed after the run.
//! `--spill-compress` RLE-block-compresses the run files on disk.
//! `--data-plane` selects the shuffle representation: `columnar` (the
//! default — batch arenas, dictionary-encoded strings, columnar spill
//! frames) or `pairs` (the historical owned-pair plane). Answers and
//! statistics are byte-identical either way.
//! `--shuffle-filter` engages the Bloom-filtered semijoin shuffle:
//! `bloom[:BITS]` filters every MSJ job (BITS bits per key, default 10),
//! `auto[:BITS]` filters only jobs the planner predicts save more bytes
//! than the filter broadcast costs. Answers are byte-identical to `off`;
//! a `shuffle filter:` summary line reports suppressed messages, filter
//! bytes and the observed false-positive rate.
//! Results are byte-identical to an unlimited run; the CLI exits nonzero
//! if the tracked peak ever exceeded the budget — printing the
//! shuffle-memory summary *before* exiting, so the evidence of the
//! violation always reaches the log.
//!
//! `--dfs` selects the storage backend: `sim` (the default in-memory
//! DFS) or `file:PATH` — a durable file-segment store rooted at `PATH`.
//! A fresh directory is created and loaded from the inputs; an existing
//! store is reopened and only missing relations are loaded, so a second
//! run against the same `PATH` restarts from the durable state.
//! `--dfs-cache` bounds the file backend's block cache (bytes, `k`/`m`/
//! `g` suffix ok; default 64 MiB) — cache sizing never changes answers
//! or the byte meters, which are logical and backend-invariant. A
//! `dfs cache:` summary line (hits, misses, evictions) is printed after
//! file-backed runs.
//!
//! `--trace PATH` records every phase span, scheduler event and budget
//! event of the run to `PATH`; `--trace-format` picks the encoding —
//! `chrome` (the default) writes a Chrome trace-event JSON array that
//! loads directly into Perfetto or `chrome://tracing`, `jsonl` writes
//! one JSON object per line for scripting. `--metrics-dump` prints the
//! process-wide counter/gauge registry (spill runs, budget denials,
//! committed jobs, …) after the run. `--stats-json PATH` dumps the full
//! [`ProgramStats`] — the paper's four metrics, per-job costs, spill
//! counters, and the estimated-vs-observed calibration ledger — as one
//! JSON document.

use std::path::PathBuf;
use std::process::ExitCode;

use gumbo::prelude::*;

/// Which storage backend `--dfs` selected.
enum DfsSpec {
    /// The in-memory simulated DFS (the default).
    Sim,
    /// The durable file-segment DFS rooted at the given directory.
    File(PathBuf),
}

struct Args {
    data: PathBuf,
    query: PathBuf,
    preset: Option<String>,
    tuples: Option<usize>,
    strategy: String,
    executor: gumbo::mr::ExecutorKind,
    scheduler: String,
    max_jobs: usize,
    placement: gumbo::sched::PlacementPolicy,
    cores: usize,
    mem_budget: gumbo::mr::MemBudget,
    spill_compress: bool,
    data_plane: gumbo::mr::DataPlane,
    shuffle_filter: gumbo::mr::ShuffleFilterMode,
    dfs: DfsSpec,
    dfs_cache: Option<u64>,
    trace: Option<PathBuf>,
    trace_format: Option<gumbo::obs::TraceFormat>,
    metrics_dump: bool,
    stats_json: Option<PathBuf>,
    scale: u64,
    nodes: usize,
    out: Option<PathBuf>,
    explain: bool,
}

const USAGE: &str = "usage: gumbo-cli [serve|query|shutdown] ... (see --help per subcommand) | \
                     gumbo-cli --data DIR --query FILE | --preset NAME [--tuples N] \
                     [--strategy greedy|par|sequnit|parunit|one-round|dynamic] \
                     [--executor sim|parallel|parallel:N] \
                     [--scheduler rounds|dag] [--max-jobs N] \
                     [--placement fifo|sjf|cp] [--cores N] \
                     [--mem-budget BYTES|unlimited] [--spill-compress] \
                     [--data-plane pairs|columnar] \
                     [--shuffle-filter off|bloom[:BITS]|auto[:BITS]] \
                     [--dfs sim|file:PATH] [--dfs-cache BYTES] \
                     [--trace PATH] [--trace-format chrome|jsonl] \
                     [--metrics-dump] [--stats-json PATH] \
                     [--scale N] [--nodes N] [--out DIR] [--explain]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: PathBuf::new(),
        query: PathBuf::new(),
        preset: None,
        tuples: None,
        strategy: "greedy".into(),
        executor: gumbo::mr::ExecutorKind::Simulated,
        scheduler: "rounds".into(),
        max_jobs: 4,
        placement: gumbo::sched::PlacementPolicy::Fifo,
        cores: 0,
        mem_budget: gumbo::mr::MemBudget::UNLIMITED,
        spill_compress: false,
        data_plane: gumbo::mr::DataPlane::default(),
        shuffle_filter: gumbo::mr::ShuffleFilterMode::Off,
        dfs: DfsSpec::Sim,
        dfs_cache: None,
        trace: None,
        trace_format: None,
        metrics_dump: false,
        stats_json: None,
        scale: 1,
        nodes: 10,
        out: None,
        explain: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need = |i: &mut usize, argv: &[String]| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--data" => args.data = PathBuf::from(need(&mut i, &argv)?),
            "--query" => args.query = PathBuf::from(need(&mut i, &argv)?),
            "--preset" => args.preset = Some(need(&mut i, &argv)?),
            "--tuples" => {
                args.tuples = Some(
                    need(&mut i, &argv)?
                        .parse()
                        .map_err(|e| format!("--tuples: {e}"))?,
                )
            }
            "--strategy" => args.strategy = need(&mut i, &argv)?,
            "--executor" => {
                let spec = need(&mut i, &argv)?;
                args.executor = gumbo::mr::ExecutorKind::parse(&spec)
                    .ok_or_else(|| format!("--executor: unknown runtime {spec}"))?;
            }
            "--scheduler" => {
                let spec = need(&mut i, &argv)?;
                if spec != "rounds" && spec != "dag" {
                    return Err(format!("--scheduler: rounds|dag, got {spec}"));
                }
                args.scheduler = spec;
            }
            "--max-jobs" => {
                args.max_jobs = need(&mut i, &argv)?
                    .parse()
                    .map_err(|e| format!("--max-jobs: {e}"))?
            }
            "--placement" => {
                let spec = need(&mut i, &argv)?;
                args.placement = gumbo::sched::PlacementPolicy::parse(&spec)
                    .ok_or_else(|| format!("--placement: fifo|sjf|cp, got {spec}"))?;
            }
            "--cores" => {
                args.cores = need(&mut i, &argv)?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--spill-compress" => args.spill_compress = true,
            "--data-plane" => {
                let spec = need(&mut i, &argv)?;
                args.data_plane = gumbo::mr::DataPlane::parse(&spec)
                    .ok_or_else(|| format!("--data-plane: pairs|columnar, got {spec}"))?;
            }
            "--shuffle-filter" => {
                let spec = need(&mut i, &argv)?;
                args.shuffle_filter =
                    gumbo::mr::ShuffleFilterMode::parse(&spec).ok_or_else(|| {
                        format!("--shuffle-filter: off|bloom[:BITS]|auto[:BITS], got {spec}")
                    })?;
            }
            "--mem-budget" => {
                let spec = need(&mut i, &argv)?;
                args.mem_budget = gumbo::mr::MemBudget::parse(&spec).ok_or_else(|| {
                    format!("--mem-budget: BYTES (k/m/g suffix ok) or unlimited, got {spec}")
                })?;
            }
            "--dfs" => {
                let spec = need(&mut i, &argv)?;
                args.dfs = if spec == "sim" {
                    DfsSpec::Sim
                } else if let Some(path) = spec.strip_prefix("file:") {
                    DfsSpec::File(PathBuf::from(path))
                } else {
                    return Err(format!("--dfs: sim|file:PATH, got {spec}"));
                };
            }
            "--dfs-cache" => {
                let spec = need(&mut i, &argv)?;
                // MemBudget's byte grammar (k/m/g suffixes), minus the
                // "unlimited" spelling — an unbounded cache is just a
                // cache sized to the store.
                args.dfs_cache = Some(
                    gumbo::mr::MemBudget::parse(&spec)
                        .and_then(|b| b.limit())
                        .ok_or_else(|| {
                            format!("--dfs-cache: BYTES (k/m/g suffix ok), got {spec}")
                        })?,
                );
            }
            "--scale" => {
                args.scale = need(&mut i, &argv)?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--nodes" => {
                args.nodes = need(&mut i, &argv)?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--trace" => args.trace = Some(PathBuf::from(need(&mut i, &argv)?)),
            "--trace-format" => {
                let spec = need(&mut i, &argv)?;
                args.trace_format = Some(
                    gumbo::obs::TraceFormat::parse(&spec)
                        .map_err(|e| format!("--trace-format: {e}"))?,
                );
            }
            "--metrics-dump" => args.metrics_dump = true,
            "--stats-json" => args.stats_json = Some(PathBuf::from(need(&mut i, &argv)?)),
            "--out" => args.out = Some(PathBuf::from(need(&mut i, &argv)?)),
            "--explain" => args.explain = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    let has_files = !args.data.as_os_str().is_empty() || !args.query.as_os_str().is_empty();
    if args.preset.is_some() && has_files {
        return Err("--preset conflicts with --data/--query: pick one input source".into());
    }
    if args.preset.is_none() {
        if args.data.as_os_str().is_empty() || args.query.as_os_str().is_empty() {
            return Err(
                "either --preset NAME or both --data and --query are required (try --help)".into(),
            );
        }
        if args.tuples.is_some() {
            return Err("--tuples only applies to --preset workloads".into());
        }
    }
    if args.trace_format.is_some() && args.trace.is_none() {
        // A format without a destination would be a silent no-op.
        return Err("--trace-format requires --trace PATH".into());
    }
    if args.dfs_cache.is_some() && matches!(args.dfs, DfsSpec::Sim) {
        // The in-memory DFS has no block cache; the flag would be a
        // silent no-op.
        return Err("--dfs-cache requires --dfs file:PATH".into());
    }
    Ok(args)
}

fn options_for(args: &Args) -> Result<EvalOptions, String> {
    use gumbo::core::SortStrategy;
    let base = EvalOptions::default();
    let mut options = match args.strategy.as_str() {
        "greedy" => EvalOptions {
            enable_one_round: false,
            ..base
        },
        "one-round" => base,
        "par" => EvalOptions {
            grouping: Grouping::Singletons,
            sort: SortStrategy::Levels,
            enable_one_round: false,
            ..base
        },
        "sequnit" => EvalOptions {
            grouping: Grouping::Singletons,
            sort: SortStrategy::Sequential,
            enable_one_round: false,
            ..base
        },
        "parunit" => EvalOptions {
            grouping: Grouping::Singletons,
            sort: SortStrategy::Levels,
            enable_one_round: false,
            ..base
        },
        "dynamic" => EvalOptions {
            sort: SortStrategy::DynamicGreedy,
            ..base
        },
        other => return Err(format!("unknown strategy {other}")),
    };
    if args.spill_compress && !args.mem_budget.is_limited() {
        // Nothing ever spills under an unlimited budget, so the flag
        // would be a silent no-op — reject it like --placement below.
        return Err("--spill-compress requires a limited --mem-budget".into());
    }
    let budget = args.mem_budget.compressed(args.spill_compress);
    options.mem_budget = budget;
    options.shuffle_filter = args.shuffle_filter;
    if args.scheduler != "dag"
        && (args.placement != gumbo::sched::PlacementPolicy::Fifo || args.cores != 0)
    {
        // Silently ignoring these would let a user believe they
        // benchmarked a placement policy on the round-barrier path.
        return Err("--placement/--cores require --scheduler dag".into());
    }
    if args.scheduler == "dag" {
        options.scheduler = Some(SchedulerConfig {
            max_concurrent_jobs: args.max_jobs,
            threads_per_job: 0,
            mem_budget: budget,
            placement: args.placement,
            core_budget: args.cores,
        });
    }
    Ok(options)
}

/// Nonzero-exit check for the shuffle-memory budget, split out so the
/// call site *must* print the summary line first and the exit path is
/// unit-testable: a tracked peak above the limit is an internal error
/// (the CAS-guarded tracker is supposed to make it impossible).
fn budget_check(peak: u64, limit: Option<u64>) -> Result<(), String> {
    match limit {
        Some(limit) if peak > limit => Err(format!(
            "internal error: tracked shuffle memory peaked at {peak} over budget {limit}"
        )),
        _ => Ok(()),
    }
}

// The stats vocabulary is shared with the query service so `--stats-json`
// documents and streamed `stats` frames speak identical JSON.
use gumbo::service::protocol::stats_to_json;

/// Resolve one of the paper's generated workloads by name.
fn preset(name: &str) -> Option<gumbo::datagen::Workload> {
    use gumbo::datagen::queries;
    Some(match name.to_ascii_lowercase().as_str() {
        "a1" => queries::a1(),
        "a2" => queries::a2(),
        "a3" => queries::a3(),
        "a4" => queries::a4(),
        "a5" => queries::a5(),
        "b1" => queries::b1(),
        "b2" => queries::b2(),
        "c1" => queries::c1(),
        "c2" => queries::c2(),
        "c3" => queries::c3(),
        "c4" => queries::c4(),
        _ => return None,
    })
}

fn load_inputs(args: &Args) -> Result<(Database, SgfQuery), String> {
    if let Some(name) = &args.preset {
        let workload =
            preset(name).ok_or_else(|| format!("unknown preset {name} (a1-a5, b1, b2, c1-c4)"))?;
        let tuples = args.tuples.unwrap_or(1000);
        let db = workload.spec.clone().with_tuples(tuples).database(1);
        eprintln!(
            "preset {}: {} relations, {tuples} guard tuples",
            workload.name,
            db.relation_count(),
        );
        return Ok((db, workload.query));
    }

    let relations = gumbo::common::io::read_tsv_dir(&args.data).map_err(|e| e.to_string())?;
    if relations.is_empty() {
        return Err(format!("no .tsv relations found in {:?}", args.data));
    }
    let mut db = Database::new();
    for rel in relations {
        eprintln!(
            "loaded {:<16} {:>8} tuples (arity {})",
            rel.name(),
            rel.len(),
            rel.arity()
        );
        db.add_relation(rel);
    }
    let text = std::fs::read_to_string(&args.query)
        .map_err(|e| format!("reading {:?}: {e}", args.query))?;
    let query = parse_program(&text).map_err(|e| e.to_string())?;
    Ok((db, query))
}

/// Build the selected DFS backend, loaded with the input database.
///
/// The file backend reopens an existing store at `PATH` and loads only
/// the relations it doesn't already hold, so a rerun against the same
/// root restarts from the durable state. The initial load is unmetered,
/// matching [`SimDfs::from_database`].
fn build_dfs(
    spec: &DfsSpec,
    dfs_cache: Option<u64>,
    db: &Database,
) -> Result<Box<dyn Dfs>, String> {
    match spec {
        DfsSpec::Sim => Ok(Box::new(SimDfs::from_database(db))),
        DfsSpec::File(root) => {
            let cache = dfs_cache.unwrap_or(DEFAULT_CACHE_BYTES);
            let dfs = FileDfs::open_or_create(root, cache).map_err(|e| e.to_string())?;
            for rel in db.relations() {
                if !dfs.exists(rel.name()) {
                    Dfs::store(&dfs, rel.clone()).map_err(|e| e.to_string())?;
                }
            }
            dfs.reset_counters();
            Ok(Box::new(dfs))
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    let (db, query) = load_inputs(&args)?;
    eprintln!("\nquery:\n{query}\n");

    // Plan + run.
    let mut options = options_for(&args)?;
    options.dfs_cache = args.dfs_cache;
    let engine = GumboEngine::with_executor(
        EngineConfig {
            scale: args.scale,
            cluster: Cluster::with_nodes(args.nodes),
            data_plane: args.data_plane,
            ..EngineConfig::default()
        },
        args.executor,
        options,
    );
    let dfs = build_dfs(&args.dfs, args.dfs_cache, &db)?;
    let dfs: &dyn Dfs = &*dfs;

    if args.explain {
        let sort = engine.sort_for(dfs, &query).map_err(|e| e.to_string())?;
        eprintln!("multiway topological sort: {sort:?}");
        let cost = engine
            .sort_cost(dfs, &query, &sort)
            .map_err(|e| e.to_string())?;
        eprintln!("estimated plan cost      : {cost:.1}");
        if let Some(sched) = options.scheduler {
            eprintln!(
                "scheduler                : dag (max {} concurrent jobs, placement {})",
                sched.effective_workers(),
                sched.placement.label(),
            );
        } else {
            eprintln!("scheduler                : round barrier");
        }
        eprintln!();
    }

    if let Some(path) = &args.trace {
        install_trace_sink(path, args.trace_format)?;
    }
    if args.metrics_dump {
        gumbo::obs::set_metrics_enabled(true);
    }

    let runtime = engine.runtime();
    let result = engine.eval().on(&*runtime).run(dfs, &query);
    // Uninstall *before* propagating errors so the trace file is always
    // finalized (the Chrome array closed) — a failed run's trace is
    // exactly the one worth loading into Perfetto.
    if args.trace.is_some() {
        gumbo::obs::uninstall();
    }
    let stats = result.map_err(|e| e.to_string())?;

    // Verify against the reference evaluator (cheap at CLI scales).
    let expected = NaiveEvaluator::new()
        .evaluate_sgf(&query, &db)
        .map_err(|e| e.to_string())?;
    let got = dfs.peek(query.output()).map_err(|e| e.to_string())?;
    if got.as_ref() != &expected {
        return Err("internal error: MapReduce result differs from reference evaluator".into());
    }

    println!("{stats}");
    // The calibration ledger: how well the planner's cost estimates
    // predicted what actually ran (observed/estimated, 1.0 = perfect).
    if let Some(mean) = stats.mean_estimate_error() {
        let estimated = stats
            .jobs
            .iter()
            .filter(|j| j.estimate_error().is_some())
            .count();
        println!(
            "estimates: jobs_with_estimates={estimated}/{} mean_error={mean:.3}",
            stats.num_jobs(),
        );
    }
    let budget = runtime.budget();
    // Under an unlimited budget the tracker charges in coarse granules,
    // so the reported peak is an upper bound, not an exact figure.
    let peak_key = if budget.limit().is_some() {
        "peak_tracked="
    } else {
        "peak_tracked~="
    };
    // The summary line always prints before the budget check below, so a
    // nonzero exit still carries the evidence in the log.
    println!(
        "shuffle memory: budget={} compress={} {peak_key}{} spilled_bytes={} spilled_disk_bytes={} spill_files={} merge_passes={}",
        budget.spec().label(),
        if budget.spec().compress() { "rle" } else { "off" },
        budget.peak(),
        stats.spilled_bytes(),
        stats.spilled_disk_bytes(),
        stats.spill_files(),
        stats.spill_merge_passes(),
    );
    budget_check(budget.peak(), budget.limit())?;
    if args.shuffle_filter != gumbo::mr::ShuffleFilterMode::Off {
        let fp = stats
            .observed_fp_rate()
            .map_or("n/a".to_string(), |r| format!("{r:.4}"));
        println!(
            "shuffle filter: mode={} filter_bytes={} suppressed_messages={} probes={} false_positives={} observed_fp_rate={fp}",
            args.shuffle_filter.label(),
            stats.filter_bytes(),
            stats.suppressed_messages(),
            stats.filter_probes(),
            stats.filter_false_positives(),
        );
    }
    let cache = if matches!(args.dfs, DfsSpec::File(_)) {
        let cache = dfs.cache_stats();
        println!(
            "dfs cache: capacity={} hits={} misses={} evictions={} cached_bytes={} hit_rate={}",
            cache.capacity_bytes,
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.cached_bytes,
            cache
                .hit_rate()
                .map_or("n/a".to_string(), |r| format!("{r:.4}")),
        );
        dfs.flush().map_err(|e| e.to_string())?;
        Some(cache)
    } else {
        None
    };
    println!("output {} has {} tuples", query.output(), got.len());

    if let Some(path) = &args.stats_json {
        let json = stats_to_json(&stats, cache.as_ref());
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("--stats-json {path:?}: {e}"))?;
        println!("wrote {path:?} (program stats)");
    }
    if args.metrics_dump {
        for (name, kind, value) in gumbo::obs::metrics_snapshot() {
            let kind = match kind {
                gumbo::obs::MetricKind::Counter => "counter",
                gumbo::obs::MetricKind::Gauge => "gauge",
            };
            println!("metric {kind} {name}={value}");
        }
    }

    if let Some(out_dir) = args.out {
        std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir:?}: {e}"))?;
        for name in query.output_names() {
            let rel = dfs.peek(&name).map_err(|e| e.to_string())?;
            let path = out_dir.join(format!("{name}.tsv"));
            gumbo::common::io::write_tsv_file(&rel, &path).map_err(|e| e.to_string())?;
            println!("wrote {path:?} ({} tuples)", rel.len());
        }
    }
    Ok(())
}

/// Install the process-global trace sink for `--trace PATH`.
fn install_trace_sink(
    path: &PathBuf,
    format: Option<gumbo::obs::TraceFormat>,
) -> Result<(), String> {
    let format = format.unwrap_or(gumbo::obs::TraceFormat::Chrome);
    let sink: std::sync::Arc<dyn gumbo::obs::TraceSink> = match format {
        gumbo::obs::TraceFormat::Chrome => std::sync::Arc::new(
            gumbo::obs::ChromeTraceSink::create(path)
                .map_err(|e| format!("--trace {path:?}: {e}"))?,
        ),
        gumbo::obs::TraceFormat::Jsonl => std::sync::Arc::new(
            gumbo::obs::JsonlSink::create(path).map_err(|e| format!("--trace {path:?}: {e}"))?,
        ),
    };
    gumbo::obs::install(sink);
    Ok(())
}

/// Shared positional-value helper for the subcommand parsers.
fn need(i: &mut usize, argv: &[String]) -> Result<String, String> {
    *i += 1;
    argv.get(*i)
        .cloned()
        .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
}

/// Load the database a server will hold resident: a generated preset
/// (seeded exactly like one-shot `--preset`, so service answers diff
/// clean against one-shot output) or a TSV directory.
fn load_service_db(
    preset_name: Option<&str>,
    tuples: Option<usize>,
    data: Option<&PathBuf>,
) -> Result<Database, String> {
    match (preset_name, data) {
        (Some(name), None) => {
            let workload = preset(name)
                .ok_or_else(|| format!("unknown preset {name} (a1-a5, b1, b2, c1-c4)"))?;
            let tuples = tuples.unwrap_or(1000);
            let db = workload.spec.clone().with_tuples(tuples).database(1);
            eprintln!(
                "preset {}: {} relations, {tuples} guard tuples",
                workload.name,
                db.relation_count(),
            );
            Ok(db)
        }
        (None, Some(dir)) => {
            if tuples.is_some() {
                return Err("--tuples only applies to --preset workloads".into());
            }
            let relations = gumbo::common::io::read_tsv_dir(dir).map_err(|e| e.to_string())?;
            if relations.is_empty() {
                return Err(format!("no .tsv relations found in {dir:?}"));
            }
            let mut db = Database::new();
            for rel in relations {
                db.add_relation(rel);
            }
            Ok(db)
        }
        _ => Err("serve needs exactly one of --preset NAME or --data DIR".into()),
    }
}

const SERVE_USAGE: &str = "usage: gumbo-cli serve [--listen ADDR] \
                           (--preset NAME [--tuples N] | --data DIR) \
                           [--dfs sim|file:PATH] [--dfs-cache BYTES] \
                           [--executor sim|parallel|parallel:N] [--max-jobs N] \
                           [--mem-budget BYTES|unlimited] [--data-plane pairs|columnar] \
                           [--queue-cap N] [--inflight N] [--default-weight W] \
                           [--trace PATH] [--trace-format chrome|jsonl] [--metrics-dump]";

fn run_serve(argv: &[String]) -> Result<(), String> {
    let mut listen = "127.0.0.1:7421".to_string();
    let mut preset_name: Option<String> = None;
    let mut tuples: Option<usize> = None;
    let mut data: Option<PathBuf> = None;
    let mut dfs_spec = DfsSpec::Sim;
    let mut dfs_cache: Option<u64> = None;
    let mut executor = gumbo::mr::ExecutorKind::Simulated;
    let mut max_jobs = 4usize;
    let mut mem_budget = gumbo::mr::MemBudget::UNLIMITED;
    let mut data_plane = gumbo::mr::DataPlane::default();
    let mut queue_cap = 64usize;
    let mut inflight = 2usize;
    let mut default_weight = 1.0f64;
    let mut trace: Option<PathBuf> = None;
    let mut trace_format: Option<gumbo::obs::TraceFormat> = None;
    let mut metrics_dump = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => listen = need(&mut i, argv)?,
            "--preset" => preset_name = Some(need(&mut i, argv)?),
            "--tuples" => {
                tuples = Some(
                    need(&mut i, argv)?
                        .parse()
                        .map_err(|e| format!("--tuples: {e}"))?,
                )
            }
            "--data" => data = Some(PathBuf::from(need(&mut i, argv)?)),
            "--dfs" => {
                let spec = need(&mut i, argv)?;
                dfs_spec = if spec == "sim" {
                    DfsSpec::Sim
                } else if let Some(path) = spec.strip_prefix("file:") {
                    DfsSpec::File(PathBuf::from(path))
                } else {
                    return Err(format!("--dfs: sim|file:PATH, got {spec}"));
                };
            }
            "--dfs-cache" => {
                let spec = need(&mut i, argv)?;
                dfs_cache = Some(
                    gumbo::mr::MemBudget::parse(&spec)
                        .and_then(|b| b.limit())
                        .ok_or_else(|| {
                            format!("--dfs-cache: BYTES (k/m/g suffix ok), got {spec}")
                        })?,
                );
            }
            "--executor" => {
                let spec = need(&mut i, argv)?;
                executor = gumbo::mr::ExecutorKind::parse(&spec)
                    .ok_or_else(|| format!("--executor: unknown runtime {spec}"))?;
            }
            "--max-jobs" => {
                max_jobs = need(&mut i, argv)?
                    .parse()
                    .map_err(|e| format!("--max-jobs: {e}"))?
            }
            "--mem-budget" => {
                let spec = need(&mut i, argv)?;
                mem_budget = gumbo::mr::MemBudget::parse(&spec).ok_or_else(|| {
                    format!("--mem-budget: BYTES (k/m/g suffix ok) or unlimited, got {spec}")
                })?;
            }
            "--data-plane" => {
                let spec = need(&mut i, argv)?;
                data_plane = gumbo::mr::DataPlane::parse(&spec)
                    .ok_or_else(|| format!("--data-plane: pairs|columnar, got {spec}"))?;
            }
            "--queue-cap" => {
                queue_cap = need(&mut i, argv)?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--inflight" => {
                inflight = need(&mut i, argv)?
                    .parse()
                    .map_err(|e| format!("--inflight: {e}"))?
            }
            "--default-weight" => {
                default_weight = need(&mut i, argv)?
                    .parse()
                    .map_err(|e| format!("--default-weight: {e}"))?
            }
            "--trace" => trace = Some(PathBuf::from(need(&mut i, argv)?)),
            "--trace-format" => {
                let spec = need(&mut i, argv)?;
                trace_format = Some(
                    gumbo::obs::TraceFormat::parse(&spec)
                        .map_err(|e| format!("--trace-format: {e}"))?,
                );
            }
            "--metrics-dump" => metrics_dump = true,
            "--help" | "-h" => return Err(SERVE_USAGE.into()),
            other => return Err(format!("serve: unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    if dfs_cache.is_some() && matches!(dfs_spec, DfsSpec::Sim) {
        return Err("--dfs-cache requires --dfs file:PATH".into());
    }
    if trace_format.is_some() && trace.is_none() {
        return Err("--trace-format requires --trace PATH".into());
    }
    let db = load_service_db(preset_name.as_deref(), tuples, data.as_ref())?;
    let dfs: std::sync::Arc<dyn Dfs> = std::sync::Arc::from(build_dfs(&dfs_spec, dfs_cache, &db)?);
    // Match the one-shot default (strategy "greedy"): the service must
    // produce byte-identical relations — intermediates included — to a
    // default one-shot run over the same inputs.
    let options = EvalOptions {
        enable_one_round: false,
        mem_budget,
        dfs_cache,
        scheduler: Some(SchedulerConfig {
            max_concurrent_jobs: max_jobs,
            threads_per_job: 0,
            mem_budget,
            placement: gumbo::sched::PlacementPolicy::Fifo,
            core_budget: 0,
        }),
        ..EvalOptions::default()
    };
    let engine = GumboEngine::with_executor(
        EngineConfig {
            data_plane,
            ..EngineConfig::default()
        },
        executor,
        options,
    );
    gumbo::service::install_signal_drain();
    if let Some(path) = &trace {
        install_trace_sink(path, trace_format)?;
    }
    if metrics_dump {
        gumbo::obs::set_metrics_enabled(true);
    }
    let listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let handle = serve(
        listener,
        dfs,
        engine,
        ServeConfig {
            queue_capacity: queue_cap,
            max_in_flight: inflight,
            default_weight,
        },
    )
    .map_err(|e| e.to_string())?;
    println!("gumbo-serve listening on {}", handle.addr());
    let summary = handle.join();
    // Finalize the trace (close the Chrome array) before any exit path.
    if trace.is_some() {
        gumbo::obs::uninstall();
    }
    println!(
        "gumbo-serve drained: connections={} accepted={} completed={}",
        summary.connections, summary.accepted, summary.completed,
    );
    if metrics_dump {
        for (name, kind, value) in gumbo::obs::metrics_snapshot() {
            let kind = match kind {
                gumbo::obs::MetricKind::Counter => "counter",
                gumbo::obs::MetricKind::Gauge => "gauge",
            };
            println!("metric {kind} {name}={value}");
        }
    }
    if summary.accepted != summary.completed {
        return Err(format!(
            "drain lost work: accepted {} != completed {}",
            summary.accepted, summary.completed,
        ));
    }
    Ok(())
}

const QUERY_USAGE: &str = "usage: gumbo-cli query [--addr ADDR] [--tenant NAME] [--weight W] \
                           (--query FILE | --sgf TEXT | --preset NAME) \
                           [--out DIR] [--stats-json PATH]";

fn run_query(argv: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut tenant = "default".to_string();
    let mut weight: Option<f64> = None;
    let mut query_file: Option<PathBuf> = None;
    let mut sgf_text: Option<String> = None;
    let mut preset_name: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut stats_json: Option<PathBuf> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = need(&mut i, argv)?,
            "--tenant" => tenant = need(&mut i, argv)?,
            "--weight" => {
                weight = Some(
                    need(&mut i, argv)?
                        .parse()
                        .map_err(|e| format!("--weight: {e}"))?,
                )
            }
            "--query" => query_file = Some(PathBuf::from(need(&mut i, argv)?)),
            "--sgf" => sgf_text = Some(need(&mut i, argv)?),
            "--preset" => preset_name = Some(need(&mut i, argv)?),
            "--out" => out = Some(PathBuf::from(need(&mut i, argv)?)),
            "--stats-json" => stats_json = Some(PathBuf::from(need(&mut i, argv)?)),
            "--help" | "-h" => return Err(QUERY_USAGE.into()),
            other => return Err(format!("query: unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    let sgf = match (query_file, sgf_text, preset_name) {
        (Some(path), None, None) => {
            std::fs::read_to_string(&path).map_err(|e| format!("reading {path:?}: {e}"))?
        }
        (None, Some(text), None) => text,
        (None, None, Some(name)) => preset(&name)
            .ok_or_else(|| format!("unknown preset {name} (a1-a5, b1, b2, c1-c4)"))?
            .query
            .to_string(),
        _ => return Err("query needs exactly one of --query, --sgf, --preset".into()),
    };
    // Retry the connect: CI starts the server in the background and the
    // first client may race the bind.
    let mut client =
        ServiceClient::connect_retry(addr.as_str(), 40, std::time::Duration::from_millis(250))
            .map_err(|e| format!("connect {addr}: {e}"))?;
    let reply = client
        .query(&tenant, weight, &sgf)
        .map_err(|e| e.to_string())?;
    for rel in &reply.relations {
        println!("relation {} has {} tuples", rel.name(), rel.len());
    }
    println!(
        "report: tenant={tenant} queue_wait_ns={} service_ns={} estimated_cost={}",
        reply.queue_wait_ns().unwrap_or(0),
        reply
            .report
            .get("service_ns")
            .and_then(gumbo::obs::json::Json::as_u64)
            .unwrap_or(0),
        reply
            .report
            .get("estimated_cost")
            .and_then(gumbo::obs::json::Json::as_f64)
            .unwrap_or(0.0),
    );
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        for rel in &reply.relations {
            let path = dir.join(format!("{}.tsv", rel.name()));
            gumbo::common::io::write_tsv_file(rel, &path).map_err(|e| e.to_string())?;
            println!("wrote {path:?} ({} tuples)", rel.len());
        }
    }
    if let Some(path) = stats_json {
        std::fs::write(&path, format!("{}\n", reply.report))
            .map_err(|e| format!("--stats-json {path:?}: {e}"))?;
        println!("wrote {path:?} (submission report)");
    }
    Ok(())
}

const SHUTDOWN_USAGE: &str = "usage: gumbo-cli shutdown [--addr ADDR]";

fn run_shutdown(argv: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = need(&mut i, argv)?,
            "--help" | "-h" => return Err(SHUTDOWN_USAGE.into()),
            other => return Err(format!("shutdown: unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    let mut client =
        ServiceClient::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    let (accepted, completed) = client.shutdown().map_err(|e| e.to_string())?;
    println!("server drained: accepted={accepted} completed={completed}");
    if accepted != completed {
        return Err(format!(
            "drain lost work: accepted {accepted} != completed {completed}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("serve") => run_serve(&argv[1..]),
        Some("query") => run_query(&argv[1..]),
        Some("shutdown") => run_shutdown(&argv[1..]),
        _ => parse_args().and_then(run),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_check_fails_only_when_peak_exceeds_a_limit() {
        // The nonzero exit path: peak over the limit.
        let err = budget_check(10, Some(5)).unwrap_err();
        assert!(err.contains("peaked at 10 over budget 5"), "{err}");
        // At the limit or under it: clean exit.
        assert!(budget_check(5, Some(5)).is_ok());
        assert!(budget_check(0, Some(5)).is_ok());
        // Unlimited budgets never fail, whatever the tracked peak.
        assert!(budget_check(u64::MAX, None).is_ok());
    }

    #[test]
    fn placement_policies_parse_from_cli_spellings() {
        use gumbo::sched::PlacementPolicy;
        assert_eq!(PlacementPolicy::parse("fifo"), Some(PlacementPolicy::Fifo));
        assert_eq!(PlacementPolicy::parse("sjf"), Some(PlacementPolicy::Sjf));
        assert_eq!(
            PlacementPolicy::parse("cp"),
            Some(PlacementPolicy::CriticalPath)
        );
        assert_eq!(PlacementPolicy::parse("best"), None);
    }
}
