//! `trace-check` — validate a trace file emitted by `gumbo-cli --trace`.
//!
//! Usage: `trace-check PATH [--format chrome|jsonl]`
//!
//! For Chrome traces the whole file must parse as a JSON array of
//! trace events, and within every `tid` lane the `B`/`E` phase events
//! must balance like brackets (each `E` closes the most recent open `B`
//! with the same name). For JSONL traces every line must parse as a
//! JSON object carrying `ts_ns`, `lane`, `ph`, and `name`.
//!
//! Exits 0 and prints a one-line summary on success; prints the first
//! problem to stderr and exits 1 otherwise. CI runs this against the
//! trace artifact so a malformed exporter fails the build, not the
//! person who later loads the file into Perfetto.

use std::process::ExitCode;

use gumbo::obs::json::Json;
use gumbo::obs::TraceFormat;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("trace-check: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut path: Option<&str> = None;
    let mut format = TraceFormat::Chrome;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| "--format requires a value".to_string())?;
                format = TraceFormat::parse(value)?;
                i += 2;
            }
            "--help" | "-h" => {
                return Ok("usage: trace-check PATH [--format chrome|jsonl]".to_string());
            }
            arg if arg.starts_with("--") => return Err(format!("unknown flag {arg:?}")),
            arg => {
                if path.replace(arg).is_some() {
                    return Err("expected exactly one PATH argument".to_string());
                }
                i += 1;
            }
        }
    }
    let path = path.ok_or_else(|| "usage: trace-check PATH [--format chrome|jsonl]".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    match format {
        TraceFormat::Chrome => check_chrome(&text),
        TraceFormat::Jsonl => check_jsonl(&text),
    }
}

/// Validate a Chrome trace-event file: one JSON array, balanced `B`/`E`
/// per `tid` lane with matching names, LIFO order.
fn check_chrome(text: &str) -> Result<String, String> {
    let root = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root.as_arr().ok_or("top-level value is not an array")?;
    // One open-span stack per tid; Chrome nesting is per-thread LIFO.
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut spans = 0u64;
    let mut instants = 0u64;
    for (idx, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing \"ph\""))?;
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing \"name\""))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {idx}: missing \"tid\""))?;
        if event.get("ts").and_then(Json::as_f64).is_none() {
            return Err(format!("event {idx}: missing \"ts\""));
        }
        let stack = match stacks.iter_mut().find(|(lane, _)| *lane == tid) {
            Some((_, stack)) => stack,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack.pop().ok_or_else(|| {
                    format!("event {idx}: \"E\" {name:?} with no open span on tid {tid}")
                })?;
                if open != name {
                    return Err(format!(
                        "event {idx}: \"E\" {name:?} closes open span {open:?} on tid {tid}"
                    ));
                }
                spans += 1;
            }
            "i" => instants += 1,
            other => return Err(format!("event {idx}: unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span {open:?} on tid {tid}"));
        }
    }
    Ok(format!(
        "ok: {spans} spans, {instants} instants across {} lanes",
        stacks.len()
    ))
}

/// Validate a JSONL trace: every line is a JSON object with the fields
/// the sink promises.
fn check_jsonl(text: &str) -> Result<String, String> {
    let mut lines = 0u64;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            Json::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", idx + 1))?;
        for key in ["ts_ns", "lane", "ph", "name"] {
            if event.get(key).is_none() {
                return Err(format!("line {}: missing {key:?}", idx + 1));
            }
        }
        lines += 1;
    }
    Ok(format!("ok: {lines} events"))
}
