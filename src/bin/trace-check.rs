//! `trace-check` — validate a trace file emitted by `gumbo-cli --trace`.
//!
//! Usage: `trace-check PATH [--format chrome|jsonl]`
//!
//! For Chrome traces the whole file must parse as a JSON array of
//! trace events, within every `tid` lane the `B`/`E` phase events must
//! balance like brackets (each `E` closes the most recent open `B` with
//! the same name), and every event name must come from the known span/
//! instant vocabulary below — a renamed or typo'd emitter fails here
//! instead of silently producing an unrecognizable trace. For JSONL
//! traces every line must parse as a JSON object carrying `ts_ns`,
//! `lane`, `ph`, and `name`, with the same name validation.
//!
//! Exits 0 and prints a one-line summary on success; prints the first
//! problem to stderr and exits 1 otherwise. CI runs this against the
//! trace artifact so a malformed exporter fails the build, not the
//! person who later loads the file into Perfetto.

use std::process::ExitCode;

use gumbo::obs::json::Json;
use gumbo::obs::TraceFormat;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("trace-check: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut path: Option<&str> = None;
    let mut format = TraceFormat::Chrome;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| "--format requires a value".to_string())?;
                format = TraceFormat::parse(value)?;
                i += 2;
            }
            "--help" | "-h" => {
                return Ok("usage: trace-check PATH [--format chrome|jsonl]".to_string());
            }
            arg if arg.starts_with("--") => return Err(format!("unknown flag {arg:?}")),
            arg => {
                if path.replace(arg).is_some() {
                    return Err("expected exactly one PATH argument".to_string());
                }
                i += 1;
            }
        }
    }
    let path = path.ok_or_else(|| "usage: trace-check PATH [--format chrome|jsonl]".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    match format {
        TraceFormat::Chrome => check_chrome(&text),
        TraceFormat::Jsonl => check_jsonl(&text),
    }
}

/// Every span name the engine emits (`B`/`E` pairs). Grown alongside the
/// emitters — an unknown name in a trace means an emitter changed without
/// updating the checker (or the file is not a gumbo trace).
const KNOWN_SPANS: &[&str] = &[
    "execute",
    "job",
    "plan",
    "map",
    "map:task",
    "filter:build",
    "filter:probe",
    "shuffle:flush",
    "reduce",
    "reduce:task",
    "commit",
    "spill:run",
    "spill:merge",
    "dfs.store",
];

/// Every instant-event name (`i` phase): scheduler lifecycle, budget and
/// DFS scan markers.
const KNOWN_INSTANTS: &[&str] = &[
    "sched:submit",
    "sched:admit",
    "sched:ready",
    "sched:claim",
    "sched:complete",
    "sched:threads_assigned",
    "budget:exhausted",
    "spill:run",
    "dfs.scan",
    "svc:accept",
    "svc:submit",
    "svc:admit",
    "svc:stream",
    "svc:complete",
    "svc:drain",
];

fn check_name(idx: usize, ph: &str, name: &str) -> Result<(), String> {
    let known = match ph {
        "i" => KNOWN_INSTANTS,
        _ => KNOWN_SPANS,
    };
    if known.contains(&name) {
        Ok(())
    } else {
        Err(format!(
            "event {idx}: unknown {} name {name:?}",
            if ph == "i" { "instant" } else { "span" }
        ))
    }
}

/// Validate a Chrome trace-event file: one JSON array, balanced `B`/`E`
/// per `tid` lane with matching names, LIFO order, known names only.
fn check_chrome(text: &str) -> Result<String, String> {
    let root = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root.as_arr().ok_or("top-level value is not an array")?;
    // One open-span stack per tid; Chrome nesting is per-thread LIFO.
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut spans = 0u64;
    let mut instants = 0u64;
    for (idx, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing \"ph\""))?;
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing \"name\""))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {idx}: missing \"tid\""))?;
        if event.get("ts").and_then(Json::as_f64).is_none() {
            return Err(format!("event {idx}: missing \"ts\""));
        }
        check_name(idx, ph, name)?;
        let stack = match stacks.iter_mut().find(|(lane, _)| *lane == tid) {
            Some((_, stack)) => stack,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack.pop().ok_or_else(|| {
                    format!("event {idx}: \"E\" {name:?} with no open span on tid {tid}")
                })?;
                if open != name {
                    return Err(format!(
                        "event {idx}: \"E\" {name:?} closes open span {open:?} on tid {tid}"
                    ));
                }
                spans += 1;
            }
            "i" => instants += 1,
            other => return Err(format!("event {idx}: unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span {open:?} on tid {tid}"));
        }
    }
    Ok(format!(
        "ok: {spans} spans, {instants} instants across {} lanes",
        stacks.len()
    ))
}

/// Validate a JSONL trace: every line is a JSON object with the fields
/// the sink promises.
fn check_jsonl(text: &str) -> Result<String, String> {
    let mut lines = 0u64;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            Json::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", idx + 1))?;
        for key in ["ts_ns", "lane", "ph", "name"] {
            if event.get(key).is_none() {
                return Err(format!("line {}: missing {key:?}", idx + 1));
            }
        }
        let ph = event.get("ph").and_then(Json::as_str).unwrap_or("");
        let name = event.get("name").and_then(Json::as_str).unwrap_or("");
        check_name(idx + 1, ph, name)?;
        lines += 1;
    }
    Ok(format!("ok: {lines} events"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ph: &str, name: &str) -> String {
        format!(r#"{{"ph":"{ph}","name":"{name}","tid":1,"ts":1.0}}"#)
    }

    #[test]
    fn chrome_accepts_filter_spans() {
        let text = format!(
            "[{},{},{},{},{},{}]",
            ev("B", "job"),
            ev("B", "filter:build"),
            ev("E", "filter:build"),
            ev("B", "filter:probe"),
            ev("E", "filter:probe"),
            ev("E", "job"),
        );
        assert!(check_chrome(&text).is_ok());
    }

    #[test]
    fn chrome_rejects_unknown_span_names() {
        let text = format!("[{},{}]", ev("B", "filter:warp"), ev("E", "filter:warp"));
        let err = check_chrome(&text).unwrap_err();
        assert!(err.contains("unknown span name"), "{err}");
    }

    #[test]
    fn chrome_rejects_span_name_as_instant() {
        let err = check_chrome(&format!("[{}]", ev("i", "filter:build"))).unwrap_err();
        assert!(err.contains("unknown instant name"), "{err}");
    }

    #[test]
    fn jsonl_validates_names_too() {
        let good = r#"{"ts_ns":1,"lane":1,"ph":"B","name":"filter:build"}
{"ts_ns":2,"lane":1,"ph":"E","name":"filter:build"}"#;
        assert!(check_jsonl(good).is_ok());
        let bad = r#"{"ts_ns":1,"lane":1,"ph":"B","name":"mystery"}"#;
        assert!(check_jsonl(bad).unwrap_err().contains("unknown span name"));
    }
}
