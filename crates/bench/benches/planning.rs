//! Criterion micro-benchmarks for the planning layer: parsing, cost
//! estimation, `Greedy-BSGF` and `Greedy-SGF` (the §5.3 claim that plan
//! computation overhead is negligible next to execution savings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gumbo_core::planner::{greedy_partition, greedy_sgf_sort, optimal_partition};
use gumbo_core::{Estimator, PayloadMode, QueryContext};
use gumbo_datagen::queries;
use gumbo_mr::{CostConstants, CostModelKind, JobConfig};
use gumbo_sgf::parse_program;
use gumbo_storage::SimDfs;

fn parser(c: &mut Criterion) {
    let b1 = queries::b1().query.to_string();
    let c3 = queries::c3().query.to_string();
    let mut group = c.benchmark_group("parser");
    group.bench_function("b1_16_atoms", |b| {
        b.iter(|| parse_program(&b1).unwrap());
    });
    group.bench_function("c3_nested", |b| {
        b.iter(|| parse_program(&c3).unwrap());
    });
    group.finish();
}

fn greedy_bsgf(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_bsgf");
    for k in [4usize, 8, 16] {
        let w = queries::a3_family(k).with_tuples(2_000);
        let db = w.spec.database(1);
        let dfs = SimDfs::from_database(&db);
        let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let est = Estimator::new(
                    &dfs,
                    5_000,
                    CostConstants::default(),
                    CostModelKind::Gumbo,
                    64,
                    1,
                );
                let cfg = JobConfig::default();
                let mut cost = |s: &std::collections::BTreeSet<usize>| {
                    let ids: Vec<usize> = s.iter().copied().collect();
                    est.msj_cost(&ctx, &ids, PayloadMode::Reference, &cfg)
                        .unwrap()
                };
                greedy_partition(k, &mut cost)
            });
        });
    }
    group.finish();
}

fn greedy_vs_bruteforce(c: &mut Criterion) {
    let w = queries::a1().with_tuples(2_000);
    let db = w.spec.database(1);
    let dfs = SimDfs::from_database(&db);
    let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
    let est = Estimator::new(
        &dfs,
        5_000,
        CostConstants::default(),
        CostModelKind::Gumbo,
        64,
        1,
    );
    let cfg = JobConfig::default();

    let mut group = c.benchmark_group("partitioner_a1");
    group.bench_function("greedy", |b| {
        b.iter(|| {
            let mut cost = |s: &std::collections::BTreeSet<usize>| {
                let ids: Vec<usize> = s.iter().copied().collect();
                est.msj_cost(&ctx, &ids, PayloadMode::Reference, &cfg)
                    .unwrap()
            };
            greedy_partition(4, &mut cost)
        });
    });
    group.bench_function("bruteforce", |b| {
        b.iter(|| {
            let mut cost = |s: &std::collections::BTreeSet<usize>| {
                let ids: Vec<usize> = s.iter().copied().collect();
                est.msj_cost(&ctx, &ids, PayloadMode::Reference, &cfg)
                    .unwrap()
            };
            optimal_partition(4, &mut cost)
        });
    });
    group.finish();
}

fn greedy_sgf(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_sgf_sort");
    for w in queries::figure6() {
        group.bench_function(&w.name, |b| {
            b.iter(|| greedy_sgf_sort(&w.query));
        });
    }
    group.finish();
}

fn estimator_sampling(c: &mut Criterion) {
    let w = queries::b1().with_tuples(5_000);
    let db = w.spec.database(1);
    let dfs = SimDfs::from_database(&db);
    let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
    c.bench_function("estimate_b1_full_group", |b| {
        b.iter(|| {
            let est = Estimator::new(
                &dfs,
                5_000,
                CostConstants::default(),
                CostModelKind::Gumbo,
                64,
                1,
            );
            let all: Vec<usize> = (0..ctx.semijoins().len()).collect();
            est.msj_cost(&ctx, &all, PayloadMode::Reference, &JobConfig::default())
                .unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = parser, greedy_bsgf, greedy_vs_bruteforce, greedy_sgf, estimator_sampling
}
criterion_main!(benches);
