//! Criterion micro-benchmarks for the execution operators: MSJ, EVAL,
//! 1-ROUND fusion and the end-to-end A3 pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gumbo_mr::Executor as _;

use gumbo_core::eval::build_eval_job;
use gumbo_core::msj::build_msj_job;
use gumbo_core::oneround::build_same_key_job;
use gumbo_core::{PayloadMode, QueryContext};
use gumbo_datagen::queries;
use gumbo_mr::{Engine, EngineConfig, JobConfig, MrProgram};
use gumbo_storage::SimDfs;

const TUPLES: usize = 5_000;

fn msj_group_sizes(c: &mut Criterion) {
    let w = queries::a1().with_tuples(TUPLES);
    let db = w.spec.database(1);
    let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
    let engine = Engine::new(EngineConfig::unscaled());

    let mut group = c.benchmark_group("msj_group_size");
    for k in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let ids: Vec<usize> = (0..k).collect();
            b.iter(|| {
                let dfs = SimDfs::from_database(&db);
                let job = build_msj_job(&ctx, &ids, PayloadMode::Reference, JobConfig::default());
                engine.execute_job(&dfs, &job, 0).unwrap()
            });
        });
    }
    group.finish();
}

fn payload_modes(c: &mut Criterion) {
    let w = queries::a1().with_tuples(TUPLES);
    let db = w.spec.database(1);
    let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
    let engine = Engine::new(EngineConfig::unscaled());

    let mut group = c.benchmark_group("msj_payload_mode");
    for (label, mode) in [
        ("full", PayloadMode::Full),
        ("reference", PayloadMode::Reference),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let dfs = SimDfs::from_database(&db);
                let job = build_msj_job(&ctx, &[0, 1, 2, 3], mode, JobConfig::default());
                engine.execute_job(&dfs, &job, 0).unwrap()
            });
        });
    }
    group.finish();
}

fn eval_job(c: &mut Criterion) {
    let w = queries::a1().with_tuples(TUPLES);
    let db = w.spec.database(1);
    let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
    let engine = Engine::new(EngineConfig::unscaled());
    // Materialize the X relations once.
    let base = SimDfs::from_database(&db);
    let msj = build_msj_job(
        &ctx,
        &[0, 1, 2, 3],
        PayloadMode::Reference,
        JobConfig::default(),
    );
    engine.execute_job(&base, &msj, 0).unwrap();
    let prepared = base.to_database();

    c.bench_function("eval_job", |b| {
        b.iter(|| {
            let dfs = SimDfs::from_database(&prepared);
            let job = build_eval_job(&ctx, PayloadMode::Reference, JobConfig::default());
            engine.execute_job(&dfs, &job, 0).unwrap()
        });
    });
}

fn one_round_vs_two_round(c: &mut Criterion) {
    let w = queries::a3().with_tuples(TUPLES);
    let db = w.spec.database(1);
    let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
    let engine = Engine::new(EngineConfig::unscaled());

    let mut group = c.benchmark_group("a3_pipeline");
    group.bench_function("one_round", |b| {
        b.iter(|| {
            let dfs = SimDfs::from_database(&db);
            let mut program = MrProgram::new();
            program.push_job(build_same_key_job(&ctx, JobConfig::default()).unwrap());
            engine.execute(&dfs, &program).unwrap()
        });
    });
    group.bench_function("two_round", |b| {
        b.iter(|| {
            let dfs = SimDfs::from_database(&db);
            let mut program = MrProgram::new();
            program.push_job(build_msj_job(
                &ctx,
                &[0, 1, 2, 3],
                PayloadMode::Reference,
                JobConfig::default(),
            ));
            program.push_job(build_eval_job(
                &ctx,
                PayloadMode::Reference,
                JobConfig::default(),
            ));
            engine.execute(&dfs, &program).unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = msj_group_sizes, payload_modes, eval_job, one_round_vs_two_round
}
criterion_main!(benches);
