//! Experiment implementations: one function per table/figure of §5.
//!
//! Each function prints the same rows/series the paper reports (absolute
//! values plus, where the paper does, values relative to the baseline) and
//! returns its rows for programmatic use.

use std::collections::BTreeSet;

use gumbo_baselines::greedy_engine;
use gumbo_common::Result;
use gumbo_core::{Estimator, PayloadMode, QueryContext};
use gumbo_datagen::queries;
use gumbo_datagen::Workload;
use gumbo_mr::{CostModelKind, JobConfig};
use gumbo_sgf::DependencyGraph;
use gumbo_storage::SimDfs;

use crate::runner::{applicable, run_strategy, RunConfig, RunResult, Strategy};

/// The BSGF strategy lineup of Figure 3/4.
pub const BSGF_STRATEGIES: [Strategy; 7] = [
    Strategy::Seq,
    Strategy::Par,
    Strategy::Greedy,
    Strategy::Hpar,
    Strategy::Hpars,
    Strategy::Ppar,
    Strategy::OneRound,
];

/// The SGF strategy lineup of Figure 5.
pub const SGF_STRATEGIES: [Strategy; 3] =
    [Strategy::SeqUnit, Strategy::ParUnit, Strategy::GreedySgf];

fn print_header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

fn print_rows(rows: &[RunResult]) {
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>10} {:>10} {:>7} {:>6}",
        "workload", "strategy", "net(s)", "total(s)", "input(GB)", "comm(GB)", "rounds", "jobs"
    );
    for r in rows {
        println!(
            "{:<10} {:<10} {:>10.0} {:>12.0} {:>10.1} {:>10.1} {:>7} {:>6}",
            r.workload, r.strategy, r.net, r.total, r.input_gb, r.comm_gb, r.rounds, r.jobs
        );
    }
}

fn print_relative(rows: &[RunResult], baseline: &str) {
    println!();
    println!("relative to {baseline} (100%):");
    println!(
        "{:<10} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "workload", "strategy", "net", "total", "input", "comm"
    );
    let mut base: std::collections::BTreeMap<&str, &RunResult> = Default::default();
    for r in rows {
        if r.strategy == baseline {
            base.insert(r.workload.as_str(), r);
        }
    }
    for r in rows {
        if let Some(b) = base.get(r.workload.as_str()) {
            println!(
                "{:<10} {:<10} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}%",
                r.workload,
                r.strategy,
                100.0 * r.net / b.net,
                100.0 * r.total / b.total,
                100.0 * r.input_gb / b.input_gb,
                100.0 * r.comm_gb / b.comm_gb,
            );
        }
    }
}

fn run_lineup(
    workloads: &[Workload],
    strategies: &[Strategy],
    cfg: &RunConfig,
) -> Result<Vec<RunResult>> {
    let mut rows = Vec::new();
    for w in workloads {
        for &s in strategies {
            if applicable(s, w) {
                rows.push(run_strategy(s, w, cfg)?);
            }
        }
    }
    Ok(rows)
}

/// Figure 3: BSGF queries A1–A5 under all strategies.
pub fn fig3(cfg: &RunConfig) -> Result<Vec<RunResult>> {
    print_header("Figure 3 — BSGF queries A1-A5 (abs + relative to SEQ)");
    let workloads = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
    ];
    let rows = run_lineup(&workloads, &BSGF_STRATEGIES, cfg)?;
    print_rows(&rows);
    print_relative(&rows, "SEQ");
    Ok(rows)
}

/// Figure 4: large BSGF queries B1 and B2.
pub fn fig4(cfg: &RunConfig) -> Result<Vec<RunResult>> {
    print_header("Figure 4 — large BSGF queries B1, B2 (abs + relative to SEQ)");
    let workloads = vec![queries::b1(), queries::b2()];
    let rows = run_lineup(&workloads, &BSGF_STRATEGIES, cfg)?;
    print_rows(&rows);
    print_relative(&rows, "SEQ");
    Ok(rows)
}

/// §5.2 "Cost Model": GREEDY under cost_gumbo vs cost_wang on the 48-atom
/// filter query, plus random job-pair ranking accuracy.
pub fn costmodel(cfg: &RunConfig) -> Result<()> {
    print_header("§5.2 Cost Model — cost_gumbo vs cost_wang");
    let w = queries::cost_model_query();
    // The adversarial shape: the guard amplifies its map output 48× while
    // the (large) conditional relations are filtered to nothing by the
    // constant — so cost_wang's global averaging sees many mappers with
    // almost no output and misjudges the guard's map-side merge depth.
    let spec = w
        .spec
        .clone()
        .with_tuples(cfg.tuples)
        .with_cond_tuples(cfg.tuples * 8)
        .with_selectivity(cfg.selectivity);
    let db = spec.database(cfg.seed);

    let mut results = Vec::new();
    for (label, model) in [
        ("cost_gumbo", CostModelKind::Gumbo),
        ("cost_wang", CostModelKind::Wang),
    ] {
        let dfs = SimDfs::from_database(&db);
        let mut engine = greedy_engine(gumbo_mr::EngineConfig {
            scale: cfg.scale,
            cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
            ..gumbo_mr::EngineConfig::default()
        });
        engine.executor = cfg.executor;
        engine.options.planner_model = model;
        let stats = engine.evaluate(&dfs, &w.query)?;
        println!(
            "GREEDY planned with {label:<11}: net {:>8.0}s  total {:>10.0}s  jobs {}",
            stats.net_time(),
            stats.total_time(),
            stats.num_jobs()
        );
        for j in &stats.jobs {
            println!(
                "    {:<40} cost {:>8.0} (map {:>8.0} / red {:>6.0})  in {:>7.1} GB  shuffle {:>7.1} GB",
                truncate_name(&j.name),
                j.total_cost,
                j.map_cost,
                j.reduce_cost,
                j.input_bytes().as_bytes() as f64 / 1e9,
                j.communication_bytes().as_bytes() as f64 / 1e9,
            );
        }
        results.push((stats.net_time(), stats.total_time()));
    }
    let (net_g, tot_g) = results[0];
    let (net_w, tot_w) = results[1];
    println!(
        "cost_gumbo reduction vs cost_wang: total {:.0}%, net {:.0}%",
        100.0 * (1.0 - tot_g / tot_w),
        100.0 * (1.0 - net_g / net_w)
    );

    // Random job-pair ranking: estimate MSJ groups under both models and
    // compare orderings against measured execution cost. The pool mixes
    // proportional-ratio jobs (A1/A3/B1 groups) with skewed-ratio jobs
    // (cost-model-query groups, where the guard amplifies and the
    // conditionals filter) — the regime where cost_wang misprices.
    let pool_workloads = [
        queries::a1().with_tuples(cfg.tuples),
        queries::a3().with_tuples(cfg.tuples),
        queries::b1().with_tuples(cfg.tuples),
        queries::cost_model_query().with_tuples(cfg.tuples),
    ];
    let mut jobs: Vec<(f64, f64, f64)> = Vec::new(); // (gumbo est, wang est, measured)
    for (wi, pw) in pool_workloads.iter().enumerate() {
        let pdb = pw.spec.database(cfg.seed);
        let ctx = QueryContext::new(pw.query.queries().to_vec())?;
        let n = ctx.semijoins().len();
        let executor = cfg.executor.build(gumbo_mr::EngineConfig {
            scale: cfg.scale,
            ..gumbo_mr::EngineConfig::default()
        });
        // Deterministic pseudo-random subsets of the semi-join set; for the
        // skewed cost-model query, graded prefix sizes so its jobs' costs
        // interleave with the proportional jobs'.
        for k in 0..6usize {
            let group: Vec<usize> = if pw.name == "COST" {
                (0..n.min(4 + k * 9)).collect()
            } else {
                (0..n).filter(|i| (i * 7 + k * 3 + wi) % 3 != 0).collect()
            };
            let group = if group.is_empty() { vec![0] } else { group };
            let dfs = SimDfs::from_database(&pdb);
            let est_g = Estimator::new(
                &dfs,
                cfg.scale,
                gumbo_mr::CostConstants::default(),
                CostModelKind::Gumbo,
                64,
                cfg.seed,
            );
            let cg = est_g.msj_cost(&ctx, &group, PayloadMode::Reference, &JobConfig::default())?;
            let est_w = Estimator::new(
                &dfs,
                cfg.scale,
                gumbo_mr::CostConstants::default(),
                CostModelKind::Wang,
                64,
                cfg.seed,
            );
            let cw = est_w.msj_cost(&ctx, &group, PayloadMode::Reference, &JobConfig::default())?;
            let job = gumbo_core::msj::build_msj_job(
                &ctx,
                &group,
                PayloadMode::Reference,
                JobConfig::default(),
            );
            let measured = executor.execute_job(&dfs, &job, 0)?.total_cost;
            jobs.push((cg, cw, measured));
        }
    }
    let mut correct_g = 0;
    let mut correct_w = 0;
    let mut pairs = 0;
    for i in 0..jobs.len() {
        for j in (i + 1)..jobs.len() {
            let (gi, wi_, mi) = jobs[i];
            let (gj, wj, mj) = jobs[j];
            if (mi - mj).abs() < 1e-9 {
                continue;
            }
            pairs += 1;
            if (gi > gj) == (mi > mj) {
                correct_g += 1;
            }
            if (wi_ > wj) == (mi > mj) {
                correct_w += 1;
            }
        }
    }
    println!(
        "job-pair ranking accuracy over {pairs} pairs: cost_gumbo {:.2}%, cost_wang {:.2}%",
        100.0 * correct_g as f64 / pairs as f64,
        100.0 * correct_w as f64 / pairs as f64
    );
    Ok(())
}

/// Figure 5: SGF queries C1–C4, relative to SEQUNIT.
pub fn fig5(cfg: &RunConfig) -> Result<Vec<RunResult>> {
    print_header("Figure 5 — SGF queries C1-C4 (relative to SEQUNIT)");
    let workloads = queries::figure6();
    let rows = run_lineup(&workloads, &SGF_STRATEGIES, cfg)?;
    print_rows(&rows);
    print_relative(&rows, "SEQUNIT");
    Ok(rows)
}

const SWEEP_STRATEGIES: [Strategy; 4] = [
    Strategy::Seq,
    Strategy::Par,
    Strategy::Greedy,
    Strategy::OneRound,
];

/// Figure 7a: growing data size on a fixed 10-node cluster (A3).
pub fn fig7a(cfg: &RunConfig) -> Result<Vec<RunResult>> {
    print_header("Figure 7a — varying data size (10 nodes, A3)");
    let mut rows = Vec::new();
    for mult in [2u64, 4, 8, 16] {
        // scale × tuples = 200M/400M/800M/1600M equivalents.
        let c = RunConfig {
            scale: cfg.scale * mult / 2,
            ..cfg.clone()
        };
        for s in SWEEP_STRATEGIES {
            let mut r = run_strategy(s, &queries::a3(), &c)?;
            r.workload = format!("{}M", c.equivalent_tuples() / 1_000_000);
            rows.push(r);
        }
    }
    print_rows(&rows);
    Ok(rows)
}

/// Figure 7b: growing cluster size at fixed data size (A3).
pub fn fig7b(cfg: &RunConfig) -> Result<Vec<RunResult>> {
    print_header("Figure 7b — varying cluster size (800M-equivalent tuples, A3)");
    let mut rows = Vec::new();
    for nodes in [5usize, 10, 20] {
        let c = RunConfig {
            nodes,
            scale: cfg.scale * 4,
            ..cfg.clone()
        };
        for s in SWEEP_STRATEGIES {
            let mut r = run_strategy(s, &queries::a3(), &c)?;
            r.workload = format!("{nodes}n");
            rows.push(r);
        }
    }
    print_rows(&rows);
    Ok(rows)
}

/// Figure 7c: co-scaling data and cluster size (A3).
pub fn fig7c(cfg: &RunConfig) -> Result<Vec<RunResult>> {
    print_header("Figure 7c — co-scaling data and cluster size (A3)");
    let mut rows = Vec::new();
    for (mult, nodes) in [(1u64, 5usize), (2, 10), (4, 20)] {
        let c = RunConfig {
            nodes,
            scale: cfg.scale * mult,
            ..cfg.clone()
        };
        for s in SWEEP_STRATEGIES {
            let mut r = run_strategy(s, &queries::a3(), &c)?;
            r.workload = format!("{}M/{}n", c.equivalent_tuples() / 1_000_000, nodes);
            rows.push(r);
        }
    }
    print_rows(&rows);
    Ok(rows)
}

/// Figure 8: varying the number of conditional atoms (A3 family).
pub fn fig8(cfg: &RunConfig) -> Result<Vec<RunResult>> {
    print_header("Figure 8 — varying the number of conditional atoms (A3 family)");
    let mut rows = Vec::new();
    for k in [2usize, 4, 8, 12, 16] {
        let w = queries::a3_family(k);
        for s in SWEEP_STRATEGIES {
            rows.push(run_strategy(s, &w, cfg)?);
        }
    }
    print_rows(&rows);
    Ok(rows)
}

/// Table 3: net/total increase when selectivity goes from 0.1 to 0.9.
pub fn table3(cfg: &RunConfig) -> Result<()> {
    print_header("Table 3 — selectivity 0.1 -> 0.9 increase (A1-A3)");
    let workloads = [queries::a1(), queries::a2(), queries::a3()];
    let strategies = [Strategy::Seq, Strategy::Par, Strategy::Greedy];
    println!(
        "{:<10} {:<10} {:>12} {:>12}",
        "strategy", "query", "net incr", "total incr"
    );
    for s in strategies {
        for w in &workloads {
            let lo = run_strategy(
                s,
                w,
                &RunConfig {
                    selectivity: 0.1,
                    ..cfg.clone()
                },
            )?;
            let hi = run_strategy(
                s,
                w,
                &RunConfig {
                    selectivity: 0.9,
                    ..cfg.clone()
                },
            )?;
            println!(
                "{:<10} {:<10} {:>11.0}% {:>11.0}%",
                s.label(),
                w.name,
                100.0 * (hi.net - lo.net) / lo.net,
                100.0 * (hi.total - lo.total) / lo.total,
            );
        }
    }
    Ok(())
}

/// Optimality checks: greedy vs brute-force planners (backing Theorems 1/2
/// and the paper's claim that Greedy-SGF matched the optimal sorts on
/// C1–C4).
pub fn optimality(cfg: &RunConfig) -> Result<()> {
    print_header("Optimality — greedy vs brute-force planners");
    // (a) Greedy-SGF vs optimal multiway topological sort on C1-C4.
    for w in queries::figure6() {
        let db = w
            .spec
            .clone()
            .with_tuples(cfg.tuples.min(2000))
            .database(cfg.seed);
        let dfs = SimDfs::from_database(&db);
        let mut engine = greedy_engine(gumbo_mr::EngineConfig {
            scale: cfg.scale,
            ..gumbo_mr::EngineConfig::default()
        });
        engine.executor = cfg.executor;
        let greedy_sort = gumbo_core::planner::greedy_sgf_sort(&w.query);
        let greedy_cost = engine.sort_cost(&dfs, &w.query, &greedy_sort)?;
        let (opt_sort, opt_cost) = gumbo_core::planner::optimal_sgf_sort(&w.query, &mut |s| {
            engine.sort_cost(&dfs, &w.query, s)
        })?;
        println!(
            "{}: greedy sort cost {:.0}, optimal {:.0} (ratio {:.3}); groups {} vs {}",
            w.name,
            greedy_cost,
            opt_cost,
            greedy_cost / opt_cost,
            greedy_sort.len(),
            opt_sort.len()
        );
    }
    // (b) Greedy-BSGF vs optimal partition on A1/A3/B2 semi-join sets.
    for w in [queries::a1(), queries::a3(), queries::b2()] {
        let db = w
            .spec
            .clone()
            .with_tuples(cfg.tuples.min(2000))
            .database(cfg.seed);
        let dfs = SimDfs::from_database(&db);
        let ctx = QueryContext::new(w.query.queries().to_vec())?;
        let est = Estimator::new(
            &dfs,
            cfg.scale,
            gumbo_mr::CostConstants::default(),
            CostModelKind::Gumbo,
            64,
            cfg.seed,
        );
        let n = ctx.semijoins().len();
        let cfg_job = JobConfig::default();
        let mut cost_fn = |b: &BTreeSet<usize>| {
            let ids: Vec<usize> = b.iter().copied().collect();
            est.msj_cost(&ctx, &ids, PayloadMode::Reference, &cfg_job)
                .unwrap_or(f64::MAX)
        };
        let (_, greedy_cost) = gumbo_core::planner::greedy_partition(n, &mut cost_fn);
        let (_, opt_cost) = gumbo_core::planner::optimal_partition(n, &mut cost_fn);
        println!(
            "{}: greedy partition cost {:.0}, optimal {:.0} (ratio {:.3})",
            w.name,
            greedy_cost,
            opt_cost,
            greedy_cost / opt_cost
        );
    }
    Ok(())
}

/// Sanity: dependency structures of the C-queries match the paper.
pub fn structures() -> Result<()> {
    print_header("Dependency structures (Fig. 6)");
    for w in queries::figure6() {
        let g = DependencyGraph::new(&w.query);
        println!(
            "{}: {} subqueries, levels {:?}",
            w.name,
            g.len(),
            g.level_sort()
        );
    }
    Ok(())
}

/// Executor speedup: real wall-clock of the multi-threaded runtime vs the
/// sequential path, sweeping the worker count. Run with
/// `--tuples 100000` for the reference 100k-tuple workload.
///
/// This is the one experiment about *our* wall-clock rather than the
/// paper's simulated metrics: answers and metered stats are identical
/// across runtimes by construction (see `tests/executor_equivalence.rs`),
/// so the only thing that changes is how fast the hardware delivers them.
/// On a 4+-core machine the pooled runtime clears 2× over one thread.
pub fn speedup(cfg: &RunConfig) -> Result<()> {
    use crate::report::{write_bench_json, Json};
    use gumbo_core::{EvalOptions, Grouping, GumboEngine, SortStrategy};
    use gumbo_mr::{ExecutorKind, ReducerPolicy};
    use std::time::Instant;

    print_header("Executor speedup — wall-clock, parallel runtime vs sequential");
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let tuples = cfg.tuples;
    println!("available hardware parallelism: {hw} core(s); {tuples} guard tuples");

    // Paper-scale byte accounting; fixed reducers keep both runtimes on
    // plenty of independent reduce tasks.
    let w = queries::a3_family(8).with_tuples(tuples);
    let db = w.spec.database(cfg.seed);
    let engine_cfg = gumbo_mr::EngineConfig {
        scale: cfg.scale,
        cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
        ..gumbo_mr::EngineConfig::default()
    };
    let options = EvalOptions {
        grouping: Grouping::Singletons,
        sort: SortStrategy::Levels,
        enable_one_round: false,
        job_config: gumbo_mr::JobConfig {
            reducer_policy: ReducerPolicy::Fixed(64),
            ..gumbo_mr::JobConfig::default()
        },
        ..EvalOptions::default()
    };
    let time_with = |kind: ExecutorKind| -> Result<(f64, u64)> {
        let engine = GumboEngine::with_executor(engine_cfg, kind, options);
        let dfs = SimDfs::from_database(&db);
        let start = Instant::now();
        let stats = engine.evaluate(&dfs, &w.query)?;
        let elapsed = start.elapsed().as_secs_f64();
        Ok((elapsed, stats.jobs.iter().map(|j| j.output_tuples).sum()))
    };

    let mut rows: Vec<Json> = Vec::new();
    let mut record = |label: &str, secs: f64, speedup: f64, out: u64| {
        println!("{label:<26} {secs:>10.3} {speedup:>11.2}x {out:>10}");
        rows.push(Json::obj([
            ("runtime", Json::Str(label.into())),
            ("wall_s", Json::Num(secs)),
            ("speedup", Json::Num(speedup)),
            ("output_tuples", Json::Int(out)),
        ]));
    };

    let (base_secs, base_out) = time_with(ExecutorKind::Parallel { threads: 1 })?;
    println!(
        "{:<26} {:>10} {:>12} {:>10}",
        "runtime", "wall (s)", "speedup", "out tuples"
    );
    record("parallel:1 (sequential)", base_secs, 1.0, base_out);

    let (sim_secs, sim_out) = time_with(ExecutorKind::Simulated)?;
    record("simulated", sim_secs, base_secs / sim_secs, sim_out);
    assert_eq!(base_out, sim_out, "runtimes must agree on results");

    let mut sweep: Vec<usize> = vec![2, 4, 8, 16];
    sweep.retain(|&t| t <= 2 * hw.max(1));
    sweep.push(0); // auto
    for threads in sweep {
        let (secs, out) = time_with(ExecutorKind::Parallel { threads })?;
        assert_eq!(base_out, out, "runtimes must agree on results");
        let label = if threads == 0 {
            format!(
                "parallel (auto = {})",
                gumbo_mr::ParallelExecutor::new(engine_cfg).effective_threads()
            )
        } else {
            format!("parallel:{threads}")
        };
        record(&label, secs, base_secs / secs, out);
    }

    let report = Json::obj([
        ("experiment", Json::Str("speedup".into())),
        ("tuples", Json::Int(tuples as u64)),
        ("scale", Json::Int(cfg.scale)),
        ("nodes", Json::Int(cfg.nodes as u64)),
        ("hardware_threads", Json::Int(hw as u64)),
        ("rows", Json::Arr(rows)),
    ]);
    write_bench_json("speedup", &report).map_err(|e| {
        gumbo_common::GumboError::Storage(format!("writing BENCH_speedup.json: {e}"))
    })?;
    Ok(())
}

/// Bounded-memory shuffle: budget sweep at a fixed input size.
///
/// One workload (the 8-conditional A3 family), one database, one plan —
/// evaluated under a sweep of shuffle memory budgets from unlimited down
/// to a small fraction of the shuffle footprint. Every budgeted run must
/// leave a byte-identical DFS (and identical non-spill statistics are
/// implied by the shared metering pipeline); what changes is *where* the
/// shuffle lives: the spilled bytes, run files, merge passes, peak
/// tracked memory and wall-clock are recorded per budget and written to
/// `BENCH_spill.json`, so successive PRs can watch the cost of spilling.
pub fn spill(cfg: &RunConfig) -> Result<()> {
    use crate::report::{write_bench_json, Json};
    use gumbo_core::{EvalOptions, Grouping, GumboEngine, SortStrategy};
    use gumbo_mr::{MemBudget, ReducerPolicy};
    use std::time::Instant;

    print_header("Bounded-memory shuffle — budget sweep at fixed input size");
    let tuples = cfg.tuples;
    println!("{tuples} guard tuples; executor {}", cfg.executor.label());

    let w = queries::a3_family(8).with_tuples(tuples);
    let db = w.spec.database(cfg.seed);
    let engine_cfg = gumbo_mr::EngineConfig {
        scale: cfg.scale,
        cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
        ..gumbo_mr::EngineConfig::default()
    };
    // Fixed reducers give the sweep a stable partition count, so the
    // per-partition budget share varies only with the budget itself.
    let options = EvalOptions {
        grouping: Grouping::Singletons,
        sort: SortStrategy::Levels,
        enable_one_round: false,
        job_config: gumbo_mr::JobConfig {
            reducer_policy: ReducerPolicy::Fixed(16),
            ..gumbo_mr::JobConfig::default()
        },
        ..EvalOptions::default()
    };

    let budgets = [
        ("unlimited", MemBudget::UNLIMITED),
        ("8m", MemBudget::bytes(8 << 20)),
        ("1m", MemBudget::bytes(1 << 20)),
        ("256k", MemBudget::bytes(256 << 10)),
        ("64k", MemBudget::bytes(64 << 10)),
        // The same smallest budget with RLE-compressed runs: identical
        // answers and raw spill volume, smaller files on disk.
        ("64k+rle", MemBudget::bytes(64 << 10).compressed(true)),
    ];

    println!(
        "{:<12} {:>10} {:>14} {:>13} {:>11} {:>13} {:>14}",
        "budget", "wall (s)", "spilled (B)", "disk (B)", "runs", "merge passes", "peak (B)"
    );
    let mut reference: Option<SimDfs> = None;
    let mut plain_64k: Option<(u64, u64)> = None; // (raw, disk) uncompressed
    let mut rows: Vec<Json> = Vec::new();
    for (label, budget) in budgets {
        let engine = GumboEngine::with_executor(
            engine_cfg,
            cfg.executor,
            EvalOptions {
                mem_budget: budget,
                ..options
            },
        );
        let runtime = engine.runtime();
        let dfs = SimDfs::from_database(&db);
        let start = Instant::now();
        let stats = engine.eval().on(&*runtime).run(&dfs, &w.query)?;
        let wall = start.elapsed().as_secs_f64();

        let peak = runtime.budget().peak();
        if let Some(limit) = budget.limit() {
            assert!(
                peak <= limit,
                "budget {label}: tracked peak {peak} exceeded the limit"
            );
        }
        match &reference {
            None => reference = Some(dfs),
            Some(expected) => {
                gumbo_sched::assert_identical_dfs(&format!("spill budget {label}"), expected, &dfs)
            }
        }

        println!(
            "{label:<12} {wall:>10.3} {:>14} {:>13} {:>11} {:>13} {peak:>14}",
            stats.spilled_bytes(),
            stats.spilled_disk_bytes(),
            stats.spill_files(),
            stats.spill_merge_passes(),
        );
        rows.push(Json::obj([
            ("budget", Json::Str(label.into())),
            ("budget_bytes", Json::Int(budget.limit().unwrap_or(0))),
            (
                "compress",
                Json::Str(if budget.compress() { "rle" } else { "off" }.into()),
            ),
            ("wall_s", Json::Num(wall)),
            ("spilled_bytes", Json::Int(stats.spilled_bytes())),
            ("spilled_disk_bytes", Json::Int(stats.spilled_disk_bytes())),
            ("spill_files", Json::Int(stats.spill_files())),
            ("merge_passes", Json::Int(stats.spill_merge_passes())),
            ("peak_tracked_bytes", Json::Int(peak)),
            (
                "output_tuples",
                Json::Int(stats.jobs.iter().map(|j| j.output_tuples).sum()),
            ),
        ]));
        if budget.limit() == Some(64 << 10) {
            let spilled: u64 = stats.spilled_bytes();
            assert!(
                spilled > 0,
                "the 64 KiB budget must force spilling on this workload"
            );
            if budget.compress() {
                let (raw, disk) = plain_64k.expect("uncompressed 64k ran first");
                assert_eq!(
                    stats.spilled_bytes(),
                    raw,
                    "compression must not change the raw spill volume"
                );
                assert!(
                    stats.spilled_disk_bytes() < disk,
                    "RLE runs ({} B) should beat raw runs ({disk} B) on disk",
                    stats.spilled_disk_bytes()
                );
            } else {
                plain_64k = Some((stats.spilled_bytes(), stats.spilled_disk_bytes()));
            }
        }
    }

    let report = Json::obj([
        ("experiment", Json::Str("spill".into())),
        ("tuples", Json::Int(tuples as u64)),
        ("scale", Json::Int(cfg.scale)),
        ("nodes", Json::Int(cfg.nodes as u64)),
        ("executor", Json::Str(cfg.executor.label())),
        ("rows", Json::Arr(rows)),
    ]);
    write_bench_json("spill", &report)
        .map_err(|e| gumbo_common::GumboError::Storage(format!("writing BENCH_spill.json: {e}")))?;
    Ok(())
}

/// Bloom-filtered semijoin shuffle: shuffled bytes with and without the
/// filter, on the paper's own communication metric.
///
/// Each preset runs three times — unfiltered, `bloom:10`, and `auto:10`
/// — over the same database. The filtered runs must leave a
/// byte-identical DFS (false positives only cost extra exact messages;
/// answers never change), and the reported communication bytes *include*
/// the broadcast filter bytes, so the savings shown are net of the
/// filter's own cost. The per-preset rows (communication, filter bytes,
/// suppressed messages, observed false-positive rate, wall clock) go to
/// `BENCH_bloom.json`, and the run fails if no preset nets out ahead —
/// the whole point of the filter is that it pays for itself.
pub fn bloom(cfg: &RunConfig) -> Result<()> {
    use crate::report::{write_bench_json, Json};
    use gumbo_core::{EvalOptions, GumboEngine};
    use gumbo_mr::ShuffleFilterMode;
    use std::time::Instant;

    print_header("Bloom-filtered shuffle — net communication bytes per preset");
    let tuples = cfg.tuples;
    println!("{tuples} guard tuples; executor {}", cfg.executor.label());

    let workloads = vec![
        queries::a1(),
        queries::a3(),
        queries::a5(),
        queries::b1(),
        queries::c2(),
    ];
    let engine_cfg = gumbo_mr::EngineConfig {
        scale: cfg.scale,
        cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
        ..gumbo_mr::EngineConfig::default()
    };
    let modes = [
        ("off", ShuffleFilterMode::Off),
        ("bloom:10", ShuffleFilterMode::Bloom { bits_per_key: 10 }),
        ("auto:10", ShuffleFilterMode::Auto { bits_per_key: 10 }),
    ];

    println!(
        "{:<10} {:<10} {:>14} {:>12} {:>12} {:>10} {:>9} {:>10}",
        "workload",
        "filter",
        "comm (B)",
        "filter (B)",
        "suppressed",
        "fp rate",
        "saved",
        "wall (s)"
    );
    let mut rows: Vec<Json> = Vec::new();
    let mut any_net_win = false;
    let mut any_suppressed = false;
    for w in workloads {
        let w = w.with_tuples(tuples);
        let db = w.spec.database(cfg.seed);
        let mut reference: Option<SimDfs> = None;
        let mut unfiltered_comm = 0u64;
        for (label, mode) in modes {
            let engine = GumboEngine::with_executor(
                engine_cfg,
                cfg.executor,
                EvalOptions::default().with_shuffle_filter(mode),
            );
            let dfs = SimDfs::from_database(&db);
            let start = Instant::now();
            let stats = engine.evaluate(&dfs, &w.query)?;
            let wall = start.elapsed().as_secs_f64();

            // The filter may only remove messages that cannot contribute
            // to the answer: every mode leaves the same bytes on the DFS.
            match &reference {
                None => reference = Some(dfs),
                Some(expected) => gumbo_sched::assert_identical_dfs(
                    &format!("{} filter {label}", w.name),
                    expected,
                    &dfs,
                ),
            }

            let comm = stats.communication_bytes().as_bytes();
            if mode == ShuffleFilterMode::Off {
                unfiltered_comm = comm;
            } else {
                any_net_win |= comm < unfiltered_comm;
                any_suppressed |= stats.suppressed_messages() > 0;
            }
            let saved = unfiltered_comm.saturating_sub(comm);
            let fp_rate = stats.observed_fp_rate();
            println!(
                "{:<10} {label:<10} {comm:>14} {:>12} {:>12} {:>10} {saved:>9} {wall:>10.3}",
                w.name,
                stats.filter_bytes(),
                stats.suppressed_messages(),
                fp_rate.map_or("-".into(), |r| format!("{r:.4}")),
            );
            rows.push(Json::obj([
                ("workload", Json::Str(w.name.clone())),
                ("filter", Json::Str(label.into())),
                ("communication_bytes", Json::Int(comm)),
                ("filter_bytes", Json::Int(stats.filter_bytes())),
                (
                    "suppressed_messages",
                    Json::Int(stats.suppressed_messages()),
                ),
                ("filter_probes", Json::Int(stats.filter_probes())),
                (
                    "filter_false_positives",
                    Json::Int(stats.filter_false_positives()),
                ),
                ("observed_fp_rate", Json::Num(fp_rate.unwrap_or(0.0))),
                ("saved_bytes", Json::Int(saved)),
                ("wall_s", Json::Num(wall)),
                (
                    "output_tuples",
                    Json::Int(stats.jobs.iter().map(|j| j.output_tuples).sum()),
                ),
            ]));
        }
    }
    assert!(
        any_suppressed,
        "the bloom filter must suppress messages on at least one preset"
    );
    assert!(
        any_net_win,
        "filtered communication (broadcast bytes included) must beat \
         unfiltered on at least one preset"
    );

    let report = Json::obj([
        ("experiment", Json::Str("bloom".into())),
        ("tuples", Json::Int(tuples as u64)),
        ("scale", Json::Int(cfg.scale)),
        ("nodes", Json::Int(cfg.nodes as u64)),
        ("executor", Json::Str(cfg.executor.label())),
        ("rows", Json::Arr(rows)),
    ]);
    write_bench_json("bloom", &report)
        .map_err(|e| gumbo_common::GumboError::Storage(format!("writing BENCH_bloom.json: {e}")))?;
    Ok(())
}

/// Durable DFS backends: the same workload evaluated on the in-memory
/// `SimDfs` and the file-segment `FileDfs`, the latter twice — cold
/// (block cache starts empty) and warm (cache populated by the cold
/// run). Asserts cross-backend equivalence (identical relations and
/// byte meters) and writes wall times plus block-cache counters to
/// `BENCH_dfs.json`.
pub fn dfs(cfg: &RunConfig) -> Result<()> {
    use crate::report::{write_bench_json, Json};
    use gumbo_storage::{Dfs as _, FileDfs, DEFAULT_CACHE_BYTES};
    use std::time::Instant;

    print_header("Durable DFS — sim vs file backend, cold and warm block cache");
    let w = queries::a3().with_tuples(cfg.tuples);
    let db = w.spec.database(cfg.seed);
    let engine_cfg = gumbo_mr::EngineConfig {
        scale: cfg.scale,
        cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
        ..gumbo_mr::EngineConfig::default()
    };
    let mut engine = greedy_engine(engine_cfg);
    engine.executor = cfg.executor;

    let dfs_sim = SimDfs::from_database(&db);
    let start = Instant::now();
    let stats_sim = engine.evaluate(&dfs_sim, &w.query)?;
    let wall_sim = start.elapsed().as_secs_f64();

    let root = std::env::temp_dir().join(format!("gumbo-bench-dfs-{}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root)
            .map_err(|e| gumbo_common::GumboError::Storage(format!("clearing {root:?}: {e}")))?;
    }
    let dfs_file = FileDfs::from_database(&root, DEFAULT_CACHE_BYTES, &db)?;
    let start = Instant::now();
    let stats_cold = engine.evaluate(&dfs_file, &w.query)?;
    let wall_cold = start.elapsed().as_secs_f64();
    let cache_cold = dfs_file.cache_stats();

    // Byte meters are logical and backend-invariant: the file backend
    // must report the exact relations and I/O counters sim does.
    gumbo_sched::assert_identical_dfs("dfs sim vs file", &dfs_sim, &dfs_file);
    gumbo_sched::assert_identical_stats("dfs sim vs file", &stats_sim, &stats_cold);

    let start = Instant::now();
    let stats_warm = engine.evaluate(&dfs_file, &w.query)?;
    let wall_warm = start.elapsed().as_secs_f64();
    gumbo_sched::assert_identical_stats("dfs file warm", &stats_cold, &stats_warm);
    let cache_total = dfs_file.cache_stats();
    let warm_hits = cache_total.hits - cache_cold.hits;
    let warm_misses = cache_total.misses - cache_cold.misses;
    assert!(
        warm_hits > 0,
        "the warm pass must serve some blocks from cache"
    );

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>11}",
        "backend", "wall (s)", "cache hits", "misses", "evictions"
    );
    println!(
        "{:<10} {wall_sim:>10.3} {:>12} {:>12} {:>11}",
        "sim", "-", "-", "-"
    );
    println!(
        "{:<10} {wall_cold:>10.3} {:>12} {:>12} {:>11}",
        "file-cold", cache_cold.hits, cache_cold.misses, cache_cold.evictions
    );
    println!(
        "{:<10} {wall_warm:>10.3} {:>12} {:>12} {:>11}",
        "file-warm",
        warm_hits,
        warm_misses,
        cache_total.evictions - cache_cold.evictions
    );

    let row = |backend: &str, wall: f64, hits: u64, misses: u64, evictions: u64| {
        Json::obj([
            ("backend", Json::Str(backend.into())),
            ("wall_s", Json::Num(wall)),
            ("cache_hits", Json::Int(hits)),
            ("cache_misses", Json::Int(misses)),
            ("cache_evictions", Json::Int(evictions)),
        ])
    };
    let report = Json::obj([
        ("experiment", Json::Str("dfs".into())),
        ("tuples", Json::Int(cfg.tuples as u64)),
        ("scale", Json::Int(cfg.scale)),
        ("nodes", Json::Int(cfg.nodes as u64)),
        ("executor", Json::Str(cfg.executor.label())),
        ("cache_bytes", Json::Int(DEFAULT_CACHE_BYTES)),
        (
            "output_tuples",
            Json::Int(stats_sim.jobs.iter().map(|j| j.output_tuples).sum()),
        ),
        (
            "rows",
            Json::Arr(vec![
                row("sim", wall_sim, 0, 0, 0),
                row(
                    "file_cold",
                    wall_cold,
                    cache_cold.hits,
                    cache_cold.misses,
                    cache_cold.evictions,
                ),
                row(
                    "file_warm",
                    wall_warm,
                    warm_hits,
                    warm_misses,
                    cache_total.evictions - cache_cold.evictions,
                ),
            ]),
        ),
    ]);
    write_bench_json("dfs", &report)
        .map_err(|e| gumbo_common::GumboError::Storage(format!("writing BENCH_dfs.json: {e}")))?;
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}

/// Columnar vs pair data plane: shuffle microbenchmark.
///
/// Both planes shuffle the same A3-derived pair stream — every guard
/// tuple keyed by its guard attribute as a short string, three
/// fixed-width request messages each, the traffic pattern of a
/// multi-conditional semi-join round — through one partition: ingest,
/// sort/group, and drain every reducer group. Tuples/sec, heap
/// allocations, shuffle bytes, tracked peak and spill frame bytes per
/// plane and budget go to `BENCH_tuple.json`.
///
/// What the committed figures show (1-CPU container, recorded in
/// `hardware_threads` as in `BENCH_speedup.json`): the legacy plane
/// buffers `Arc`-shared pairs with a pointer push and keeps its raw
/// single-threaded ingest edge (columnar wall is 0.75–0.8× of pairs),
/// while the columnar plane's frame-at-a-time spill encode cuts heap
/// allocations 2.7–7.6× on every budget that forces spilling (the
/// per-pair stream in `tests/alloc_smoke.rs` shows ≥10× on a tighter
/// budget-to-data ratio). The in-code floors are regression guards kept
/// loose for noisy CI: columnar wall ≥ 0.4× pairs on every budget,
/// columnar allocations ≤ half of pairs on every spilling budget, and
/// byte-identical shuffle accounting plus identical group counts
/// between the planes.
pub fn tuplebench(cfg: &RunConfig) -> Result<()> {
    use crate::report::{write_bench_json, Json};
    use gumbo_mr::{
        BatchPartition, MemBudget, MemoryBudget, Message, Payload, ShuffleSpill, SpillingPartition,
    };
    use std::time::Instant;

    print_header("Columnar vs pair data plane — shuffle microbenchmark");
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let tuples = cfg.tuples;
    let w = queries::a3();
    let db = w.spec.clone().with_tuples(tuples).database(cfg.seed);

    // Emit the stream the way a mapper does: a fresh key tuple and message
    // constructed per pair, handed to the plane's sink. Construction is
    // part of the timed region on both planes — the legacy plane retains
    // each tuple in its `BTreeMap`, the columnar plane copies the values
    // into its arenas and drops the originals immediately.
    fn emit_pairs(db: &gumbo_common::Database, sink: &mut dyn FnMut(gumbo_common::Tuple, Message)) {
        use gumbo_common::{Tuple, Value};
        let mut seq = 0u32;
        for relation in db.relations() {
            for tuple in relation.iter() {
                // String guard keys: the regime the dictionary-encoded
                // columns exist for (the paper's fixed 10 B/value layout
                // maps real keys to short strings, not machine ints).
                let key = Tuple::new(vec![Value::str(format!("guard-{}", tuple.values()[0]))]);
                for _ in 0..3 {
                    let msg = match seq % 3 {
                        0 => Message::Assert { cond: seq },
                        1 => Message::Req {
                            cond: seq,
                            payload: Payload::Ref {
                                guard: 0,
                                id: u64::from(seq),
                            },
                        },
                        _ => Message::GuardTuple {
                            guard: seq,
                            tuple: tuple.clone(),
                        },
                    };
                    sink(key.clone(), msg);
                    seq += 1;
                }
            }
        }
    }
    let pair_count: usize = db
        .relations()
        .map(gumbo_common::Relation::len)
        .sum::<usize>()
        * 3;
    let iters = 5u32;
    println!("{pair_count} pairs per iteration, {iters} iterations per cell");
    println!(
        "{:<10} {:<10} {:>14} {:>14} {:>12} {:>14} {:>8} {:>12}",
        "plane", "budget", "tuples/sec", "shuffle (B)", "peak (B)", "disk (B)", "groups", "allocs"
    );

    let budgets = [
        ("unlimited", MemBudget::UNLIMITED),
        ("1m", MemBudget::bytes(1 << 20)),
        ("64k", MemBudget::bytes(64 << 10)),
    ];
    let mut rows: Vec<Json> = Vec::new();
    for (budget_label, budget) in budgets {
        let mut pair_rate = 0.0f64;
        let mut pair_allocs = 0u64;
        let mut pair_shuffle = 0u64;
        let mut pair_groups = 0u64;
        for plane in ["pairs", "columnar"] {
            let mut shuffle_bytes = 0u64;
            let mut disk_bytes = 0u64;
            let mut groups = 0u64;
            let tracker = MemoryBudget::new(budget);
            let allocs_before = crate::alloc_stats::allocations();
            let start = Instant::now();
            for _ in 0..iters {
                let spill = ShuffleSpill::new("tuplebench");
                if plane == "pairs" {
                    let mut part = SpillingPartition::new(0, &tracker, &spill, 1);
                    emit_pairs(&db, &mut |k, v| {
                        part.push(k, v).expect("pair-plane push");
                    });
                    shuffle_bytes = part.total_bytes();
                    let (mut stream, stats) = part.into_groups()?;
                    disk_bytes = stats.spilled_disk_bytes;
                    groups = 0;
                    while stream.next_group()?.is_some() {
                        groups += 1;
                    }
                } else {
                    let mut part = BatchPartition::new(0, &tracker, &spill, 1);
                    let mut failed = None;
                    emit_pairs(&db, &mut |k, v| {
                        if let Err(e) = part.push_pair(&k, &v) {
                            failed.get_or_insert(e);
                        }
                    });
                    if let Some(e) = failed {
                        return Err(e);
                    }
                    shuffle_bytes = part.total_bytes();
                    let (mut stream, stats) = part.into_groups()?;
                    disk_bytes = stats.spilled_disk_bytes;
                    groups = 0;
                    let mut values = Vec::new();
                    while stream.next_group_into(&mut values)?.is_some() {
                        groups += 1;
                    }
                }
            }
            let wall = start.elapsed().as_secs_f64();
            let allocs = (crate::alloc_stats::allocations() - allocs_before) / u64::from(iters);
            let rate = (pair_count as f64 * f64::from(iters)) / wall;
            let peak = tracker.peak();
            if let Some(limit) = budget.limit() {
                assert!(
                    peak <= limit,
                    "{plane}/{budget_label}: tracked peak {peak} exceeded the limit"
                );
                assert!(
                    disk_bytes > 0,
                    "{plane}/{budget_label}: the budget must force spilling"
                );
            }
            println!(
                "{plane:<10} {budget_label:<10} {rate:>14.0} {shuffle_bytes:>14} {peak:>12} \
                 {disk_bytes:>14} {groups:>8} {allocs:>12}"
            );
            rows.push(Json::obj([
                ("plane", Json::Str(plane.into())),
                ("budget", Json::Str(budget_label.into())),
                ("budget_bytes", Json::Int(budget.limit().unwrap_or(0))),
                ("tuples_per_sec", Json::Num(rate)),
                ("shuffle_bytes", Json::Int(shuffle_bytes)),
                ("peak_tracked_bytes", Json::Int(peak)),
                ("spilled_disk_bytes", Json::Int(disk_bytes)),
                ("groups", Json::Int(groups)),
                ("allocations", Json::Int(allocs)),
            ]));
            if plane == "pairs" {
                pair_rate = rate;
                pair_allocs = allocs;
                pair_shuffle = shuffle_bytes;
                pair_groups = groups;
            } else {
                assert_eq!(
                    shuffle_bytes, pair_shuffle,
                    "{budget_label}: the planes must account identical shuffle bytes"
                );
                assert_eq!(
                    groups, pair_groups,
                    "{budget_label}: the planes must drain identical group counts"
                );
                assert!(
                    rate >= 0.4 * pair_rate,
                    "{budget_label}: columnar throughput {rate:.0} regressed below \
                     0.4x of the pair plane's {pair_rate:.0}"
                );
                if budget.limit().is_some() {
                    assert!(
                        allocs * 2 <= pair_allocs,
                        "{budget_label}: columnar spilling must allocate at most half \
                         as often as the pair plane ({allocs} vs {pair_allocs})"
                    );
                }
            }
        }
    }

    let report = Json::obj([
        ("experiment", Json::Str("tuplebench".into())),
        ("tuples", Json::Int(tuples as u64)),
        ("pairs", Json::Int(pair_count as u64 * u64::from(iters))),
        ("seed", Json::Int(cfg.seed)),
        ("hardware_threads", Json::Int(hw as u64)),
        ("rows", Json::Arr(rows)),
    ]);
    write_bench_json("tuple", &report)
        .map_err(|e| gumbo_common::GumboError::Storage(format!("writing BENCH_tuple.json: {e}")))?;
    Ok(())
}

/// DAG scheduler vs round barrier: real wall-clock on multi-tenant
/// workloads of independent SGF queries.
///
/// Every client submits an A3-shaped query over its own renamed copy of
/// the relations, so the workload is embarrassingly schedulable — yet the
/// round-barrier path runs the clients' jobs strictly one after another,
/// while the DAG scheduler overlaps up to `max_concurrent_jobs` of them.
/// Both paths produce byte-identical DFS contents and identical per-job
/// statistics (asserted on every run); only the wall clock differs. Two
/// sweeps are reported and written to `BENCH_dagsched.json`: pool size at
/// a fixed client count, and client count at a fixed pool.
pub fn dagsched(cfg: &RunConfig) -> Result<()> {
    use crate::report::{write_bench_json, Json};
    use gumbo_core::{EvalOptions, Grouping, GumboEngine};
    use gumbo_datagen::DataSpec;
    use gumbo_sched::{DagScheduler, SchedulerConfig, Submission};
    use gumbo_sgf::SgfQuery;
    use std::time::Instant;

    print_header("DAG scheduler — wall-clock, dependency-driven vs round barrier");
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "available hardware parallelism: {hw} core(s); {} guard tuples per client",
        cfg.tuples
    );

    let engine_cfg = gumbo_mr::EngineConfig {
        scale: cfg.scale,
        cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
        ..gumbo_mr::EngineConfig::default()
    };
    // MSJ → EVAL structure (no 1-ROUND fusion): each client's program has
    // a real intra-client dependency on top of the cross-client overlap.
    let engine = GumboEngine::new(
        engine_cfg,
        EvalOptions {
            grouping: Grouping::Greedy,
            enable_one_round: false,
            ..EvalOptions::default()
        },
    );

    // One independent query per client over per-client relation names.
    let client_query = |i: usize| -> SgfQuery {
        gumbo_sgf::parse_program(&format!(
            "Out{i} := SELECT (x, y, z, w) FROM R{i}(x, y, z, w) \
             WHERE S{i}(x) AND T{i}(x) AND U{i}(x) AND V{i}(x);"
        ))
        .expect("client query parses")
    };
    let client_database = |i: usize| -> gumbo_common::Database {
        let guard = format!("R{i}");
        let conds = [
            format!("S{i}"),
            format!("T{i}"),
            format!("U{i}"),
            format!("V{i}"),
        ];
        let cond_refs: Vec<(&str, usize)> = conds.iter().map(|c| (c.as_str(), 1)).collect();
        DataSpec::new(&[(guard.as_str(), 4)], &cond_refs)
            .with_tuples(cfg.tuples)
            .with_selectivity(cfg.selectivity)
            .database(cfg.seed + i as u64)
    };
    let build_programs = |queries: &[SgfQuery], dfs: &SimDfs| -> Result<Vec<gumbo_mr::MrProgram>> {
        queries
            .iter()
            .map(|q| {
                let ctx = QueryContext::new(q.queries().to_vec())?;
                let est = Estimator::new(
                    dfs,
                    cfg.scale,
                    gumbo_mr::CostConstants::default(),
                    CostModelKind::Gumbo,
                    64,
                    cfg.seed,
                );
                engine.plan_group(&est, &ctx)?.build_program(&ctx)
            })
            .collect()
    };

    // One measured comparison: `clients` independent queries, round
    // barrier vs DAG pool of `max_jobs`. Returns (rounds s, dag s, jobs).
    let run_pair = |clients: usize, max_jobs: usize| -> Result<(f64, f64, usize)> {
        let queries: Vec<SgfQuery> = (0..clients).map(client_query).collect();
        let mut combined = gumbo_common::Database::new();
        for i in 0..clients {
            for rel in client_database(i).relations() {
                combined.add_relation(rel.clone());
            }
        }
        // Round-barrier path: client programs run back to back, each with
        // a barrier after every round.
        let executor = cfg.executor.build(engine_cfg);
        let dfs_rounds = SimDfs::from_database(&combined);
        let programs = build_programs(&queries, &dfs_rounds)?;
        let start = Instant::now();
        let mut rounds_stats = Vec::with_capacity(clients);
        for program in &programs {
            rounds_stats.push(executor.execute(&dfs_rounds, program)?);
        }
        let rounds_wall = start.elapsed().as_secs_f64();

        // DAG path: all clients admitted at once, jobs start the moment
        // their inputs are materialized. The per-job executor is resized
        // through the scheduler config (parallelism comes from running
        // jobs concurrently, not from per-job worker pools).
        let scheduler = DagScheduler::new(SchedulerConfig {
            max_concurrent_jobs: max_jobs,
            ..SchedulerConfig::default()
        });
        let dag_executor = scheduler
            .config
            .executor_kind(cfg.executor)
            .build(engine_cfg);
        let dfs_dag = SimDfs::from_database(&combined);
        let programs = build_programs(&queries, &dfs_dag)?;
        let submissions: Vec<Submission> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Submission::new(format!("client{i}"), p))
            .collect();
        let start = Instant::now();
        let reports = scheduler.execute_many(&*dag_executor, &dfs_dag, &submissions)?;
        let dag_wall = start.elapsed().as_secs_f64();

        // Equivalence: byte-identical DFS contents, identical per-job and
        // per-round statistics — the scheduler may only move wall clock.
        gumbo_sched::assert_identical_dfs("dagsched", &dfs_rounds, &dfs_dag);
        let mut jobs = 0;
        for (barrier, report) in rounds_stats.iter().zip(&reports) {
            gumbo_sched::assert_identical_stats(&report.tenant, barrier, &report.stats);
            jobs += report.stats.num_jobs();
        }
        Ok((rounds_wall, dag_wall, jobs))
    };

    println!(
        "{:<22} {:>8} {:>9} {:>6} {:>11} {:>11} {:>9}",
        "sweep", "clients", "max-jobs", "jobs", "rounds(s)", "dag(s)", "speedup"
    );
    let mut rows: Vec<Json> = Vec::new();
    let mut measure = |sweep: &str, clients: usize, max_jobs: usize| -> Result<()> {
        let (rounds_wall, dag_wall, jobs) = run_pair(clients, max_jobs)?;
        let speedup = rounds_wall / dag_wall.max(1e-12);
        println!(
            "{sweep:<22} {clients:>8} {max_jobs:>9} {jobs:>6} {rounds_wall:>11.3} {dag_wall:>11.3} {speedup:>8.2}x"
        );
        rows.push(Json::obj([
            ("sweep", Json::Str(sweep.into())),
            ("clients", Json::Int(clients as u64)),
            ("max_jobs", Json::Int(max_jobs as u64)),
            ("jobs", Json::Int(jobs as u64)),
            ("rounds_wall_s", Json::Num(rounds_wall)),
            ("dag_wall_s", Json::Num(dag_wall)),
            ("speedup", Json::Num(speedup)),
        ]));
        Ok(())
    };
    for max_jobs in [1usize, 2, 4, 8] {
        measure("pool @ 8 clients", 8, max_jobs)?;
    }
    for clients in [2usize, 4, 16] {
        measure("clients @ 4-job pool", clients, 4)?;
    }

    let report = Json::obj([
        ("experiment", Json::Str("dagsched".into())),
        ("tuples_per_client", Json::Int(cfg.tuples as u64)),
        ("scale", Json::Int(cfg.scale)),
        ("nodes", Json::Int(cfg.nodes as u64)),
        ("executor", Json::Str(cfg.executor.label())),
        ("hardware_threads", Json::Int(hw as u64)),
        ("rows", Json::Arr(rows)),
    ]);
    write_bench_json("dagsched", &report).map_err(|e| {
        gumbo_common::GumboError::Storage(format!("writing BENCH_dagsched.json: {e}"))
    })?;
    Ok(())
}

/// Placement policies × pool sizes over the datagen presets.
///
/// For every preset (A1–A5, B1/B2, C1–C4) the same database is evaluated
/// once on the round-barrier path (the reference) and then under the DAG
/// scheduler for each placement policy (`fifo`, `sjf`, `cp`) at each
/// pool size. Every scheduled run is asserted byte-identical to the
/// reference — placement may only move the wall clock. The recorded rows
/// (real wall, per-round net time, and the estimation layer's predicted
/// DAG net time) go to `BENCH_placement.json`.
pub fn placement(cfg: &RunConfig) -> Result<()> {
    use crate::report::{write_bench_json, Json};
    use gumbo_core::{EvalOptions, GumboEngine};
    use gumbo_sched::{PlacementPolicy, SchedulerConfig};
    use std::time::Instant;

    print_header("Placement policies — fifo vs sjf vs cp × pool sizes, all presets");
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "{} guard tuples; executor {}; {hw} hardware thread(s)",
        cfg.tuples,
        cfg.executor.label()
    );

    let mut presets = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    presets.extend(queries::figure6());

    let engine_cfg = gumbo_mr::EngineConfig {
        scale: cfg.scale,
        cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
        ..gumbo_mr::EngineConfig::default()
    };
    let pools = [1usize, 2, 4];

    println!(
        "{:<8} {:<6} {:>5} {:>10} {:>12} {:>14} {:>6}",
        "preset", "policy", "pool", "wall (s)", "net (s)", "predicted (s)", "jobs"
    );
    let mut rows: Vec<Json> = Vec::new();
    for w in &presets {
        let db = w.spec.clone().with_tuples(cfg.tuples).database(cfg.seed);

        // Round-barrier reference: the answers every policy must match.
        let reference =
            GumboEngine::with_executor(engine_cfg, cfg.executor, EvalOptions::default());
        let dfs_ref = SimDfs::from_database(&db);
        let stats_ref = reference.evaluate(&dfs_ref, &w.query)?;

        for policy in PlacementPolicy::ALL {
            for pool in pools {
                let engine = GumboEngine::with_executor(
                    engine_cfg,
                    cfg.executor,
                    EvalOptions {
                        scheduler: Some(SchedulerConfig {
                            max_concurrent_jobs: pool,
                            threads_per_job: 0,
                            placement: policy,
                            ..SchedulerConfig::default()
                        }),
                        ..EvalOptions::default()
                    },
                );
                let dfs = SimDfs::from_database(&db);
                let start = Instant::now();
                let stats = engine.evaluate(&dfs, &w.query)?;
                let wall = start.elapsed().as_secs_f64();

                let label = format!("{} {} x{pool}", w.name, policy.label());
                gumbo_sched::assert_identical_dfs(&label, &dfs_ref, &dfs);
                gumbo_sched::assert_identical_stats(&label, &stats_ref, &stats);
                let predicted = stats
                    .predicted_net_time
                    .expect("scheduled runs report a predicted DAG net time");

                println!(
                    "{:<8} {:<6} {:>5} {wall:>10.3} {:>12.1} {predicted:>14.1} {:>6}",
                    w.name,
                    policy.label(),
                    pool,
                    stats.net_time(),
                    stats.num_jobs(),
                );
                rows.push(Json::obj([
                    ("preset", Json::Str(w.name.clone())),
                    ("policy", Json::Str(policy.label().into())),
                    ("pool", Json::Int(pool as u64)),
                    ("wall_s", Json::Num(wall)),
                    ("net_s", Json::Num(stats.net_time())),
                    ("predicted_net_s", Json::Num(predicted)),
                    ("jobs", Json::Int(stats.num_jobs() as u64)),
                    ("rounds", Json::Int(stats.num_rounds() as u64)),
                ]));
            }
        }
    }

    let report = Json::obj([
        ("experiment", Json::Str("placement".into())),
        ("tuples", Json::Int(cfg.tuples as u64)),
        ("scale", Json::Int(cfg.scale)),
        ("nodes", Json::Int(cfg.nodes as u64)),
        ("executor", Json::Str(cfg.executor.label())),
        ("hardware_threads", Json::Int(hw as u64)),
        ("rows", Json::Arr(rows)),
    ]);
    write_bench_json("placement", &report).map_err(|e| {
        gumbo_common::GumboError::Storage(format!("writing BENCH_placement.json: {e}"))
    })?;
    Ok(())
}

/// Run everything.
pub fn all(cfg: &RunConfig) -> Result<()> {
    fig3(cfg)?;
    fig4(cfg)?;
    costmodel(cfg)?;
    fig5(cfg)?;
    fig7a(cfg)?;
    fig7b(cfg)?;
    fig7c(cfg)?;
    fig8(cfg)?;
    table3(cfg)?;
    ablation(cfg)?;
    optimality(cfg)?;
    structures()?;
    Ok(())
}

/// Shorten long job names for tabular output.
fn truncate_name(name: &str) -> String {
    if name.len() <= 40 {
        name.to_string()
    } else {
        format!("{}…", &name[..39])
    }
}

/// Ablation study: Gumbo's individual optimizations (§5.1) toggled one at
/// a time on the A1 workload under the GREEDY strategy.
pub fn ablation(cfg: &RunConfig) -> Result<()> {
    use gumbo_core::{EvalOptions, Grouping, GumboEngine, SortStrategy};
    use gumbo_mr::ReducerPolicy;
    use gumbo_sgf::NaiveEvaluator;

    print_header("Ablation — Gumbo optimizations toggled individually (GREEDY)");
    for w in [queries::a1(), queries::a3()] {
        println!("--- workload {} ---", w.name);
        let spec = w
            .spec
            .clone()
            .with_tuples(cfg.tuples)
            .with_selectivity(cfg.selectivity);
        let db = spec.database(cfg.seed);
        let expected = NaiveEvaluator::new().evaluate_sgf_all(&w.query, &db)?;

        let base_job = JobConfig::default();
        let variants: Vec<(&str, EvalOptions)> = vec![
            (
                "all optimizations",
                EvalOptions {
                    grouping: Grouping::Greedy,
                    sort: SortStrategy::Levels,
                    enable_one_round: false,
                    ..EvalOptions::default()
                },
            ),
            (
                "no packing",
                EvalOptions {
                    grouping: Grouping::Greedy,
                    sort: SortStrategy::Levels,
                    enable_one_round: false,
                    job_config: JobConfig {
                        packing: false,
                        ..base_job
                    },
                    ..EvalOptions::default()
                },
            ),
            (
                "no guard references",
                EvalOptions {
                    grouping: Grouping::Greedy,
                    sort: SortStrategy::Levels,
                    enable_one_round: false,
                    mode: PayloadMode::Full,
                    ..EvalOptions::default()
                },
            ),
            (
                "input-based reducers",
                EvalOptions {
                    grouping: Grouping::Greedy,
                    sort: SortStrategy::Levels,
                    enable_one_round: false,
                    job_config: JobConfig {
                        reducer_policy: ReducerPolicy::pig_default(),
                        ..base_job
                    },
                    ..EvalOptions::default()
                },
            ),
            (
                "no grouping (PAR)",
                EvalOptions {
                    grouping: Grouping::Singletons,
                    sort: SortStrategy::Levels,
                    enable_one_round: false,
                    ..EvalOptions::default()
                },
            ),
        ];

        println!(
            "{:<22} {:>10} {:>12} {:>10} {:>10} {:>9}",
            "variant", "net(s)", "total(s)", "input(GB)", "comm(GB)", "reducers"
        );
        for (label, options) in variants {
            let dfs = SimDfs::from_database(&db);
            let engine = GumboEngine::with_executor(
                gumbo_mr::EngineConfig {
                    scale: cfg.scale,
                    cluster: gumbo_mr::Cluster::with_nodes(cfg.nodes),
                    ..gumbo_mr::EngineConfig::default()
                },
                cfg.executor,
                options,
            );
            let stats = engine.evaluate(&dfs, &w.query)?;
            for q in w.query.queries() {
                assert_eq!(
                    dfs.peek(q.output())?.as_ref(),
                    expected.relation(q.output()).expect("naive computed"),
                    "ablation variant {label} broke correctness"
                );
            }
            let reducers: usize = stats.jobs.iter().map(|j| j.profile.reducers).sum();
            println!(
                "{:<22} {:>10.0} {:>12.0} {:>10.1} {:>10.1} {:>9}",
                label,
                stats.net_time(),
                stats.total_time(),
                stats.input_bytes().as_bytes() as f64 / 1e9,
                stats.communication_bytes().as_bytes() as f64 / 1e9,
                reducers
            );
        }
    }
    Ok(())
}
