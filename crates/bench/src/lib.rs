//! # gumbo-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§5), plus Criterion micro-benchmarks.
//!
//! The `experiments` binary drives the [`experiments`] module:
//!
//! ```text
//! cargo run --release -p gumbo-bench --bin experiments -- all
//! cargo run --release -p gumbo-bench --bin experiments -- fig3 --tuples 20000
//! ```
//!
//! Every run executes the *real* engine on generated data (results are
//! verified against the naive evaluator) and reports the paper's four
//! metrics: net time, total time, input bytes and communication bytes —
//! in simulated cost-units and GB at the configured scale.

pub mod alloc_stats;
pub mod experiments;
pub mod report;
pub mod runner;

pub use runner::{run_strategy, RunConfig, RunResult, Strategy};
