//! Experiment driver: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <all|fig3|fig4|fig5|fig7a|fig7b|fig7c|fig8|table3|costmodel|optimality|ablation|speedup|dagsched|spill|tuplebench|placement>
//!             [--tuples N] [--scale N] [--nodes N] [--seed N] [--no-verify]
//!             [--executor sim|parallel|parallel:N]
//! ```

use gumbo_bench::experiments;
use gumbo_bench::RunConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let mut cfg = RunConfig::default();

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tuples" => {
                cfg.tuples = args[i + 1].parse().expect("--tuples N");
                i += 2;
            }
            "--scale" => {
                cfg.scale = args[i + 1].parse().expect("--scale N");
                i += 2;
            }
            "--nodes" => {
                cfg.nodes = args[i + 1].parse().expect("--nodes N");
                i += 2;
            }
            "--seed" => {
                cfg.seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--no-verify" => {
                cfg.verify = false;
                i += 1;
            }
            "--executor" => {
                cfg.executor = args
                    .get(i + 1)
                    .and_then(|spec| gumbo_mr::ExecutorKind::parse(spec))
                    .unwrap_or_else(|| {
                        eprintln!("--executor sim|parallel|parallel:N");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    println!(
        "config: {} real tuples x scale {} = {}M-equivalent tuples, {} nodes, selectivity {}, verify={}, executor={}",
        cfg.tuples,
        cfg.scale,
        cfg.equivalent_tuples() / 1_000_000,
        cfg.nodes,
        cfg.selectivity,
        cfg.verify,
        cfg.executor.label()
    );

    let result = match command {
        "all" => experiments::all(&cfg),
        "fig3" => experiments::fig3(&cfg).map(|_| ()),
        "fig4" => experiments::fig4(&cfg).map(|_| ()),
        "fig5" => experiments::fig5(&cfg).map(|_| ()),
        "fig7a" => experiments::fig7a(&cfg).map(|_| ()),
        "fig7b" => experiments::fig7b(&cfg).map(|_| ()),
        "fig7c" => experiments::fig7c(&cfg).map(|_| ()),
        "fig8" => experiments::fig8(&cfg).map(|_| ()),
        "table3" => experiments::table3(&cfg),
        "costmodel" => experiments::costmodel(&cfg),
        "optimality" => experiments::optimality(&cfg),
        "ablation" => experiments::ablation(&cfg),
        "structures" => experiments::structures(),
        "speedup" => experiments::speedup(&cfg),
        "dagsched" => experiments::dagsched(&cfg),
        "spill" => experiments::spill(&cfg),
        "tuplebench" => experiments::tuplebench(&cfg),
        "placement" => experiments::placement(&cfg),
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}
