//! Experiment driver: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <all|fig3|fig4|fig5|fig7a|fig7b|fig7c|fig8|table3|costmodel|optimality|ablation|speedup|dagsched|spill|bloom|dfs|tuplebench|placement>
//!             [--tuples N] [--scale N] [--nodes N] [--seed N] [--no-verify]
//!             [--executor sim|parallel|parallel:N]
//!             [--trace PATH] [--trace-format chrome|jsonl] [--metrics-dump]
//! ```
//!
//! `--trace` records one trace covering the whole experiment run
//! (Chrome trace-event JSON by default — load it into Perfetto);
//! `--metrics-dump` prints the process-wide counter registry afterward.

use gumbo_bench::experiments;
use gumbo_bench::RunConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let mut cfg = RunConfig::default();

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tuples" => {
                cfg.tuples = args[i + 1].parse().expect("--tuples N");
                i += 2;
            }
            "--scale" => {
                cfg.scale = args[i + 1].parse().expect("--scale N");
                i += 2;
            }
            "--nodes" => {
                cfg.nodes = args[i + 1].parse().expect("--nodes N");
                i += 2;
            }
            "--seed" => {
                cfg.seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--no-verify" => {
                cfg.verify = false;
                i += 1;
            }
            "--executor" => {
                cfg.executor = args
                    .get(i + 1)
                    .and_then(|spec| gumbo_mr::ExecutorKind::parse(spec))
                    .unwrap_or_else(|| {
                        eprintln!("--executor sim|parallel|parallel:N");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--trace" => {
                cfg.trace = Some(args.get(i + 1).expect("--trace PATH").into());
                i += 2;
            }
            "--trace-format" => {
                cfg.trace_format = args
                    .get(i + 1)
                    .map(String::as_str)
                    .map_or(Err("missing value".into()), gumbo_obs::TraceFormat::parse)
                    .unwrap_or_else(|e| {
                        eprintln!("--trace-format: {e}");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--metrics-dump" => {
                cfg.metrics_dump = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let traced = cfg.install_trace().unwrap_or_else(|e| {
        eprintln!("--trace: {e}");
        std::process::exit(2);
    });
    if cfg.metrics_dump {
        gumbo_obs::set_metrics_enabled(true);
    }

    println!(
        "config: {} real tuples x scale {} = {}M-equivalent tuples, {} nodes, selectivity {}, verify={}, executor={}",
        cfg.tuples,
        cfg.scale,
        cfg.equivalent_tuples() / 1_000_000,
        cfg.nodes,
        cfg.selectivity,
        cfg.verify,
        cfg.executor.label()
    );

    let result = match command {
        "all" => experiments::all(&cfg),
        "fig3" => experiments::fig3(&cfg).map(|_| ()),
        "fig4" => experiments::fig4(&cfg).map(|_| ()),
        "fig5" => experiments::fig5(&cfg).map(|_| ()),
        "fig7a" => experiments::fig7a(&cfg).map(|_| ()),
        "fig7b" => experiments::fig7b(&cfg).map(|_| ()),
        "fig7c" => experiments::fig7c(&cfg).map(|_| ()),
        "fig8" => experiments::fig8(&cfg).map(|_| ()),
        "table3" => experiments::table3(&cfg),
        "costmodel" => experiments::costmodel(&cfg),
        "optimality" => experiments::optimality(&cfg),
        "ablation" => experiments::ablation(&cfg),
        "structures" => experiments::structures(),
        "speedup" => experiments::speedup(&cfg),
        "dagsched" => experiments::dagsched(&cfg),
        "spill" => experiments::spill(&cfg),
        "bloom" => experiments::bloom(&cfg),
        "dfs" => experiments::dfs(&cfg),
        "tuplebench" => experiments::tuplebench(&cfg),
        "placement" => experiments::placement(&cfg),
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    };
    // Finalize the trace file (closes the Chrome array) before exiting,
    // whatever the experiment outcome.
    if traced {
        gumbo_obs::uninstall();
    }
    if cfg.metrics_dump {
        for (name, kind, value) in gumbo_obs::metrics_snapshot() {
            let kind = match kind {
                gumbo_obs::MetricKind::Counter => "counter",
                gumbo_obs::MetricKind::Gauge => "gauge",
            };
            println!("metric {kind} {name}={value}");
        }
    }
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}
