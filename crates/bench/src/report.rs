//! Machine-readable benchmark reports.
//!
//! Perf-trajectory experiments (`speedup`, `dagsched`) emit a
//! `BENCH_<name>.json` next to the working directory so successive PRs
//! can be compared mechanically. The offline build has no serde; the
//! JSON value model lives in [`gumbo_obs::json`] (shared with the trace
//! sinks and `trace-check`) and is re-exported here so existing bench
//! call sites keep compiling unchanged.

use std::path::Path;

pub use gumbo_obs::json::Json;

/// Write a report to `BENCH_<name>.json` in the current directory and
/// announce the path on stdout.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<()> {
    let path = format!("BENCH_{name}.json");
    std::fs::write(Path::new(&path), format!("{value}\n"))?;
    println!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_escapes_and_nests() {
        let v = Json::obj([
            ("name", Json::Str("a \"b\"\n".into())),
            ("n", Json::Int(3)),
            ("xs", Json::Arr(vec![Json::Num(1.5), Json::Num(f64::NAN)])),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"name\":\"a \\\"b\\\"\\n\",\"n\":3,\"xs\":[1.5,null]}"
        );
    }
}
