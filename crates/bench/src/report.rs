//! Machine-readable benchmark reports.
//!
//! Perf-trajectory experiments (`speedup`, `dagsched`) emit a
//! `BENCH_<name>.json` next to the working directory so successive PRs
//! can be compared mechanically. The offline build has no serde; this is
//! a deliberately tiny JSON value model with correct string escaping.

use std::fmt;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (serialized with enough precision to round-trip).
    Num(f64),
    /// An integer.
    Int(u64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => write!(f, "null"), // NaN/inf have no JSON form
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        '\r' => write!(f, "\\r")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Write a report to `BENCH_<name>.json` in the current directory and
/// announce the path on stdout.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<()> {
    let path = format!("BENCH_{name}.json");
    std::fs::write(Path::new(&path), format!("{value}\n"))?;
    println!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_escapes_and_nests() {
        let v = Json::obj([
            ("name", Json::Str("a \"b\"\n".into())),
            ("n", Json::Int(3)),
            ("xs", Json::Arr(vec![Json::Num(1.5), Json::Num(f64::NAN)])),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"name\":\"a \\\"b\\\"\\n\",\"n\":3,\"xs\":[1.5,null]}"
        );
    }
}
