//! Strategy runners: one entry point executing any of the paper's
//! evaluation strategies on a workload, with result verification.

use gumbo_baselines::{
    greedy_engine, greedy_sgf_engine, one_round_engine, par_engine, parunit_engine, sequnit_engine,
    HiveSim, PigSim, SeqStrategy,
};
use gumbo_common::{GumboError, Result};
use gumbo_core::GumboEngine;
use gumbo_datagen::Workload;
use gumbo_mr::{Cluster, EngineConfig, ExecutorKind, ProgramStats};
use gumbo_sgf::NaiveEvaluator;
use gumbo_storage::SimDfs;

/// The evaluation strategies of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Sequential semi-join reducers (BSGF experiments).
    Seq,
    /// Parallel, ungrouped MSJ jobs.
    Par,
    /// `Greedy-BSGF` / `Greedy-SGF` (with grouping, no fusion).
    Greedy,
    /// 1-ROUND fusion where applicable.
    OneRound,
    /// Hive with outer joins (sequential stages).
    Hpar,
    /// Hive with semi-join operators (parallel, no grouping).
    Hpars,
    /// Pig COGROUP.
    Ppar,
    /// SGF: one BSGF at a time, bottom-up.
    SeqUnit,
    /// SGF: level-by-level, per-level parallelism.
    ParUnit,
    /// SGF: Greedy-SGF ordering + Greedy-BSGF grouping.
    GreedySgf,
}

impl Strategy {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Seq => "SEQ",
            Strategy::Par => "PAR",
            Strategy::Greedy => "GREEDY",
            Strategy::OneRound => "1-ROUND",
            Strategy::Hpar => "HPAR",
            Strategy::Hpars => "HPARS",
            Strategy::Ppar => "PPAR",
            Strategy::SeqUnit => "SEQUNIT",
            Strategy::ParUnit => "PARUNIT",
            Strategy::GreedySgf => "GREEDY-SGF",
        }
    }
}

/// Shared run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Real tuples per guard relation.
    pub tuples: usize,
    /// Byte scale factor (tuples × scale = paper-equivalent tuples).
    pub scale: u64,
    /// Cluster nodes.
    pub nodes: usize,
    /// Conditional selectivity rate.
    pub selectivity: f64,
    /// Data seed.
    pub seed: u64,
    /// Verify results against the naive evaluator.
    pub verify: bool,
    /// Which MapReduce runtime executes the plans (`--executor`).
    pub executor: ExecutorKind,
    /// Record a trace of the whole experiment to this path (`--trace`).
    pub trace: Option<std::path::PathBuf>,
    /// Trace encoding (`--trace-format`).
    pub trace_format: gumbo_obs::TraceFormat,
    /// Print the counter/gauge registry after the run (`--metrics-dump`).
    pub metrics_dump: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        // 20k real tuples at scale 5000 = the paper's 100M-tuple regime.
        RunConfig {
            tuples: 20_000,
            scale: 5_000,
            nodes: 10,
            selectivity: 0.5,
            seed: 1,
            verify: true,
            executor: ExecutorKind::Simulated,
            trace: None,
            trace_format: gumbo_obs::TraceFormat::Chrome,
            metrics_dump: false,
        }
    }
}

impl RunConfig {
    /// The paper-equivalent guard tuple count.
    pub fn equivalent_tuples(&self) -> u64 {
        self.tuples as u64 * self.scale
    }

    /// Install the configured trace sink, if any. Returns whether one
    /// was installed — the caller owns the matching
    /// [`gumbo_obs::uninstall`] (which finalizes the file).
    pub fn install_trace(&self) -> std::io::Result<bool> {
        use std::sync::Arc;
        let Some(path) = &self.trace else {
            return Ok(false);
        };
        let sink: Arc<dyn gumbo_obs::TraceSink> = match self.trace_format {
            gumbo_obs::TraceFormat::Chrome => Arc::new(gumbo_obs::ChromeTraceSink::create(path)?),
            gumbo_obs::TraceFormat::Jsonl => Arc::new(gumbo_obs::JsonlSink::create(path)?),
        };
        gumbo_obs::install(sink);
        Ok(true)
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            scale: self.scale,
            cluster: Cluster::with_nodes(self.nodes),
            ..EngineConfig::default()
        }
    }
}

/// The outcome of one strategy run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Strategy label.
    pub strategy: &'static str,
    /// Workload name.
    pub workload: String,
    /// Net time (simulated seconds).
    pub net: f64,
    /// Total time (simulated seconds).
    pub total: f64,
    /// DFS input bytes (GB at scale).
    pub input_gb: f64,
    /// Shuffle bytes (GB at scale).
    pub comm_gb: f64,
    /// Number of MapReduce rounds.
    pub rounds: usize,
    /// Number of MapReduce jobs.
    pub jobs: usize,
    /// Output cardinality (real tuples).
    pub output_tuples: usize,
}

impl RunResult {
    fn from_stats(
        strategy: Strategy,
        workload: &Workload,
        stats: &ProgramStats,
        output_tuples: usize,
    ) -> Self {
        RunResult {
            strategy: strategy.label(),
            workload: workload.name.clone(),
            net: stats.net_time(),
            total: stats.total_time(),
            input_gb: stats.input_bytes().as_bytes() as f64 / 1e9,
            comm_gb: stats.communication_bytes().as_bytes() as f64 / 1e9,
            rounds: stats.num_rounds(),
            jobs: stats.num_jobs(),
            output_tuples,
        }
    }
}

/// Whether a strategy can run a given workload (e.g. 1-ROUND needs a
/// fusible query; SEQ needs DNF conditions and a flat query).
pub fn applicable(strategy: Strategy, workload: &Workload) -> bool {
    use gumbo_core::QueryContext;
    match strategy {
        Strategy::OneRound => {
            if gumbo_sgf::DependencyGraph::new(&workload.query)
                .level_sort()
                .len()
                != 1
            {
                return false;
            }
            match QueryContext::new(workload.query.queries().to_vec()) {
                Ok(ctx) => {
                    ctx.all_same_key_fusible()
                        || (0..ctx.queries().len()).all(|q| ctx.disjunctive_fusible(q))
                }
                Err(_) => false,
            }
        }
        Strategy::Seq | Strategy::Hpar | Strategy::Hpars | Strategy::Ppar => {
            // Flat (single-level) query sets only.
            gumbo_sgf::DependencyGraph::new(&workload.query)
                .level_sort()
                .len()
                == 1
        }
        _ => true,
    }
}

/// Execute one strategy on one workload.
pub fn run_strategy(strategy: Strategy, workload: &Workload, cfg: &RunConfig) -> Result<RunResult> {
    let spec = workload
        .spec
        .clone()
        .with_tuples(cfg.tuples)
        .with_selectivity(cfg.selectivity);
    let db = spec.database(cfg.seed);
    let dfs = SimDfs::from_database(&db);
    let engine_cfg = cfg.engine_config();
    let queries = workload.query.queries().to_vec();

    // Every strategy executes through the configured runtime: preset
    // engines get the executor kind stamped on, the job-level baselines
    // receive the built executor directly.
    let executor = cfg.executor.build(engine_cfg);
    let on = |mut engine: GumboEngine| {
        engine.executor = cfg.executor;
        engine
    };
    let stats = match strategy {
        Strategy::Seq => SeqStrategy::default().evaluate(&*executor, &dfs, &queries)?,
        Strategy::Hpar => HiveSim::hpar().evaluate(&*executor, &dfs, &queries)?,
        Strategy::Hpars => HiveSim::hpars().evaluate(&*executor, &dfs, &queries)?,
        Strategy::Ppar => PigSim::ppar().evaluate(&*executor, &dfs, &queries)?,
        Strategy::Par => on(par_engine(engine_cfg)).evaluate(&dfs, &workload.query)?,
        Strategy::ParUnit => on(parunit_engine(engine_cfg)).evaluate(&dfs, &workload.query)?,
        Strategy::Greedy => on(greedy_engine(engine_cfg)).evaluate(&dfs, &workload.query)?,
        Strategy::GreedySgf => on(greedy_sgf_engine(engine_cfg)).evaluate(&dfs, &workload.query)?,
        Strategy::OneRound => {
            if !applicable(strategy, workload) {
                return Err(GumboError::Plan(format!(
                    "1-ROUND is not applicable to workload {}",
                    workload.name
                )));
            }
            on(one_round_engine(engine_cfg)).evaluate(&dfs, &workload.query)?
        }
        Strategy::SeqUnit => on(sequnit_engine(engine_cfg)).evaluate(&dfs, &workload.query)?,
    };

    let mut output_tuples = 0;
    for q in workload.query.queries() {
        // For flat multi-query workloads (A4/A5) every output counts.
        if let Ok(rel) = dfs.peek(q.output()) {
            output_tuples += rel.len();
        }
    }

    if cfg.verify {
        let env = NaiveEvaluator::new().evaluate_sgf_all(&workload.query, &db)?;
        for q in workload.query.queries() {
            let expected = env
                .relation(q.output())
                .expect("naive computed all outputs");
            let got = dfs.peek(q.output())?;
            if got.as_ref() != expected {
                return Err(GumboError::Plan(format!(
                    "strategy {} produced a wrong result for {} of {} ({} vs {} tuples)",
                    strategy.label(),
                    q.output(),
                    workload.name,
                    got.len(),
                    expected.len()
                )));
            }
        }
    }

    Ok(RunResult::from_stats(
        strategy,
        workload,
        &stats,
        output_tuples,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_datagen::queries;

    fn tiny() -> RunConfig {
        RunConfig {
            tuples: 400,
            scale: 250_000,
            ..RunConfig::default()
        }
    }

    #[test]
    fn all_bsgf_strategies_verify_on_a1() {
        let w = queries::a1();
        for s in [
            Strategy::Seq,
            Strategy::Par,
            Strategy::Greedy,
            Strategy::Hpar,
            Strategy::Hpars,
            Strategy::Ppar,
        ] {
            let r = run_strategy(s, &w, &tiny()).unwrap();
            assert!(r.net > 0.0 && r.total >= r.net * 0.99, "{s:?}");
        }
    }

    #[test]
    fn one_round_applicability() {
        assert!(applicable(Strategy::OneRound, &queries::a3()));
        assert!(applicable(Strategy::OneRound, &queries::b2()));
        assert!(!applicable(Strategy::OneRound, &queries::a1()));
        assert!(!applicable(Strategy::Seq, &queries::c1()));
        assert!(applicable(Strategy::GreedySgf, &queries::c1()));
    }

    #[test]
    fn one_round_runs_on_a3() {
        let r = run_strategy(Strategy::OneRound, &queries::a3(), &tiny()).unwrap();
        assert_eq!(r.jobs, 1);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn sgf_strategies_verify_on_c1() {
        let w = queries::c1();
        for s in [Strategy::SeqUnit, Strategy::ParUnit, Strategy::GreedySgf] {
            let r = run_strategy(s, &w, &tiny()).unwrap();
            assert!(r.net > 0.0, "{s:?}");
        }
    }

    #[test]
    fn parallel_executor_matches_simulated_run_results() {
        let w = queries::a3();
        for strategy in [Strategy::Greedy, Strategy::Seq, Strategy::OneRound] {
            let sim = run_strategy(strategy, &w, &tiny()).unwrap();
            let par_cfg = RunConfig {
                executor: ExecutorKind::Parallel { threads: 4 },
                ..tiny()
            };
            let par = run_strategy(strategy, &w, &par_cfg).unwrap();
            assert_eq!(sim.output_tuples, par.output_tuples, "{strategy:?}");
            assert_eq!(sim.rounds, par.rounds, "{strategy:?}");
            assert_eq!(sim.jobs, par.jobs, "{strategy:?}");
            assert!((sim.net - par.net).abs() < 1e-9, "{strategy:?}");
            assert!((sim.total - par.total).abs() < 1e-9, "{strategy:?}");
            assert_eq!(sim.input_gb, par.input_gb, "{strategy:?}");
            assert_eq!(sim.comm_gb, par.comm_gb, "{strategy:?}");
        }
    }

    #[test]
    fn par_beats_seq_on_net_time_for_a1() {
        let w = queries::a1();
        let seq = run_strategy(Strategy::Seq, &w, &tiny()).unwrap();
        let par = run_strategy(Strategy::Par, &w, &tiny()).unwrap();
        assert!(
            par.net < seq.net,
            "PAR net {} should beat SEQ net {}",
            par.net,
            seq.net
        );
        // ...at the cost of total time.
        assert!(par.total > seq.total);
    }
}
