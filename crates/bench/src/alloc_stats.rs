//! Heap-allocation counting for the experiment binaries.
//!
//! Every binary linking `gumbo-bench` routes its heap traffic through a
//! [`System`]-backed allocator that counts `alloc` and `realloc` calls in
//! one relaxed atomic. The counter costs a single uncontended `fetch_add`
//! per allocation, so the figure experiments are unaffected; `tuplebench`
//! reads it around each measured region to report allocations per plane
//! alongside wall-clock throughput.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Allocator wrapper counting every `alloc`/`realloc` since process start.
pub struct CountingAlloc;

// SAFETY: defers every operation verbatim to `System`; the counter has no
// effect on the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Total `alloc` + `realloc` calls since process start. Subtract two
/// snapshots to charge a region.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
