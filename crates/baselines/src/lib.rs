//! # gumbo-baselines
//!
//! The evaluation strategies the paper compares Gumbo's planner against
//! (§5.2/§5.3):
//!
//! * **SEQ** — sequential semi-join reducers: each semi-join is applied to
//!   the (shrinking) output of the previous stage; disjunctions at the top
//!   level evaluate their conjunctive branches in parallel (the B2 note).
//! * **PAR** — parallel evaluation without grouping: every semi-join in its
//!   own MSJ job (provided by `gumbo-core` via `Grouping::Singletons`).
//! * **SEQUNIT / PARUNIT** — SGF strategies: one BSGF at a time bottom-up,
//!   resp. level-by-level with per-level parallelism, both with ungrouped
//!   semi-joins (§5.3).
//! * **HPAR / HPARS** — Hive simulations: 2-round plans built from
//!   outer-join resp. semi-join operators, with Hive's documented
//!   behaviours (forced sequential join stages; same-key join grouping;
//!   no packing/reference optimizations; full tuples on both shuffle
//!   sides).
//! * **PPAR** — Pig simulation: COGROUP-based repartition joins with
//!   input-based reducer allocation (1 GB of map input per reducer).
//!
//! All strategies run on the same `gumbo-mr` engine and produce real
//! results, verified against the naive evaluator in the test suites.

pub mod join;
pub mod presets;
pub mod seq;
pub mod systems;

pub use presets::{
    greedy_engine, greedy_sgf_engine, one_round_engine, par_engine, parunit_engine, sequnit_engine,
};
pub use seq::SeqStrategy;
pub use systems::{HiveSim, PigSim};
