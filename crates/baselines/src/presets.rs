//! Named engine presets for the paper's Gumbo-side strategies.

use gumbo_core::{EvalOptions, Grouping, GumboEngine, SortStrategy};
use gumbo_mr::EngineConfig;

/// GREEDY (§5.2, Figure 3): the 2-round strategy with `Greedy-BSGF` —
/// all queries of a (flat) set planned as *one* basic MR program (§4.5),
/// guard references on, no 1-ROUND fusion (that is its own strategy line).
///
/// Uses the level sort so that independent queries land in one group; for
/// flat BSGF sets this is a single group, i.e. exactly the paper's basic
/// MR program.
pub fn greedy_engine(config: EngineConfig) -> GumboEngine {
    GumboEngine::new(
        config,
        EvalOptions {
            grouping: Grouping::Greedy,
            sort: SortStrategy::Levels,
            enable_one_round: false,
            ..EvalOptions::default()
        },
    )
}

/// PAR (§5.2): every semi-join in its own job, no grouping.
pub fn par_engine(config: EngineConfig) -> GumboEngine {
    GumboEngine::new(
        config,
        EvalOptions {
            grouping: Grouping::Singletons,
            sort: SortStrategy::Levels,
            enable_one_round: false,
            ..EvalOptions::default()
        },
    )
}

/// 1-ROUND (§5.1 (4)): fused MSJ+EVAL where applicable, greedy otherwise.
pub fn one_round_engine(config: EngineConfig) -> GumboEngine {
    GumboEngine::new(
        config,
        EvalOptions {
            grouping: Grouping::Greedy,
            sort: SortStrategy::GreedySgf,
            enable_one_round: true,
            ..EvalOptions::default()
        },
    )
}

/// SEQUNIT (§5.3): one BSGF per round in definition order, semi-joins
/// ungrouped.
pub fn sequnit_engine(config: EngineConfig) -> GumboEngine {
    GumboEngine::new(
        config,
        EvalOptions {
            grouping: Grouping::Singletons,
            sort: SortStrategy::Sequential,
            enable_one_round: false,
            ..EvalOptions::default()
        },
    )
}

/// PARUNIT (§5.3): level-by-level evaluation, queries on the same level in
/// parallel, semi-joins ungrouped.
pub fn parunit_engine(config: EngineConfig) -> GumboEngine {
    GumboEngine::new(
        config,
        EvalOptions {
            grouping: Grouping::Singletons,
            sort: SortStrategy::Levels,
            enable_one_round: false,
            ..EvalOptions::default()
        },
    )
}

/// GREEDY-SGF (§5.3): `Greedy-SGF` ordering *with* `Greedy-BSGF` grouping —
/// the paper's headline SGF strategy.
pub fn greedy_sgf_engine(config: EngineConfig) -> GumboEngine {
    GumboEngine::new(
        config,
        EvalOptions {
            grouping: Grouping::Greedy,
            sort: SortStrategy::GreedySgf,
            enable_one_round: false,
            ..EvalOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_core::PayloadMode;

    #[test]
    fn presets_have_expected_options() {
        let cfg = EngineConfig::default();
        assert_eq!(greedy_engine(cfg).options.grouping, Grouping::Greedy);
        assert!(!greedy_engine(cfg).options.enable_one_round);
        assert_eq!(par_engine(cfg).options.grouping, Grouping::Singletons);
        assert!(one_round_engine(cfg).options.enable_one_round);
        assert_eq!(sequnit_engine(cfg).options.sort, SortStrategy::Sequential);
        assert_eq!(parunit_engine(cfg).options.sort, SortStrategy::Levels);
        // All Gumbo presets keep the reference optimization on.
        assert_eq!(greedy_engine(cfg).options.mode, PayloadMode::Reference);
    }
}
