//! Full-tuple repartition-join jobs: the building block of the Pig/Hive
//! simulations.
//!
//! Pig's COGROUP and Hive's (left-outer / left-semi) join operators shuffle
//! *complete tuples of both sides* — no request/assert message protocol, no
//! packing, no guard references. This module builds jobs with exactly that
//! byte behaviour while still computing correct semi-join results, so the
//! simulated baselines remain verifiable against the naive evaluator.

use gumbo_common::{RelationName, Tuple};
use gumbo_core::semijoin::{cond_groups, QueryContext, SemiJoin};
use gumbo_mr::{Job, JobConfig, Mapper, Message, Payload, Reducer};
use gumbo_sgf::{Atom, Var};

#[derive(Debug, Clone)]
struct JoinSj {
    guard: Atom,
    join_key: Vec<Var>,
    identity_vars: Vec<Var>,
}

struct JoinMapper {
    sjs: Vec<JoinSj>,
    /// Conditional streams: full tuples are shuffled (COGROUP behaviour).
    asserts: Vec<(Atom, Vec<Var>)>,
}

impl Mapper for JoinMapper {
    fn map(&self, fact: &gumbo_common::Fact, _i: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        for (local, sj) in self.sjs.iter().enumerate() {
            if sj.guard.conforms_fact(fact) {
                let key = sj.guard.project(&fact.tuple, &sj.join_key);
                // Full guard tuple on the wire (no reference optimization).
                let payload = Payload::Tuple(sj.guard.project(&fact.tuple, &sj.identity_vars));
                emit(
                    key,
                    Message::Req {
                        cond: local as u32,
                        payload,
                    },
                );
            }
        }
        for (g, (atom, key_vars)) in self.asserts.iter().enumerate() {
            if atom.conforms_fact(fact) {
                let key = atom.project(&fact.tuple, key_vars);
                // Full conditional tuple on the wire (outer-join semantics
                // keep the right side's columns until the final projection).
                emit(
                    key,
                    Message::GuardTuple {
                        guard: g as u32,
                        tuple: fact.tuple.clone(),
                    },
                );
            }
        }
    }
}

struct JoinReducer {
    /// local semi-join index → (X output, conditional stream index).
    routes: Vec<(RelationName, u32)>,
}

impl Reducer for JoinReducer {
    fn reduce(&self, _key: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
        let present: Vec<u32> = values
            .iter()
            .filter_map(|m| match m {
                Message::GuardTuple { guard, .. } => Some(*guard),
                _ => None,
            })
            .collect();
        for m in values {
            if let Message::Req {
                cond,
                payload: Payload::Tuple(t),
            } = m
            {
                let (x_name, stream) = &self.routes[*cond as usize];
                if present.contains(stream) {
                    emit(x_name, t.clone());
                }
            }
        }
    }
}

/// Build a full-tuple join job computing the given semi-joins' `Xᵢ`
/// relations (always full-identity payloads — compatible with a
/// `PayloadMode::Full` EVAL job).
///
/// `extra_guard_reads` appends additional reads of each distinct guard
/// relation, modelling Hive's semi-join materialization overhead ("higher
/// average map and reduce input sizes", §5.2).
pub fn build_join_job(
    ctx: &QueryContext,
    group: &[usize],
    tag: &str,
    config: JobConfig,
    extra_guard_reads: usize,
) -> Job {
    let sjs: Vec<&SemiJoin> = group.iter().map(|&i| ctx.semijoin(i)).collect();
    let (assert_groups, assignment) = cond_groups(&sjs);

    let specs: Vec<JoinSj> = sjs
        .iter()
        .map(|sj| JoinSj {
            guard: sj.guard.clone(),
            join_key: sj.join_key.clone(),
            identity_vars: sj.identity_vars.clone(),
        })
        .collect();
    let routes: Vec<(RelationName, u32)> = sjs
        .iter()
        .map(|sj| (sj.x_name.clone(), assignment[&sj.id] as u32))
        .collect();

    let mut guards: Vec<RelationName> = Vec::new();
    for sj in &sjs {
        if !guards.contains(sj.guard.relation()) {
            guards.push(sj.guard.relation().clone());
        }
    }
    let mut inputs = guards.clone();
    for (atom, _) in &assert_groups {
        if !inputs.contains(atom.relation()) {
            inputs.push(atom.relation().clone());
        }
    }
    for _ in 0..extra_guard_reads {
        inputs.extend(guards.iter().cloned());
    }

    let outputs: Vec<(RelationName, usize)> = sjs
        .iter()
        .map(|sj| (sj.x_name.clone(), sj.identity_vars.len()))
        .collect();
    let x_list: Vec<String> = sjs.iter().map(|sj| sj.x_name.to_string()).collect();
    Job {
        name: format!("{tag}({})", x_list.join(",")),
        inputs,
        outputs,
        mapper: Box::new(JoinMapper {
            sjs: specs,
            asserts: assert_groups,
        }),
        reducer: Box::new(JoinReducer { routes }),
        config,
        estimate: None,
        filter: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Database, Fact, Relation};
    use gumbo_mr::{Engine, EngineConfig, Executor, MrProgram};
    use gumbo_sgf::parse_query;
    use gumbo_storage::SimDfs;

    fn setup() -> (QueryContext, Database) {
        let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let mut db = Database::new();
        for (name, arity) in [("R", 2), ("S", 1), ("T", 1)] {
            db.add_relation(Relation::new(name, arity));
        }
        for (rel, t) in [
            ("R", vec![1i64, 10]),
            ("R", vec![2, 20]),
            ("S", vec![1]),
            ("T", vec![10]),
        ] {
            db.insert_fact(Fact::new(rel, Tuple::from_ints(&t)))
                .unwrap();
        }
        (ctx, db)
    }

    #[test]
    fn join_job_computes_semijoin() {
        let (ctx, db) = setup();
        let dfs = SimDfs::from_database(&db);
        let job = build_join_job(&ctx, &[0], "HJOIN", JobConfig::baseline(), 0);
        let mut program = MrProgram::new();
        program.push_job(job);
        Engine::new(EngineConfig::unscaled())
            .execute(&dfs, &program)
            .unwrap();
        let x = dfs.peek(&"Z#X0".into()).unwrap();
        assert_eq!(x.len(), 1);
        assert!(x.contains(&Tuple::from_ints(&[1, 10])));
    }

    #[test]
    fn join_shuffles_more_bytes_than_msj() {
        let (ctx, db) = setup();
        let engine = Engine::new(EngineConfig::unscaled());

        let dfs1 = SimDfs::from_database(&db);
        let join = build_join_job(&ctx, &[0], "HJOIN", JobConfig::baseline(), 0);
        let js = engine.execute_job(&dfs1, &join, 0).unwrap();

        let dfs2 = SimDfs::from_database(&db);
        let msj = gumbo_core::msj::build_msj_job(
            &ctx,
            &[0],
            gumbo_core::PayloadMode::Reference,
            JobConfig::default(),
        );
        let ms = engine.execute_job(&dfs2, &msj, 0).unwrap();
        assert!(
            js.communication_bytes() > ms.communication_bytes(),
            "join {} <= msj {}",
            js.communication_bytes(),
            ms.communication_bytes()
        );
    }

    #[test]
    fn extra_guard_reads_increase_input() {
        let (ctx, db) = setup();
        let engine = Engine::new(EngineConfig::unscaled());
        let d1 = SimDfs::from_database(&db);
        let d2 = SimDfs::from_database(&db);
        let j0 = build_join_job(&ctx, &[0], "J", JobConfig::baseline(), 0);
        let j1 = build_join_job(&ctx, &[0], "J", JobConfig::baseline(), 1);
        let s0 = engine.execute_job(&d1, &j0, 0).unwrap();
        let s1 = engine.execute_job(&d2, &j1, 0).unwrap();
        assert!(s1.input_bytes() > s0.input_bytes());
        // Results identical regardless.
        assert_eq!(
            d1.peek(&"Z#X0".into()).unwrap(),
            d2.peek(&"Z#X0".into()).unwrap()
        );
    }
}
