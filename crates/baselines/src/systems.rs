//! Plan-level simulations of Hive (HPAR / HPARS) and Pig (PPAR).
//!
//! The paper implements the 2-round plans of §4.4 "directly in Pig and
//! Hive" and attributes their slowness to documented mechanisms, which are
//! exactly what these simulators model:
//!
//! * **HPAR** (Hive outer joins): dependent join stages execute
//!   *sequentially* even with parallel execution enabled; Hive does group
//!   joins that share a key (which is why A3 drops to 2 jobs); full tuples
//!   of both sides are shuffled; no packing/reference optimizations.
//! * **HPARS** (Hive semi joins): join jobs run in parallel (the "Hive
//!   equivalent of PAR") but with "higher average map and reduce input
//!   sizes", modelled as an extra read of the guard per join job.
//! * **PPAR** (Pig COGROUP): parallel join jobs with *input-based* reducer
//!   allocation (1 GB of map input per reducer) — few reducers, long
//!   reduce phases.

use std::collections::BTreeMap;

use gumbo_common::Result;
use gumbo_core::eval::build_eval_job;
use gumbo_core::semijoin::QueryContext;
use gumbo_core::PayloadMode;
use gumbo_mr::{Executor, JobConfig, MrProgram, ProgramStats, ReducerPolicy};
use gumbo_sgf::BsgfQuery;
use gumbo_storage::Dfs;

/// Hive simulation.
#[derive(Debug, Clone, Copy)]
pub struct HiveSim {
    /// `true` = HPARS (parallel semi-join operators);
    /// `false` = HPAR (sequential outer-join stages).
    pub semi_join_mode: bool,
    /// Per-job configuration.
    pub job_config: JobConfig,
}

impl HiveSim {
    /// The HPAR strategy.
    pub fn hpar() -> Self {
        HiveSim {
            semi_join_mode: false,
            job_config: hive_job_config(),
        }
    }

    /// The HPARS strategy.
    pub fn hpars() -> Self {
        HiveSim {
            semi_join_mode: true,
            job_config: hive_job_config(),
        }
    }

    /// Build the simulated Hive program for a set of BSGF queries.
    pub fn build_program(&self, ctx: &QueryContext) -> Result<MrProgram> {
        let mut program = MrProgram::new();
        if self.semi_join_mode {
            // HPARS: one semi-join operator per conditional atom, all
            // parallel, each re-reading the guard for its materialization.
            let jobs: Vec<_> = (0..ctx.semijoins().len())
                .map(|i| crate::join::build_join_job(ctx, &[i], "HIVE-SJ", self.job_config, 1))
                .collect();
            program.push_round(jobs);
        } else {
            // HPAR: joins sharing a key are grouped (Hive's same-key join
            // merging); groups execute sequentially.
            let mut by_key: BTreeMap<Vec<gumbo_sgf::Var>, Vec<usize>> = BTreeMap::new();
            for sj in ctx.semijoins() {
                by_key.entry(sj.join_key.clone()).or_default().push(sj.id);
            }
            for group in by_key.values() {
                program.push_job(crate::join::build_join_job(
                    ctx,
                    group,
                    "HIVE-JOIN",
                    self.job_config,
                    0,
                ));
            }
        }
        program.push_job(build_eval_job(ctx, PayloadMode::Full, self.job_config));
        Ok(program)
    }

    /// Execute the strategy.
    pub fn evaluate(
        &self,
        executor: &dyn Executor,
        dfs: &dyn Dfs,
        queries: &[BsgfQuery],
    ) -> Result<ProgramStats> {
        let ctx = QueryContext::new(queries.to_vec())?;
        executor.execute(dfs, &self.build_program(&ctx)?)
    }
}

/// Hive's defaults: no packing, 256 MB of input per reducer.
fn hive_job_config() -> JobConfig {
    JobConfig {
        packing: false,
        reducer_policy: ReducerPolicy::ByInput {
            mb_per_reducer: 256,
        },
        split_mb: 128,
    }
}

/// Pig simulation (PPAR).
#[derive(Debug, Clone, Copy)]
pub struct PigSim {
    /// Per-job configuration.
    pub job_config: JobConfig,
}

impl PigSim {
    /// The PPAR strategy.
    pub fn ppar() -> Self {
        PigSim {
            job_config: JobConfig::baseline(),
        } // no packing, 1 GB/reducer
    }

    /// Build the simulated Pig program: one COGROUP job per semi-join, all
    /// parallel, plus the combination job.
    pub fn build_program(&self, ctx: &QueryContext) -> Result<MrProgram> {
        let mut program = MrProgram::new();
        let jobs: Vec<_> = (0..ctx.semijoins().len())
            .map(|i| crate::join::build_join_job(ctx, &[i], "COGROUP", self.job_config, 0))
            .collect();
        program.push_round(jobs);
        program.push_job(build_eval_job(ctx, PayloadMode::Full, self.job_config));
        Ok(program)
    }

    /// Execute the strategy.
    pub fn evaluate(
        &self,
        executor: &dyn Executor,
        dfs: &dyn Dfs,
        queries: &[BsgfQuery],
    ) -> Result<ProgramStats> {
        let ctx = QueryContext::new(queries.to_vec())?;
        executor.execute(dfs, &self.build_program(&ctx)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Database, Relation, Tuple};
    use gumbo_mr::{Engine, EngineConfig};
    use gumbo_sgf::{parse_query, NaiveEvaluator};
    use gumbo_storage::SimDfs;

    fn a1_small() -> (BsgfQuery, Database) {
        let q = parse_query(
            "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) \
             WHERE S(x) AND T(y) AND U(z) AND V(w);",
        )
        .unwrap();
        let mut db = Database::new();
        let mut r = Relation::new("R", 4);
        for i in 0..50i64 {
            r.insert(Tuple::from_ints(&[i, i + 1, i + 2, i + 3]))
                .unwrap();
        }
        db.add_relation(r);
        for (j, name) in ["S", "T", "U", "V"].iter().enumerate() {
            let mut rel = Relation::new(*name, 1);
            for i in 0..40i64 {
                rel.insert(Tuple::from_ints(&[i + j as i64])).unwrap();
            }
            db.add_relation(rel);
        }
        (q, db)
    }

    fn a3_small() -> (BsgfQuery, Database) {
        let q = parse_query(
            "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) \
             WHERE S(x) AND T(x) AND U(x) AND V(x);",
        )
        .unwrap();
        let (_, db) = a1_small();
        (q, db)
    }

    #[test]
    fn hpar_is_sequential_and_correct() {
        let (q, db) = a1_small();
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &db).unwrap();
        let dfs = SimDfs::from_database(&db);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = HiveSim::hpar().evaluate(&engine, &dfs, &[q]).unwrap();
        // 4 distinct keys -> 4 sequential join rounds + EVAL.
        assert_eq!(stats.num_rounds(), 5);
        assert_eq!(dfs.peek(&"Out".into()).unwrap().as_ref(), &expected);
    }

    #[test]
    fn hpar_groups_same_key_joins_for_a3() {
        let (q, db) = a3_small();
        let dfs = SimDfs::from_database(&db);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = HiveSim::hpar().evaluate(&engine, &dfs, &[q]).unwrap();
        // All four joins share key x -> 1 join job + EVAL = 2 jobs.
        assert_eq!(stats.num_jobs(), 2);
    }

    #[test]
    fn hpars_is_parallel_and_correct() {
        let (q, db) = a1_small();
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &db).unwrap();
        let dfs = SimDfs::from_database(&db);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = HiveSim::hpars().evaluate(&engine, &dfs, &[q]).unwrap();
        // One parallel round of 4 semi-join jobs + EVAL.
        assert_eq!(stats.num_rounds(), 2);
        assert_eq!(stats.num_jobs(), 5);
        assert_eq!(dfs.peek(&"Out".into()).unwrap().as_ref(), &expected);
    }

    #[test]
    fn hpars_reads_more_input_than_hpar() {
        let (q, db) = a1_small();
        let engine = Engine::new(EngineConfig::unscaled());
        let d1 = SimDfs::from_database(&db);
        let s1 = HiveSim::hpar()
            .evaluate(&engine, &d1, std::slice::from_ref(&q))
            .unwrap();
        let d2 = SimDfs::from_database(&db);
        let s2 = HiveSim::hpars().evaluate(&engine, &d2, &[q]).unwrap();
        assert!(s2.input_bytes() > s1.input_bytes());
    }

    #[test]
    fn ppar_is_parallel_with_few_reducers() {
        let (q, db) = a1_small();
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &db).unwrap();
        let dfs = SimDfs::from_database(&db);
        // Paper-scale factor so the 1 GB/reducer policy is meaningful.
        let engine = Engine::new(EngineConfig {
            scale: 1,
            ..EngineConfig::default()
        });
        let stats = PigSim::ppar().evaluate(&engine, &dfs, &[q]).unwrap();
        assert_eq!(stats.num_rounds(), 2);
        assert_eq!(dfs.peek(&"Out".into()).unwrap().as_ref(), &expected);
        // Input-based allocation with tiny input -> exactly 1 reducer/job.
        assert!(stats.jobs.iter().all(|j| j.profile.reducers == 1));
    }
}
