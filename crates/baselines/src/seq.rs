//! SEQ: sequential semi-join reducers.
//!
//! The classical strategy (Bernstein/Yannakakis-style): apply one semi-join
//! per round to the output of the previous round, pruning data at every
//! step. Conjunctions become chains `W₀ = R`, `Wᵢ = Wᵢ₋₁ ⋉ κᵢ` (or an
//! antijoin for `NOT κᵢ`); a top-level disjunction evaluates each
//! conjunctive branch in parallel and unions the branch results (the B2
//! observation in §5.2). The number of rounds equals the longest chain —
//! which is exactly why SEQ has high net times on B1.
//!
//! Conditions that are not (disjunctions of) conjunctions of literals are
//! out of SEQ's scope, matching the paper's remark that conjunctive BSGF
//! queries "were chosen to simplify the comparison with sequential query
//! plans" (§5.2, footnote 4).

use gumbo_common::{GumboError, RelationName, Result, Tuple};
use gumbo_core::oneround::build_same_key_job;
use gumbo_core::semijoin::{identity_vars, QueryContext};
use gumbo_core::{BsgfSetPlan, PayloadMode};
use gumbo_mr::{Executor, Job, JobConfig, Mapper, Message, MrProgram, ProgramStats, Reducer};
use gumbo_sgf::{Atom, BsgfQuery, Condition, Term, Var};
use gumbo_storage::Dfs;

/// A (possibly negated) conditional atom.
type LiteralAtom = (Atom, bool);

/// The SEQ strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqStrategy {
    /// Per-job configuration (Gumbo defaults: packing + sampling-based
    /// reducers; SEQ benefits from them too).
    pub job_config: JobConfig,
}

impl SeqStrategy {
    /// Build the sequential program for a set of independent BSGF queries
    /// (chains of different queries/branches run in the same rounds).
    pub fn build_program(&self, queries: &[BsgfQuery]) -> Result<MrProgram> {
        let mut chains: Vec<std::collections::VecDeque<Job>> = Vec::new();
        for q in queries {
            for steps in self.chains_for(q)? {
                chains.push(steps.into());
            }
        }
        // Assemble rounds: step r of every chain runs concurrently.
        let mut program = MrProgram::new();
        while chains.iter().any(|c| !c.is_empty()) {
            let round: Vec<Job> = chains.iter_mut().filter_map(|c| c.pop_front()).collect();
            program.push_round(round);
        }
        // Union round for multi-branch queries.
        let mut union_jobs = Vec::new();
        for q in queries {
            if let Some(job) = self.union_job_for(q)? {
                union_jobs.push(job);
            }
        }
        program.push_round(union_jobs);
        Ok(program)
    }

    /// Execute SEQ for a set of BSGF queries.
    pub fn evaluate(
        &self,
        executor: &dyn Executor,
        dfs: &dyn Dfs,
        queries: &[BsgfQuery],
    ) -> Result<ProgramStats> {
        let program = self.build_program(queries)?;
        executor.execute(dfs, &program)
    }

    /// Decompose a condition into disjunctive branches of literal
    /// conjunctions.
    fn branches(cond: &Condition) -> Result<Vec<Vec<LiteralAtom>>> {
        match cond {
            Condition::Or(l, r) => {
                let mut out = Self::branches(l)?;
                out.extend(Self::branches(r)?);
                Ok(out)
            }
            other => Ok(vec![Self::conjunction(other)?]),
        }
    }

    fn conjunction(cond: &Condition) -> Result<Vec<LiteralAtom>> {
        match cond {
            Condition::Atom(a) => Ok(vec![(a.clone(), true)]),
            Condition::Not(inner) => match &**inner {
                Condition::Atom(a) => Ok(vec![(a.clone(), false)]),
                _ => Err(GumboError::Plan(
                    "SEQ requires conditions in disjunctive normal form over literals".into(),
                )),
            },
            Condition::And(l, r) => {
                let mut out = Self::conjunction(l)?;
                out.extend(Self::conjunction(r)?);
                Ok(out)
            }
            Condition::Or(..) => Err(GumboError::Plan(
                "SEQ does not support nested disjunctions below conjunctions".into(),
            )),
        }
    }

    fn branch_count(q: &BsgfQuery) -> Result<usize> {
        Ok(match q.condition() {
            None => 1,
            Some(c) => Self::branches(c)?.len(),
        })
    }

    /// Build the chain(s) of jobs for one query.
    fn chains_for(&self, q: &BsgfQuery) -> Result<Vec<Vec<Job>>> {
        let ident = identity_vars(q.guard());
        let branches = match q.condition() {
            None => vec![Vec::new()],
            Some(c) => Self::branches(c)?,
        };
        let multi = branches.len() > 1;
        let mut chains = Vec::new();
        for (b, literals) in branches.into_iter().enumerate() {
            let mut steps: Vec<Job> = Vec::new();
            let mut current_guard = q.guard().clone();
            let k = literals.len();
            for (i, (atom, positive)) in literals.into_iter().enumerate() {
                let last = i + 1 == k;
                let (out_name, out_vars): (RelationName, Vec<Var>) = if last && !multi {
                    (q.output().clone(), q.output_vars().to_vec())
                } else if last {
                    (format!("{}#B{b}", q.output()).into(), ident.clone())
                } else {
                    (format!("{}#B{b}S{i}", q.output()).into(), ident.clone())
                };
                let cond = if positive {
                    Condition::Atom(atom.clone())
                } else {
                    Condition::Atom(atom.clone()).negated()
                };
                let step_query = BsgfQuery::new(
                    out_name.clone(),
                    out_vars,
                    current_guard.clone(),
                    Some(cond),
                )?;
                let ctx = QueryContext::new(vec![step_query])?;
                // A single semi-join is trivially same-key fusible unless
                // the atom shares no variable with the guard; fall back to
                // the 2-round singleton plan in that case.
                if ctx.same_key_fusible(0) {
                    steps.push(build_same_key_job(&ctx, self.job_config)?);
                } else {
                    let plan = BsgfSetPlan::single_group(&ctx, PayloadMode::Full, self.job_config);
                    steps.extend(
                        plan.build_program(&ctx)?
                            .into_rounds()
                            .into_iter()
                            .flatten(),
                    );
                }
                // Next step guards on the just-produced intermediate.
                current_guard = Atom::new(
                    out_name,
                    ident.iter().map(|v| Term::Var(v.clone())).collect(),
                );
            }
            if steps.is_empty() {
                // No condition: a single projection step.
                let step_query = BsgfQuery::new(
                    q.output().clone(),
                    q.output_vars().to_vec(),
                    q.guard().clone(),
                    None,
                )?;
                let ctx = QueryContext::new(vec![step_query])?;
                let plan = BsgfSetPlan::single_group(&ctx, PayloadMode::Full, self.job_config);
                steps.extend(
                    plan.build_program(&ctx)?
                        .into_rounds()
                        .into_iter()
                        .flatten(),
                );
            }
            chains.push(steps);
        }
        Ok(chains)
    }

    /// The union job combining branch outputs (None for single branches).
    fn union_job_for(&self, q: &BsgfQuery) -> Result<Option<Job>> {
        let branches = Self::branch_count(q)?;
        if branches <= 1 {
            return Ok(None);
        }
        let ident = identity_vars(q.guard());
        let positions: Vec<usize> = q
            .output_vars()
            .iter()
            .map(|v| {
                ident
                    .iter()
                    .position(|iv| iv == v)
                    .expect("guarded output var")
            })
            .collect();
        let inputs: Vec<RelationName> = (0..branches)
            .map(|b| format!("{}#B{b}", q.output()).into())
            .collect();
        Ok(Some(Job {
            name: format!("UNION({})", q.output()),
            inputs,
            outputs: vec![(q.output().clone(), q.output_vars().len())],
            mapper: Box::new(UnionMapper { positions }),
            reducer: Box::new(UnionReducer {
                output: q.output().clone(),
            }),
            config: self.job_config,
            estimate: None,
            filter: None,
        }))
    }
}

struct UnionMapper {
    positions: Vec<usize>,
}

impl Mapper for UnionMapper {
    fn map(&self, fact: &gumbo_common::Fact, _i: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        emit(fact.tuple.project(&self.positions), Message::Tag { rel: 0 });
    }
}

struct UnionReducer {
    output: RelationName,
}

impl Reducer for UnionReducer {
    fn reduce(&self, key: &Tuple, _values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
        emit(&self.output, key.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Database, Fact, Relation};
    use gumbo_mr::{Engine, EngineConfig};
    use gumbo_sgf::{parse_query, NaiveEvaluator};
    use gumbo_storage::SimDfs;

    fn db(facts: &[(&str, &[i64])], arities: &[(&str, usize)]) -> Database {
        let mut db = Database::new();
        for (name, arity) in arities {
            db.add_relation(Relation::new(*name, *arity));
        }
        for (rel, t) in facts {
            db.insert_fact(Fact::new(*rel, Tuple::from_ints(t)))
                .unwrap();
        }
        db
    }

    fn check_seq(query_text: &str, d: &Database) -> ProgramStats {
        let q = parse_query(query_text).unwrap();
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, d).unwrap();
        let dfs = SimDfs::from_database(d);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = SeqStrategy::default()
            .evaluate(&engine, &dfs, std::slice::from_ref(&q))
            .unwrap();
        assert_eq!(
            dfs.peek(q.output()).unwrap().as_ref(),
            &expected,
            "query: {query_text}"
        );
        stats
    }

    #[test]
    fn conjunctive_chain_matches_naive() {
        let d = db(
            &[
                ("R", &[1, 10]),
                ("R", &[2, 20]),
                ("R", &[3, 30]),
                ("S", &[1]),
                ("S", &[2]),
                ("T", &[10]),
            ],
            &[("R", 2), ("S", 1), ("T", 1)],
        );
        let stats = check_seq("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);", &d);
        // Two semi-joins -> two rounds, one job each.
        assert_eq!(stats.num_rounds(), 2);
        assert_eq!(stats.num_jobs(), 2);
    }

    #[test]
    fn chain_prunes_intermediate_data() {
        // After the first (selective) step, the second step reads less.
        let mut facts: Vec<(&str, Vec<i64>)> = Vec::new();
        for i in 0..100 {
            facts.push(("R", vec![i, i]));
        }
        facts.push(("S", vec![1]));
        facts.push(("S", vec![2]));
        for i in 0..100 {
            facts.push(("T", vec![i]));
        }
        let mut d = Database::new();
        for (rel, t) in &facts {
            d.insert_fact(Fact::new(*rel, Tuple::from_ints(t))).unwrap();
        }
        let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);").unwrap();
        let dfs = SimDfs::from_database(&d);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = SeqStrategy::default()
            .evaluate(&engine, &dfs, &[q])
            .unwrap();
        let first = &stats.jobs[0];
        let second = &stats.jobs[1];
        assert!(
            second.input_bytes() < first.input_bytes(),
            "pruning failed: {} -> {}",
            first.input_bytes(),
            second.input_bytes()
        );
    }

    #[test]
    fn antijoin_steps_work() {
        let d = db(
            &[("R", &[1, 10]), ("R", &[2, 20]), ("S", &[1]), ("T", &[20])],
            &[("R", 2), ("S", 1), ("T", 1)],
        );
        check_seq(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);",
            &d,
        );
    }

    #[test]
    fn disjunctive_branches_in_parallel_plus_union() {
        let d = db(
            &[
                ("R", &[1, 10]),
                ("R", &[2, 20]),
                ("R", &[3, 30]),
                ("S", &[1]),
                ("T", &[20]),
                ("U", &[3]),
                ("V", &[30]),
            ],
            &[("R", 2), ("S", 1), ("T", 1), ("U", 1), ("V", 1)],
        );
        let stats = check_seq(
            "Z := SELECT (x, y) FROM R(x, y) WHERE (S(x) AND NOT T(y)) OR (U(x) AND V(y));",
            &d,
        );
        // Branches of length 2 run in 2 rounds + 1 union round.
        assert_eq!(stats.num_rounds(), 3);
        assert_eq!(stats.num_jobs(), 5);
    }

    #[test]
    fn b2_shape_has_parallel_branches() {
        let d = db(
            &[
                ("R", &[1, 0]),
                ("R", &[2, 0]),
                ("R", &[3, 0]),
                ("S", &[1]),
                ("S", &[3]),
                ("T", &[2]),
                ("T", &[3]),
            ],
            &[("R", 2), ("S", 1), ("T", 1)],
        );
        let stats = check_seq(
            "Z := SELECT (x, y) FROM R(x, y) WHERE \
             (S(x) AND NOT T(x)) OR (NOT S(x) AND T(x));",
            &d,
        );
        // 2 branches × 2 steps in 2 rounds, then a union round.
        assert_eq!(stats.num_rounds(), 3);
    }

    #[test]
    fn no_condition_single_projection_job() {
        let d = db(&[("R", &[1, 2]), ("R", &[3, 2])], &[("R", 2)]);
        let stats = check_seq("Z := SELECT y FROM R(x, y);", &d);
        assert_eq!(stats.num_jobs(), 1);
    }

    #[test]
    fn rejects_non_dnf_conditions() {
        let q = parse_query("Z := SELECT x FROM R(x, y) WHERE S(x) AND (T(y) OR U(x));").unwrap();
        assert!(SeqStrategy::default().build_program(&[q]).is_err());
    }

    #[test]
    fn multiple_queries_run_in_shared_rounds() {
        let d = db(
            &[
                ("R", &[1, 10]),
                ("G", &[5, 50]),
                ("S", &[1]),
                ("T", &[10]),
                ("U", &[5]),
                ("V", &[50]),
            ],
            &[("R", 2), ("G", 2), ("S", 1), ("T", 1), ("U", 1), ("V", 1)],
        );
        let q1 = parse_query("Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);").unwrap();
        let q2 = parse_query("Z2 := SELECT (x, y) FROM G(x, y) WHERE U(x) AND V(y);").unwrap();
        let dfs = SimDfs::from_database(&d);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = SeqStrategy::default()
            .evaluate(&engine, &dfs, &[q1, q2])
            .unwrap();
        // Chains share rounds: 2 rounds of 2 jobs, no union.
        assert_eq!(stats.num_rounds(), 2);
        assert_eq!(stats.num_jobs(), 4);
        assert_eq!(dfs.peek(&"Z1".into()).unwrap().len(), 1);
        assert_eq!(dfs.peek(&"Z2".into()).unwrap().len(), 1);
    }
}
