//! The resident query server: thread-per-connection front end, bounded
//! fair-share admission, streaming replies, graceful drain.
//!
//! ```text
//! TcpListener ── handler thread per connection
//!                   │  parse request, estimate cost (sort_cost)
//!                   ▼
//!             AdmissionQueue  (bounded; estimate-weighted fair share)
//!                   │  admit
//!                   ▼
//!             dispatcher pool (max_in_flight threads)
//!                   │  engine.eval().on(runtime).run(dfs, query)
//!                   ▼
//!             reply channel ── handler streams rel/frame/stats lines
//! ```
//!
//! Every dispatcher evaluates through the *same* engine/runtime code
//! path as the one-shot CLI — plans route through the DAG scheduler when
//! the engine's options say so — which is what makes service answers
//! byte-identical to direct evaluation.
//!
//! **Drain** (a `shutdown` request, [`ServerHandle::shutdown`], or a
//! SIGTERM via [`crate::install_signal_drain`]): the accept loop stops,
//! the queue closes (new submissions are refused with an error frame),
//! dispatchers finish every already-accepted submission, handlers stream
//! every reply, the DFS flushes, and the server exits with
//! `accepted == completed` — zero lost work.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gumbo_common::Relation;
use gumbo_core::GumboEngine;
use gumbo_mr::Executor;
use gumbo_sched::{AdmissionConfig, AdmissionQueue, SubmissionReport};
use gumbo_sgf::{parse_program, SgfQuery};
use gumbo_storage::Dfs;

use crate::protocol::{relation_frames, report_to_json, Frame, Request};
use crate::{
    drain_requested, SVC_ADMITTED, SVC_COMPLETED, SVC_CONNECTIONS, SVC_FRAMES, SVC_QUEUE_DEPTH,
    SVC_SUBMITTED,
};

/// Server sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded admission-queue capacity (submits block when full).
    pub queue_capacity: usize,
    /// Dispatcher threads = submissions evaluated concurrently.
    pub max_in_flight: usize,
    /// Weight for tenants that never declare one.
    pub default_weight: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_in_flight: 2,
            default_weight: 1.0,
        }
    }
}

/// What the server counted over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Submissions accepted into the admission queue.
    pub accepted: u64,
    /// Submissions fully processed (reply delivered to its handler).
    /// Equal to `accepted` after a clean drain — zero lost work.
    pub completed: u64,
}

/// One accepted query waiting in (or admitted from) the queue.
struct Work {
    query: SgfQuery,
    reply: mpsc::Sender<Result<Outcome, String>>,
}

/// A finished submission, ready to stream back.
struct Outcome {
    report: SubmissionReport,
    estimated_cost: f64,
    relations: Vec<Arc<Relation>>,
}

/// State shared by the supervisor, handlers, and dispatchers.
struct Shared {
    engine: GumboEngine,
    runtime: Box<dyn Executor>,
    dfs: Arc<dyn Dfs>,
    queue: AdmissionQueue<Work>,
    /// Set once a drain begins (shutdown request, handle, or signal).
    draining: AtomicBool,
    /// Submissions fully processed (outcome handed to the handler).
    completed: AtomicU64,
    /// Connections accepted.
    connections: AtomicU64,
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] + [`ServerHandle::join`] (or send the
/// protocol's `shutdown` request).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    supervisor: JoinHandle<ServeSummary>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Submissions accepted into the queue so far.
    pub fn accepted(&self) -> u64 {
        self.shared.queue.accepted()
    }

    /// Submissions fully processed so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::SeqCst)
    }

    /// Begin a graceful drain (idempotent): stop accepting, finish the
    /// backlog, flush the DFS.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Wait for the server to finish draining and return its counters.
    pub fn join(self) -> ServeSummary {
        self.supervisor.join().expect("server supervisor panicked")
    }
}

impl Shared {
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            gumbo_obs::event("svc:drain", |f| {
                f.u64("accepted", self.queue.accepted());
                f.u64("completed", self.completed.load(Ordering::SeqCst));
            });
        }
        self.queue.close();
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || drain_requested()
    }
}

/// Start serving on `listener`. The engine's options decide the
/// evaluation path (scheduler config, data plane, budget) exactly as
/// they do for one-shot evaluation; `dfs` holds the base relations and
/// receives every committed output.
pub fn serve(
    listener: TcpListener,
    dfs: Arc<dyn Dfs>,
    engine: GumboEngine,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        runtime: engine.runtime(),
        engine,
        dfs,
        queue: AdmissionQueue::new(AdmissionConfig {
            capacity: config.queue_capacity,
            default_weight: config.default_weight,
        }),
        draining: AtomicBool::new(false),
        completed: AtomicU64::new(0),
        connections: AtomicU64::new(0),
    });

    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gumbo-serve".into())
            .spawn(move || supervise(listener, shared, config))
            .expect("spawn supervisor thread")
    };

    Ok(ServerHandle {
        addr,
        shared,
        supervisor,
    })
}

/// The supervisor: accept loop + lifecycle. Owns the dispatcher pool
/// and the handler thread registry; returns the final counters after
/// the drain completes.
fn supervise(listener: TcpListener, shared: Arc<Shared>, config: ServeConfig) -> ServeSummary {
    let dispatchers: Vec<JoinHandle<()>> = (0..config.max_in_flight.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("gumbo-dispatch-{i}"))
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher thread")
        })
        .collect();
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());

    while !shared.is_draining() {
        match listener.accept() {
            Ok((stream, peer)) => {
                shared.connections.fetch_add(1, Ordering::SeqCst);
                SVC_CONNECTIONS.incr();
                gumbo_obs::event("svc:accept", |f| {
                    f.str("peer", &peer.to_string());
                });
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("gumbo-conn".into())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn connection handler");
                handlers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    // Drain: no new connections; refuse new submissions; finish the
    // backlog; let every handler stream its replies out.
    shared.begin_drain();
    for d in dispatchers {
        let _ = d.join();
    }
    for h in handlers.into_inner().unwrap_or_else(|e| e.into_inner()) {
        let _ = h.join();
    }
    // Everything is committed — make it durable before reporting done.
    let _ = shared.dfs.flush();
    ServeSummary {
        connections: shared.connections.load(Ordering::SeqCst),
        accepted: shared.queue.accepted(),
        completed: shared.completed.load(Ordering::SeqCst),
    }
}

/// A dispatcher: admit fairly, evaluate, reply. Exits when the queue is
/// closed *and* fully drained, so every accepted submission completes.
fn dispatch_loop(shared: &Shared) {
    while let Some(entry) = shared.queue.admit() {
        SVC_ADMITTED.incr();
        SVC_QUEUE_DEPTH.set(shared.queue.depth() as u64);
        gumbo_obs::event("svc:admit", |f| {
            f.str("tenant", &entry.tenant);
            f.f64("weight", entry.weight);
            f.f64("estimated_cost", entry.estimated_cost);
            f.u64(
                "queue_wait_ns",
                entry.admitted_ns.saturating_sub(entry.queued_ns),
            );
        });
        let started = Instant::now();
        let result = shared
            .engine
            .eval()
            .on(&*shared.runtime)
            .run(&*shared.dfs, &entry.payload.query);
        let completed_ns = gumbo_obs::now_ns();
        let outcome = match result {
            Ok(stats) => {
                // Collect every output relation (final and intermediate
                // Zs) for streaming, in query order.
                let mut relations = Vec::new();
                let mut failure = None;
                for name in entry.payload.query.output_names() {
                    match shared.dfs.peek(&name) {
                        Ok(rel) => relations.push(rel),
                        Err(e) => {
                            failure = Some(e.to_string());
                            break;
                        }
                    }
                }
                match failure {
                    None => Ok(Outcome {
                        report: SubmissionReport {
                            tenant: entry.tenant.clone(),
                            stats,
                            wall_seconds: started.elapsed().as_secs_f64(),
                            queued_ns: entry.queued_ns,
                            admitted_ns: entry.admitted_ns,
                            completed_ns,
                        },
                        estimated_cost: entry.estimated_cost,
                        relations,
                    }),
                    Some(message) => Err(message),
                }
            }
            Err(e) => Err(e.to_string()),
        };
        gumbo_obs::event("svc:complete", |f| {
            f.str("tenant", &entry.tenant);
            f.bool("ok", outcome.is_ok());
        });
        // The handler may have hung up (client died mid-wait); the
        // submission still counts as completed — the work committed.
        let _ = entry.payload.reply.send(outcome);
        SVC_COMPLETED.incr();
        shared.completed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Estimate a query's remaining work for admission: the estimation
/// layer's total plan cost under the engine's chosen sort. Falls back
/// to the subquery count when estimation fails — unestimated work is
/// still charged something.
fn admission_cost(shared: &Shared, query: &SgfQuery) -> f64 {
    shared
        .engine
        .sort_for(&*shared.dfs, query)
        .and_then(|sort| shared.engine.sort_cost(&*shared.dfs, query, &sort))
        .unwrap_or_else(|_| query.queries().len() as f64)
}

/// One connection: read request lines, answer each. Returns (closing
/// the connection) on EOF, protocol errors at the transport level, or
/// when a drain begins while the line is idle.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // A finite read timeout lets idle handlers notice the drain.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // read_line may time out mid-line; partial bytes stay in `line`
        // across retries, so requests are never torn.
        let complete = loop {
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => break true,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shared.is_draining() && line.is_empty() {
                        // Idle connection during a drain: hang up so the
                        // supervisor can finish joining handlers.
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if !complete || line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Ok(Request::Ping) => {
                if write_frame(&mut writer, &Frame::Pong).is_err() {
                    return;
                }
            }
            Ok(Request::Shutdown) => {
                serve_shutdown(&mut writer, shared);
                return;
            }
            Ok(Request::Query {
                tenant,
                weight,
                sgf,
            }) => {
                if !serve_query(&mut writer, shared, &tenant, weight, &sgf) {
                    return;
                }
            }
            Err(message) => {
                if write_frame(&mut writer, &Frame::Error { message }).is_err() {
                    return;
                }
            }
        }
    }
}

/// Answer one query request. Returns false when the connection is dead.
fn serve_query(
    writer: &mut TcpStream,
    shared: &Shared,
    tenant: &str,
    weight: Option<f64>,
    sgf: &str,
) -> bool {
    let query = match parse_program(sgf) {
        Ok(q) => q,
        Err(e) => {
            return write_frame(
                writer,
                &Frame::Error {
                    message: format!("bad SGF program: {e}"),
                },
            )
            .is_ok();
        }
    };
    let estimated_cost = admission_cost(shared, &query);
    SVC_SUBMITTED.incr();
    gumbo_obs::event("svc:submit", |f| {
        f.str("tenant", tenant);
        f.f64("estimated_cost", estimated_cost);
        f.u64("queue_depth", shared.queue.depth() as u64);
    });
    let (reply_tx, reply_rx) = mpsc::channel();
    let work = Work {
        query,
        reply: reply_tx,
    };
    if shared
        .queue
        .submit(tenant, weight, estimated_cost, work)
        .is_err()
    {
        return write_frame(
            writer,
            &Frame::Error {
                message: "server is draining; submission refused".into(),
            },
        )
        .is_ok();
    }
    SVC_QUEUE_DEPTH.set(shared.queue.depth() as u64);
    // The dispatcher pool always drains the queue (even during
    // shutdown), so this receive terminates.
    match reply_rx.recv() {
        Ok(Ok(outcome)) => {
            for relation in &outcome.relations {
                for frame in relation_frames(relation) {
                    if matches!(frame, Frame::Rows { .. }) {
                        SVC_FRAMES.incr();
                        gumbo_obs::event("svc:stream", |f| {
                            f.str("tenant", tenant);
                            f.str("relation", relation.name().as_str());
                        });
                    }
                    if write_frame(writer, &frame).is_err() {
                        return false;
                    }
                }
            }
            let report = report_to_json(&outcome.report, outcome.estimated_cost);
            write_frame(writer, &Frame::Stats { report }).is_ok()
        }
        Ok(Err(message)) => write_frame(writer, &Frame::Error { message }).is_ok(),
        Err(_) => write_frame(
            writer,
            &Frame::Error {
                message: "internal error: dispatcher dropped the reply".into(),
            },
        )
        .is_ok(),
    }
}

/// Answer a shutdown request: begin the drain, wait for every accepted
/// submission to complete, then acknowledge with the final counters.
fn serve_shutdown(writer: &mut TcpStream, shared: &Shared) {
    shared.begin_drain();
    loop {
        let accepted = shared.queue.accepted();
        let completed = shared.completed.load(Ordering::SeqCst);
        if completed >= accepted {
            let _ = write_frame(
                writer,
                &Frame::Bye {
                    accepted,
                    completed,
                },
            );
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn write_frame(writer: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let mut text = frame.to_line();
    text.push('\n');
    writer.write_all(text.as_bytes())
}
