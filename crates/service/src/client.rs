//! A blocking client for the gumbo-serve protocol — used by the CLI's
//! `query`/`shutdown` subcommands and by the service-level test suite.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use gumbo_common::Relation;
use gumbo_obs::json::Json;

use crate::protocol::{Frame, Request};

/// A client-side failure.
#[derive(Debug)]
pub enum ServiceError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The server answered with an `error` frame.
    Remote(String),
    /// The server sent something the protocol doesn't allow here.
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service i/o error: {e}"),
            ServiceError::Remote(m) => write!(f, "server error: {m}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// A complete, successful query reply.
#[derive(Debug)]
pub struct QueryReply {
    /// Every streamed output relation, rebuilt in arrival order (the
    /// query's output order: intermediate `Z`s, then the final output).
    pub relations: Vec<Relation>,
    /// The per-submission report object from the terminal `stats` frame
    /// (see [`crate::protocol::report_to_json`]).
    pub report: Json,
}

impl QueryReply {
    /// A streamed relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.iter().find(|r| r.name().as_str() == name)
    }

    fn report_u64(&self, key: &str) -> Option<u64> {
        self.report.get(key).and_then(Json::as_u64)
    }

    /// When the submission entered the queue (monotonic ns, server's
    /// obs epoch).
    pub fn queued_ns(&self) -> Option<u64> {
        self.report_u64("queued_ns")
    }

    /// When the submission was admitted.
    pub fn admitted_ns(&self) -> Option<u64> {
        self.report_u64("admitted_ns")
    }

    /// When the submission's last job committed.
    pub fn completed_ns(&self) -> Option<u64> {
        self.report_u64("completed_ns")
    }

    /// Queue wait in nanoseconds.
    pub fn queue_wait_ns(&self) -> Option<u64> {
        self.report_u64("queue_wait_ns")
    }
}

/// A connected protocol client. One outstanding request at a time.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connect once.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(ServiceClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect with retries — the readiness probe for freshly spawned
    /// servers (CI starts `gumbo-serve` in the background and the first
    /// client may race the bind).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        attempts: u32,
        delay: Duration,
    ) -> std::io::Result<ServiceClient> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match ServiceClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(delay);
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
    }

    fn send(&mut self, request: &Request) -> Result<(), ServiceError> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Frame, ServiceError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ServiceError::Protocol("connection closed mid-reply".into()));
            }
            if !line.trim().is_empty() {
                return Frame::parse(&line).map_err(ServiceError::Protocol);
            }
        }
    }

    /// Submit an SGF program for `tenant` (optionally declaring its
    /// fair-share weight) and collect the full streamed reply.
    pub fn query(
        &mut self,
        tenant: &str,
        weight: Option<f64>,
        sgf: &str,
    ) -> Result<QueryReply, ServiceError> {
        self.send(&Request::Query {
            tenant: tenant.to_string(),
            weight,
            sgf: sgf.to_string(),
        })?;
        let mut relations: Vec<Relation> = Vec::new();
        loop {
            match self.read_frame()? {
                Frame::Rel { name, arity, .. } => {
                    relations.push(Relation::new(name, arity));
                }
                Frame::Rows { name, rows } => {
                    let rel = relations
                        .iter_mut()
                        .rev()
                        .find(|r| r.name().as_str() == name)
                        .ok_or_else(|| {
                            ServiceError::Protocol(format!("rows for undeclared relation {name}"))
                        })?;
                    for tuple in rows {
                        rel.insert(tuple)
                            .map_err(|e| ServiceError::Protocol(e.to_string()))?;
                    }
                }
                Frame::Stats { report } => {
                    return Ok(QueryReply { relations, report });
                }
                Frame::Error { message } => return Err(ServiceError::Remote(message)),
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "unexpected frame {other:?} in a query reply"
                    )))
                }
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        self.send(&Request::Ping)?;
        match self.read_frame()? {
            Frame::Pong => Ok(()),
            other => Err(ServiceError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Ask the server to drain and stop; returns its final
    /// `(accepted, completed)` counters.
    pub fn shutdown(&mut self) -> Result<(u64, u64), ServiceError> {
        self.send(&Request::Shutdown)?;
        match self.read_frame()? {
            Frame::Bye {
                accepted,
                completed,
            } => Ok((accepted, completed)),
            Frame::Error { message } => Err(ServiceError::Remote(message)),
            other => Err(ServiceError::Protocol(format!(
                "expected bye, got {other:?}"
            ))),
        }
    }
}
