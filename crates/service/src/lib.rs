//! # gumbo-service — resident multi-tenant query service
//!
//! A thin, dependency-free network layer over the gumbo engine: a
//! thread-per-connection TCP server (`gumbo-serve`) speaking a
//! line-delimited JSON protocol, with **estimate-weighted fair-share
//! admission** between tenants.
//!
//! The moving parts:
//!
//! - [`protocol`] — the wire grammar: [`protocol::Request`] lines from
//!   clients, [`protocol::Frame`] lines back from the server, plus the
//!   Value/Json codec and the shared stats vocabulary
//!   ([`protocol::stats_to_json`], [`protocol::report_to_json`]).
//! - [`server`] — [`server::serve`] binds the accept loop, the
//!   dispatcher pool, and the [`gumbo_sched::AdmissionQueue`] together
//!   behind a [`server::ServerHandle`]. Every admitted query runs
//!   through the *identical* `engine.eval().on(runtime).run(dfs, query)`
//!   path as the one-shot CLI, so streamed answers are byte-identical
//!   to direct evaluation.
//! - [`client`] — [`client::ServiceClient`], a blocking client used by
//!   the CLI subcommands and the service-level test suite.
//!
//! ## Drain
//!
//! Graceful shutdown has two triggers: a `shutdown` protocol request,
//! or a process signal (SIGTERM/SIGINT) when [`install_signal_drain`]
//! has been called. Both funnel into the same drain path: stop
//! accepting connections and submissions, finish every already-accepted
//! query, stream its frames, flush the DFS, then exit. The drain
//! invariant — `accepted == completed` — is reported in the final
//! [`server::ServeSummary`] and asserted by the test suite.

pub mod client;
pub mod protocol;
pub mod server;

use std::sync::atomic::{AtomicBool, Ordering};

use gumbo_obs::{Counter, Gauge};

pub use client::{QueryReply, ServiceClient, ServiceError};
pub use protocol::{Frame, Request, FRAME_ROWS};
pub use server::{serve, ServeConfig, ServeSummary, ServerHandle};

/// Connections accepted by the server.
pub static SVC_CONNECTIONS: Counter = Counter::new("svc.connections");
/// Query submissions received (before admission).
pub static SVC_SUBMITTED: Counter = Counter::new("svc.submitted");
/// Submissions admitted by the fair-share ledger.
pub static SVC_ADMITTED: Counter = Counter::new("svc.admitted");
/// Row frames streamed back to clients.
pub static SVC_FRAMES: Counter = Counter::new("svc.streamed_frames");
/// Submissions fully completed (reply sent or abandoned by client).
pub static SVC_COMPLETED: Counter = Counter::new("svc.completed");
/// Current admission-queue depth.
pub static SVC_QUEUE_DEPTH: Gauge = Gauge::new("svc.queue_depth");

/// Process-wide drain request, set by [`request_drain`] or by a signal
/// handler installed with [`install_signal_drain`]. The server's accept
/// loop polls this between accepts.
static GLOBAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// Has a process-wide drain been requested?
pub fn drain_requested() -> bool {
    GLOBAL_DRAIN.load(Ordering::SeqCst)
}

/// Request a process-wide drain (as a signal handler would).
pub fn request_drain() {
    GLOBAL_DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn drain_on_signal(_signum: i32) {
    // Only async-signal-safe work here: a single atomic store.
    GLOBAL_DRAIN.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers that request a graceful drain
/// instead of killing the process outright. Uses the libc `signal`
/// symbol directly so no crate dependency is needed.
#[cfg(unix)]
pub fn install_signal_drain() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, drain_on_signal);
        signal(SIGINT, drain_on_signal);
    }
}

/// On non-unix targets signal-driven drain is unavailable; the
/// `shutdown` protocol request still drains gracefully.
#[cfg(not(unix))]
pub fn install_signal_drain() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_flag_round_trip() {
        assert!(!drain_requested() || GLOBAL_DRAIN.load(Ordering::SeqCst));
        request_drain();
        assert!(drain_requested());
        GLOBAL_DRAIN.store(false, Ordering::SeqCst);
        assert!(!drain_requested());
    }
}
