//! The gumbo-serve wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one `\n`-terminated line, built
//! on the workspace's own [`Json`] vocabulary (no external serializer).
//!
//! ## Requests (client → server)
//!
//! ```text
//! {"type":"query","tenant":T,"sgf":SGF}            evaluate an SGF program
//! {"type":"query","tenant":T,"weight":W,"sgf":SGF} …declaring T's weight
//! {"type":"ping"}                                  liveness probe
//! {"type":"shutdown"}                              drain and stop the server
//! ```
//!
//! ## Responses (server → client)
//!
//! A `query` is answered by a stream of frames, ending with `stats` (on
//! success) or `error`:
//!
//! ```text
//! {"type":"rel","name":N,"arity":A,"rows":R}       one per output relation
//! {"type":"frame","name":N,"rows":[[v,…],…]}       ≤ FRAME_ROWS rows per line
//! {"type":"stats","report":{…}}                    per-submission report, ends the reply
//! {"type":"error","message":M}                     terminal failure, ends the reply
//! {"type":"pong"}                                  answers ping
//! {"type":"bye","accepted":A,"completed":C}        answers shutdown, after the drain
//! ```
//!
//! Values encode as JSON numbers when exact (`|i| ≤ 2⁵³`), as
//! `{"i":"…decimal…"}` for larger integers (floats would silently round
//! them), and as JSON strings for strings. Relations stream in the
//! [`Relation`]'s sorted tuple order, so a reply is byte-reproducible.

use gumbo_common::{Relation, Tuple, Value};
use gumbo_obs::json::Json;
use gumbo_sched::SubmissionReport;

/// Rows per `frame` line: small enough to keep lines readable and
/// interleave progress, large enough to amortize the JSON framing.
pub const FRAME_ROWS: usize = 256;

/// Largest integer magnitude an f64-backed JSON number holds exactly.
const EXACT_INT: i64 = 1 << 53;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate an SGF program for a tenant (optionally declaring the
    /// tenant's fair-share weight).
    Query {
        /// The submitting tenant's label.
        tenant: String,
        /// Fair-share weight to declare for the tenant, if any.
        weight: Option<f64>,
        /// The SGF program text (the paper's SQL-like syntax).
        sgf: String,
    },
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain and stop the server.
    Shutdown,
}

impl Request {
    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = match self {
            Request::Query {
                tenant,
                weight,
                sgf,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("query".into())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                if let Some(w) = weight {
                    fields.push(("weight", Json::Num(*w)));
                }
                fields.push(("sgf", Json::Str(sgf.clone())));
                Json::obj(fields)
            }
            Request::Ping => Json::obj([("type", Json::Str("ping".into()))]),
            Request::Shutdown => Json::obj([("type", Json::Str("shutdown".into()))]),
        };
        json.to_string()
    }

    /// Decode one wire line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line.trim()).map_err(|e| format!("bad request JSON: {e}"))?;
        let kind = json
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request is missing \"type\"")?;
        match kind {
            "query" => {
                let tenant = json
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or("query is missing \"tenant\"")?
                    .to_string();
                let weight = json.get("weight").and_then(Json::as_f64);
                if let Some(w) = weight {
                    if !w.is_finite() || w <= 0.0 {
                        return Err(format!("weight must be a positive number, got {w}"));
                    }
                }
                let sgf = json
                    .get("sgf")
                    .and_then(Json::as_str)
                    .ok_or("query is missing \"sgf\"")?
                    .to_string();
                Ok(Request::Query {
                    tenant,
                    weight,
                    sgf,
                })
            }
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

/// A parsed server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Header for one output relation about to stream.
    Rel {
        /// Relation name.
        name: String,
        /// Relation arity.
        arity: usize,
        /// Total rows that will stream for this relation.
        rows: u64,
    },
    /// A chunk of rows of the named relation, in sorted order.
    Rows {
        /// Relation name.
        name: String,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// Terminal success frame: the per-submission report.
    Stats {
        /// The report object (see [`report_to_json`]).
        report: Json,
    },
    /// Terminal failure frame.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Answer to a ping.
    Pong,
    /// Answer to a shutdown, sent after the drain finishes.
    Bye {
        /// Submissions accepted over the server's lifetime.
        accepted: u64,
        /// Submissions fully completed (must equal `accepted`).
        completed: u64,
    },
}

impl Frame {
    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = match self {
            Frame::Rel { name, arity, rows } => Json::obj([
                ("type", Json::Str("rel".into())),
                ("name", Json::Str(name.clone())),
                ("arity", Json::Int(*arity as u64)),
                ("rows", Json::Int(*rows)),
            ]),
            Frame::Rows { name, rows } => Json::obj([
                ("type", Json::Str("frame".into())),
                ("name", Json::Str(name.clone())),
                ("rows", Json::Arr(rows.iter().map(tuple_to_json).collect())),
            ]),
            Frame::Stats { report } => Json::obj([
                ("type", Json::Str("stats".into())),
                ("report", report.clone()),
            ]),
            Frame::Error { message } => Json::obj([
                ("type", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
            Frame::Pong => Json::obj([("type", Json::Str("pong".into()))]),
            Frame::Bye {
                accepted,
                completed,
            } => Json::obj([
                ("type", Json::Str("bye".into())),
                ("accepted", Json::Int(*accepted)),
                ("completed", Json::Int(*completed)),
            ]),
        };
        json.to_string()
    }

    /// Decode one wire line.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let json = Json::parse(line.trim()).map_err(|e| format!("bad frame JSON: {e}"))?;
        let kind = json
            .get("type")
            .and_then(Json::as_str)
            .ok_or("frame is missing \"type\"")?;
        match kind {
            "rel" => Ok(Frame::Rel {
                name: json
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("rel frame is missing \"name\"")?
                    .to_string(),
                arity: json
                    .get("arity")
                    .and_then(Json::as_u64)
                    .ok_or("rel frame is missing \"arity\"")? as usize,
                rows: json
                    .get("rows")
                    .and_then(Json::as_u64)
                    .ok_or("rel frame is missing \"rows\"")?,
            }),
            "frame" => {
                let name = json
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("frame is missing \"name\"")?
                    .to_string();
                let rows = json
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or("frame is missing \"rows\"")?
                    .iter()
                    .map(tuple_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Frame::Rows { name, rows })
            }
            "stats" => Ok(Frame::Stats {
                report: json
                    .get("report")
                    .cloned()
                    .ok_or("stats frame is missing \"report\"")?,
            }),
            "error" => Ok(Frame::Error {
                message: json
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("error frame is missing \"message\"")?
                    .to_string(),
            }),
            "pong" => Ok(Frame::Pong),
            "bye" => Ok(Frame::Bye {
                accepted: json
                    .get("accepted")
                    .and_then(Json::as_u64)
                    .ok_or("bye frame is missing \"accepted\"")?,
                completed: json
                    .get("completed")
                    .and_then(Json::as_u64)
                    .ok_or("bye frame is missing \"completed\"")?,
            }),
            other => Err(format!("unknown frame type {other:?}")),
        }
    }
}

/// Encode one value: exact-in-f64 integers as numbers, larger integers
/// as `{"i":"…"}` (a float would silently round them), strings as
/// strings.
pub fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Int(i) if (0..=EXACT_INT).contains(i) => Json::Int(*i as u64),
        Value::Int(i) if (-EXACT_INT..0).contains(i) => Json::Num(*i as f64),
        Value::Int(i) => Json::obj([("i", Json::Str(i.to_string()))]),
        Value::Str(s) => Json::Str(s.to_string()),
    }
}

/// Decode one value (inverse of [`value_to_json`]).
pub fn value_from_json(json: &Json) -> Result<Value, String> {
    match json {
        Json::Int(u) => i64::try_from(*u)
            .map(Value::Int)
            .map_err(|_| format!("integer {u} overflows i64")),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= EXACT_INT as f64 {
                Ok(Value::Int(*n as i64))
            } else {
                Err(format!("non-integral value {n} in a tuple"))
            }
        }
        Json::Str(s) => Ok(Value::str(s)),
        Json::Obj(_) => {
            let digits = json
                .get("i")
                .and_then(Json::as_str)
                .ok_or("tuple value object without an \"i\" field")?;
            digits
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad wide integer {digits:?}: {e}"))
        }
        other => Err(format!("unsupported tuple value {other}")),
    }
}

fn tuple_to_json(tuple: &Tuple) -> Json {
    Json::Arr(tuple.values().iter().map(value_to_json).collect())
}

fn tuple_from_json(json: &Json) -> Result<Tuple, String> {
    let values = json
        .as_arr()
        .ok_or("tuple is not an array")?
        .iter()
        .map(value_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Tuple::new(values))
}

/// Split a relation into the frames that stream it: one [`Frame::Rel`]
/// header, then [`Frame::Rows`] chunks of at most [`FRAME_ROWS`] rows in
/// the relation's sorted order.
pub fn relation_frames(relation: &Relation) -> Vec<Frame> {
    let mut frames = vec![Frame::Rel {
        name: relation.name().to_string(),
        arity: relation.arity(),
        rows: relation.len() as u64,
    }];
    let mut chunk = Vec::with_capacity(FRAME_ROWS.min(relation.len()));
    for tuple in relation.iter() {
        chunk.push(tuple.clone());
        if chunk.len() == FRAME_ROWS {
            frames.push(Frame::Rows {
                name: relation.name().to_string(),
                rows: std::mem::take(&mut chunk),
            });
        }
    }
    if !chunk.is_empty() {
        frames.push(Frame::Rows {
            name: relation.name().to_string(),
            rows: chunk,
        });
    }
    frames
}

/// Lower a [`gumbo_mr::ProgramStats`] to one JSON document: the paper's
/// four metrics, the spill and shuffle-filter counters, the predicted
/// DAG net time, the per-job calibration ledger, and — for file-backed
/// runs — the DFS block-cache counters. This is the single stats
/// vocabulary: `gumbo-cli --stats-json` and the service's `stats` frame
/// both emit it.
pub fn stats_to_json(
    stats: &gumbo_mr::ProgramStats,
    cache: Option<&gumbo_storage::CacheStats>,
) -> Json {
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    let jobs: Vec<Json> = stats
        .jobs
        .iter()
        .map(|j| {
            Json::obj([
                ("name", Json::Str(j.name.clone())),
                ("round", Json::Int(j.round as u64)),
                ("total_cost", Json::Num(j.total_cost)),
                ("map_cost", Json::Num(j.map_cost)),
                ("reduce_cost", Json::Num(j.reduce_cost)),
                ("output_tuples", Json::Int(j.output_tuples)),
                ("input_bytes", Json::Int(j.input_bytes().0)),
                ("communication_bytes", Json::Int(j.communication_bytes().0)),
                ("output_bytes", Json::Int(j.output_bytes().0)),
                ("spilled_bytes", Json::Int(j.spilled_bytes)),
                ("spilled_disk_bytes", Json::Int(j.spilled_disk_bytes)),
                ("spill_files", Json::Int(j.spill_files)),
                ("spill_merge_passes", Json::Int(j.spill_merge_passes)),
                ("filter_bytes", Json::Int(j.filter_bytes)),
                ("suppressed_messages", Json::Int(j.suppressed_messages)),
                ("filter_probes", Json::Int(j.filter_probes)),
                (
                    "filter_false_positives",
                    Json::Int(j.filter_false_positives),
                ),
                ("observed_fp_rate", opt(j.observed_fp_rate())),
                ("estimated_cost", opt(j.estimated_cost)),
                ("estimate_error", opt(j.estimate_error())),
            ])
        })
        .collect();
    let mut fields = vec![
        ("net_time", Json::Num(stats.net_time())),
        ("total_time", Json::Num(stats.total_time())),
        ("input_bytes", Json::Int(stats.input_bytes().0)),
        (
            "communication_bytes",
            Json::Int(stats.communication_bytes().0),
        ),
        ("num_jobs", Json::Int(stats.num_jobs() as u64)),
        ("num_rounds", Json::Int(stats.num_rounds() as u64)),
        ("predicted_net_time", opt(stats.predicted_net_time)),
        ("spilled_bytes", Json::Int(stats.spilled_bytes())),
        ("spilled_disk_bytes", Json::Int(stats.spilled_disk_bytes())),
        ("spill_files", Json::Int(stats.spill_files())),
        ("spill_merge_passes", Json::Int(stats.spill_merge_passes())),
        ("filter_bytes", Json::Int(stats.filter_bytes())),
        (
            "suppressed_messages",
            Json::Int(stats.suppressed_messages()),
        ),
        ("filter_probes", Json::Int(stats.filter_probes())),
        (
            "filter_false_positives",
            Json::Int(stats.filter_false_positives()),
        ),
        ("observed_fp_rate", opt(stats.observed_fp_rate())),
        ("mean_estimate_error", opt(stats.mean_estimate_error())),
        ("jobs", Json::Arr(jobs)),
    ];
    if let Some(c) = cache {
        fields.push((
            "dfs_cache",
            Json::obj([
                ("capacity_bytes", Json::Int(c.capacity_bytes)),
                ("hits", Json::Int(c.hits)),
                ("misses", Json::Int(c.misses)),
                ("evictions", Json::Int(c.evictions)),
                ("cached_bytes", Json::Int(c.cached_bytes)),
                ("hit_rate", opt(c.hit_rate())),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Lower a [`SubmissionReport`] (plus the admission-time estimated cost)
/// to the `stats` frame's report object: tenant, the three monotonic
/// timestamps, derived waits, and the full program stats document.
pub fn report_to_json(report: &SubmissionReport, estimated_cost: f64) -> Json {
    Json::obj([
        ("tenant", Json::Str(report.tenant.clone())),
        ("queued_ns", Json::Int(report.queued_ns)),
        ("admitted_ns", Json::Int(report.admitted_ns)),
        ("completed_ns", Json::Int(report.completed_ns)),
        ("queue_wait_ns", Json::Int(report.queue_wait_ns())),
        ("service_ns", Json::Int(report.service_ns())),
        ("wall_seconds", Json::Num(report.wall_seconds)),
        ("estimated_cost", Json::Num(estimated_cost)),
        ("stats", stats_to_json(&report.stats, None)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Query {
                tenant: "t1".into(),
                weight: Some(4.0),
                sgf: "Out(x) :- R(x,y) & S(y)".into(),
            },
            Request::Query {
                tenant: "a \"quoted\" tenant".into(),
                weight: None,
                sgf: "line1\nline2".into(),
            },
            Request::Ping,
            Request::Shutdown,
        ] {
            let line = request.to_line();
            assert!(!line.contains('\n'), "one request per line: {line:?}");
            assert_eq!(Request::parse(&line).unwrap(), request);
        }
    }

    #[test]
    fn frames_round_trip() {
        let rel = Relation::from_tuples(
            "Out",
            2,
            [
                Tuple::from_ints(&[1, 2]),
                Tuple::from_ints(&[-3, 4]),
                Tuple::new(vec![Value::Int(i64::MAX), Value::str("x")]),
            ],
        )
        .unwrap();
        for frame in relation_frames(&rel) {
            let line = frame.to_line();
            assert!(!line.contains('\n'), "one frame per line: {line:?}");
            assert_eq!(Frame::parse(&line).unwrap(), frame);
        }
    }

    #[test]
    fn values_round_trip_exactly() {
        for v in [
            Value::Int(0),
            Value::Int(-1),
            Value::Int(EXACT_INT),
            Value::Int(-EXACT_INT + 1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::str(""),
            Value::str("tab\tand \"quote\""),
        ] {
            let json = value_to_json(&v);
            // Through the actual wire text, not just the Json tree.
            let wire = Json::parse(&json.to_string()).unwrap();
            assert_eq!(value_from_json(&wire).unwrap(), v, "via {json}");
        }
    }

    #[test]
    fn relation_frames_chunk_and_preserve_order() {
        let rel = Relation::from_tuples(
            "Big",
            1,
            (0..(FRAME_ROWS as i64 * 2 + 7)).map(|i| Tuple::from_ints(&[i])),
        )
        .unwrap();
        let frames = relation_frames(&rel);
        assert!(matches!(&frames[0], Frame::Rel { rows, .. } if *rows == rel.len() as u64));
        let mut rebuilt = Relation::new("Big", 1);
        let mut streamed = Vec::new();
        for frame in &frames[1..] {
            match frame {
                Frame::Rows { rows, .. } => {
                    assert!(rows.len() <= FRAME_ROWS);
                    for t in rows {
                        streamed.push(t.clone());
                        rebuilt.insert(t.clone()).unwrap();
                    }
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        // Streamed in sorted order (the Relation's canonical iteration),
        // and the rebuild is the identical relation.
        assert!(streamed.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(rebuilt, rel);
    }
}
