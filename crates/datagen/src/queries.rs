//! The paper's query suites: Table 2 (A1–A5, B1, B2), Figure 6 (C1–C4),
//! the §5.2 cost-model stress query, and the parametric families of
//! Figures 7/8.
//!
//! Each suite is packaged as a [`Workload`]: the SGF query together with
//! the [`DataSpec`] that generates its input relations. Where Figure 6
//! reuses an output name (C1 defines `Z3` twice), outputs are renamed
//! (`Z1…Z5`) preserving the dependency structure.

use gumbo_sgf::{parse_program, SgfQuery};

use crate::gen::DataSpec;

/// A query together with its dataset specification.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (e.g. `"A3"`).
    pub name: String,
    /// The SGF query.
    pub query: SgfQuery,
    /// The dataset generator.
    pub spec: DataSpec,
}

impl Workload {
    fn new(name: &str, program: &str, spec: DataSpec) -> Workload {
        let query = parse_program(program)
            .unwrap_or_else(|e| panic!("workload {name} failed to parse: {e}"));
        Workload {
            name: name.to_string(),
            query,
            spec,
        }
    }

    /// Scale the workload's tuple counts.
    pub fn with_tuples(mut self, guard_tuples: usize) -> Self {
        self.spec = self.spec.with_tuples(guard_tuples);
        self
    }

    /// Set the selectivity rate.
    pub fn with_selectivity(mut self, s: f64) -> Self {
        self.spec = self.spec.with_selectivity(s);
        self
    }
}

const GUARD4: (&str, usize) = ("R", 4);
const STUV: [(&str, usize); 4] = [("S", 1), ("T", 1), ("U", 1), ("V", 1)];

/// A1 — guard sharing: four distinct conditionals on four distinct keys.
pub fn a1() -> Workload {
    Workload::new(
        "A1",
        "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) \
         WHERE S(x) AND T(y) AND U(z) AND V(w);",
        DataSpec::new(&[GUARD4], &STUV),
    )
}

/// A2 — guard & conditional *name* sharing: one relation, four keys.
pub fn a2() -> Workload {
    Workload::new(
        "A2",
        "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) \
         WHERE S(x) AND S(y) AND S(z) AND S(w);",
        DataSpec::new(&[GUARD4], &[("S", 1)]),
    )
}

/// A3 — guard & conditional *key* sharing: four relations, one key.
pub fn a3() -> Workload {
    Workload::new(
        "A3",
        "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) \
         WHERE S(x) AND T(x) AND U(x) AND V(x);",
        DataSpec::new(&[GUARD4], &STUV),
    )
}

/// A4 — no sharing: two independent queries over disjoint relations.
pub fn a4() -> Workload {
    Workload::new(
        "A4",
        "Out1 := SELECT (x, y, z, w) FROM R(x, y, z, w) \
         WHERE S(x) AND T(y) AND U(z) AND V(w);\n\
         Out2 := SELECT (x, y, z, w) FROM G(x, y, z, w) \
         WHERE W(x) AND X(y) AND Y(z) AND Z(w);",
        DataSpec::new(
            &[GUARD4, ("G", 4)],
            &[
                ("S", 1),
                ("T", 1),
                ("U", 1),
                ("V", 1),
                ("W", 1),
                ("X", 1),
                ("Y", 1),
                ("Z", 1),
            ],
        ),
    )
}

/// A5 — conditional name sharing: two guards, identical conditionals.
pub fn a5() -> Workload {
    Workload::new(
        "A5",
        "Out1 := SELECT (x, y, z, w) FROM R(x, y, z, w) \
         WHERE S(x) AND T(y) AND U(z) AND V(w);\n\
         Out2 := SELECT (x, y, z, w) FROM G(x, y, z, w) \
         WHERE S(x) AND T(y) AND U(z) AND V(w);",
        DataSpec::new(&[GUARD4, ("G", 4)], &STUV),
    )
}

/// B1 — large conjunctive query: S, T, U, V each against all four keys.
pub fn b1() -> Workload {
    let conds: Vec<String> = ["x", "y", "z", "w"]
        .iter()
        .flat_map(|v| {
            ["S", "T", "U", "V"]
                .iter()
                .map(move |r| format!("{r}({v})"))
        })
        .collect();
    Workload::new(
        "B1",
        &format!(
            "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE {};",
            conds.join(" AND ")
        ),
        DataSpec::new(&[GUARD4], &STUV),
    )
}

/// B2 — the uniqueness query: tuples connected to *exactly one* of the
/// conditional relations through `x` (as printed in Table 2).
pub fn b2() -> Workload {
    Workload::new(
        "B2",
        "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE \
         (S(x) AND NOT T(x) AND NOT U(x) AND NOT V(x)) OR \
         (NOT S(x) AND T(x) AND NOT U(x) AND NOT V(x)) OR \
         (S(x) AND NOT T(x) AND U(x) AND NOT V(x)) OR \
         (NOT S(x) AND NOT T(x) AND NOT U(x) AND V(x));",
        DataSpec::new(&[GUARD4], &STUV),
    )
}

/// All BSGF workloads of Table 2, in order.
pub fn table2() -> Vec<Workload> {
    vec![a1(), a2(), a3(), a4(), a5(), b1(), b2()]
}

/// C1 (Fig. 6a): two independent chains plus a standalone query.
/// Outputs renamed `Z1…Z5` to avoid Figure 6's duplicate `Z3`.
pub fn c1() -> Workload {
    Workload::new(
        "C1",
        "Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);\n\
         Z2 := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);\n\
         Z3 := SELECT x FROM G(x, y, z, w) WHERE Z1(z) OR Z1(w);\n\
         Z4 := SELECT x FROM H(x, y, z, w) WHERE U(x) AND U(y);\n\
         Z5 := SELECT x FROM H(x, y, z, w) WHERE Z4(z) OR Z4(w);",
        DataSpec::new(
            &[GUARD4, ("G", 4), ("H", 4)],
            &[("S", 1), ("T", 1), ("U", 1)],
        ),
    )
}

/// C2 (Fig. 6b): three first-level queries feeding three second-level ones.
pub fn c2() -> Workload {
    Workload::new(
        "C2",
        "Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);\n\
         Z2 := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);\n\
         Z3 := SELECT x FROM H(x, y, z, w) WHERE U(x) AND U(y);\n\
         Z4 := SELECT (x, y, z, w) FROM G(x, y, z, w) WHERE Z1(x) AND Z1(y);\n\
         Z5 := SELECT (x, y, z, w) FROM H(x, y, z, w) WHERE Z2(x) AND Z2(y);\n\
         Z6 := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE Z3(x) AND Z3(y);",
        DataSpec::new(
            &[GUARD4, ("G", 4), ("H", 4)],
            &[("S", 1), ("T", 1), ("U", 1)],
        ),
    )
}

/// C3 (Fig. 6c): a three-level query with many distinct atoms.
pub fn c3() -> Workload {
    Workload::new(
        "C3",
        "Z11 := SELECT z FROM R(x, y, z, w) WHERE S(x) AND T(y);\n\
         Z12 := SELECT z FROM R(x, y, z, w) WHERE T(y);\n\
         Z13 := SELECT z FROM I(x, y, z, w) WHERE NOT S(w);\n\
         Z21 := SELECT z FROM G(x, y, z, w) WHERE Z11(x) AND U(y);\n\
         Z22 := SELECT z FROM H(x, y, z, w) WHERE U(y) OR V(y) AND Z12(x);\n\
         Z23 := SELECT z FROM R(x, y, z, w) WHERE U(x) AND T(y) AND V(z) AND Z13(w);\n\
         Z31 := SELECT z FROM I(x, y, z, w) WHERE Z22(x) AND T(x) AND V(y);",
        DataSpec::new(
            &[GUARD4, ("G", 4), ("H", 4), ("I", 4)],
            &[("S", 1), ("T", 1), ("U", 1), ("V", 1)],
        ),
    )
}

/// C4 (Fig. 6d): two levels with many overlapping disjunctive atoms.
pub fn c4() -> Workload {
    Workload::new(
        "C4",
        "Z11 := SELECT y FROM R(x, y, z, w) WHERE S(x) OR T(y);\n\
         Z12 := SELECT y FROM R(x, y, z, w) WHERE U(z) OR S(x);\n\
         Z13 := SELECT y FROM G(x, y, z, w) WHERE U(x) OR V(y);\n\
         Z14 := SELECT y FROM G(x, y, z, w) WHERE S(z) OR U(x);\n\
         Z21 := SELECT (x, y, z, w) FROM H(x, y, z, w) \
         WHERE Z11(x) OR Z12(y) OR Z13(z) OR Z14(w);",
        DataSpec::new(&[GUARD4, ("G", 4), ("H", 4)], &STUV),
    )
}

/// All SGF workloads of Figure 6, in order.
pub fn figure6() -> Vec<Workload> {
    vec![c1(), c2(), c3(), c4()]
}

/// The §5.2 cost-model stress query: 48 conditional atoms `Sᵢ(x̄ⱼ, c)` over
/// the 12 ordered pairs `x̄ⱼ` of distinct guard variables, with a constant
/// `c` that filters out *all* tuples of `S1…S4` — giving the guard a huge
/// map output ratio and the conditionals a near-zero one.
pub fn cost_model_query() -> Workload {
    let vars = ["x", "y", "z", "w"];
    let mut pairs = Vec::new();
    for a in vars {
        for b in vars {
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    assert_eq!(pairs.len(), 12);
    let mut atoms = Vec::new();
    for rel in ["S1", "S2", "S3", "S4"] {
        for (a, b) in &pairs {
            // Constant 1 never matches: generated third columns lie in the
            // guard domain permutations, which hit 1 for at most one row.
            atoms.push(format!("{rel}({a}, {b}, 1)"));
        }
    }
    Workload::new(
        "COST",
        &format!(
            "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE {};",
            atoms.join(" AND ")
        ),
        DataSpec::new(&[GUARD4], &[("S1", 3), ("S2", 3), ("S3", 3), ("S4", 3)]),
    )
}

/// The Figure 8 family: A3-like queries with `k ∈ [2, 16]` conditional
/// atoms, all on key `x`.
pub fn a3_family(k: usize) -> Workload {
    assert!(
        (1..=16).contains(&k),
        "query size family supports 1..=16 atoms"
    );
    let names: Vec<String> = (0..k).map(|i| format!("C{i}")).collect();
    let atoms: Vec<String> = names.iter().map(|n| format!("{n}(x)")).collect();
    let conds: Vec<(&str, usize)> = names.iter().map(|n| (n.as_str(), 1)).collect();
    Workload::new(
        &format!("A3x{k}"),
        &format!(
            "Out := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE {};",
            atoms.join(" AND ")
        ),
        DataSpec::new(&[GUARD4], &conds),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_sgf::DependencyGraph;

    #[test]
    fn table2_parses_and_generates() {
        for w in table2() {
            let db = w.clone().with_tuples(200).spec.database(0);
            for q in w.query.queries() {
                assert!(
                    db.get(q.guard().relation().as_str()).is_some(),
                    "{}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn a_queries_have_expected_shape() {
        assert_eq!(a1().query.len(), 1);
        assert_eq!(a1().query.queries()[0].conditional_atoms().len(), 4);
        assert_eq!(a2().query.queries()[0].conditional_atoms().len(), 4);
        assert_eq!(a4().query.len(), 2);
        assert_eq!(a5().query.len(), 2);
        assert_eq!(b1().query.queries()[0].conditional_atoms().len(), 16);
        // B2 mentions only 4 distinct atoms despite 16 literal occurrences.
        assert_eq!(b2().query.queries()[0].conditional_atoms().len(), 4);
    }

    #[test]
    fn c_queries_have_paper_dependency_structure() {
        // C1: Z1 -> Z3, Z4 -> Z5; Z2 isolated.
        let g = DependencyGraph::new(&c1().query);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(3, 4));
        assert!(g.successors(1).is_empty());
        // C2: level 1 {0,1,2} feeds level 2 {3,4,5}.
        let g2 = DependencyGraph::new(&c2().query);
        assert_eq!(g2.level_sort(), vec![vec![0, 1, 2], vec![3, 4, 5]]);
        // C3: three levels.
        let g3 = DependencyGraph::new(&c3().query);
        assert_eq!(g3.level_sort().len(), 3);
        // C4: two levels, 4 + 1.
        let g4 = DependencyGraph::new(&c4().query);
        assert_eq!(g4.level_sort(), vec![vec![0, 1, 2, 3], vec![4]]);
    }

    #[test]
    fn cost_model_query_has_48_atoms() {
        let w = cost_model_query();
        assert_eq!(w.query.queries()[0].conditional_atoms().len(), 48);
    }

    #[test]
    fn cost_model_conditionals_filter_to_nothing() {
        // The constant 1 must keep (almost) no conditional facts.
        let w = cost_model_query().with_tuples(500);
        let db = w.spec.database(0);
        let s1 = db.get("S1").unwrap();
        let matching = s1
            .iter()
            .filter(|t| t.get(2).unwrap().as_int() == Some(1))
            .count();
        assert!(matching <= 2, "expected ~0 matching tuples, got {matching}");
    }

    #[test]
    fn a3_family_sizes() {
        for k in [2, 8, 16] {
            let w = a3_family(k);
            assert_eq!(w.query.queries()[0].conditional_atoms().len(), k);
            assert_eq!(w.spec.conds.len(), k);
        }
    }

    #[test]
    fn workload_overrides_propagate() {
        let w = a1().with_tuples(123).with_selectivity(0.9);
        assert_eq!(w.spec.guard_tuples, 123);
        assert!((w.spec.selectivity - 0.9).abs() < 1e-12);
    }
}
