//! # gumbo-datagen
//!
//! Seeded workload generators reproducing the paper's experimental setup
//! (§5.1) at configurable scale:
//!
//! * guard relations of 4-ary tuples (paper: 100M tuples / 4 GB each);
//! * conditional relations with the same tuple count (paper: 1 GB each)
//!   where a configurable fraction of tuples *matches* the guard
//!   (paper default: 50%; the selectivity experiment sweeps 0.1–0.9);
//! * the complete query suites of Table 2 (A1–A5, B1, B2), Figure 6
//!   (C1–C4), the §5.2 cost-model stress query, and the parametric
//!   families behind Figures 7 and 8.

pub mod gen;
pub mod queries;

pub use gen::{CondSpec, DataSpec, GuardSpec};
pub use queries::Workload;

#[cfg(test)]
mod proptests;
