//! Property-based tests for the workload generator.

#![cfg(test)]

use std::collections::BTreeSet;

use proptest::prelude::*;

use crate::gen::DataSpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Selectivity controls the guard-match fraction for any tuple count,
    /// seed and selectivity.
    #[test]
    fn selectivity_is_respected(
        n in 200usize..2000,
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let spec = DataSpec::new(&[("R", 4)], &[("S", 1)])
            .with_tuples(n)
            .with_selectivity(sel);
        let db = spec.database(seed);
        let r = db.get("R").unwrap();
        let sv: BTreeSet<i64> = db
            .get("S")
            .unwrap()
            .iter()
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        let matched =
            r.iter().filter(|t| sv.contains(&t.get(0).unwrap().as_int().unwrap())).count();
        let frac = matched as f64 / r.len() as f64;
        prop_assert!((frac - sel).abs() < 0.1, "sel {} measured {}", sel, frac);
    }

    /// Cardinalities are exact: guards have exactly n tuples, conditionals
    /// exactly cond_tuples (distinctness holds by construction).
    #[test]
    fn cardinalities_exact(n in 100usize..1500, mult in 1usize..4, seed in 0u64..100) {
        let spec = DataSpec::new(&[("R", 4), ("G", 4)], &[("S", 1), ("T", 3)])
            .with_tuples(n)
            .with_cond_tuples(n * mult);
        let db = spec.database(seed);
        prop_assert_eq!(db.get("R").unwrap().len(), n);
        prop_assert_eq!(db.get("G").unwrap().len(), n);
        prop_assert_eq!(db.get("S").unwrap().len(), n * mult);
        prop_assert_eq!(db.get("T").unwrap().len(), n * mult);
    }

    /// Distinct guards are genuinely different relations (no accidental
    /// permutation collisions) while both stay bijective per column.
    #[test]
    fn guards_differ(n in 100usize..800) {
        let spec = DataSpec::new(&[("R", 4), ("G", 4)], &[]).with_tuples(n);
        let db = spec.database(0);
        let r = db.get("R").unwrap();
        let g = db.get("G").unwrap();
        prop_assert_ne!(r.renamed("X"), g.renamed("X"));
        for rel in [r, g] {
            let col0: BTreeSet<i64> =
                rel.iter().map(|t| t.get(0).unwrap().as_int().unwrap()).collect();
            prop_assert_eq!(col0.len(), n);
        }
    }
}
