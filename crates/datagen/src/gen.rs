//! Deterministic relation generation with controlled selectivity.
//!
//! **Guard relations**: row `i` of an `a`-ary guard has column `j` equal to
//! `(i · pⱼ) mod n` with `pⱼ` a prime coprime to `n` — every column is a
//! distinct pseudo-random *bijection* of `[0, n)`, so any set of `k`
//! distinct in-domain values matches exactly `k` guard rows in every
//! column.
//!
//! **Conditional relations**: a `selectivity` fraction of tuples is
//! *in-domain* — projections of (pseudo-randomly selected) guard rows, so
//! they genuinely match — and the rest live in `[n, 2n)`, matching
//! nothing. This realizes the paper's "50% of the conditional tuples match
//! those of the guard relation" and the selectivity-rate sweeps of §5.4.

use gumbo_common::{Database, Relation, Tuple};

/// Primes used as per-column multipliers; all exceed any practical `n`,
/// hence are coprime to it.
const COLUMN_PRIMES: [i64; 8] = [
    1_000_000_007,
    1_000_000_009,
    1_000_000_021,
    1_000_000_033,
    1_000_000_087,
    1_000_000_093,
    1_000_000_097,
    1_000_000_103,
];

/// Stride prime for picking in-domain rows.
const STRIDE_PRIME: i64 = 2_147_483_647;

/// A guard relation to generate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardSpec {
    /// Relation name.
    pub name: String,
    /// Arity (the paper uses 4).
    pub arity: usize,
}

/// A conditional relation to generate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondSpec {
    /// Relation name.
    pub name: String,
    /// Arity (the paper's workloads use 1; the cost-model query uses 3).
    pub arity: usize,
}

/// A complete dataset specification.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSpec {
    /// Guard relations.
    pub guards: Vec<GuardSpec>,
    /// Conditional relations.
    pub conds: Vec<CondSpec>,
    /// Tuples per guard relation.
    pub guard_tuples: usize,
    /// Tuples per conditional relation.
    pub cond_tuples: usize,
    /// Fraction of conditional tuples that match the guard domain.
    pub selectivity: f64,
}

impl DataSpec {
    /// A specification with the paper's default shape at 1/1000 scale:
    /// 100k-tuple guards (standing for 100M at engine scale 1000) and
    /// 50% selectivity.
    pub fn new(guards: &[(&str, usize)], conds: &[(&str, usize)]) -> Self {
        DataSpec {
            guards: guards
                .iter()
                .map(|(n, a)| GuardSpec {
                    name: (*n).to_string(),
                    arity: *a,
                })
                .collect(),
            conds: conds
                .iter()
                .map(|(n, a)| CondSpec {
                    name: (*n).to_string(),
                    arity: *a,
                })
                .collect(),
            guard_tuples: 100_000,
            cond_tuples: 100_000,
            selectivity: 0.5,
        }
    }

    /// Override tuple counts (conditionals follow guards, as in the paper).
    pub fn with_tuples(mut self, guard_tuples: usize) -> Self {
        self.guard_tuples = guard_tuples;
        self.cond_tuples = guard_tuples;
        self
    }

    /// Override the conditional tuple count independently of the guards
    /// (used by the §5.2 cost-model experiment, whose filtered conditional
    /// relations must dominate the mapper count).
    pub fn with_cond_tuples(mut self, cond_tuples: usize) -> Self {
        self.cond_tuples = cond_tuples;
        self
    }

    /// Override the selectivity rate.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&selectivity),
            "selectivity must be in [0, 1]"
        );
        self.selectivity = selectivity;
        self
    }

    /// Value of guard column `j` in row `i` for domain size `n`.
    fn guard_value(guard_idx: usize, i: usize, j: usize, n: usize) -> i64 {
        let p = COLUMN_PRIMES[(guard_idx * 3 + j) % COLUMN_PRIMES.len()];
        ((i as i64).wrapping_mul(p)).rem_euclid(n as i64)
    }

    /// Generate the database. `seed` rotates the in-domain row selection so
    /// different seeds produce different (but equally shaped) instances.
    pub fn database(&self, seed: u64) -> Database {
        let n = self.guard_tuples;
        let mut db = Database::new();
        for (g, spec) in self.guards.iter().enumerate() {
            let mut rel = Relation::new(spec.name.as_str(), spec.arity);
            for i in 0..n {
                let vals: Vec<i64> = (0..spec.arity)
                    .map(|j| Self::guard_value(g, i, j, n))
                    .collect();
                rel.insert(Tuple::from_ints(&vals))
                    .expect("generated arity is correct");
            }
            db.add_relation(rel);
        }
        // In-domain (matching) tuples are sampled from guard rows without
        // repetition, so at most `n` of them exist; any surplus tuples are
        // generated out-of-domain (they never match, but contribute input
        // bytes — the shape the §5.2 cost-model experiment needs).
        let in_domain = (((self.cond_tuples as f64) * self.selectivity).round() as usize).min(n);
        for (c, spec) in self.conds.iter().enumerate() {
            let mut rel = Relation::new(spec.name.as_str(), spec.arity);
            let offset = (seed as i64)
                .wrapping_add(c as i64)
                .wrapping_mul(STRIDE_PRIME)
                .rem_euclid(n.max(1) as i64) as usize;
            for k in 0..self.cond_tuples {
                let vals: Vec<i64> = if k < in_domain {
                    // Project a pseudo-random guard row of guard 0 onto the
                    // first `arity` columns (cycled) — guaranteed matches.
                    let row = ((k as i64).wrapping_mul(STRIDE_PRIME).rem_euclid(n as i64) as usize
                        + offset)
                        % n;
                    (0..spec.arity)
                        .map(|j| Self::guard_value(0, row, j % 4, n))
                        .collect()
                } else {
                    // Out-of-domain: values ≥ n never match any guard column.
                    (0..spec.arity).map(|j| (n + k + j) as i64).collect()
                };
                rel.insert(Tuple::from_ints(&vals))
                    .expect("generated arity is correct");
            }
            db.add_relation(rel);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn spec() -> DataSpec {
        DataSpec::new(&[("R", 4)], &[("S", 1), ("T", 1)]).with_tuples(2000)
    }

    #[test]
    fn guard_columns_are_bijections() {
        let db = spec().database(0);
        let r = db.get("R").unwrap();
        assert_eq!(r.len(), 2000);
        for j in 0..4 {
            let col: BTreeSet<i64> = r
                .iter()
                .map(|t| t.get(j).unwrap().as_int().unwrap())
                .collect();
            assert_eq!(col.len(), 2000, "column {j} not a bijection");
            assert!(col.iter().all(|&v| (0..2000).contains(&v)));
        }
    }

    #[test]
    fn selectivity_controls_match_fraction() {
        for s in [0.1, 0.5, 0.9] {
            let db = spec().with_selectivity(s).database(7);
            let r = db.get("R").unwrap();
            let sv: BTreeSet<i64> = db
                .get("S")
                .unwrap()
                .iter()
                .map(|t| t.get(0).unwrap().as_int().unwrap())
                .collect();
            // Fraction of guard rows whose column 0 value is in S.
            let matched = r
                .iter()
                .filter(|t| sv.contains(&t.get(0).unwrap().as_int().unwrap()))
                .count();
            let frac = matched as f64 / r.len() as f64;
            assert!(
                (frac - s).abs() < 0.05,
                "selectivity {s}: matched fraction {frac}"
            );
        }
    }

    #[test]
    fn selectivity_holds_for_every_column() {
        let db = spec().with_selectivity(0.5).database(3);
        let r = db.get("R").unwrap();
        let sv: BTreeSet<i64> = db
            .get("S")
            .unwrap()
            .iter()
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        for j in 0..4 {
            let matched = r
                .iter()
                .filter(|t| sv.contains(&t.get(j).unwrap().as_int().unwrap()))
                .count();
            let frac = matched as f64 / r.len() as f64;
            assert!((frac - 0.5).abs() < 0.1, "column {j}: fraction {frac}");
        }
    }

    #[test]
    fn out_of_domain_tuples_never_match() {
        let db = spec().with_selectivity(0.0).database(0);
        let r = db.get("R").unwrap();
        let sv: BTreeSet<i64> = db
            .get("S")
            .unwrap()
            .iter()
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        let matched = r
            .iter()
            .filter(|t| sv.contains(&t.get(0).unwrap().as_int().unwrap()))
            .count();
        assert_eq!(matched, 0);
    }

    #[test]
    fn different_seeds_differ_same_shape() {
        let a = spec().database(1);
        let b = spec().database(2);
        assert_ne!(a.get("S").unwrap(), b.get("S").unwrap());
        assert_eq!(a.get("S").unwrap().len(), b.get("S").unwrap().len());
        // Guards are seed-independent (shape fixtures).
        assert_eq!(a.get("R").unwrap(), b.get("R").unwrap());
    }

    #[test]
    fn same_seed_is_deterministic() {
        assert_eq!(spec().database(9), spec().database(9));
    }

    #[test]
    fn distinct_conditionals_differ() {
        let db = spec().database(4);
        assert_ne!(
            db.get("S").unwrap().renamed("X"),
            db.get("T").unwrap().renamed("X")
        );
    }

    #[test]
    fn multi_arity_conditionals_match_guard_rows() {
        let spec = DataSpec::new(&[("R", 4)], &[("P", 2)]).with_tuples(500);
        let db = spec.with_selectivity(1.0).database(0);
        let r = db.get("R").unwrap();
        let pairs: BTreeSet<(i64, i64)> = r
            .iter()
            .map(|t| {
                (
                    t.get(0).unwrap().as_int().unwrap(),
                    t.get(1).unwrap().as_int().unwrap(),
                )
            })
            .collect();
        // Every in-domain P tuple is a projection of some guard row.
        for t in db.get("P").unwrap().iter() {
            let p = (
                t.get(0).unwrap().as_int().unwrap(),
                t.get(1).unwrap().as_int().unwrap(),
            );
            assert!(pairs.contains(&p), "{p:?} not a guard projection");
        }
    }

    #[test]
    fn byte_budget_matches_paper_shape() {
        // 4-ary guard at 10 B/value: n tuples = 40n bytes; unary cond = 10n.
        let db = spec().database(0);
        assert_eq!(db.get("R").unwrap().estimated_bytes(), 2000 * 40);
        assert_eq!(db.get("S").unwrap().estimated_bytes(), 2000 * 10);
    }
}
