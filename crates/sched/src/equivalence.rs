//! Observational-equivalence checks: one definition of "identical" for
//! the scheduler's core guarantee.
//!
//! The DAG scheduler promises byte-identical DFS contents and identical
//! statistics versus round-barrier execution. Every harness that asserts
//! that promise (the `dagsched` benchmark, the scheduler unit tests, the
//! workspace-level equivalence suite) calls these two functions, so the
//! field list can never drift between checkers: a new stats field gets
//! compared everywhere or nowhere.
//!
//! The functions panic with a labeled message on the first divergence —
//! they are verification tools, not control flow.

use gumbo_mr::ProgramStats;
use gumbo_storage::Dfs;

/// Assert two DFS instances are byte-identical: same file set, same
/// relation contents and sizes, same metered I/O counters. The two sides
/// may be *different backends* (a [`gumbo_storage::SimDfs`] versus a
/// [`gumbo_storage::FileDfs`], say): the check is over the [`Dfs`]
/// contract, which is exactly what makes the scheduler's guarantee
/// backend-invariant.
///
/// # Panics
///
/// On the first divergence, naming `label` and the offending relation.
pub fn assert_identical_dfs(label: &str, expected: &dyn Dfs, actual: &dyn Dfs) {
    let names = expected.file_names();
    assert_eq!(names, actual.file_names(), "{label}: file sets differ");
    for name in &names {
        let (a, b) = (expected.peek(name).unwrap(), actual.peek(name).unwrap());
        assert_eq!(a, b, "{label}: relation {name} differs");
        assert_eq!(
            a.estimated_bytes(),
            b.estimated_bytes(),
            "{label}: relation {name} byte size differs"
        );
    }
    assert_eq!(
        expected.bytes_read(),
        actual.bytes_read(),
        "{label}: DFS read counters"
    );
    assert_eq!(
        expected.bytes_written(),
        actual.bytes_written(),
        "{label}: DFS write counters"
    );
}

/// Assert two program executions produced identical statistics: same
/// jobs in the same rounds with identical profiles, task durations and
/// record counts, and exact agreement on the paper's four metrics.
///
/// # Panics
///
/// On the first divergence, naming `label` and the offending job.
pub fn assert_identical_stats(label: &str, expected: &ProgramStats, actual: &ProgramStats) {
    assert_eq!(expected.num_jobs(), actual.num_jobs(), "{label}: job count");
    assert_eq!(
        expected.num_rounds(),
        actual.num_rounds(),
        "{label}: round count"
    );
    for (a, b) in expected.jobs.iter().zip(&actual.jobs) {
        assert_eq!(a.name, b.name, "{label}: job order");
        assert_eq!(a.round, b.round, "{label}: job {} round", a.name);
        assert_eq!(
            a.output_tuples, b.output_tuples,
            "{label}: job {} record counts",
            a.name
        );
        assert_eq!(a.profile, b.profile, "{label}: job {} profile", a.name);
        assert_eq!(
            a.map_task_durations, b.map_task_durations,
            "{label}: job {} map tasks",
            a.name
        );
        assert_eq!(
            a.reduce_task_durations, b.reduce_task_durations,
            "{label}: job {} reduce tasks",
            a.name
        );
        // Plan-time estimates are a pure function of the plan, so the
        // calibration ledger's estimated side must agree exactly.
        assert_eq!(
            a.estimated_cost, b.estimated_cost,
            "{label}: job {} estimated cost",
            a.name
        );
        // The shuffle filter is deterministic: same spec, same keys, same
        // filter bytes and the exact same suppression decisions.
        assert_eq!(
            a.filter_bytes, b.filter_bytes,
            "{label}: job {} filter bytes",
            a.name
        );
        assert_eq!(
            a.suppressed_messages, b.suppressed_messages,
            "{label}: job {} suppressed messages",
            a.name
        );
        assert_eq!(
            a.filter_probes, b.filter_probes,
            "{label}: job {} filter probes",
            a.name
        );
        assert_eq!(
            a.filter_false_positives, b.filter_false_positives,
            "{label}: job {} filter false positives",
            a.name
        );
    }
    assert!(
        (expected.net_time() - actual.net_time()).abs() < 1e-9,
        "{label}: net time {} vs {}",
        expected.net_time(),
        actual.net_time()
    );
    assert!(
        (expected.total_time() - actual.total_time()).abs() < 1e-9,
        "{label}: total time {} vs {}",
        expected.total_time(),
        actual.total_time()
    );
    assert_eq!(
        expected.input_bytes(),
        actual.input_bytes(),
        "{label}: input cost"
    );
    assert_eq!(
        expected.communication_bytes(),
        actual.communication_bytes(),
        "{label}: communication cost"
    );
}
