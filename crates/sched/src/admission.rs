//! Estimate-weighted fair-share admission: the queue between a
//! multi-tenant front door and the [`crate::DagScheduler`].
//!
//! Tenants submit work tagged with a *weight* and an *estimated cost*
//! (the estimation layer's remaining-work figure for the whole query).
//! The queue admits, at every decision point, the pending entry whose
//! tenant has consumed the least **weight-normalized estimated cost** so
//! far — cumulative admitted cost divided by tenant weight — with ties
//! broken by arrival order. Under saturation this converges to weighted
//! fair sharing: a weight-4 tenant is admitted ~4× the estimated cost of
//! a weight-1 tenant, and no tenant starves (an idle tenant's normalized
//! account stays put while the busy tenants' accounts grow past it).
//!
//! The policy is deterministic: admission order is a pure function of
//! the submission sequence (seq numbers, tenants, weights, costs) — no
//! clocks, no randomness — which is what lets the fairness property be
//! proptested exactly.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Admission-queue sizing and defaults.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Bounded queue capacity: [`AdmissionQueue::submit`] blocks while
    /// this many entries are pending (backpressure on the front door).
    pub capacity: usize,
    /// Weight used for tenants that never declared one.
    pub default_weight: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 64,
            default_weight: 1.0,
        }
    }
}

/// Submissions that carry no usable estimate are charged this much, so
/// admission degrades to weighted round-robin instead of letting a
/// zero-cost tenant be admitted forever for free.
pub const MIN_CHARGE: f64 = 1.0;

/// One pending (or admitted) unit of work, as the queue saw it.
#[derive(Debug)]
pub struct QueuedEntry<T> {
    /// Arrival order, dense from 0 — the deterministic tiebreaker.
    pub seq: u64,
    /// Who submitted.
    pub tenant: String,
    /// The tenant's weight at admission time.
    pub weight: f64,
    /// Estimated remaining work (the estimation layer's plan cost),
    /// already floored to [`MIN_CHARGE`].
    pub estimated_cost: f64,
    /// When the entry was queued (monotonic ns, obs epoch).
    pub queued_ns: u64,
    /// When the entry was admitted (monotonic ns, obs epoch). Zero
    /// until admission.
    pub admitted_ns: u64,
    /// The work itself.
    pub payload: T,
}

/// Per-tenant fair-share account.
#[derive(Debug, Clone, Copy)]
pub struct TenantAccount {
    /// The tenant's declared weight (≥ [`FairShareLedger::MIN_WEIGHT`]).
    pub weight: f64,
    /// Cumulative estimated cost admitted for this tenant.
    pub admitted_cost: f64,
    /// Number of submissions admitted for this tenant.
    pub admitted: u64,
}

impl TenantAccount {
    /// The fair-share key: admitted cost per unit of weight.
    pub fn normalized_cost(&self) -> f64 {
        self.admitted_cost / self.weight
    }
}

/// The per-tenant token accounting behind the queue. Pure and
/// synchronous — the concurrency lives in [`AdmissionQueue`] — so the
/// fairness proptests can drive it directly.
#[derive(Debug)]
pub struct FairShareLedger {
    tenants: BTreeMap<String, TenantAccount>,
    default_weight: f64,
}

impl FairShareLedger {
    /// Weights below this are clamped up; a zero/negative weight would
    /// make the normalized-cost key meaningless.
    pub const MIN_WEIGHT: f64 = 1e-6;

    /// An empty ledger.
    pub fn new(default_weight: f64) -> FairShareLedger {
        FairShareLedger {
            tenants: BTreeMap::new(),
            default_weight: default_weight.max(Self::MIN_WEIGHT),
        }
    }

    fn account_mut(&mut self, tenant: &str) -> &mut TenantAccount {
        let default_weight = self.default_weight;
        self.tenants
            .entry(tenant.to_string())
            .or_insert(TenantAccount {
                weight: default_weight,
                admitted_cost: 0.0,
                admitted: 0,
            })
    }

    /// Declare (or update) a tenant's weight. Clamped to
    /// [`Self::MIN_WEIGHT`]; non-finite weights are ignored.
    pub fn set_weight(&mut self, tenant: &str, weight: f64) {
        if weight.is_finite() {
            self.account_mut(tenant).weight = weight.max(Self::MIN_WEIGHT);
        }
    }

    /// The fair-share key for a tenant: cumulative admitted estimated
    /// cost divided by weight. Unknown tenants are at 0 (first in line).
    pub fn normalized_cost(&self, tenant: &str) -> f64 {
        self.tenants
            .get(tenant)
            .map(TenantAccount::normalized_cost)
            .unwrap_or(0.0)
    }

    /// Pick the next entry to admit from `pending`: the entry whose
    /// tenant has the smallest normalized admitted cost, ties broken by
    /// arrival seq. Returns the index into `pending`.
    pub fn pick<T>(&self, pending: &VecDeque<QueuedEntry<T>>) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ka = (self.normalized_cost(&a.tenant), a.seq);
                let kb = (self.normalized_cost(&b.tenant), b.seq);
                ka.partial_cmp(&kb).expect("finite normalized costs")
            })
            .map(|(idx, _)| idx)
    }

    /// Charge a tenant's account for an admitted entry.
    pub fn charge(&mut self, tenant: &str, estimated_cost: f64) {
        let account = self.account_mut(tenant);
        account.admitted_cost += estimated_cost.max(MIN_CHARGE);
        account.admitted += 1;
    }

    /// Every tenant's account, in tenant-name order (deterministic).
    pub fn accounts(&self) -> impl Iterator<Item = (&str, &TenantAccount)> {
        self.tenants.iter().map(|(t, a)| (t.as_str(), a))
    }

    /// The weight a tenant's account currently carries (the default for
    /// tenants that never declared one).
    pub fn account_weight(&self, tenant: &str) -> f64 {
        self.tenants
            .get(tenant)
            .map(|a| a.weight)
            .unwrap_or(self.default_weight)
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is closed (the server is draining): the submission was
    /// *not* accepted and no work is owed for it.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "admission queue is closed (draining)"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState<T> {
    pending: VecDeque<QueuedEntry<T>>,
    ledger: FairShareLedger,
    next_seq: u64,
    closed: bool,
    accepted: u64,
    admitted: u64,
}

/// A bounded, closable, fair-share admission queue.
///
/// Producers ([`AdmissionQueue::submit`]) block while the queue is at
/// capacity; consumers ([`AdmissionQueue::admit`]) block while it is
/// empty. [`AdmissionQueue::close`] starts a drain: further submissions
/// are rejected with [`SubmitError::Closed`], already-accepted entries
/// keep flowing to consumers, and `admit` returns `None` once the queue
/// is closed *and* empty — so every accepted entry is admitted exactly
/// once (zero lost work).
pub struct AdmissionQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    /// Signalled when capacity frees up (producers wait here).
    space: Condvar,
    /// Signalled when an entry arrives or the queue closes (consumers
    /// wait here).
    items: Condvar,
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish()
    }
}

impl<T> AdmissionQueue<T> {
    /// An empty open queue.
    pub fn new(config: AdmissionConfig) -> AdmissionQueue<T> {
        AdmissionQueue {
            capacity: config.capacity.max(1),
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                ledger: FairShareLedger::new(config.default_weight),
                next_seq: 0,
                closed: false,
                accepted: 0,
                admitted: 0,
            }),
            space: Condvar::new(),
            items: Condvar::new(),
        }
    }

    /// Queue one unit of work for `tenant`. `weight`, when given,
    /// (re)declares the tenant's weight; `estimated_cost` is the
    /// estimation layer's remaining-work figure (floored to
    /// [`MIN_CHARGE`] at charge time). Blocks while the queue is full;
    /// returns the entry's arrival seq, or [`SubmitError::Closed`] once
    /// a drain has started.
    pub fn submit(
        &self,
        tenant: &str,
        weight: Option<f64>,
        estimated_cost: f64,
        payload: T,
    ) -> Result<u64, SubmitError> {
        let mut st = self.state.lock().expect("unpoisoned admission queue");
        loop {
            if st.closed {
                return Err(SubmitError::Closed);
            }
            if st.pending.len() < self.capacity {
                break;
            }
            st = self.space.wait(st).expect("unpoisoned admission queue");
        }
        if let Some(w) = weight {
            st.ledger.set_weight(tenant, w);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.accepted += 1;
        let account_weight = st.ledger.account_weight(tenant);
        st.pending.push_back(QueuedEntry {
            seq,
            tenant: tenant.to_string(),
            weight: account_weight,
            estimated_cost: if estimated_cost.is_finite() {
                estimated_cost.max(MIN_CHARGE)
            } else {
                MIN_CHARGE
            },
            queued_ns: gumbo_obs::now_ns(),
            admitted_ns: 0,
            payload,
        });
        drop(st);
        self.items.notify_one();
        Ok(seq)
    }

    /// Take the next entry under the fair-share policy, charging its
    /// tenant's account. Blocks while the queue is open and empty;
    /// returns `None` once the queue is closed *and* drained.
    pub fn admit(&self) -> Option<QueuedEntry<T>> {
        let mut st = self.state.lock().expect("unpoisoned admission queue");
        loop {
            if let Some(idx) = st.ledger.pick(&st.pending) {
                let mut entry = st.pending.remove(idx).expect("picked index in bounds");
                entry.weight = st.ledger.account_weight(&entry.tenant);
                st.ledger.charge(&entry.tenant, entry.estimated_cost);
                st.admitted += 1;
                entry.admitted_ns = gumbo_obs::now_ns();
                drop(st);
                self.space.notify_one();
                return Some(entry);
            }
            if st.closed {
                return None;
            }
            st = self.items.wait(st).expect("unpoisoned admission queue");
        }
    }

    /// Start the drain: reject new submissions, keep serving the
    /// backlog. Idempotent.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("unpoisoned admission queue");
        st.closed = true;
        drop(st);
        // Wake everyone: blocked producers must see Closed, blocked
        // consumers must re-check for the None exit.
        self.items.notify_all();
        self.space.notify_all();
    }

    /// Has [`AdmissionQueue::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.state
            .lock()
            .expect("unpoisoned admission queue")
            .closed
    }

    /// Entries currently pending (accepted, not yet admitted).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .expect("unpoisoned admission queue")
            .pending
            .len()
    }

    /// Total entries ever accepted.
    pub fn accepted(&self) -> u64 {
        self.state
            .lock()
            .expect("unpoisoned admission queue")
            .accepted
    }

    /// Total entries ever admitted.
    pub fn admitted(&self) -> u64 {
        self.state
            .lock()
            .expect("unpoisoned admission queue")
            .admitted
    }

    /// Snapshot of every tenant's account, in tenant-name order:
    /// `(tenant, weight, admitted_cost, admitted)`.
    pub fn accounts(&self) -> Vec<(String, f64, f64, u64)> {
        let st = self.state.lock().expect("unpoisoned admission queue");
        st.ledger
            .accounts()
            .map(|(t, a)| (t.to_string(), a.weight, a.admitted_cost, a.admitted))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(seq: u64, tenant: &str, cost: f64) -> QueuedEntry<()> {
        QueuedEntry {
            seq,
            tenant: tenant.to_string(),
            weight: 1.0,
            estimated_cost: cost,
            queued_ns: 0,
            admitted_ns: 0,
            payload: (),
        }
    }

    #[test]
    fn ledger_prefers_least_normalized_cost_then_arrival_order() {
        let mut ledger = FairShareLedger::new(1.0);
        ledger.set_weight("heavy", 4.0);
        let mut pending = VecDeque::new();
        pending.push_back(entry(0, "light", 10.0));
        pending.push_back(entry(1, "heavy", 10.0));
        // Fresh accounts: both at 0, seq breaks the tie.
        assert_eq!(ledger.pick(&pending), Some(0));
        ledger.charge("light", 10.0);
        // light is at 10/1, heavy at 0/4 — heavy goes next.
        assert_eq!(ledger.pick(&pending), Some(1));
        ledger.charge("heavy", 10.0);
        // light 10.0 vs heavy 2.5: heavy keeps winning until it has
        // consumed ~4× light's cost.
        assert!(ledger.normalized_cost("heavy") < ledger.normalized_cost("light"));
    }

    #[test]
    fn unestimated_work_is_charged_the_floor() {
        let mut ledger = FairShareLedger::new(1.0);
        ledger.charge("t", 0.0);
        assert_eq!(ledger.normalized_cost("t"), MIN_CHARGE);
    }

    #[test]
    fn queue_admits_everything_accepted_before_close() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(AdmissionConfig::default());
        for i in 0..5 {
            q.submit("t", None, 1.0, i).unwrap();
        }
        q.close();
        assert_eq!(q.submit("t", None, 1.0, 99), Err(SubmitError::Closed));
        let mut drained = Vec::new();
        while let Some(e) = q.admit() {
            drained.push(e.payload);
        }
        assert_eq!(drained.len(), 5);
        assert_eq!(q.accepted(), 5);
        assert_eq!(q.admitted(), 5);
        assert!(!drained.contains(&99));
    }

    #[test]
    fn timestamps_are_monotonic_across_queue_and_admit() {
        let q: AdmissionQueue<()> = AdmissionQueue::new(AdmissionConfig::default());
        q.submit("t", None, 1.0, ()).unwrap();
        let e = q.admit().unwrap();
        assert!(e.admitted_ns >= e.queued_ns);
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(AdmissionConfig {
            capacity: 1,
            default_weight: 1.0,
        }));
        q.submit("t", None, 1.0, 0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.submit("t", None, 1.0, 1))
        };
        // The producer is blocked on the full queue until we admit.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 1, "second submit must wait for space");
        assert_eq!(q.admit().unwrap().payload, 0);
        producer.join().unwrap().unwrap();
        assert_eq!(q.admit().unwrap().payload, 1);
    }

    #[test]
    fn weighted_tenants_share_by_weight_under_backlog() {
        let q: AdmissionQueue<()> = AdmissionQueue::new(AdmissionConfig {
            capacity: 1024,
            default_weight: 1.0,
        });
        // A saturated backlog: 30 unit-cost submissions per tenant.
        for _ in 0..30 {
            q.submit("w1", Some(1.0), 1.0, ()).unwrap();
            q.submit("w4", Some(4.0), 1.0, ()).unwrap();
        }
        // After 20 admissions the 4-weight tenant must hold ~4/5 of the
        // admitted cost.
        let mut share = std::collections::BTreeMap::new();
        for _ in 0..20 {
            let e = q.admit().unwrap();
            *share.entry(e.tenant).or_insert(0.0) += e.estimated_cost;
        }
        let w1 = share.get("w1").copied().unwrap_or(0.0);
        let w4 = share.get("w4").copied().unwrap_or(0.0);
        let ratio = w4 / w1.max(1.0);
        assert!(
            (3.0..=5.0).contains(&ratio),
            "w4:w1 admitted-cost ratio {ratio} should be near 4"
        );
    }
}
