//! The DAG scheduler: dependency-driven execution on a bounded worker
//! pool over a shared [`Dfs`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Instant;

use gumbo_common::{GumboError, Result};
use gumbo_mr::dag::JobFootprint;
use gumbo_mr::metrics::RoundStats;
use gumbo_mr::{
    commit_job, plan_job, Executor, ExecutorKind, JobDag, JobEstimate, JobStats, MrProgram,
    ProgramStats,
};
use gumbo_storage::Dfs;

use crate::placement::PlacementPolicy;
use crate::submission::{Submission, SubmissionReport};

/// Scheduler sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// How many jobs may run concurrently (the worker-pool size).
    /// `0` = auto: the machine's available parallelism.
    pub max_concurrent_jobs: usize,
    /// Worker threads *inside* each job when the underlying runtime is
    /// the parallel executor (`0` = keep the executor's own sizing). The
    /// simulated runtime computes each job on one thread regardless.
    ///
    /// The scheduler runs jobs on whatever executor it is handed; this
    /// knob takes effect where the executor is *built* — resolve it with
    /// [`SchedulerConfig::executor_kind`] (as `GumboEngine::runtime` and
    /// the `dagsched` bench do) before building.
    pub threads_per_job: usize,
    /// Shuffle memory budget for scheduled execution. Like
    /// `threads_per_job`, this takes effect where the executor is built —
    /// resolve it with [`SchedulerConfig::engine_config`]. Because the
    /// scheduler hands *one* executor to all its workers, the budget is
    /// shared by (and collectively bounds) every concurrently running
    /// job. Unlimited by default, deferring to the engine configuration.
    pub mem_budget: gumbo_mr::MemBudget,
    /// How ready jobs are ordered for placement (`--placement` on the
    /// CLI): FIFO (the cost-blind baseline), shortest-job-first, or
    /// critical-path — the latter two driven by the estimation layer's
    /// per-job annotations. Answers and non-timing statistics are
    /// identical under every policy.
    pub placement: PlacementPolicy,
    /// Total cores the scheduler may spread over concurrently running
    /// jobs. `0` (the default) disables cost-driven sizing and keeps the
    /// executor's own per-job pool. When set, each job's worker pool is
    /// its estimate's suggested parallelism clamped to an equal share of
    /// this budget (`core_budget / worker-pool size`, at least 1) — so a
    /// full pool of jobs collectively stays within the core budget.
    /// Only the parallel runtime has per-job pools to size; the
    /// simulator ignores the hint.
    pub core_budget: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent_jobs: 4,
            threads_per_job: 1,
            mem_budget: gumbo_mr::MemBudget::UNLIMITED,
            placement: PlacementPolicy::Fifo,
            core_budget: 0,
        }
    }
}

impl SchedulerConfig {
    /// Apply this scheduler's memory budget (when limited) to a base
    /// engine configuration, for building the executor scheduled jobs
    /// run on.
    pub fn engine_config(&self, base: gumbo_mr::EngineConfig) -> gumbo_mr::EngineConfig {
        if self.mem_budget.is_limited() {
            gumbo_mr::EngineConfig {
                mem_budget: self.mem_budget,
                ..base
            }
        } else {
            base
        }
    }

    /// The worker-pool size this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        if self.max_concurrent_jobs > 0 {
            return self.max_concurrent_jobs;
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The executor kind jobs should run on under this scheduler: a
    /// parallel runtime is resized to [`SchedulerConfig::threads_per_job`]
    /// threads (when set), anything else passes through.
    pub fn executor_kind(&self, base: ExecutorKind) -> ExecutorKind {
        match (base, self.threads_per_job) {
            (ExecutorKind::Parallel { .. }, t) if t > 0 => ExecutorKind::Parallel { threads: t },
            (kind, _) => kind,
        }
    }

    /// Builder-style: set the shuffle memory budget for scheduled
    /// execution (shared by every concurrently running job).
    pub fn with_mem_budget(mut self, budget: gumbo_mr::MemBudget) -> Self {
        self.mem_budget = budget;
        self
    }

    /// Builder-style: set the placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Per-job worker-pool size under the total-core budget: the job's
    /// estimated widest phase ([`JobEstimate::suggested_parallelism`]),
    /// clamped to an equal share of [`SchedulerConfig::core_budget`]
    /// across the worker pool. Returns `0` ("keep the executor's own
    /// sizing") when cost-driven sizing is disabled.
    pub fn threads_for(&self, estimate: Option<&JobEstimate>) -> usize {
        if self.core_budget == 0 {
            return 0;
        }
        let share = (self.core_budget / self.effective_workers().max(1)).max(1);
        match estimate {
            Some(e) => e.suggested_parallelism.clamp(1, share),
            None => share,
        }
    }
}

/// A global job id: which submission, which node within it.
#[derive(Debug, Clone, Copy)]
struct JobRef {
    sub: usize,
    node: usize,
}

/// What [`DagScheduler::run`] reports per DAG.
struct DagRun {
    stats: ProgramStats,
    wall_seconds: f64,
    /// obs-epoch timestamp of the DAG's last commit.
    completed_ns: u64,
}

/// Shared scheduling state, guarded by one mutex + condvar.
struct SchedState {
    /// Unmet-dependency counts, indexed by global job id.
    indegree: Vec<usize>,
    /// Per-submission ready queues of global job ids (FIFO within a
    /// submission; fairness decides *between* submissions).
    ready: Vec<VecDeque<usize>>,
    /// Per-submission currently-running job counts.
    running: Vec<usize>,
    /// Per-submission completed job counts.
    completed: Vec<usize>,
    /// Collected statistics, indexed by global job id.
    results: Vec<Option<JobStats>>,
    /// Per-submission completion instants (set when the last job commits).
    finished_at: Vec<Option<Instant>>,
    /// Per-submission completion timestamps on the obs monotonic clock
    /// ([`gumbo_obs::now_ns`]), for [`SubmissionReport::completed_ns`].
    finished_ns: Vec<Option<u64>>,
    /// Jobs not yet completed.
    remaining: usize,
    /// First failure; stops admission of further jobs.
    error: Option<GumboError>,
}

impl SchedState {
    /// Fair admission, policy placement: among submissions with ready
    /// jobs, pick the one with the fewest running jobs (ties: fewest
    /// completed, then lowest id — round-robin-ish for symmetric
    /// tenants); *within* it, pick the ready job the placement policy
    /// prefers. Returns the claimed global job id.
    fn claim_next(&mut self, policy: PlacementPolicy, priority: &[f64]) -> Option<usize> {
        let sub = (0..self.ready.len())
            .filter(|&s| !self.ready[s].is_empty())
            .min_by_key(|&s| (self.running[s], self.completed[s], s))?;
        let queue = &mut self.ready[sub];
        // One selection rule, per-policy key: smallest key wins, ties
        // break on the lowest gid (= admission order), so unannotated
        // DAGs degrade to deterministic FIFO. `sjf` prefers the smallest
        // estimated cost, `cp` the longest estimated path to a sink;
        // `fifo` takes the front of the queue (arrival order) without
        // consulting priorities at all.
        let pos = match policy {
            PlacementPolicy::Fifo => 0,
            PlacementPolicy::Sjf | PlacementPolicy::CriticalPath => {
                let key = |gid: usize| match policy {
                    PlacementPolicy::Sjf => priority[gid],
                    _ => -priority[gid],
                };
                queue
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        (key(a), a)
                            .partial_cmp(&(key(b), b))
                            .expect("finite priorities")
                    })
                    .map(|(pos, _)| pos)
                    .expect("non-empty queue")
            }
        };
        let gid = queue.remove(pos).expect("position in bounds");
        self.running[sub] += 1;
        Some(gid)
    }
}

/// The dependency-driven scheduler.
///
/// Jobs run the moment their inputs are materialized, on a pool of at
/// most [`SchedulerConfig::max_concurrent_jobs`] workers. The DFS is
/// shared directly between workers: every [`Dfs`] method takes `&self`
/// and synchronizes internally (byte metering is atomic), so planning,
/// the lock-free compute phases, and commits all run against the same
/// `&dyn Dfs` with no scheduler-level lock. Per-job statistics are
/// identical to round-barrier execution because the metering pipeline is
/// untouched — the scheduler only decides *when* each job runs — and
/// backend-invariant: a durable [`gumbo_storage::FileDfs`] meters the
/// same logical bytes as the in-memory [`gumbo_storage::SimDfs`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DagScheduler {
    /// Sizing knobs.
    pub config: SchedulerConfig,
}

impl DagScheduler {
    /// Create a scheduler.
    pub fn new(config: SchedulerConfig) -> DagScheduler {
        DagScheduler { config }
    }

    /// Execute one DAG to completion, returning statistics identical to
    /// what the round-barrier path would produce for the source program.
    pub fn execute(
        &self,
        executor: &dyn Executor,
        dfs: &dyn Dfs,
        dag: &JobDag,
    ) -> Result<ProgramStats> {
        let dags = [dag];
        let mut stats = self.run(executor, dfs, &dags, &["default"])?;
        Ok(stats.pop().expect("one dag in, one stats out").stats)
    }

    /// Lower a program and execute it as a DAG.
    pub fn execute_program(
        &self,
        executor: &dyn Executor,
        dfs: &dyn Dfs,
        program: MrProgram,
    ) -> Result<ProgramStats> {
        self.execute(executor, dfs, &program.into_dag())
    }

    /// Execute many tenants' submissions concurrently on the shared pool
    /// with fair admission, returning per-submission statistics in
    /// admission order.
    pub fn execute_many(
        &self,
        executor: &dyn Executor,
        dfs: &dyn Dfs,
        submissions: &[Submission],
    ) -> Result<Vec<SubmissionReport>> {
        let dags: Vec<&JobDag> = submissions.iter().map(|s| &s.dag).collect();
        let tenants: Vec<&str> = submissions.iter().map(|s| s.tenant.as_str()).collect();
        // Direct execute_many calls skip any admission queue, so the
        // whole batch queues and admits at the scheduler's start; a
        // front-end with a real queue (gumbo-serve) builds its reports
        // from the queue's own timestamps instead.
        let admitted_ns = gumbo_obs::now_ns();
        let stats = self.run(executor, dfs, &dags, &tenants)?;
        Ok(submissions
            .iter()
            .zip(stats)
            .map(|(sub, dag_run)| SubmissionReport {
                tenant: sub.tenant.clone(),
                stats: dag_run.stats,
                wall_seconds: dag_run.wall_seconds,
                queued_ns: admitted_ns,
                admitted_ns,
                completed_ns: dag_run.completed_ns,
            })
            .collect())
    }

    /// The scheduling core: run every job of every DAG, respecting
    /// intra-DAG dependency edges and serializing cross-DAG conflicts in
    /// admission order. Returns per-DAG statistics and completion times.
    fn run(
        &self,
        executor: &dyn Executor,
        dfs: &dyn Dfs,
        dags: &[&JobDag],
        tenants: &[&str],
    ) -> Result<Vec<DagRun>> {
        debug_assert_eq!(dags.len(), tenants.len());
        // Global ids: DAGs flattened in admission order.
        let mut jobs: Vec<JobRef> = Vec::new();
        let mut offset = vec![0usize; dags.len()];
        for (s, dag) in dags.iter().enumerate() {
            offset[s] = jobs.len();
            jobs.extend((0..dag.len()).map(|node| JobRef { sub: s, node }));
            gumbo_obs::event("sched:submit", |f| {
                f.str("tenant", tenants[s]);
                f.u64("jobs", dag.len() as u64);
                f.str("policy", self.config.placement.label());
            });
        }
        let total = jobs.len();

        // Dependency wiring: intra-DAG edges come from the DAG itself;
        // cross-DAG conflicts (shared relation, at least one side writing)
        // serialize in admission order, so non-independent submissions
        // stay correct — they just lose concurrency. Footprints are
        // captured once per job: the cross check is O(pairs) set lookups.
        let footprints: Vec<JobFootprint> = if dags.len() > 1 {
            jobs.iter()
                .map(|j| JobFootprint::of(&dags[j.sub].node(j.node).job))
                .collect()
        } else {
            Vec::new()
        };
        let mut indegree = vec![0usize; total];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
        // Global dependency lists (intra-DAG edges + cross-DAG conflict
        // edges), kept for the predicted-net-time simulation below so
        // the prediction sees exactly the constraints the scheduler
        // enforces.
        let mut global_deps: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (gid, j) in jobs.iter().enumerate() {
            let node = dags[j.sub].node(j.node);
            indegree[gid] = node.deps().len();
            for &d in node.deps() {
                dependents[offset[j.sub] + d].push(gid);
                global_deps[gid].push(offset[j.sub] + d);
            }
            if !footprints.is_empty() {
                for (earlier_gid, e) in jobs.iter().enumerate().take(gid) {
                    if e.sub != j.sub && footprints[earlier_gid].conflicts_with(&footprints[gid]) {
                        indegree[gid] += 1;
                        dependents[earlier_gid].push(gid);
                        global_deps[gid].push(earlier_gid);
                    }
                }
            }
            gumbo_obs::event("sched:admit", |f| {
                f.str("tenant", tenants[j.sub]);
                f.str("job", &node.job.name);
                f.u64("deps", indegree[gid] as u64);
            });
        }

        // Placement priorities from the estimation layer's annotations.
        // Estimates are attached to jobs at plan time, so priorities are
        // a pure function of the DAGs — invariant under any ready-queue
        // order, which is what keeps every policy observationally
        // identical.
        let policy = self.config.placement;
        let priority: Vec<f64> = match policy {
            PlacementPolicy::Fifo => vec![0.0; total],
            PlacementPolicy::Sjf => jobs
                .iter()
                .map(|j| {
                    dags[j.sub]
                        .node(j.node)
                        .estimate()
                        .map(|e| e.total_cost)
                        // Unannotated jobs sort last; ties fall back to
                        // admission order.
                        .unwrap_or(f64::INFINITY)
                })
                .collect(),
            PlacementPolicy::CriticalPath => {
                let mut cp = vec![0.0; total];
                for (s, dag) in dags.iter().enumerate() {
                    for (node, len) in dag.critical_paths().into_iter().enumerate() {
                        cp[offset[s] + node] = len;
                    }
                }
                cp
            }
        };

        let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); dags.len()];
        for (gid, j) in jobs.iter().enumerate() {
            if indegree[gid] == 0 {
                ready[j.sub].push_back(gid);
                gumbo_obs::event("sched:ready", |f| {
                    f.str("tenant", tenants[j.sub]);
                    f.str("job", &dags[j.sub].node(j.node).job.name);
                });
            }
        }

        let state = Mutex::new(SchedState {
            indegree,
            ready,
            running: vec![0; dags.len()],
            completed: vec![0; dags.len()],
            results: (0..total).map(|_| None).collect(),
            finished_at: vec![None; dags.len()],
            finished_ns: vec![None; dags.len()],
            remaining: total,
            error: None,
        });
        let work_available = Condvar::new();
        let started = Instant::now();
        let started_ns = gumbo_obs::now_ns();

        let workers = self.config.effective_workers().max(1).min(total.max(1));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    loop {
                        let gid = {
                            let mut st = state.lock().expect("unpoisoned scheduler state");
                            loop {
                                if st.error.is_some() || st.remaining == 0 {
                                    return;
                                }
                                if let Some(gid) = st.claim_next(policy, &priority) {
                                    break gid;
                                }
                                st = work_available.wait(st).expect("unpoisoned scheduler state");
                            }
                        };

                        let j = jobs[gid];
                        let node = dags[j.sub].node(j.node);
                        // plan → compute → commit, all against the shared
                        // `&dyn Dfs` (internally synchronized). The job's
                        // stats carry its original round, keeping per-job
                        // accounting identical to the barrier path. The per-job worker count comes
                        // from the job's estimate under the core budget
                        // (0 = the executor's own sizing); thread counts
                        // can never change answers or metered statistics.
                        let threads = self.config.threads_for(node.estimate());
                        gumbo_obs::event("sched:claim", |f| {
                            f.str("tenant", tenants[j.sub]);
                            f.str("job", &node.job.name);
                            f.str("policy", policy.label());
                        });
                        gumbo_obs::event("sched:threads_assigned", |f| {
                            f.str("tenant", tenants[j.sub]);
                            f.str("job", &node.job.name);
                            f.u64("threads", threads as u64);
                        });
                        let outcome = (|| {
                            // The whole claimed execution runs under one
                            // "job" span on this worker's lane, so the
                            // plan/phase/commit spans nest beneath the
                            // claim that scheduled them.
                            let _span = gumbo_obs::span_with("job", |f| {
                                f.str("tenant", tenants[j.sub]);
                                f.str("job", &node.job.name);
                                f.u64("round", node.round as u64);
                                if let Some(e) = node.estimate() {
                                    f.f64("estimated_cost", e.total_cost);
                                }
                            });
                            let plan = plan_job(executor.config(), dfs, &node.job)?;
                            let computed = executor.run_phases_with(&node.job, plan, threads)?;
                            commit_job(executor.config(), dfs, &node.job, node.round, computed)
                        })();

                        let mut st = state.lock().expect("unpoisoned scheduler state");
                        st.running[j.sub] -= 1;
                        match outcome {
                            Ok(stats) => {
                                gumbo_obs::event("sched:complete", |f| {
                                    f.str("tenant", tenants[j.sub]);
                                    f.str("job", &node.job.name);
                                    f.f64("observed_cost", stats.total_cost);
                                });
                                st.results[gid] = Some(stats);
                                st.completed[j.sub] += 1;
                                st.remaining -= 1;
                                if st.completed[j.sub] == dags[j.sub].len() {
                                    st.finished_at[j.sub] = Some(Instant::now());
                                    st.finished_ns[j.sub] = Some(gumbo_obs::now_ns());
                                }
                                for &dep in &dependents[gid] {
                                    st.indegree[dep] -= 1;
                                    if st.indegree[dep] == 0 {
                                        st.ready[jobs[dep].sub].push_back(dep);
                                        gumbo_obs::event("sched:ready", |f| {
                                            let d = jobs[dep];
                                            f.str("tenant", tenants[d.sub]);
                                            f.str("job", &dags[d.sub].node(d.node).job.name);
                                        });
                                    }
                                }
                            }
                            Err(e) => {
                                st.error.get_or_insert(e);
                            }
                        }
                        drop(st);
                        work_available.notify_all();
                    }
                });
            }
        });

        let state = state.into_inner().expect("unpoisoned scheduler state");
        if let Some(e) = state.error {
            return Err(e);
        }

        // Assemble per-DAG statistics: jobs in flat (round) order, and
        // per-round wall-clock accounting reconstructed exactly like the
        // round-barrier executor computes it.
        let cluster = executor.config().cluster;
        let overhead = executor.config().constants.job_overhead;

        // Predicted DAG net time: list-schedule *all* admitted jobs —
        // intra-DAG edges, cross-submission conflict edges, and the
        // shared pool of job slots, exactly the constraints the real
        // scheduler enforced — pricing each job as the per-round model
        // prices a single-job round (overhead + pooled map/reduce
        // makespans). A submission's prediction is the finish time of
        // its last job from admission, so it is directly comparable to
        // its reported wall clock. On a chain with one slot the
        // prediction coincides with per-round net time; with slack in
        // the DAG and slots > 1 it is what barrier-free overlap should
        // achieve.
        let durations: Vec<f64> = (0..total)
            .map(|gid| {
                let js = state.results[gid].as_ref().expect("all jobs completed");
                RoundStats::pooled(std::iter::once(js), cluster, overhead).net_time()
            })
            .collect();
        let finish_times = gumbo_mr::estimate::list_schedule_finish_times_by(
            &durations,
            &global_deps,
            self.config.effective_workers(),
            |_| 0.0,
        );

        let mut out = Vec::with_capacity(dags.len());
        for (s, dag) in dags.iter().enumerate() {
            let job_stats: Vec<JobStats> = (0..dag.len())
                .map(|node| {
                    state.results[offset[s] + node]
                        .clone()
                        .expect("all jobs completed")
                })
                .collect();
            let mut stats = ProgramStats::default();
            for round in 0..dag.num_rounds() {
                stats.round_stats.push(RoundStats::pooled(
                    job_stats.iter().filter(|js| js.round == round),
                    cluster,
                    overhead,
                ));
            }
            stats.predicted_net_time = Some(
                (0..dag.len())
                    .map(|node| finish_times[offset[s] + node])
                    .fold(0.0, f64::max),
            );
            stats.jobs = job_stats;
            let wall = state.finished_at[s]
                .map(|t| t.duration_since(started).as_secs_f64())
                .unwrap_or(0.0);
            out.push(DagRun {
                stats,
                wall_seconds: wall,
                // Empty DAGs complete the moment the scheduler starts.
                completed_ns: state.finished_ns[s].unwrap_or(started_ns),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Fact, Relation, RelationName, Tuple};
    use gumbo_mr::{EngineConfig, Job, JobConfig, Mapper, Message, Reducer, SimulatedExecutor};
    use gumbo_storage::SimDfs;

    /// Copies every input tuple to the job's single output relation.
    struct Copy;
    impl Mapper for Copy {
        fn map(&self, fact: &Fact, _: u64, emit: &mut dyn FnMut(Tuple, Message)) {
            emit(fact.tuple.clone(), Message::Assert { cond: 0 });
        }
    }
    struct CopyTo(RelationName);
    impl Reducer for CopyTo {
        fn reduce(&self, key: &Tuple, _: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
            emit(&self.0, key.clone());
        }
    }

    fn copy_job(name: &str, input: &str, output: &str) -> Job {
        Job {
            name: name.into(),
            inputs: vec![input.into()],
            outputs: vec![(output.into(), 2)],
            mapper: Box::new(Copy),
            reducer: Box::new(CopyTo(output.into())),
            config: JobConfig::default(),
            estimate: None,
            filter: None,
        }
    }

    fn dfs_with(names: &[&str]) -> SimDfs {
        let dfs = SimDfs::new();
        for (i, name) in names.iter().enumerate() {
            let base = 10 * i as i64;
            dfs.store(
                Relation::from_tuples(*name, 2, (0..50).map(|j| Tuple::from_ints(&[base + j, j])))
                    .unwrap(),
            );
        }
        dfs
    }

    fn executor() -> SimulatedExecutor {
        SimulatedExecutor::new(EngineConfig::unscaled())
    }

    /// R → X → Z and R → Y → Z: the diamond must end with Z built from
    /// both X and Y, for every pool size.
    fn diamond() -> MrProgram {
        let mut p = MrProgram::new();
        p.push_round(vec![copy_job("x", "R", "X"), copy_job("y", "R", "Y")]);
        p.push_round(vec![copy_job("zx", "X", "ZX"), copy_job("zy", "Y", "ZY")]);
        p
    }

    #[test]
    fn diamond_matches_round_barrier_exactly() {
        let exec = executor();
        let barrier_dfs = dfs_with(&["R"]);
        let barrier = exec.execute(&barrier_dfs, &diamond()).unwrap();

        for workers in [1usize, 2, 8] {
            let sched = DagScheduler::new(SchedulerConfig {
                max_concurrent_jobs: workers,
                ..SchedulerConfig::default()
            });
            let dfs = dfs_with(&["R"]);
            let stats = sched.execute_program(&exec, &dfs, diamond()).unwrap();

            let label = format!("diamond x{workers}");
            crate::equivalence::assert_identical_dfs(&label, &barrier_dfs, &dfs);
            crate::equivalence::assert_identical_stats(&label, &barrier, &stats);
        }
    }

    #[test]
    fn errors_propagate_and_dfs_survives() {
        struct Bad;
        impl Reducer for Bad {
            fn reduce(&self, _: &Tuple, _: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
                emit(&"Undeclared".into(), Tuple::from_ints(&[1]));
            }
        }
        let mut p = MrProgram::new();
        p.push_job(copy_job("ok", "R", "X"));
        p.push_job(Job {
            name: "bad".into(),
            inputs: vec!["X".into()],
            outputs: vec![],
            mapper: Box::new(Copy),
            reducer: Box::new(Bad),
            config: JobConfig::default(),
            estimate: None,
            filter: None,
        });
        let dfs = dfs_with(&["R"]);
        let err = DagScheduler::default()
            .execute_program(&executor(), &dfs, p)
            .unwrap_err();
        assert!(err.to_string().contains("Undeclared"), "{err}");
        // The DFS is shared in place, so even though the run failed the
        // completed job's output is visible.
        assert!(dfs.exists(&"X".into()));
    }

    #[test]
    fn multi_tenant_submissions_report_separately() {
        let dfs = dfs_with(&["R", "S"]);
        // Tenant a: R → A1 → A2 (a chain); tenant b: S → B1 (one job).
        let mut pa = MrProgram::new();
        pa.push_job(copy_job("a1", "R", "A1"));
        pa.push_job(copy_job("a2", "A1", "A2"));
        let mut pb = MrProgram::new();
        pb.push_job(copy_job("b1", "S", "B1"));

        let subs = vec![Submission::new("a", pa), Submission::new("b", pb)];
        let reports = DagScheduler::default()
            .execute_many(&executor(), &dfs, &subs)
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].tenant, "a");
        assert_eq!(reports[0].stats.num_jobs(), 2);
        assert_eq!(reports[0].stats.num_rounds(), 2);
        assert_eq!(reports[1].tenant, "b");
        assert_eq!(reports[1].stats.num_jobs(), 1);
        assert!(reports.iter().all(|r| r.wall_seconds >= 0.0));
        assert_eq!(dfs.peek(&"A2".into()).unwrap().len(), 50);
        assert_eq!(dfs.peek(&"B1".into()).unwrap().len(), 50);
    }

    #[test]
    fn cross_submission_conflicts_serialize_in_admission_order() {
        // Both tenants write Out; admission order must win, exactly as if
        // the two programs had run back to back.
        let dfs = dfs_with(&["R", "S"]);
        let mut p1 = MrProgram::new();
        p1.push_job(copy_job("first", "R", "Out"));
        let mut p2 = MrProgram::new();
        p2.push_job(copy_job("second", "S", "Out"));
        let subs = vec![Submission::new("t1", p1), Submission::new("t2", p2)];
        DagScheduler::default()
            .execute_many(&executor(), &dfs, &subs)
            .unwrap();
        // S's tuples (base 10) won: the later submission overwrote.
        assert!(dfs
            .peek(&"Out".into())
            .unwrap()
            .contains(&Tuple::from_ints(&[10, 0])));
    }

    #[test]
    fn shared_budget_spills_under_concurrency_and_matches_barrier() {
        use gumbo_mr::MemBudget;

        // Wide fan-out: many independent jobs racing on a 512 B budget
        // that is far smaller than any single job's ~1.2 KB shuffle
        // footprint — every job spills no matter how the pool interleaves
        // them, and concurrent jobs stay collectively under the budget.
        let names: Vec<String> = (0..6).map(|i| format!("R{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let program = || {
            let mut p = MrProgram::new();
            p.push_round(
                (0..6)
                    .map(|i| copy_job(&format!("c{i}"), &format!("R{i}"), &format!("Out{i}")))
                    .collect(),
            );
            p
        };

        let unlimited = executor();
        let dfs_barrier = dfs_with(&name_refs);
        let barrier = unlimited.execute(&dfs_barrier, &program()).unwrap();
        assert_eq!(barrier.spilled_bytes(), 0, "unlimited run never spills");
        let budgeted = SimulatedExecutor::new(gumbo_mr::EngineConfig {
            mem_budget: MemBudget::bytes(512),
            ..gumbo_mr::EngineConfig::unscaled()
        });
        let sched = DagScheduler::new(SchedulerConfig {
            max_concurrent_jobs: 4,
            ..SchedulerConfig::default()
        });
        let dfs = dfs_with(&name_refs);
        let stats = sched.execute_program(&budgeted, &dfs, program()).unwrap();

        // Same answers, same non-spill statistics — and the budget held.
        crate::equivalence::assert_identical_dfs("budgeted dag", &dfs_barrier, &dfs);
        crate::equivalence::assert_identical_stats("budgeted dag", &barrier, &stats);
        assert!(
            stats.spilled_bytes() > 0,
            "a 512 B budget must force spilling"
        );
        assert!(budgeted.budget().peak() <= 512);
    }

    #[test]
    fn empty_program_yields_empty_stats() {
        let dfs = dfs_with(&["R"]);
        let stats = DagScheduler::default()
            .execute_program(&executor(), &dfs, MrProgram::new())
            .unwrap();
        assert_eq!(stats.num_jobs(), 0);
        assert_eq!(stats.num_rounds(), 0);
    }

    /// The acceptance identity of the predicted DAG net-time model: on a
    /// chain DAG with a single job slot, the list-scheduled prediction
    /// *equals* the paper's per-round net time (each round holds exactly
    /// one job, and one slot forbids any overlap).
    #[test]
    fn predicted_net_time_equals_round_net_time_on_a_chain_with_one_slot() {
        let mut p = MrProgram::new();
        p.push_job(copy_job("a", "R", "X1"));
        p.push_job(copy_job("b", "X1", "X2"));
        p.push_job(copy_job("c", "X2", "X3"));
        let sched = DagScheduler::new(SchedulerConfig {
            max_concurrent_jobs: 1,
            ..SchedulerConfig::default()
        });
        let dfs = dfs_with(&["R"]);
        let stats = sched.execute_program(&executor(), &dfs, p).unwrap();
        let predicted = stats.predicted_net_time.expect("scheduled runs predict");
        assert!(
            (predicted - stats.net_time()).abs() < 1e-9,
            "predicted {predicted} vs per-round net {}",
            stats.net_time()
        );
        assert!(predicted > 0.0);
    }

    /// With slots to spare and an independent round, the prediction drops
    /// below the serial sum but never below the longest job.
    #[test]
    fn predicted_net_time_reflects_overlap() {
        let wide = || {
            let mut p = MrProgram::new();
            p.push_round(vec![copy_job("x", "R", "X"), copy_job("y", "R", "Y")]);
            p
        };
        let run = |slots| {
            let dfs = dfs_with(&["R"]);
            DagScheduler::new(SchedulerConfig {
                max_concurrent_jobs: slots,
                ..SchedulerConfig::default()
            })
            .execute_program(&executor(), &dfs, wide())
            .unwrap()
        };
        let serial = run(1);
        let overlapped = run(2);
        let p1 = serial.predicted_net_time.unwrap();
        let p2 = overlapped.predicted_net_time.unwrap();
        assert!(p2 < p1, "2 slots {p2} should predict under 1 slot {p1}");
        // Identical jobs either way, so p1 is exactly the serial sum.
        let per_job: f64 = p1 / 2.0;
        assert!((p2 - per_job).abs() < 1e-9, "two equal jobs overlap fully");
    }

    /// Multi-tenant predictions come from one *global* simulation: a
    /// later submission that serializes behind an earlier one (conflict
    /// edge + single slot) is predicted to finish later, not priced as
    /// if it ran alone on a free pool.
    #[test]
    fn multi_tenant_prediction_accounts_for_contention() {
        let dfs = dfs_with(&["R", "S"]);
        // Both tenants write Out: cross-submission conflict serializes
        // them in admission order, and the pool has one slot anyway.
        let mut p1 = MrProgram::new();
        p1.push_job(copy_job("first", "R", "Out"));
        let mut p2 = MrProgram::new();
        p2.push_job(copy_job("second", "S", "Out"));
        let subs = vec![Submission::new("t1", p1), Submission::new("t2", p2)];
        let sched = DagScheduler::new(SchedulerConfig {
            max_concurrent_jobs: 1,
            ..SchedulerConfig::default()
        });
        let reports = sched.execute_many(&executor(), &dfs, &subs).unwrap();
        let p_first = reports[0].stats.predicted_net_time.unwrap();
        let p_second = reports[1].stats.predicted_net_time.unwrap();
        assert!(
            p_second > p_first,
            "serialized tenant must be predicted later: {p_second} vs {p_first}"
        );
        // The second tenant's completion is the sum of both jobs' costs.
        let total: f64 = reports
            .iter()
            .flat_map(|r| r.stats.jobs.iter())
            .map(|js| {
                RoundStats::pooled(
                    std::iter::once(js),
                    executor().config.cluster,
                    executor().config.constants.job_overhead,
                )
                .net_time()
            })
            .sum();
        assert!((p_second - total).abs() < 1e-9, "{p_second} vs {total}");
    }

    #[test]
    fn placement_policies_agree_on_answers_and_stats() {
        // A program with both width (round 1) and a dependent tail.
        let program = || {
            let mut p = MrProgram::new();
            p.push_round(vec![
                copy_job("x", "R", "X"),
                copy_job("y", "R", "Y"),
                copy_job("z", "R", "Z"),
            ]);
            p.push_job(copy_job("t", "X", "T"));
            p
        };
        let exec = executor();
        let dfs_fifo = dfs_with(&["R"]);
        let fifo = DagScheduler::new(SchedulerConfig {
            placement: PlacementPolicy::Fifo,
            ..SchedulerConfig::default()
        })
        .execute_program(&exec, &dfs_fifo, program())
        .unwrap();
        for policy in [PlacementPolicy::Sjf, PlacementPolicy::CriticalPath] {
            let dfs = dfs_with(&["R"]);
            let stats = DagScheduler::new(SchedulerConfig {
                placement: policy,
                ..SchedulerConfig::default()
            })
            .execute_program(&exec, &dfs, program())
            .unwrap();
            crate::equivalence::assert_identical_dfs(policy.label(), &dfs_fifo, &dfs);
            crate::equivalence::assert_identical_stats(policy.label(), &fifo, &stats);
        }
    }

    #[test]
    fn core_budget_sizes_per_job_threads_from_estimates() {
        use gumbo_mr::{CostConstants, CostModelKind, InputPartition, JobEstimate, JobProfile};
        let config = SchedulerConfig {
            max_concurrent_jobs: 4,
            core_budget: 16,
            ..SchedulerConfig::default()
        };
        // Share = 16 / 4 = 4 cores per concurrent job.
        let wide = JobEstimate::from_profile(
            CostModelKind::Gumbo,
            &CostConstants::default(),
            &JobProfile {
                partitions: vec![InputPartition {
                    label: "R".into(),
                    input: gumbo_common::ByteSize::mb(1000),
                    map_output: gumbo_common::ByteSize::mb(1000),
                    records_out: 0,
                    mappers: 32,
                }],
                reducers: 8,
                output: gumbo_common::ByteSize::mb(10),
            },
        );
        assert_eq!(wide.suggested_parallelism, 32);
        assert_eq!(config.threads_for(Some(&wide)), 4, "clamped to the share");
        let narrow = JobEstimate {
            suggested_parallelism: 2,
            ..wide.clone()
        };
        assert_eq!(
            config.threads_for(Some(&narrow)),
            2,
            "narrow jobs stay narrow"
        );
        assert_eq!(
            config.threads_for(None),
            4,
            "unannotated jobs get the share"
        );
        let disabled = SchedulerConfig::default();
        assert_eq!(disabled.threads_for(Some(&wide)), 0, "0 = executor sizing");
    }

    #[test]
    fn config_resolves_workers_and_executor_kind() {
        let auto = SchedulerConfig {
            max_concurrent_jobs: 0,
            threads_per_job: 0,
            ..SchedulerConfig::default()
        };
        assert!(auto.effective_workers() >= 1);
        assert_eq!(
            SchedulerConfig::default().executor_kind(ExecutorKind::Simulated),
            ExecutorKind::Simulated
        );
        assert_eq!(
            SchedulerConfig {
                threads_per_job: 3,
                ..SchedulerConfig::default()
            }
            .executor_kind(ExecutorKind::Parallel { threads: 0 }),
            ExecutorKind::Parallel { threads: 3 }
        );
        assert_eq!(
            SchedulerConfig {
                threads_per_job: 0,
                ..SchedulerConfig::default()
            }
            .executor_kind(ExecutorKind::Parallel { threads: 7 }),
            ExecutorKind::Parallel { threads: 7 }
        );
    }
}
