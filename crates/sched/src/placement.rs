//! Placement policies: which ready job the scheduler runs next.
//!
//! The PR-2 scheduler admitted fairly between submissions but placed
//! blindly within one — a plain FIFO ready queue. With the estimation
//! layer (`gumbo_mr::estimate`) attaching a [`gumbo_mr::JobEstimate`] to
//! every DAG node, the ready queue becomes a policy decision:
//!
//! | policy | ready-queue order | rationale |
//! |---|---|---|
//! | [`PlacementPolicy::Fifo`] | arrival order | PR-2 behavior, the baseline |
//! | [`PlacementPolicy::Sjf`] | smallest estimated `total_cost` first | shortest-job-first minimizes mean job turnaround |
//! | [`PlacementPolicy::CriticalPath`] | longest estimated path to a sink first | keeps the DAG's makespan-determining chain moving |
//!
//! Placement only chooses among jobs whose dependencies are already
//! satisfied, so **every policy produces byte-identical answer relations
//! and identical non-timing statistics** — the `placement` benchmark and
//! the workspace equivalence suite assert this over every datagen
//! preset. Only the real wall clock (and the spill counters, which are
//! machine observations) may differ.

/// How the scheduler picks the next job among a submission's ready set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// First in, first out — arrival order, the cost-blind baseline.
    #[default]
    Fifo,
    /// Shortest job first: smallest estimated total cost
    /// ([`gumbo_mr::JobEstimate::total_cost`]). Jobs without an estimate
    /// sort last; ties break by admission order.
    Sjf,
    /// Critical path: largest estimated longest-path-to-a-sink
    /// ([`gumbo_mr::JobDag::critical_paths`]). Jobs without an estimate
    /// contribute zero cost; ties break by admission order.
    CriticalPath,
}

impl PlacementPolicy {
    /// Parse a CLI spelling: `fifo`, `sjf`, or `cp`.
    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        match s {
            "fifo" => Some(PlacementPolicy::Fifo),
            "sjf" => Some(PlacementPolicy::Sjf),
            "cp" => Some(PlacementPolicy::CriticalPath),
            _ => None,
        }
    }

    /// The CLI spelling of this policy.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::Fifo => "fifo",
            PlacementPolicy::Sjf => "sjf",
            PlacementPolicy::CriticalPath => "cp",
        }
    }

    /// All policies, for sweeps.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::Fifo,
        PlacementPolicy::Sjf,
        PlacementPolicy::CriticalPath,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in PlacementPolicy::ALL {
            assert_eq!(PlacementPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(PlacementPolicy::parse("lifo"), None);
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::Fifo);
    }
}
