//! Multi-tenant submissions: independent MR programs admitted onto one
//! shared cluster.

use gumbo_mr::{JobDag, MrProgram, ProgramStats};

/// One tenant's unit of admission: a named MR program, lowered to its
/// dependency DAG.
///
/// Submissions are expected to be *independent* — distinct output (and
/// intermediate) relation names, with read-only sharing of base relations
/// allowed. If two submissions do conflict on a relation, the scheduler
/// serializes the conflicting jobs in admission order, so correctness is
/// never lost — only concurrency.
#[derive(Debug)]
pub struct Submission {
    /// Who submitted (display label for reports; e.g. a client id).
    pub tenant: String,
    /// The work, in DAG form.
    pub dag: JobDag,
}

impl Submission {
    /// Admit a program under a tenant label.
    pub fn new(tenant: impl Into<String>, program: MrProgram) -> Submission {
        Submission {
            tenant: tenant.into(),
            dag: program.into_dag(),
        }
    }

    /// Admit a pre-lowered DAG under a tenant label.
    pub fn from_dag(tenant: impl Into<String>, dag: JobDag) -> Submission {
        Submission {
            tenant: tenant.into(),
            dag,
        }
    }

    /// Number of jobs in this submission.
    pub fn num_jobs(&self) -> usize {
        self.dag.len()
    }
}

/// What one submission got out of a scheduling run.
#[derive(Debug)]
pub struct SubmissionReport {
    /// The tenant label of the submission.
    pub tenant: String,
    /// Per-job and per-round statistics, identical to what the
    /// round-barrier path would have produced for the same program.
    pub stats: ProgramStats,
    /// Real elapsed time from admission (scheduler start) to the last
    /// committed job of this submission, in seconds.
    pub wall_seconds: f64,
    /// When the submission entered the admission queue (monotonic ns
    /// since the obs epoch — [`gumbo_obs::now_ns`]). For direct
    /// `execute_many` calls, which have no queue, this equals
    /// `admitted_ns`.
    pub queued_ns: u64,
    /// When the submission was admitted onto the scheduler (monotonic
    /// ns since the obs epoch).
    pub admitted_ns: u64,
    /// When the submission's last job committed (monotonic ns since the
    /// obs epoch).
    pub completed_ns: u64,
}

impl SubmissionReport {
    /// Per-job calibration records: `(job name, observed/estimated cost
    /// ratio)` for every job of this submission that carried a plan-time
    /// estimate, in execution order. The raw input of the
    /// feedback-calibration roadmap item.
    pub fn estimate_errors(&self) -> Vec<(&str, f64)> {
        self.stats
            .jobs
            .iter()
            .filter_map(|j| j.estimate_error().map(|e| (j.name.as_str(), e)))
            .collect()
    }

    /// Mean observed/estimated cost ratio over this submission's
    /// estimated jobs; `None` when no job carried an estimate.
    pub fn mean_estimate_error(&self) -> Option<f64> {
        self.stats.mean_estimate_error()
    }

    /// Time spent waiting in the admission queue, in nanoseconds.
    pub fn queue_wait_ns(&self) -> u64 {
        self.admitted_ns.saturating_sub(self.queued_ns)
    }

    /// Time from admission to completion, in nanoseconds.
    pub fn service_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.admitted_ns)
    }
}
