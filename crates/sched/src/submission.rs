//! Multi-tenant submissions: independent MR programs admitted onto one
//! shared cluster.

use gumbo_mr::{JobDag, MrProgram, ProgramStats};

/// One tenant's unit of admission: a named MR program, lowered to its
/// dependency DAG.
///
/// Submissions are expected to be *independent* — distinct output (and
/// intermediate) relation names, with read-only sharing of base relations
/// allowed. If two submissions do conflict on a relation, the scheduler
/// serializes the conflicting jobs in admission order, so correctness is
/// never lost — only concurrency.
#[derive(Debug)]
pub struct Submission {
    /// Who submitted (display label for reports; e.g. a client id).
    pub tenant: String,
    /// The work, in DAG form.
    pub dag: JobDag,
}

impl Submission {
    /// Admit a program under a tenant label.
    pub fn new(tenant: impl Into<String>, program: MrProgram) -> Submission {
        Submission {
            tenant: tenant.into(),
            dag: program.into_dag(),
        }
    }

    /// Admit a pre-lowered DAG under a tenant label.
    pub fn from_dag(tenant: impl Into<String>, dag: JobDag) -> Submission {
        Submission {
            tenant: tenant.into(),
            dag,
        }
    }

    /// Number of jobs in this submission.
    pub fn num_jobs(&self) -> usize {
        self.dag.len()
    }
}

/// What one submission got out of a scheduling run.
#[derive(Debug)]
pub struct SubmissionReport {
    /// The tenant label of the submission.
    pub tenant: String,
    /// Per-job and per-round statistics, identical to what the
    /// round-barrier path would have produced for the same program.
    pub stats: ProgramStats,
    /// Real elapsed time from admission (scheduler start) to the last
    /// committed job of this submission, in seconds.
    pub wall_seconds: f64,
}
