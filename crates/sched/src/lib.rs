//! # gumbo-sched
//!
//! A dependency-driven DAG job scheduler for the gumbo MapReduce
//! substrate — the execution layer the paper's §3.2 "MR program = DAG of
//! jobs" definition calls for.
//!
//! The round-barrier path ([`gumbo_mr::Executor::execute`]) runs a
//! program level by level: every job of round *r* must finish before any
//! job of round *r + 1* starts, so one slow `MSJ` stalls unrelated work.
//! This crate replaces the barrier with data-dependency tracking:
//!
//! * [`gumbo_mr::JobDag`] — jobs plus edges inferred from input/output
//!   relation names (`MrProgram::into_dag()`);
//! * [`DagScheduler`] — runs each job the moment its inputs are
//!   materialized, on a bounded worker pool
//!   ([`SchedulerConfig::max_concurrent_jobs`]); the DFS is shared behind
//!   an `RwLock` — inputs are planned under the read lock, the
//!   map/shuffle/reduce compute holds no lock at all, outputs commit
//!   under the write lock;
//! * [`PlacementPolicy`] — how the ready queue is ordered: FIFO, or
//!   cost-driven shortest-job-first / critical-path placement over the
//!   estimation layer's per-job annotations
//!   ([`gumbo_mr::estimate`]); the same annotations size per-job worker
//!   pools under [`SchedulerConfig::core_budget`] and feed the predicted
//!   DAG net-time metric ([`gumbo_mr::ProgramStats::predicted_net_time`]);
//! * [`Submission`] / [`SubmissionReport`] — a multi-tenant front door:
//!   many independent `MrProgram`s admitted concurrently onto one
//!   cluster, with fair-share admission and per-submission statistics
//!   (including `queued_ns`/`admitted_ns`/`completed_ns` on the obs
//!   monotonic clock);
//! * [`admission`] — the resident-service layer on top: a bounded
//!   [`AdmissionQueue`] with **estimate-weighted fair-share** admission
//!   ([`FairShareLedger`]): each tenant carries a weight and a running
//!   account of admitted estimated cost, and the pending entry whose
//!   tenant has the least weight-normalized cost is admitted next — so
//!   under contention a weight-4 tenant receives ~4× the admitted
//!   estimated cost of a weight-1 tenant, deterministically.
//!
//! Execution is *observationally identical* to the round barrier: answer
//! relations are byte-identical and per-job [`gumbo_mr::JobStats`] (and
//! the reconstructed per-round wall-clock accounting) match exactly —
//! only the real wall-clock improves. The workspace-level
//! `tests/dag_scheduler_equivalence.rs` enforces this over every datagen
//! preset.

pub mod admission;
pub mod equivalence;
pub mod placement;
pub mod scheduler;
pub mod submission;

pub use admission::{
    AdmissionConfig, AdmissionQueue, FairShareLedger, QueuedEntry, SubmitError, TenantAccount,
};
pub use equivalence::{assert_identical_dfs, assert_identical_stats};
pub use placement::PlacementPolicy;
pub use scheduler::{DagScheduler, SchedulerConfig};
pub use submission::{Submission, SubmissionReport};

#[cfg(test)]
mod proptests;
