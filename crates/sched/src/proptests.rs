//! Property tests for cost-driven placement.
//!
//! Two properties the ISSUE-4 refactor rests on:
//!
//! 1. **Annotations are policy-invariant.** A job's estimate is attached
//!    at plan time and is a function of the job alone, so lowering a
//!    program with `into_dag()` and executing it under *any* placement
//!    policy leaves the same estimate on the same node — and, since
//!    placement only reorders ready jobs, the DFS contents and every
//!    non-timing statistic are identical across policies.
//! 2. **Critical path bounds makespans.** The critical-path priority of
//!    `cp` placement is a true lower bound on any list schedule of the
//!    DAG — including the shortest-job-first ordering — for every slot
//!    count; with one slot the schedule degenerates to the total work.

#![cfg(test)]

use proptest::prelude::*;

use gumbo_common::{ByteSize, Fact, Relation, RelationName, Result as GumboResult, Tuple};
use gumbo_mr::{
    list_schedule_makespan_by, CostConstants, CostModelKind, EngineConfig, InputPartition, Job,
    JobConfig, JobEstimate, JobProfile, Mapper, Message, MrProgram, Reducer, SimulatedExecutor,
};
use gumbo_storage::SimDfs;

use crate::placement::PlacementPolicy;
use crate::scheduler::{DagScheduler, SchedulerConfig};

/// Copies every input tuple to the job's single output relation — cheap,
/// deterministic, and write-conflicting when outputs collide.
struct Copy;
impl Mapper for Copy {
    fn map(&self, fact: &Fact, _: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        emit(fact.tuple.clone(), Message::Assert { cond: 0 });
    }
}
struct CopyTo(RelationName);
impl Reducer for CopyTo {
    fn reduce(&self, key: &Tuple, _: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
        emit(&self.0, key.clone());
    }
}

/// A synthetic estimate whose total cost is `cost` (decomposed like the
/// engine's accounting so the invariants stay honest).
fn estimate(cost: f64) -> JobEstimate {
    JobEstimate::from_profile(
        CostModelKind::Gumbo,
        &CostConstants {
            job_overhead: cost,
            ..CostConstants::appendix_a()
        },
        &JobProfile {
            partitions: vec![InputPartition {
                label: "synthetic".into(),
                input: ByteSize::ZERO,
                map_output: ByteSize::ZERO,
                records_out: 0,
                mappers: 1,
            }],
            reducers: 1,
            output: ByteSize::ZERO,
        },
    )
}

fn copy_job(name: &str, input: &str, output: &str, cost: f64) -> Job {
    Job {
        name: name.into(),
        inputs: vec![input.into()],
        outputs: vec![(output.into(), 2)],
        mapper: Box::new(Copy),
        reducer: Box::new(CopyTo(output.into())),
        config: JobConfig::default(),
        estimate: None,
        filter: None,
    }
    .with_estimate(estimate(cost))
}

fn base_dfs() -> SimDfs {
    let dfs = SimDfs::new();
    for i in 0..4i64 {
        dfs.store(
            Relation::from_tuples(
                format!("R{i}"),
                2,
                (0..8).map(|j| Tuple::from_ints(&[10 * i + j, j])),
            )
            .unwrap(),
        );
    }
    dfs
}

/// Build a random-but-valid program: each job reads either a base
/// relation or an earlier job's output, and writes its own output (with
/// occasional overwrites to exercise conflict edges).
fn random_program(spec: &[(u8, u8, u8)]) -> MrProgram {
    let mut program = MrProgram::new();
    // Track materialized outputs so every input is guaranteed to exist:
    // either a base relation or a relation some earlier job wrote.
    let mut written: Vec<String> = Vec::new();
    for (idx, &(src, overwrite, cost)) in spec.iter().enumerate() {
        let input = if written.is_empty() || src % 4 < 2 {
            format!("R{}", src % 4)
        } else {
            written[src as usize % written.len()].clone()
        };
        let output = if overwrite % 5 == 0 && !written.is_empty() {
            // Occasionally overwrite an earlier output: exercises the
            // write→write / read→write conflict edges.
            written[overwrite as usize % written.len()].clone()
        } else {
            format!("Out{idx}")
        };
        if !written.contains(&output) {
            written.push(output.clone());
        }
        program.push_job(copy_job(
            &format!("j{idx}"),
            &input,
            &output,
            1.0 + cost as f64,
        ));
    }
    program
}

fn run_policy(
    spec: &[(u8, u8, u8)],
    policy: PlacementPolicy,
) -> GumboResult<(SimDfs, gumbo_mr::ProgramStats)> {
    let executor = SimulatedExecutor::new(EngineConfig::unscaled());
    let scheduler = DagScheduler::new(SchedulerConfig {
        max_concurrent_jobs: 2,
        placement: policy,
        ..SchedulerConfig::default()
    });
    let dfs = base_dfs();
    let stats = scheduler.execute_program(&executor, &dfs, random_program(spec))?;
    Ok((dfs, stats))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `into_dag()` annotations are policy-invariant: the same estimate
    /// sits on the same node regardless of how the ready queue will be
    /// ordered, and critical-path priorities derive from them alone.
    #[test]
    fn dag_annotations_are_policy_invariant(
        spec in proptest::collection::vec((0u8..8, 0u8..8, 0u8..20), 1..8),
    ) {
        let dag = random_program(&spec).into_dag();
        let expected: Vec<f64> = spec.iter().map(|&(_, _, c)| {
            estimate(1.0 + c as f64).total_cost
        }).collect();
        for (node, want) in dag.nodes().iter().zip(&expected) {
            let got = node.estimate().expect("planner attached an estimate");
            prop_assert!((got.total_cost - want).abs() < 1e-12);
            prop_assert!((node.estimated_cost() - want).abs() < 1e-12);
        }
        // Critical paths are a pure function of the annotated DAG:
        // recomputing yields the same numbers (nothing scheduling-order
        // dependent leaks in) and each ≥ the node's own cost.
        let cp = dag.critical_paths();
        prop_assert_eq!(&cp, &dag.critical_paths());
        for (node, len) in dag.nodes().iter().zip(&cp) {
            prop_assert!(*len >= node.estimated_cost() - 1e-12);
        }
    }

    /// Executing the same random program under fifo / sjf / cp placement
    /// leaves byte-identical DFS contents and identical statistics —
    /// placement moves wall clock only.
    #[test]
    fn policies_are_observationally_identical(
        spec in proptest::collection::vec((0u8..8, 0u8..8, 0u8..20), 1..6),
    ) {
        let (dfs_fifo, stats_fifo) = run_policy(&spec, PlacementPolicy::Fifo).unwrap();
        for policy in [PlacementPolicy::Sjf, PlacementPolicy::CriticalPath] {
            let (dfs, stats) = run_policy(&spec, policy).unwrap();
            crate::equivalence::assert_identical_dfs(policy.label(), &dfs_fifo, &dfs);
            crate::equivalence::assert_identical_stats(policy.label(), &stats_fifo, &stats);
            // The predicted DAG net time is policy-independent by
            // definition (deterministic list scheduling).
            let (a, b) = (
                stats_fifo.predicted_net_time.expect("scheduled run predicts"),
                stats.predicted_net_time.expect("scheduled run predicts"),
            );
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// The critical-path length is a lower bound on the makespan of any
    /// list schedule of the DAG — in particular the shortest-job-first
    /// order — for every slot count; one slot degenerates to total work
    /// and unlimited slots achieve the critical path exactly.
    #[test]
    fn critical_path_bounds_sjf_makespan(
        spec in proptest::collection::vec((0u8..8, 0u8..8, 0u8..20), 1..8),
        slots in 1usize..5,
    ) {
        let dag = random_program(&spec).into_dag();
        let durations: Vec<f64> = dag.nodes().iter().map(|n| n.estimated_cost()).collect();
        let deps: Vec<&[usize]> = dag.nodes().iter().map(|n| n.deps()).collect();
        let total: f64 = durations.iter().sum();
        let cp_len = dag
            .critical_paths()
            .into_iter()
            .fold(0.0f64, f64::max);

        let sjf = list_schedule_makespan_by(&durations, &deps, slots, |i| durations[i]);
        prop_assert!(cp_len <= sjf + 1e-9, "cp {cp_len} > sjf makespan {sjf}");
        prop_assert!(total / slots as f64 <= sjf + 1e-9);
        prop_assert!(sjf <= total + 1e-9);

        let serial = list_schedule_makespan_by(&durations, &deps, 1, |i| durations[i]);
        prop_assert!((serial - total).abs() < 1e-9);
        let unlimited =
            list_schedule_makespan_by(&durations, &deps, durations.len(), |i| durations[i]);
        prop_assert!((unlimited - cp_len).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Estimate-weighted fair-share admission (ISSUE 10)
// ---------------------------------------------------------------------------

/// The fairness fixture: three tenants with 1:2:4 weights.
const TENANTS: [&str; 3] = ["bronze", "silver", "gold"];
const WEIGHTS: [f64; 3] = [1.0, 2.0, 4.0];

/// Queue a random saturated backlog (every submission enqueued before any
/// admission) and drain it, returning the admission order as
/// `(tenant index, seq, charged cost)` triples.
fn drain_backlog(mix: &[(usize, u8)]) -> Vec<(usize, u64, f64)> {
    let queue: crate::AdmissionQueue<usize> = crate::AdmissionQueue::new(crate::AdmissionConfig {
        capacity: mix.len().max(1),
        default_weight: 1.0,
    });
    for (i, &(t, cost)) in mix.iter().enumerate() {
        queue
            .submit(TENANTS[t], Some(WEIGHTS[t]), cost as f64, i)
            .expect("open queue accepts");
    }
    queue.close();
    let mut order = Vec::new();
    while let Some(entry) = queue.admit() {
        let t = TENANTS
            .iter()
            .position(|n| *n == entry.tenant)
            .expect("known tenant");
        order.push((t, entry.seq, entry.estimated_cost));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under a saturated backlog, weighted fair-share admission: (a) no
    /// tenant starves — every tenant's first admission lands within the
    /// first `TENANTS.len()` decisions; (b) the greedy invariant holds
    /// exactly — the admitted tenant's weight-normalized account is
    /// minimal among tenants that still have pending work; (c) admitted
    /// estimated-cost *shares* converge to the weight ratios within the
    /// provable tolerance `wₜ·max_cost / total_admitted_cost`.
    #[test]
    fn weighted_admission_is_starvation_free_and_converges(
        mix in proptest::collection::vec((0usize..3, 1u8..=3), 60..140),
    ) {
        // Guarantee every tenant real representation in the backlog
        // (random mixes could otherwise leave a tenant nearly absent,
        // which tests nothing about contention).
        let mut mix = mix;
        for t in 0..3 {
            for k in 0..12u8 {
                mix.push((t, 1 + k % 3));
            }
        }
        let order = drain_backlog(&mix);
        prop_assert_eq!(order.len(), mix.len());

        // (a) No starvation from a cold start: every tenant has pending
        // work, so each must be admitted before any tenant is admitted
        // twice (an admitted tenant's normalized account immediately
        // exceeds an untouched tenant's zero).
        let first_three: Vec<usize> = order.iter().take(3).map(|&(t, _, _)| t).collect();
        for (t, tenant) in TENANTS.iter().enumerate() {
            prop_assert!(
                first_three.contains(&t),
                "tenant {} starved past the first round: {:?}", tenant, first_three
            );
        }

        let max_cost = mix.iter().map(|&(_, c)| c as f64).fold(1.0, f64::max);
        let mut pending = [0usize; 3];
        for &(t, _) in &mix {
            pending[t] += 1;
        }
        let mut admitted_cost = [0.0f64; 3];
        let mut converged: Option<([f64; 3], f64)> = None;
        for &(t, _, cost) in &order {
            // (b) The exact greedy invariant: the pick's normalized
            // account is ≤ every tenant's that still has pending work.
            let norm = admitted_cost[t] / WEIGHTS[t];
            for u in 0..3 {
                if pending[u] > 0 {
                    prop_assert!(
                        norm <= admitted_cost[u] / WEIGHTS[u] + 1e-9,
                        "{} admitted at {norm} over {}'s {}",
                        TENANTS[t], TENANTS[u], admitted_cost[u] / WEIGHTS[u]
                    );
                }
            }
            admitted_cost[t] += cost;
            pending[t] -= 1;
            if pending.contains(&0) && converged.is_none() {
                // The last instant all three tenants were contending.
                converged = Some((admitted_cost, max_cost));
            }
        }

        // (c) Share convergence at the end of full three-way contention.
        // From the invariant, normalized accounts differ by at most one
        // max-cost charge, which algebraically bounds each tenant's
        // admitted-cost share within wₜ·max_cost/total of its weight
        // share — e.g. gold (weight 4) holds 4/7 of the admitted
        // estimated cost, ±4·max_cost/total.
        let (shares, max_cost) = converged.expect("some tenant drains first");
        let total: f64 = shares.iter().sum();
        let weight_sum: f64 = WEIGHTS.iter().sum();
        for t in 0..3 {
            let share = shares[t] / total;
            let expected = WEIGHTS[t] / weight_sum;
            let tolerance = WEIGHTS[t] * max_cost / total;
            prop_assert!(
                (share - expected).abs() <= tolerance + 1e-9,
                "{}: share {share:.4} vs weight share {expected:.4} (tolerance {tolerance:.4})",
                TENANTS[t]
            );
        }
    }

    /// Admission order is a pure function of the submission sequence:
    /// replaying the same backlog through a fresh queue admits the same
    /// seq numbers in the same order.
    #[test]
    fn admission_order_is_deterministic(
        mix in proptest::collection::vec((0usize..3, 1u8..=3), 1..80),
    ) {
        prop_assert_eq!(drain_backlog(&mix), drain_backlog(&mix));
    }
}
