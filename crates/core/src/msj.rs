//! The `MSJ(S)` job: Algorithm 1 of the paper.
//!
//! One MapReduce job evaluating a *set* of semi-joins:
//!
//! * the mapper emits, for every fact conforming to some guard `αᵢ`, a
//!   request `⟨π_{αᵢ;z̄ᵢ}(f) : [Req (κᵢ, i); Out …]⟩`, and for every fact
//!   conforming to some conditional `κᵢ` an assert
//!   `⟨π_{κᵢ;z̄ᵢ}(f) : [Assert κᵢ]⟩`;
//! * the reducer outputs a request's payload into `Xᵢ` iff the group also
//!   contains an assert for `κᵢ`.
//!
//! Two Gumbo refinements are wired in:
//! * **assert sharing**: semi-joins whose `(κ, z̄)` coincide (e.g. the two
//!   queries of A5) share a single assert stream (`cond_groups`);
//! * **payload mode**: requests carry either the full guard identity tuple
//!   or a `(guard, id)` reference (§5.1 (2)).

use gumbo_common::{RelationName, Tuple, Value};
use gumbo_mr::{FilterSpec, Job, JobConfig, Mapper, Message, Payload, Reducer};
use gumbo_sgf::{Atom, Var};

use crate::plan::PayloadMode;
use crate::semijoin::{cond_groups, QueryContext, SemiJoin};

/// Per-semi-join mapper state.
#[derive(Debug, Clone)]
struct SjSpec {
    guard: Atom,
    join_key: Vec<Var>,
    identity_vars: Vec<Var>,
    guard_idx: u32,
}

/// The MSJ map function.
///
/// With `salts > 1` the mapper applies the skew adaptation the paper
/// sketches in §6: request keys are extended with a deterministic salt in
/// `0..salts` (spreading a heavy join key over `salts` reduce groups) and
/// every assert is replicated to all salts.
struct MsjMapper {
    mode: PayloadMode,
    sjs: Vec<SjSpec>,
    asserts: Vec<(Atom, Vec<Var>)>,
    salts: u32,
}

impl MsjMapper {
    fn salted(&self, key: Tuple, salt: u32) -> Tuple {
        if self.salts <= 1 {
            return key;
        }
        let mut values: Vec<gumbo_common::Value> = key.values().to_vec();
        values.push(gumbo_common::Value::Int(i64::from(salt)));
        Tuple::new(values)
    }
}

impl Mapper for MsjMapper {
    fn map(&self, fact: &gumbo_common::Fact, index: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        // Guard side: one request per semi-join this fact guards.
        for (local, sj) in self.sjs.iter().enumerate() {
            if sj.guard.conforms_fact(fact) {
                let key = sj.guard.project(&fact.tuple, &sj.join_key);
                let payload = match self.mode {
                    PayloadMode::Full => {
                        Payload::Tuple(sj.guard.project(&fact.tuple, &sj.identity_vars))
                    }
                    PayloadMode::Reference => Payload::Ref {
                        guard: sj.guard_idx,
                        id: index,
                    },
                };
                // Salt from the tuple identity so the same guard tuple is
                // routed consistently.
                let salt = (index % u64::from(self.salts.max(1))) as u32;
                emit(
                    self.salted(key, salt),
                    Message::Req {
                        cond: local as u32,
                        payload,
                    },
                );
            }
        }
        // Conditional side: one assert per *assert group* (shared streams),
        // replicated to every salt so each salted request group sees it.
        for (group_idx, (atom, key_vars)) in self.asserts.iter().enumerate() {
            if atom.conforms_fact(fact) {
                let key = atom.project(&fact.tuple, key_vars);
                for salt in 0..self.salts.max(1) {
                    emit(
                        self.salted(key.clone(), salt),
                        Message::Assert {
                            cond: group_idx as u32,
                        },
                    );
                }
            }
        }
    }
}

/// The MSJ reduce function.
struct MsjReducer {
    /// local semi-join index → (output `Xᵢ`, assert group index).
    routes: Vec<(RelationName, u32)>,
}

impl Reducer for MsjReducer {
    fn reduce(&self, _key: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
        // Collect which assert groups are present in this group.
        let mut present = [false; 64];
        let mut present_overflow: Vec<u32> = Vec::new();
        for v in values {
            if let Message::Assert { cond } = v {
                if (*cond as usize) < 64 {
                    present[*cond as usize] = true;
                } else if !present_overflow.contains(cond) {
                    present_overflow.push(*cond);
                }
            }
        }
        let is_present = |c: u32| {
            if (c as usize) < 64 {
                present[c as usize]
            } else {
                present_overflow.contains(&c)
            }
        };
        for v in values {
            if let Message::Req { cond, payload } = v {
                let (x_name, assert_group) = &self.routes[*cond as usize];
                if is_present(*assert_group) {
                    emit(x_name, payload_tuple(payload));
                }
            }
        }
    }
}

/// Materialize a payload as the tuple stored in `Xᵢ`.
pub(crate) fn payload_tuple(payload: &Payload) -> Tuple {
    match payload {
        Payload::Tuple(t) => t.clone(),
        Payload::Ref { guard, id } => {
            Tuple::new(vec![Value::Int(i64::from(*guard)), Value::Int(*id as i64)])
        }
    }
}

/// Arity of the `Xᵢ` relation for a semi-join under a payload mode.
pub(crate) fn x_arity(sj: &SemiJoin, mode: PayloadMode) -> usize {
    match mode {
        PayloadMode::Full => sj.identity_vars.len(),
        PayloadMode::Reference => 2,
    }
}

/// Build the `MSJ` job for a group of semi-joins (ids into `ctx`).
pub fn build_msj_job(
    ctx: &QueryContext,
    group: &[usize],
    mode: PayloadMode,
    config: JobConfig,
) -> Job {
    build_msj_job_salted(ctx, group, mode, config, 1)
}

/// Build an `MSJ` job with heavy-hitter key salting (§6): request keys are
/// spread over `salts` sub-keys and asserts replicated accordingly, at the
/// price of `salts×` assert volume. `salts = 1` disables the adaptation.
pub fn build_msj_job_salted(
    ctx: &QueryContext,
    group: &[usize],
    mode: PayloadMode,
    config: JobConfig,
    salts: u32,
) -> Job {
    let sjs: Vec<&SemiJoin> = group.iter().map(|&i| ctx.semijoin(i)).collect();
    let (assert_groups, assignment) = cond_groups(&sjs);

    let specs: Vec<SjSpec> = sjs
        .iter()
        .map(|sj| SjSpec {
            guard: sj.guard.clone(),
            join_key: sj.join_key.clone(),
            identity_vars: sj.identity_vars.clone(),
            guard_idx: sj.query_idx as u32,
        })
        .collect();
    let routes: Vec<(RelationName, u32)> = sjs
        .iter()
        .map(|sj| (sj.x_name.clone(), assignment[&sj.id] as u32))
        .collect();

    // Inputs: every distinct relation read by the job, guards first. Each
    // relation is read exactly once even when it guards several semi-joins
    // and/or appears as a conditional — the point of grouping.
    let mut inputs: Vec<RelationName> = Vec::new();
    for sj in &sjs {
        if !inputs.contains(sj.guard.relation()) {
            inputs.push(sj.guard.relation().clone());
        }
    }
    for (atom, _) in &assert_groups {
        if !inputs.contains(atom.relation()) {
            inputs.push(atom.relation().clone());
        }
    }

    let outputs: Vec<(RelationName, usize)> = sjs
        .iter()
        .map(|sj| (sj.x_name.clone(), x_arity(sj, mode)))
        .collect();

    let x_list: Vec<String> = sjs.iter().map(|sj| sj.x_name.to_string()).collect();
    // The filter spec mirrors the reducer's routing table: a local Req
    // condition probes the assert filter of its group, and vice versa —
    // exactly the membership the reducer checks, so suppression can never
    // drop a message the reducer would have matched.
    let filter = FilterSpec::new(
        routes.iter().map(|(_, group)| *group).collect(),
        assert_groups.len(),
    );
    Job {
        name: format!("MSJ({})", x_list.join(",")),
        inputs,
        outputs,
        mapper: Box::new(MsjMapper {
            mode,
            sjs: specs,
            asserts: assert_groups,
            salts,
        }),
        reducer: Box::new(MsjReducer { routes }),
        config,
        estimate: None,
        filter: Some(filter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Fact, Relation};
    use gumbo_mr::{EngineConfig, ExecutorKind, MrProgram};
    use gumbo_sgf::parse_query;
    use gumbo_storage::SimDfs;

    fn dfs_with(facts: &[(&str, &[i64])], arities: &[(&str, usize)]) -> SimDfs {
        let mut db = gumbo_common::Database::new();
        for (name, arity) in arities {
            db.add_relation(Relation::new(*name, *arity));
        }
        for (rel, t) in facts {
            db.insert_fact(Fact::new(*rel, Tuple::from_ints(t)))
                .unwrap();
        }
        SimDfs::from_database(&db)
    }

    fn run_msj(ctx: &QueryContext, group: &[usize], mode: PayloadMode, dfs: &SimDfs) {
        let job = build_msj_job(ctx, group, mode, JobConfig::default());
        let executor = ExecutorKind::default().build(EngineConfig::unscaled());
        let mut program = MrProgram::new();
        program.push_job(job);
        executor.execute(dfs, &program).unwrap();
    }

    #[test]
    fn msj_computes_multiple_semijoins_in_one_job() {
        // Q from §1: X1 = R ⋉ S(x,y), X2 = R ⋉ S(y,x), X3 = R ⋉ T(x,z).
        let q =
            parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);")
                .unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let dfs = dfs_with(
            &[
                ("R", &[1, 2]),
                ("R", &[3, 4]),
                ("S", &[1, 2]), // matches X1 for R(1,2)
                ("S", &[4, 3]), // matches X2 for R(3,4)
                ("T", &[1, 7]), // matches X3 for R(1,2)
            ],
            &[("R", 2), ("S", 2), ("T", 2)],
        );
        run_msj(&ctx, &[0, 1, 2], PayloadMode::Full, &dfs);
        let x1 = dfs.peek(&"Z#X0".into()).unwrap();
        let x2 = dfs.peek(&"Z#X1".into()).unwrap();
        let x3 = dfs.peek(&"Z#X2".into()).unwrap();
        assert!(x1.contains(&Tuple::from_ints(&[1, 2])));
        assert_eq!(x1.len(), 1);
        assert!(x2.contains(&Tuple::from_ints(&[3, 4])));
        assert_eq!(x2.len(), 1);
        assert!(x3.contains(&Tuple::from_ints(&[1, 2])));
        assert_eq!(x3.len(), 1);
    }

    #[test]
    fn msj_matches_naive_semijoin_semantics() {
        let q = parse_query("Z := SELECT x FROM R(x, z) WHERE S(z, y);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        // Example 3 data.
        let dfs = dfs_with(
            &[("R", &[1, 2]), ("R", &[4, 5]), ("S", &[2, 3])],
            &[("R", 2), ("S", 2)],
        );
        run_msj(&ctx, &[0], PayloadMode::Full, &dfs);
        let x = dfs.peek(&"Z#X0".into()).unwrap();
        // Identity tuples of matching guards: (1, 2).
        assert_eq!(x.len(), 1);
        assert!(x.contains(&Tuple::from_ints(&[1, 2])));
    }

    #[test]
    fn reference_mode_stores_guard_ids() {
        let q = parse_query("Z := SELECT x FROM R(x, z) WHERE S(z, y);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let dfs = dfs_with(
            &[("R", &[1, 2]), ("R", &[4, 5]), ("S", &[2, 3])],
            &[("R", 2), ("S", 2)],
        );
        run_msj(&ctx, &[0], PayloadMode::Reference, &dfs);
        let x = dfs.peek(&"Z#X0".into()).unwrap();
        // R(1,2) is index 0 in R's canonical order; guard_idx = 0.
        assert_eq!(x.len(), 1);
        assert!(x.contains(&Tuple::from_ints(&[0, 0])));
        assert_eq!(x.arity(), 2);
    }

    #[test]
    fn shared_guard_relation_read_once() {
        // A1-style: four semi-joins over the same guard; R, S, T in inputs once.
        let q =
            parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND S(y) AND T(x);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let job = build_msj_job(&ctx, &[0, 1, 2], PayloadMode::Full, JobConfig::default());
        let names: Vec<String> = job.inputs.iter().map(|r| r.to_string()).collect();
        assert_eq!(names, vec!["R", "S", "T"]);
    }

    #[test]
    fn partial_groups_compute_only_their_semijoins() {
        let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let dfs = dfs_with(
            &[("R", &[1, 2]), ("S", &[1]), ("T", &[2])],
            &[("R", 2), ("S", 1), ("T", 1)],
        );
        run_msj(&ctx, &[1], PayloadMode::Full, &dfs);
        assert!(dfs.exists(&"Z#X1".into()));
        assert!(!dfs.exists(&"Z#X0".into()));
    }

    #[test]
    fn empty_conditional_relation_yields_empty_x() {
        let q = parse_query("Z := SELECT x FROM R(x) WHERE S(x);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let dfs = dfs_with(&[("R", &[1])], &[("R", 1), ("S", 1)]);
        run_msj(&ctx, &[0], PayloadMode::Full, &dfs);
        assert_eq!(dfs.peek(&"Z#X0".into()).unwrap().len(), 0);
    }

    #[test]
    fn asserts_do_not_leak_across_distinct_conditionals() {
        // S(x) and T(x) share the join key x, but an S-assert must not
        // satisfy a T-request with the same key value.
        let q = parse_query("Z := SELECT x FROM R(x) WHERE S(x) AND T(x);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let dfs = dfs_with(&[("R", &[5]), ("S", &[5])], &[("R", 1), ("S", 1), ("T", 1)]);
        run_msj(&ctx, &[0, 1], PayloadMode::Full, &dfs);
        assert_eq!(dfs.peek(&"Z#X0".into()).unwrap().len(), 1);
        assert_eq!(dfs.peek(&"Z#X1".into()).unwrap().len(), 0);
    }

    #[test]
    fn constants_in_conditionals_filter_asserts() {
        // κ = S(x, 9): only S facts with second field 9 assert.
        let q = parse_query("Z := SELECT x FROM R(x) WHERE S(x, 9);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let dfs = dfs_with(
            &[("R", &[1]), ("R", &[2]), ("S", &[1, 9]), ("S", &[2, 8])],
            &[("R", 1), ("S", 2)],
        );
        run_msj(&ctx, &[0], PayloadMode::Full, &dfs);
        let x = dfs.peek(&"Z#X0".into()).unwrap();
        assert_eq!(x.len(), 1);
        assert!(x.contains(&Tuple::from_ints(&[1])));
    }
}
