//! # gumbo-core
//!
//! The paper's contribution (Daenen, Neven, Tan, Vansummeren, *Parallel
//! Evaluation of Multi-Semi-Joins*, 2016): the multi-semi-join operator and
//! its one-job MapReduce implementation `MSJ(S)` (§4.2, Algorithm 1), the
//! `EVAL` job for Boolean combinations (§4.3), query plans for (sets of)
//! BSGF queries (§4.4/§4.5), the NP-hard plan-optimization problems and
//! their greedy heuristics `Greedy-BSGF` (§4.4) and `Greedy-SGF` (§4.6),
//! plus Gumbo's optimizations (§5.1): message packing, guard-tuple
//! references, sampling-based reducer allocation and 1-ROUND MSJ+EVAL
//! fusion.
//!
//! The top-level entry point is [`engine::GumboEngine`], which plans and
//! executes SGF queries over a `gumbo-storage` DFS using the `gumbo-mr`
//! substrate.

pub mod engine;
pub mod estimate;
pub mod eval;
pub mod msj;
pub mod oneround;
pub mod plan;
pub mod planner;
pub mod semijoin;

pub use engine::{EvalOptions, EvalRequest, Grouping, GumboEngine, SortStrategy};
pub use estimate::{Estimator, FilterPrediction};
pub use plan::{BsgfSetPlan, PayloadMode};
pub use semijoin::{QueryContext, SemiJoin};
