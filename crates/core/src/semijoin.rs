//! Semi-join extraction: from BSGF queries to the equation set `S`.
//!
//! §4.4 of the paper: for a BSGF query `Z := SELECT w̄ FROM R(t̄) WHERE C`
//! with distinct conditional atoms `κ₁, …, κₙ`, let
//! `S = {X₁ := π(R(t̄) ⋉ κ₁), …, Xₙ := π(R(t̄) ⋉ κₙ)}` and `ϕ_C` the Boolean
//! formula over the `Xᵢ`. Every partition of `S` into MSJ jobs followed by
//! `EVAL(R, ϕ_C)` computes `Z`.
//!
//! ### A note on the projection
//!
//! The paper writes `Xᵢ := π_{w̄}(R(t̄) ⋉ κᵢ)`. When `w̄` omits guard
//! variables *and* `C` contains negation, projecting before the Boolean
//! combination is lossy (two guard tuples with equal `w̄`-projections can
//! disagree on `κᵢ`). We therefore always identify guard tuples by their
//! *full* variable projection (or by tuple reference, §5.1 (2)) inside the
//! plan, and apply `π_{w̄}` in the final EVAL output — semantically safe for
//! every Boolean combination and identical in cost for the paper's
//! workloads (which select all guard variables).

use std::collections::BTreeMap;
use std::fmt;

use gumbo_common::{RelationName, Result};
use gumbo_sgf::{Atom, BoolExpr, BsgfQuery, Term, Var};

/// One semi-join equation `Xᵢ := π(α ⋉ κ)` extracted from a BSGF query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemiJoin {
    /// Global id within the [`QueryContext`] (stable across planning).
    pub id: usize,
    /// Index of the owning query within the context.
    pub query_idx: usize,
    /// The output relation `Xᵢ` storing this semi-join's result.
    pub x_name: RelationName,
    /// The guard atom `α`.
    pub guard: Atom,
    /// The conditional atom `κ`.
    pub cond: Atom,
    /// The join key `z̄`: variables shared by `α` and `κ`, in sorted order.
    pub join_key: Vec<Var>,
    /// The guard's identity variables (distinct variables of `α` in first
    /// occurrence order) — what `Xᵢ` stores in full-payload mode.
    pub identity_vars: Vec<Var>,
}

impl fmt::Display for SemiJoin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := {} ⋉ {}", self.x_name, self.guard, self.cond)
    }
}

/// The distinct variables of an atom in first-occurrence order.
pub fn identity_vars(atom: &Atom) -> Vec<Var> {
    let mut seen = Vec::new();
    for t in atom.terms() {
        if let Term::Var(v) = t {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        }
    }
    seen
}

/// A conditional-atom stream shared by several semi-joins: the atom plus
/// the join key its asserts are projected on.
pub type AssertGroup = (Atom, Vec<Var>);

/// A set of BSGF queries prepared for planning: the paper's `F` (§4.5),
/// with all semi-joins extracted and formulas rewritten over them.
#[derive(Debug, Clone)]
pub struct QueryContext {
    queries: Vec<BsgfQuery>,
    semijoins: Vec<SemiJoin>,
    /// Per query: ids of its semi-joins, in conditional-atom order.
    per_query: Vec<Vec<usize>>,
    /// Per query: `ϕ_C` over *global* semi-join ids (None = no WHERE clause).
    formulas: Vec<Option<BoolExpr>>,
}

impl QueryContext {
    /// Prepare a set of BSGF queries (which must have pairwise distinct
    /// output names and not reference one another — the members of one
    /// group `Fᵢ` of a multiway topological sort satisfy this).
    pub fn new(queries: Vec<BsgfQuery>) -> Result<Self> {
        for (i, q) in queries.iter().enumerate() {
            for p in queries.iter().skip(i + 1) {
                if q.output() == p.output() {
                    return Err(gumbo_common::GumboError::Plan(format!(
                        "duplicate output relation {} in query set",
                        q.output()
                    )));
                }
            }
            for p in &queries {
                if p.input_relations().contains(q.output()) {
                    return Err(gumbo_common::GumboError::Plan(format!(
                        "query set member {} references member output {}",
                        p.output(),
                        q.output()
                    )));
                }
            }
        }
        let mut semijoins = Vec::new();
        let mut per_query = Vec::new();
        let mut formulas = Vec::new();
        for (query_idx, q) in queries.iter().enumerate() {
            let guard = q.guard().clone();
            let ident = identity_vars(&guard);
            let atoms = q.conditional_atoms();
            let mut ids = Vec::with_capacity(atoms.len());
            for (cond_idx, atom) in atoms.iter().enumerate() {
                let id = semijoins.len();
                semijoins.push(SemiJoin {
                    id,
                    query_idx,
                    x_name: format!("{}#X{}", q.output(), cond_idx).into(),
                    guard: guard.clone(),
                    cond: (*atom).clone(),
                    join_key: guard.join_key(atom),
                    identity_vars: ident.clone(),
                });
                ids.push(id);
            }
            // Rewrite the condition over local atom indices, then shift the
            // local indices to global semi-join ids.
            let formula = q.condition().map(|c| {
                let local = c.to_bool_expr(&atoms);
                remap_vars(&local, &ids)
            });
            per_query.push(ids);
            formulas.push(formula);
        }
        Ok(QueryContext {
            queries,
            semijoins,
            per_query,
            formulas,
        })
    }

    /// The queries of the set.
    pub fn queries(&self) -> &[BsgfQuery] {
        &self.queries
    }

    /// All extracted semi-joins (global id order).
    pub fn semijoins(&self) -> &[SemiJoin] {
        &self.semijoins
    }

    /// Semi-join by global id.
    pub fn semijoin(&self, id: usize) -> &SemiJoin {
        &self.semijoins[id]
    }

    /// Ids of the semi-joins belonging to query `query_idx`.
    pub fn semijoins_of(&self, query_idx: usize) -> &[usize] {
        &self.per_query[query_idx]
    }

    /// `ϕ_C` of query `query_idx` over global semi-join ids.
    pub fn formula(&self, query_idx: usize) -> Option<&BoolExpr> {
        self.formulas[query_idx].as_ref()
    }

    /// Whether query `query_idx` qualifies for same-key 1-ROUND fusion:
    /// it has at least one conditional atom and all of its semi-joins share
    /// one non-empty join key (§5.1 (4)).
    pub fn same_key_fusible(&self, query_idx: usize) -> bool {
        let ids = &self.per_query[query_idx];
        if ids.is_empty() {
            return false;
        }
        let first = &self.semijoins[ids[0]].join_key;
        !first.is_empty() && ids.iter().all(|&i| &self.semijoins[i].join_key == first)
    }

    /// Whether *every* query of the set is same-key fusible.
    pub fn all_same_key_fusible(&self) -> bool {
        !self.queries.is_empty() && (0..self.queries.len()).all(|q| self.same_key_fusible(q))
    }

    /// Whether query `query_idx`'s condition is a pure disjunction of
    /// (possibly negated) atoms — the other 1-ROUND trigger (§5.1 (4)).
    pub fn disjunctive_fusible(&self, query_idx: usize) -> bool {
        match self.queries[query_idx].condition() {
            None => false,
            Some(c) => {
                is_or_of_literals(c)
                    && self.per_query[query_idx]
                        .iter()
                        .all(|&i| !self.semijoins[i].join_key.is_empty())
            }
        }
    }
}

/// Whether a condition is a disjunction of literals (atom / NOT atom).
fn is_or_of_literals(c: &gumbo_sgf::Condition) -> bool {
    use gumbo_sgf::Condition::*;
    match c {
        Atom(_) => true,
        Not(inner) => matches!(**inner, Atom(_)),
        Or(l, r) => is_or_of_literals(l) && is_or_of_literals(r),
        And(..) => false,
    }
}

/// Replace local variable indices with the provided global ids.
fn remap_vars(e: &BoolExpr, ids: &[usize]) -> BoolExpr {
    match e {
        BoolExpr::Var(i) => BoolExpr::Var(ids[*i]),
        BoolExpr::Const(b) => BoolExpr::Const(*b),
        BoolExpr::Not(x) => BoolExpr::Not(Box::new(remap_vars(x, ids))),
        BoolExpr::And(l, r) => {
            BoolExpr::And(Box::new(remap_vars(l, ids)), Box::new(remap_vars(r, ids)))
        }
        BoolExpr::Or(l, r) => {
            BoolExpr::Or(Box::new(remap_vars(l, ids)), Box::new(remap_vars(r, ids)))
        }
    }
}

/// Group semi-joins by `(conditional atom, join key)` — semi-joins in one
/// group can share a single Assert stream (their conditional facts project
/// identically). Returns the group index of every semi-join id passed in.
pub fn cond_groups(semijoins: &[&SemiJoin]) -> (Vec<AssertGroup>, BTreeMap<usize, usize>) {
    let mut groups: Vec<AssertGroup> = Vec::new();
    let mut assignment = BTreeMap::new();
    for sj in semijoins {
        let key = (sj.cond.clone(), sj.join_key.clone());
        let idx = groups.iter().position(|g| *g == key).unwrap_or_else(|| {
            groups.push(key.clone());
            groups.len() - 1
        });
        assignment.insert(sj.id, idx);
    }
    (groups, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_sgf::parse_query;

    fn ctx(text: &str) -> QueryContext {
        QueryContext::new(vec![parse_query(text).unwrap()]).unwrap()
    }

    #[test]
    fn extraction_of_intro_query() {
        // Q from §1: three semi-joins X1, X2, X3.
        let c = ctx("Z := SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);");
        assert_eq!(c.semijoins().len(), 3);
        assert_eq!(c.semijoin(0).cond.to_string(), "S(x, y)");
        assert_eq!(c.semijoin(1).cond.to_string(), "S(y, x)");
        assert_eq!(c.semijoin(2).cond.to_string(), "T(x, z)");
        // ϕ = (X0 ∨ X1) ∧ X2.
        let phi = c.formula(0).unwrap();
        assert!(phi.evaluate(&|i| i == 0 || i == 2));
        assert!(!phi.evaluate(&|i| i == 0 || i == 1));
    }

    #[test]
    fn join_keys_are_shared_vars() {
        let c = ctx("Z := SELECT (x, y) FROM R(x, y) WHERE S(y, w) AND T(q);");
        assert_eq!(c.semijoin(0).join_key, vec![Var::new("y")]);
        // T(q) shares nothing with the guard: empty join key.
        assert!(c.semijoin(1).join_key.is_empty());
    }

    #[test]
    fn identity_vars_first_occurrence_dedup() {
        let a = Atom::vars("R", &["x", "y", "x", "z"]);
        assert_eq!(
            identity_vars(&a),
            vec![Var::new("x"), Var::new("y"), Var::new("z")]
        );
    }

    #[test]
    fn same_key_fusible_detection() {
        // A3 shape: all conditionals on x.
        let a3 = ctx("Z := SELECT (x, y, z, w) FROM R(x, y, z, w) \
             WHERE S(x) AND T(x) AND U(x) AND V(x);");
        assert!(a3.same_key_fusible(0));
        // A1 shape: different keys.
        let a1 = ctx("Z := SELECT (x, y, z, w) FROM R(x, y, z, w) \
             WHERE S(x) AND T(y) AND U(z) AND V(w);");
        assert!(!a1.same_key_fusible(0));
        // No condition: not fusible.
        let plain = ctx("Z := SELECT x FROM R(x);");
        assert!(!plain.same_key_fusible(0));
    }

    #[test]
    fn disjunctive_fusible_detection() {
        let yes = ctx("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR NOT T(y) OR U(x);");
        assert!(yes.disjunctive_fusible(0));
        let no = ctx("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);");
        assert!(!no.disjunctive_fusible(0));
        // NOT over a disjunction is not a literal disjunction.
        let nested = ctx("Z := SELECT (x, y) FROM R(x, y) WHERE NOT (S(x) OR T(y));");
        assert!(!nested.disjunctive_fusible(0));
    }

    #[test]
    fn multi_query_context_assigns_global_ids() {
        let q1 = parse_query("Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);").unwrap();
        let q2 = parse_query("Z2 := SELECT (x, y) FROM G(x, y) WHERE S(x);").unwrap();
        let c = QueryContext::new(vec![q1, q2]).unwrap();
        assert_eq!(c.semijoins().len(), 3);
        assert_eq!(c.semijoins_of(0), &[0, 1]);
        assert_eq!(c.semijoins_of(1), &[2]);
        assert_eq!(c.semijoin(2).query_idx, 1);
        // Formula of query 2 references global id 2.
        assert!(c.formula(1).unwrap().evaluate(&|i| i == 2));
    }

    #[test]
    fn query_set_rejects_internal_references() {
        let q1 = parse_query("Z1 := SELECT x FROM R(x) WHERE S(x);").unwrap();
        let q2 = parse_query("Z2 := SELECT x FROM Z1(x);").unwrap();
        assert!(QueryContext::new(vec![q1, q2]).is_err());
    }

    #[test]
    fn cond_groups_share_asserts() {
        // A5 shape: two guards, same conditionals with the same keys.
        let q1 = parse_query("Z1 := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE S(x) AND T(y);")
            .unwrap();
        let q2 = parse_query("Z2 := SELECT (x, y, z, w) FROM G(x, y, z, w) WHERE S(x) AND T(y);")
            .unwrap();
        let c = QueryContext::new(vec![q1, q2]).unwrap();
        let sjs: Vec<&SemiJoin> = c.semijoins().iter().collect();
        let (groups, assignment) = cond_groups(&sjs);
        // S(x)@[x] and T(y)@[y]: only two assert streams for four semi-joins.
        assert_eq!(groups.len(), 2);
        assert_eq!(assignment[&0], assignment[&2]);
        assert_eq!(assignment[&1], assignment[&3]);
    }

    #[test]
    fn cond_groups_distinguish_keys() {
        // Same atom S(x, y) under guards that share different variables
        // with it -> different join keys -> different assert streams.
        let q1 = parse_query("Z1 := SELECT x FROM R(x) WHERE S(x, y);").unwrap();
        let q2 = parse_query("Z2 := SELECT y FROM G(y) WHERE S(x, y);").unwrap();
        let c = QueryContext::new(vec![q1, q2]).unwrap();
        let sjs: Vec<&SemiJoin> = c.semijoins().iter().collect();
        let (groups, assignment) = cond_groups(&sjs);
        assert_eq!(groups.len(), 2);
        assert_ne!(assignment[&0], assignment[&1]);
    }
}
