//! The `EVAL` job: Boolean combinations of semi-join results (§4.3).
//!
//! `EVAL(Y₁, ϕ₁, …, Yₙ, ϕₙ)` evaluates several queries' Boolean formulas in
//! one job. For each query the mapper tags every guard tuple identity with
//! the relations `Xᵢ` it belongs to plus a guard-presence tag (the paper's
//! `X₀`); the reducer replays `X₀ ∧ ϕ` over the tag set and outputs the
//! `w̄`-projection of surviving guard tuples.
//!
//! In **reference** mode (§5.1 (2)) identities are `(guard, id)` pairs, so
//! the guard relation is re-read to recover output tuples — the trade
//! the paper calls out explicitly ("the guard relation needs to be re-read
//! in the EVAL job").

use gumbo_common::{RelationName, Tuple, Value};
use gumbo_mr::{Job, JobConfig, Mapper, Message, Reducer};
use gumbo_sgf::{Atom, BoolExpr, Var};

use crate::plan::PayloadMode;
use crate::semijoin::QueryContext;

/// Per-query mapper/reducer state.
#[derive(Debug, Clone)]
struct EvalQuery {
    output: RelationName,
    guard_rel: RelationName,
    guard: Atom,
    identity_vars: Vec<Var>,
    output_vars: Vec<Var>,
    /// Positions of `output_vars` inside `identity_vars` (full mode).
    out_positions: Vec<usize>,
    /// `ϕ_C` over global semi-join ids (`Const(true)` if no WHERE clause).
    formula: BoolExpr,
}

struct EvalMapper {
    mode: PayloadMode,
    queries: Vec<EvalQuery>,
    /// `(x relation, tag)` per semi-join; tags start at `queries.len()`.
    xs: Vec<(RelationName, u32)>,
}

impl Mapper for EvalMapper {
    fn map(&self, fact: &gumbo_common::Fact, index: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        // X-relation side: tag the identity.
        for (x_name, tag) in &self.xs {
            if &fact.relation == x_name {
                emit(fact.tuple.clone(), Message::Tag { rel: *tag });
                return; // X names are disjoint from guard relations.
            }
        }
        // Guard side: one tag (full mode) or guard-tuple message (ref mode)
        // per query guarded by this relation.
        for (j, q) in self.queries.iter().enumerate() {
            if fact.relation == q.guard_rel && q.guard.conforms_fact(fact) {
                match self.mode {
                    PayloadMode::Full => {
                        let key = q.guard.project(&fact.tuple, &q.identity_vars);
                        emit(key, Message::Tag { rel: j as u32 });
                    }
                    PayloadMode::Reference => {
                        let key = Tuple::new(vec![Value::Int(j as i64), Value::Int(index as i64)]);
                        emit(
                            key,
                            Message::GuardTuple {
                                guard: j as u32,
                                tuple: fact.tuple.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
}

struct EvalReducer {
    mode: PayloadMode,
    queries: Vec<EvalQuery>,
    num_queries: u32,
}

impl EvalReducer {
    fn formula_holds(&self, q: &EvalQuery, tags: &[u32]) -> bool {
        q.formula
            .evaluate(&|sj| tags.contains(&(self.num_queries + sj as u32)))
    }
}

impl Reducer for EvalReducer {
    fn reduce(&self, key: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
        let tags: Vec<u32> = values
            .iter()
            .filter_map(|m| match m {
                Message::Tag { rel } => Some(*rel),
                _ => None,
            })
            .collect();
        match self.mode {
            PayloadMode::Full => {
                for (j, q) in self.queries.iter().enumerate() {
                    // The paper's X₀ ∧ ϕ: the guard tag must be present.
                    if key.arity() == q.identity_vars.len()
                        && tags.contains(&(j as u32))
                        && self.formula_holds(q, &tags)
                    {
                        emit(&q.output, key.project(&q.out_positions));
                    }
                }
            }
            PayloadMode::Reference => {
                for m in values {
                    if let Message::GuardTuple { guard, tuple } = m {
                        let q = &self.queries[*guard as usize];
                        if self.formula_holds(q, &tags) {
                            emit(&q.output, q.guard.project(tuple, &q.output_vars));
                        }
                    }
                }
            }
        }
    }
}

/// Build the `EVAL` job for all queries of a [`QueryContext`].
pub fn build_eval_job(ctx: &QueryContext, mode: PayloadMode, config: JobConfig) -> Job {
    let num_queries = ctx.queries().len() as u32;
    let queries: Vec<EvalQuery> = ctx
        .queries()
        .iter()
        .enumerate()
        .map(|(j, q)| {
            let identity = crate::semijoin::identity_vars(q.guard());
            let out_positions = q
                .output_vars()
                .iter()
                .map(|v| {
                    identity
                        .iter()
                        .position(|iv| iv == v)
                        .expect("guarded output var")
                })
                .collect();
            EvalQuery {
                output: q.output().clone(),
                guard_rel: q.guard().relation().clone(),
                guard: q.guard().clone(),
                identity_vars: identity,
                output_vars: q.output_vars().to_vec(),
                out_positions,
                formula: ctx.formula(j).cloned().unwrap_or(BoolExpr::Const(true)),
            }
        })
        .collect();

    let xs: Vec<(RelationName, u32)> = ctx
        .semijoins()
        .iter()
        .map(|sj| (sj.x_name.clone(), num_queries + sj.id as u32))
        .collect();

    // Inputs: all X relations, then the (deduplicated) guard relations —
    // the guard re-read of optimization (2) / the X₀ read of Eq. 7.
    let mut inputs: Vec<RelationName> = xs.iter().map(|(n, _)| n.clone()).collect();
    for q in &queries {
        if !inputs.contains(&q.guard_rel) {
            inputs.push(q.guard_rel.clone());
        }
    }

    let outputs: Vec<(RelationName, usize)> = queries
        .iter()
        .map(|q| (q.output.clone(), q.output_vars.len()))
        .collect();

    let out_list: Vec<String> = queries.iter().map(|q| q.output.to_string()).collect();
    Job {
        name: format!("EVAL({})", out_list.join(",")),
        inputs,
        outputs,
        mapper: Box::new(EvalMapper {
            mode,
            queries: queries.clone(),
            xs,
        }),
        reducer: Box::new(EvalReducer {
            mode,
            queries,
            num_queries,
        }),
        config,
        estimate: None,
        filter: None,
    }
}

// EvalQuery is cloned into both mapper and reducer.
impl Clone for EvalMapper {
    fn clone(&self) -> Self {
        EvalMapper {
            mode: self.mode,
            queries: self.queries.clone(),
            xs: self.xs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msj::build_msj_job;
    use gumbo_common::{Database, Fact, Relation, Result};
    use gumbo_mr::{EngineConfig, ExecutorKind, MrProgram};
    use gumbo_sgf::{parse_query, NaiveEvaluator};
    use gumbo_storage::SimDfs;

    /// Execute the canonical 2-round plan (one MSJ with all semi-joins,
    /// then EVAL) on both runtimes and compare against the naive evaluator.
    fn check_two_round(query_text: &str, facts: &[(&str, &[i64])], arities: &[(&str, usize)]) {
        let kinds = [
            ExecutorKind::Simulated,
            ExecutorKind::Parallel { threads: 2 },
        ];
        for (mode, kind) in [PayloadMode::Full, PayloadMode::Reference]
            .into_iter()
            .flat_map(|m| kinds.into_iter().map(move |k| (m, k)))
        {
            let q = parse_query(query_text).unwrap();
            let ctx = QueryContext::new(vec![q.clone()]).unwrap();
            let mut db = Database::new();
            for (name, arity) in arities {
                db.add_relation(Relation::new(*name, *arity));
            }
            for (rel, t) in facts {
                db.insert_fact(Fact::new(*rel, Tuple::from_ints(t)))
                    .unwrap();
            }
            let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &db).unwrap();

            let dfs = SimDfs::from_database(&db);
            let mut program = MrProgram::new();
            let all: Vec<usize> = (0..ctx.semijoins().len()).collect();
            if !all.is_empty() {
                program.push_job(build_msj_job(&ctx, &all, mode, JobConfig::default()));
            }
            program.push_job(build_eval_job(&ctx, mode, JobConfig::default()));
            kind.build(EngineConfig::unscaled())
                .execute(&dfs, &program)
                .unwrap();

            let got = dfs.peek(&q.output().clone()).unwrap();
            assert_eq!(
                got.as_ref(),
                &expected.renamed(q.output().clone()),
                "mode {mode:?}, executor {}",
                kind.label()
            );
        }
    }

    #[test]
    fn intro_query_full_plan() {
        check_two_round(
            "Z := SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);",
            &[
                ("R", &[1, 2]),
                ("R", &[3, 4]),
                ("R", &[5, 6]),
                ("S", &[2, 1]),
                ("S", &[5, 6]),
                ("T", &[1, 9]),
            ],
            &[("R", 2), ("S", 2), ("T", 2)],
        );
    }

    #[test]
    fn negation_with_projection_is_sound() {
        // The case where projecting before the Boolean combination would be
        // wrong: two guard tuples share x = 1 but differ on S-membership.
        check_two_round(
            "Z := SELECT x FROM R(x, y) WHERE NOT S(y);",
            &[("R", &[1, 2]), ("R", &[1, 3]), ("S", &[2])],
            &[("R", 2), ("S", 1)],
        );
    }

    #[test]
    fn pure_negation_query() {
        check_two_round(
            "Z := SELECT x FROM R(x) WHERE NOT S(x);",
            &[("R", &[1]), ("R", &[2]), ("S", &[2])],
            &[("R", 1), ("S", 1)],
        );
    }

    #[test]
    fn no_where_clause_projects_guard() {
        check_two_round(
            "Z := SELECT y FROM R(x, y);",
            &[("R", &[1, 7]), ("R", &[2, 7]), ("R", &[3, 8])],
            &[("R", 2)],
        );
    }

    #[test]
    fn xor_query_z5() {
        check_two_round(
            "Z := SELECT (x, y) FROM R(x, y, 4) \
             WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));",
            &[
                ("R", &[1, 2, 4]),
                ("R", &[3, 4, 4]),
                ("R", &[5, 6, 7]), // wrong constant, filtered by guard
                ("S", &[1, 1]),    // S(1,x) for x=1
                ("S", &[4, 10]),   // S(y,10) for y=4
                ("S", &[1, 3]),    // S(1,x) for x=3 -> R(3,4,4) has both -> excluded
            ],
            &[("R", 3), ("S", 2)],
        );
    }

    #[test]
    fn multi_query_eval_in_one_job() {
        // Two queries with different guards, evaluated by one EVAL job.
        let q1 = parse_query("Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x);").unwrap();
        let q2 = parse_query("Z2 := SELECT (x, y) FROM G(x, y) WHERE NOT S(x);").unwrap();
        let ctx = QueryContext::new(vec![q1.clone(), q2.clone()]).unwrap();

        let mut db = Database::new();
        for (rel, t) in [
            ("R", [1i64, 2]),
            ("R", [3, 4]),
            ("G", [1, 2]),
            ("G", [5, 6]),
        ] {
            db.insert_fact(Fact::new(rel, Tuple::from_ints(&t)))
                .unwrap();
        }
        db.insert_fact(Fact::new("S", Tuple::from_ints(&[1])))
            .unwrap();
        let naive = NaiveEvaluator::new();
        let e1 = naive.evaluate_bsgf(&q1, &db).unwrap();
        let e2 = naive.evaluate_bsgf(&q2, &db).unwrap();

        for mode in [PayloadMode::Full, PayloadMode::Reference] {
            let dfs = SimDfs::from_database(&db);
            let mut program = MrProgram::new();
            program.push_job(build_msj_job(&ctx, &[0, 1], mode, JobConfig::default()));
            program.push_job(build_eval_job(&ctx, mode, JobConfig::default()));
            ExecutorKind::default()
                .build(EngineConfig::unscaled())
                .execute(&dfs, &program)
                .unwrap();
            assert_eq!(
                dfs.peek(&"Z1".into()).unwrap().as_ref(),
                &e1,
                "mode {mode:?}"
            );
            assert_eq!(
                dfs.peek(&"Z2".into()).unwrap().as_ref(),
                &e2,
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn same_guard_two_queries_share_one_read() -> Result<()> {
        let q1 = parse_query("Z1 := SELECT x FROM R(x, y) WHERE S(x);").unwrap();
        let q2 = parse_query("Z2 := SELECT y FROM R(x, y) WHERE T(y);").unwrap();
        let ctx = QueryContext::new(vec![q1, q2]).unwrap();
        let job = build_eval_job(&ctx, PayloadMode::Full, JobConfig::default());
        // Inputs: Z1#X0, Z2#X0, R (once).
        let names: Vec<String> = job.inputs.iter().map(|r| r.to_string()).collect();
        assert_eq!(names, vec!["Z1#X0", "Z2#X0", "R"]);
        Ok(())
    }
}
