//! The Gumbo engine: plan and execute SGF queries end to end.
//!
//! Evaluation follows the paper's two-tier strategy (§4.6): first choose a
//! multiway topological sort of the BSGF dependency graph (`Greedy-SGF`,
//! sequential, level-parallel, or brute-force optimal), then plan each
//! group as a set of BSGF queries (`Greedy-BSGF`, singletons = PAR, a
//! single MSJ job, or brute-force optimal), optionally fusing a group into
//! a 1-ROUND job when its structure permits (§5.1 (4)). Groups execute in
//! order; each group is planned against *live* statistics, since earlier
//! groups' outputs are materialized by the time later groups are planned.

use gumbo_common::{GumboError, Relation, Result};
use gumbo_mr::{
    CostModelKind, EngineConfig, Executor, ExecutorKind, JobConfig, MrProgram, ProgramStats,
};
use gumbo_sched::{DagScheduler, SchedulerConfig};
use gumbo_sgf::{BsgfQuery, DependencyGraph, MultiwayTopoSort, SgfQuery};
use gumbo_storage::Dfs;

use crate::estimate::Estimator;
use crate::plan::{BsgfSetPlan, OneRoundKind, PayloadMode};
use crate::planner::greedy_bsgf::Block;
use crate::planner::{greedy_partition, greedy_sgf_sort, optimal_partition, optimal_sgf_sort};
use crate::semijoin::QueryContext;

/// How each group's semi-joins are partitioned into MSJ jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Grouping {
    /// `Greedy-BSGF` (§4.4) — the paper's GREEDY strategy.
    #[default]
    Greedy,
    /// Every semi-join in its own job — the paper's PAR strategy.
    Singletons,
    /// All semi-joins in one MSJ job.
    SingleJob,
    /// Brute-force optimal partition (small queries only).
    BruteForce,
}

/// How the SGF dependency graph is ordered into groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortStrategy {
    /// `Greedy-SGF` (§4.6).
    #[default]
    GreedySgf,
    /// One BSGF per group in definition order — SEQUNIT (§5.3).
    Sequential,
    /// Level-by-level (dependency depth) — PARUNIT (§5.3).
    Levels,
    /// Brute-force optimal sort (small queries only).
    Optimal,
    /// Dynamic `Greedy-SGF`: re-run the greedy sort after every group
    /// executes, planning each next group against live statistics (the
    /// "naive dynamic evaluation strategy" the paper sketches at the end
    /// of §4.6).
    DynamicGreedy,
}

/// Everything configurable about evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Per-group partitioning strategy.
    pub grouping: Grouping,
    /// Dependency-graph ordering strategy.
    pub sort: SortStrategy,
    /// Payload mode (guard references by default, §5.1 (2)).
    pub mode: PayloadMode,
    /// Fuse a group into a 1-ROUND job when its structure permits.
    pub enable_one_round: bool,
    /// Per-job configuration (packing, reducer policy, split size).
    pub job_config: JobConfig,
    /// Cost model the *planner* uses (the engine always meters with its
    /// own model; §5.2 compares planners under Gumbo vs Wang models).
    pub planner_model: CostModelKind,
    /// Sample size for conformance-rate estimation.
    pub sample_size: usize,
    /// Sampling seed.
    pub seed: u64,
    /// When set, planned programs execute on the dependency-driven DAG
    /// scheduler (jobs start the moment their inputs are materialized,
    /// bounded by `max_concurrent_jobs`) instead of the round barrier.
    /// Answer relations and per-job statistics are identical either way;
    /// only real wall-clock changes.
    pub scheduler: Option<SchedulerConfig>,
    /// Shuffle memory budget (`--mem-budget` on the CLI). When limited,
    /// it overrides [`gumbo_mr::EngineConfig::mem_budget`] for the
    /// runtime this engine builds: map output is charged against one
    /// shared tracker and per-reducer buffers spill sorted runs to disk
    /// rather than exceed it. Answer relations and all non-spill
    /// statistics are identical to unlimited execution. A limited
    /// [`SchedulerConfig::mem_budget`] takes precedence on the scheduled
    /// path.
    pub mem_budget: gumbo_mr::MemBudget,
    /// Block-cache budget, in bytes, for durable DFS backends
    /// (`--dfs-cache` on the CLI). The engine itself never constructs a
    /// DFS — whoever does (the CLI, the bench harness, a test) reads this
    /// knob when building a [`gumbo_storage::FileDfs`]. `None` keeps
    /// [`gumbo_storage::DEFAULT_CACHE_BYTES`]. Cache sizing can change
    /// wall clock and cache counters only, never answers or byte meters.
    pub dfs_cache: Option<u64>,
    /// Bloom-filtered semijoin shuffle (`--shuffle-filter` on the CLI).
    /// `Off` shuffles every message; `Bloom` filters every MSJ job;
    /// `Auto` filters only jobs whose planner prediction says the
    /// suppressed bytes exceed the filter broadcast. Answers are
    /// byte-identical either way — filtering changes byte meters and wall
    /// clock only.
    pub shuffle_filter: gumbo_mr::ShuffleFilterMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            grouping: Grouping::Greedy,
            sort: SortStrategy::GreedySgf,
            mode: PayloadMode::Reference,
            enable_one_round: true,
            job_config: JobConfig::default(),
            planner_model: CostModelKind::Gumbo,
            sample_size: 64,
            seed: 0x6d5b_0000,
            scheduler: None,
            mem_budget: gumbo_mr::MemBudget::UNLIMITED,
            dfs_cache: None,
            shuffle_filter: gumbo_mr::ShuffleFilterMode::Off,
        }
    }
}

impl EvalOptions {
    /// Builder-style: set the shuffle memory budget.
    pub fn with_mem_budget(mut self, budget: gumbo_mr::MemBudget) -> Self {
        self.mem_budget = budget;
        self
    }

    /// Builder-style: route execution through the DAG scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Builder-style: set the durable-DFS block-cache budget in bytes.
    pub fn with_dfs_cache(mut self, bytes: u64) -> Self {
        self.dfs_cache = Some(bytes);
        self
    }

    /// Builder-style: set the Bloom-filtered shuffle mode.
    pub fn with_shuffle_filter(mut self, mode: gumbo_mr::ShuffleFilterMode) -> Self {
        self.shuffle_filter = mode;
        self
    }
}

/// The Gumbo query engine.
///
/// Planning is independent of the runtime; execution is routed through
/// the [`Executor`] trait, so the same engine can run its plans on the
/// deterministic simulator (the default) or on the multi-threaded
/// [`gumbo_mr::ParallelExecutor`] — see [`GumboEngine::with_executor`].
#[derive(Debug, Clone, Copy)]
pub struct GumboEngine {
    /// The MapReduce substrate configuration (scale, cluster, cost model).
    pub config: EngineConfig,
    /// Which runtime executes the planned programs.
    pub executor: ExecutorKind,
    /// Evaluation options.
    pub options: EvalOptions,
}

impl GumboEngine {
    /// Create an engine on the default (simulated) runtime.
    pub fn new(config: EngineConfig, options: EvalOptions) -> Self {
        GumboEngine::with_executor(config, ExecutorKind::Simulated, options)
    }

    /// Create an engine on an explicit runtime.
    pub fn with_executor(
        config: EngineConfig,
        executor: ExecutorKind,
        options: EvalOptions,
    ) -> Self {
        GumboEngine {
            config,
            executor,
            options,
        }
    }

    /// Engine with default configuration and options.
    pub fn with_defaults() -> Self {
        GumboEngine::new(EngineConfig::default(), EvalOptions::default())
    }

    /// The runtime this engine executes on. Under a scheduler, the
    /// parallel runtime is resized to the configured threads-per-job (the
    /// scheduler supplies inter-job parallelism, so per-job pools shrink).
    ///
    /// The shuffle memory budget resolves outermost-wins: a limited
    /// [`SchedulerConfig::mem_budget`] beats a limited
    /// [`EvalOptions::mem_budget`] beats the engine configuration's.
    pub fn runtime(&self) -> Box<dyn Executor> {
        let mut config = self.config;
        if self.options.mem_budget.is_limited() {
            config.mem_budget = self.options.mem_budget;
        }
        if self.options.shuffle_filter != gumbo_mr::ShuffleFilterMode::Off {
            config.shuffle_filter = self.options.shuffle_filter;
        }
        let kind = match self.options.scheduler {
            Some(sched) => {
                config = sched.engine_config(config);
                sched.executor_kind(self.executor)
            }
            None => self.executor,
        };
        kind.build(config)
    }

    /// Execute one planned program on the configured path: the
    /// dependency-driven DAG scheduler when [`EvalOptions::scheduler`] is
    /// set, the round barrier otherwise.
    fn execute_program(
        &self,
        runtime: &dyn Executor,
        dfs: &dyn Dfs,
        program: MrProgram,
    ) -> Result<ProgramStats> {
        let span = gumbo_obs::span_with("execute", |f| {
            f.u64("jobs", program.num_jobs() as u64);
            f.bool("dag", self.options.scheduler.is_some());
        });
        let result = match self.options.scheduler {
            Some(config) => DagScheduler::new(config).execute_program(runtime, dfs, program),
            None => runtime.execute(dfs, &program),
        };
        drop(span);
        result
    }

    fn estimator<'a>(&self, dfs: &'a dyn Dfs) -> Estimator<'a> {
        Estimator::new(
            dfs,
            self.config.scale,
            self.config.constants,
            self.options.planner_model,
            self.options.sample_size,
            self.options.seed,
        )
    }

    /// Choose the multiway topological sort for an SGF query.
    pub fn sort_for(&self, dfs: &dyn Dfs, query: &SgfQuery) -> Result<MultiwayTopoSort> {
        let graph = DependencyGraph::new(query);
        Ok(match self.options.sort {
            SortStrategy::Sequential => graph.sequential_sort(),
            SortStrategy::Levels => graph.level_sort(),
            SortStrategy::GreedySgf | SortStrategy::DynamicGreedy => greedy_sgf_sort(query),
            SortStrategy::Optimal => {
                let (sort, _) = optimal_sgf_sort(query, &mut |s| self.sort_cost(dfs, query, s))?;
                sort
            }
        })
    }

    /// Estimated cost of evaluating `query` under a given sort (Eq. 10),
    /// registering output upper bounds between groups.
    pub fn sort_cost(
        &self,
        dfs: &dyn Dfs,
        query: &SgfQuery,
        sort: &MultiwayTopoSort,
    ) -> Result<f64> {
        let mut est = self.estimator(dfs);
        let mut total = 0.0;
        for group in sort {
            let queries: Vec<BsgfQuery> =
                group.iter().map(|&i| query.queries()[i].clone()).collect();
            let ctx = QueryContext::new(queries)?;
            let plan = self.plan_group(&est, &ctx)?;
            total += est.plan_cost(&ctx, &plan)?;
            for &i in group {
                let q = &query.queries()[i];
                let bound = est.output_upper_bound(q)?;
                est.catalog_mut().insert(q.output().clone(), bound);
            }
        }
        Ok(total)
    }

    /// Plan one group of BSGF queries.
    pub fn plan_group(&self, est: &Estimator<'_>, ctx: &QueryContext) -> Result<BsgfSetPlan> {
        let cfg = self.options.job_config;
        if self.options.enable_one_round {
            if ctx.all_same_key_fusible() {
                return Ok(BsgfSetPlan::one_round(OneRoundKind::SameKey, cfg));
            }
            let all_disjunctive = !ctx.queries().is_empty()
                && (0..ctx.queries().len()).all(|q| ctx.disjunctive_fusible(q));
            if all_disjunctive {
                return Ok(BsgfSetPlan::one_round(OneRoundKind::Disjunctive, cfg));
            }
        }
        let shuffle_filter = self.options.shuffle_filter;
        let n = ctx.semijoins().len();
        let mode = self.options.mode;
        let groups: Vec<Vec<usize>> = match self.options.grouping {
            Grouping::Singletons => (0..n).map(|i| vec![i]).collect(),
            Grouping::SingleJob => {
                if n == 0 {
                    vec![]
                } else {
                    vec![(0..n).collect()]
                }
            }
            Grouping::Greedy | Grouping::BruteForce => {
                let mut failure: Option<GumboError> = None;
                let mut cost_fn = |b: &Block| {
                    let ids: Vec<usize> = b.iter().copied().collect();
                    match est.msj_cost(ctx, &ids, mode, &cfg) {
                        Ok(c) => c,
                        Err(e) => {
                            failure.get_or_insert(e);
                            f64::MAX
                        }
                    }
                };
                let (blocks, _) = match self.options.grouping {
                    Grouping::Greedy => greedy_partition(n, &mut cost_fn),
                    Grouping::BruteForce => optimal_partition(n, &mut cost_fn),
                    _ => unreachable!(),
                };
                if let Some(e) = failure {
                    return Err(e);
                }
                blocks
                    .into_iter()
                    .map(|b| b.into_iter().collect())
                    .collect()
            }
        };
        Ok(BsgfSetPlan::two_round(groups, mode, cfg).with_shuffle_filter(shuffle_filter))
    }

    /// Start a builder-style evaluation request — the one entrypoint
    /// behind the former `evaluate*` sprawl. Configure with
    /// [`EvalRequest::on`] / [`EvalRequest::with_sort`] /
    /// [`EvalRequest::dynamic`], then finish with one of the `run*`
    /// methods against any [`Dfs`] backend.
    ///
    /// ```ignore
    /// let stats = engine.eval().run(&dfs, &query)?;                  // was evaluate
    /// let stats = engine.eval().on(&*rt).run(&dfs, &query)?;         // was evaluate_on
    /// let stats = engine.eval().with_sort(&sort).run(&dfs, &query)?; // was evaluate_with_sort
    /// ```
    pub fn eval(&self) -> EvalRequest<'_> {
        EvalRequest {
            engine: self,
            runtime: None,
            sort: None,
            dynamic: false,
        }
    }

    /// Evaluate a full SGF query: sort, then plan and execute each group.
    ///
    /// All outputs (final and intermediate `Z`s, plus `X` temporaries) are
    /// left in the DFS; returns the execution statistics. Shorthand for
    /// `self.eval().run(dfs, query)`.
    pub fn evaluate(&self, dfs: &dyn Dfs, query: &SgfQuery) -> Result<ProgramStats> {
        self.eval().run(dfs, query)
    }

    /// Dynamic `Greedy-SGF` (§4.6, closing remark): after each group is
    /// executed, re-run the greedy sort on the *remaining* subqueries —
    /// whose already-computed inputs are now materialized base relations —
    /// and execute the new first group.
    fn evaluate_dynamic_on(
        &self,
        runtime: &dyn Executor,
        dfs: &dyn Dfs,
        query: &SgfQuery,
    ) -> Result<ProgramStats> {
        let mut stats = ProgramStats::default();
        let mut remaining: Vec<BsgfQuery> = query.queries().to_vec();
        while !remaining.is_empty() {
            let rest = SgfQuery::new(remaining.clone())?;
            let sort = greedy_sgf_sort(&rest);
            let first: Vec<usize> = sort.into_iter().next().expect("non-empty query");
            let queries: Vec<BsgfQuery> =
                first.iter().map(|&i| rest.queries()[i].clone()).collect();
            let ctx = QueryContext::new(queries)?;
            let program = {
                let est = self.estimator(dfs);
                let plan = self.plan_group(&est, &ctx)?;
                // Annotate each job with the estimation layer's numbers,
                // so the scheduler places/sizes from the same estimates
                // the planner just optimized.
                plan.build_annotated_program(&ctx, &est)?
            };
            stats.extend(self.execute_program(runtime, dfs, program)?);
            let mut keep = Vec::with_capacity(remaining.len() - first.len());
            for (i, q) in remaining.into_iter().enumerate() {
                if !first.contains(&i) {
                    keep.push(q);
                }
            }
            remaining = keep;
        }
        Ok(stats)
    }

    /// Evaluate under an explicit (validated) multiway topological sort.
    fn evaluate_with_sort_on(
        &self,
        runtime: &dyn Executor,
        dfs: &dyn Dfs,
        query: &SgfQuery,
        sort: &MultiwayTopoSort,
    ) -> Result<ProgramStats> {
        DependencyGraph::new(query).validate_sort(sort)?;
        let mut stats = ProgramStats::default();
        for group in sort {
            let queries: Vec<BsgfQuery> =
                group.iter().map(|&i| query.queries()[i].clone()).collect();
            let ctx = QueryContext::new(queries)?;
            // Plan against live statistics: earlier groups are
            // materialized. The chosen plan's jobs are annotated with
            // their estimates (the shared estimation layer) before
            // execution, so the scheduled path can place by cost.
            let program = {
                let est = self.estimator(dfs);
                let plan = self.plan_group(&est, &ctx)?;
                plan.build_annotated_program(&ctx, &est)?
            };
            stats.extend(self.execute_program(runtime, dfs, program)?);
        }
        Ok(stats)
    }
}

/// One evaluation, assembled builder-style from [`GumboEngine::eval`].
///
/// The request borrows the engine (options, config, executor kind), an
/// optional caller-supplied runtime, and an optional explicit sort; the
/// DFS backend is handed to the terminal `run*` call, so one request can
/// be reused across backends. Handing a runtime in with
/// [`EvalRequest::on`] keeps it inspectable afterwards — e.g. reading
/// [`Executor::budget`] for peak tracked shuffle memory — and lets
/// several evaluations share one memory budget.
#[derive(Clone, Copy)]
pub struct EvalRequest<'a> {
    engine: &'a GumboEngine,
    runtime: Option<&'a dyn Executor>,
    sort: Option<&'a MultiwayTopoSort>,
    dynamic: bool,
}

impl<'a> EvalRequest<'a> {
    /// Run on a caller-supplied runtime instead of building one from the
    /// engine's configuration.
    pub fn on(mut self, runtime: &'a dyn Executor) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Pin an explicit multiway topological sort (validated at run time)
    /// instead of deriving one from [`EvalOptions::sort`].
    pub fn with_sort(mut self, sort: &'a MultiwayTopoSort) -> Self {
        self.sort = Some(sort);
        self
    }

    /// Force dynamic `Greedy-SGF` re-sorting between groups, regardless
    /// of [`EvalOptions::sort`].
    pub fn dynamic(mut self) -> Self {
        self.dynamic = true;
        self
    }

    /// Evaluate a full SGF query against `dfs`. All outputs (final and
    /// intermediate `Z`s, plus `X` temporaries) are left in the DFS.
    pub fn run(&self, dfs: &dyn Dfs, query: &SgfQuery) -> Result<ProgramStats> {
        match self.runtime {
            Some(rt) => self.run_on(rt, dfs, query),
            None => self.run_on(&*self.engine.runtime(), dfs, query),
        }
    }

    /// Evaluate several SGF queries together over the union of their BSGF
    /// subqueries (§4.7), exploiting cross-query overlap.
    pub fn run_many(&self, dfs: &dyn Dfs, queries: &[SgfQuery]) -> Result<ProgramStats> {
        let combined = SgfQuery::union(queries)?;
        self.run(dfs, &combined)
    }

    /// Evaluate a single BSGF query.
    pub fn run_bsgf(&self, dfs: &dyn Dfs, query: &BsgfQuery) -> Result<ProgramStats> {
        self.run(dfs, &SgfQuery::single(query.clone()))
    }

    /// Evaluate and return the final output relation alongside statistics.
    pub fn run_with_output(
        &self,
        dfs: &dyn Dfs,
        query: &SgfQuery,
    ) -> Result<(ProgramStats, Relation)> {
        let stats = self.run(dfs, query)?;
        let out = dfs.peek(query.output())?;
        Ok((stats, out.as_ref().clone()))
    }

    fn run_on(
        &self,
        runtime: &dyn Executor,
        dfs: &dyn Dfs,
        query: &SgfQuery,
    ) -> Result<ProgramStats> {
        if let Some(sort) = self.sort {
            return self.engine.evaluate_with_sort_on(runtime, dfs, query, sort);
        }
        if self.dynamic || self.engine.options.sort == SortStrategy::DynamicGreedy {
            return self.engine.evaluate_dynamic_on(runtime, dfs, query);
        }
        let sort = self.engine.sort_for(dfs, query)?;
        self.engine
            .evaluate_with_sort_on(runtime, dfs, query, &sort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Database, Relation, Tuple};
    use gumbo_sgf::{parse_program, parse_query, NaiveEvaluator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_db(seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for (name, arity, n) in [
            ("R", 2usize, 60i64),
            ("G", 2, 50),
            ("S", 1, 20),
            ("T", 1, 20),
            ("U", 2, 30),
        ] {
            let mut rel = Relation::new(name, arity);
            for _ in 0..n {
                let t: Vec<i64> = (0..arity).map(|_| rng.gen_range(0..25)).collect();
                rel.insert(Tuple::from_ints(&t)).unwrap();
            }
            db.add_relation(rel);
        }
        db
    }

    fn engines() -> Vec<(&'static str, GumboEngine)> {
        let base = EngineConfig::unscaled();
        let mk = |grouping, sort, mode, one_round| {
            GumboEngine::new(
                base,
                EvalOptions {
                    grouping,
                    sort,
                    mode,
                    enable_one_round: one_round,
                    ..EvalOptions::default()
                },
            )
        };
        let parallel = GumboEngine::with_executor(
            base,
            ExecutorKind::Parallel { threads: 4 },
            EvalOptions::default(),
        );
        let scheduled = GumboEngine::new(
            base,
            EvalOptions {
                scheduler: Some(SchedulerConfig::default()),
                ..EvalOptions::default()
            },
        );
        vec![
            (
                "greedy",
                mk(
                    Grouping::Greedy,
                    SortStrategy::GreedySgf,
                    PayloadMode::Reference,
                    false,
                ),
            ),
            (
                "greedy+1r",
                mk(
                    Grouping::Greedy,
                    SortStrategy::GreedySgf,
                    PayloadMode::Reference,
                    true,
                ),
            ),
            (
                "par-levels",
                mk(
                    Grouping::Singletons,
                    SortStrategy::Levels,
                    PayloadMode::Full,
                    false,
                ),
            ),
            (
                "seq-unit",
                mk(
                    Grouping::Singletons,
                    SortStrategy::Sequential,
                    PayloadMode::Reference,
                    false,
                ),
            ),
            (
                "single-job",
                mk(
                    Grouping::SingleJob,
                    SortStrategy::GreedySgf,
                    PayloadMode::Full,
                    false,
                ),
            ),
            (
                "bruteforce",
                mk(
                    Grouping::BruteForce,
                    SortStrategy::Optimal,
                    PayloadMode::Reference,
                    false,
                ),
            ),
            ("greedy+parallel-runtime", parallel),
            ("greedy+dag-scheduler", scheduled),
        ]
    }

    #[test]
    fn all_strategies_match_naive_on_nested_query() {
        let query = parse_program(
            "Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);\n\
             Z2 := SELECT (x, y) FROM G(x, y) WHERE T(x);\n\
             Z3 := SELECT (x, y) FROM Z1(x, y) WHERE Z2(x, q) OR U(x, y);",
        )
        .unwrap();
        for seed in [1u64, 7, 42] {
            let db = random_db(seed);
            let expected = NaiveEvaluator::new().evaluate_sgf(&query, &db).unwrap();
            for (name, engine) in engines() {
                let dfs = gumbo_storage::SimDfs::from_database(&db);
                let (_, got) = engine.eval().run_with_output(&dfs, &query).unwrap();
                assert_eq!(got, expected, "strategy {name}, seed {seed}");
            }
        }
    }

    #[test]
    fn one_round_engages_for_same_key_queries() {
        let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(x);").unwrap();
        let db = random_db(3);
        let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
        let dfs = gumbo_storage::SimDfs::from_database(&db);
        let stats = engine.eval().run_bsgf(&dfs, &q).unwrap();
        // Fused: exactly one job, one round.
        assert_eq!(stats.num_jobs(), 1);
        assert_eq!(stats.num_rounds(), 1);
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &db).unwrap();
        assert_eq!(dfs.peek(&"Z".into()).unwrap().as_ref(), &expected);
    }

    #[test]
    fn greedy_groups_shared_guard_semijoins() {
        // A1 shape: one guard, four conditionals -> greedy should produce
        // fewer MSJ jobs than PAR (sharing the guard scan + job overhead).
        let q = parse_query(
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) \
             WHERE S(x) AND T(y) AND U(z) AND V(w);",
        )
        .unwrap();
        let mut db = Database::new();
        let mut r = Relation::new("R", 4);
        for i in 0..200i64 {
            r.insert(Tuple::from_ints(&[i, i + 1, i + 2, i + 3]))
                .unwrap();
        }
        db.add_relation(r);
        for name in ["S", "T", "U", "V"] {
            let mut rel = Relation::new(name, 1);
            for i in 0..100i64 {
                rel.insert(Tuple::from_ints(&[i * 2])).unwrap();
            }
            db.add_relation(rel);
        }
        let dfs = gumbo_storage::SimDfs::from_database(&db);
        let engine = GumboEngine::new(
            EngineConfig::default(), // paper-scale factor engages overheads
            EvalOptions {
                enable_one_round: false,
                ..EvalOptions::default()
            },
        );
        let est = engine.estimator(&dfs);
        let ctx = QueryContext::new(vec![q]).unwrap();
        let plan = engine.plan_group(&est, &ctx).unwrap();
        assert!(
            plan.groups.len() < 4,
            "greedy should merge some semi-joins, got {:?}",
            plan.groups
        );

        // And execution still matches naive.
        let program = plan.build_program(&ctx).unwrap();
        engine.runtime().execute(&dfs, &program).unwrap();
        let expected = NaiveEvaluator::new()
            .evaluate_bsgf(&ctx.queries()[0], &db)
            .unwrap();
        assert_eq!(dfs.peek(&"Z".into()).unwrap().as_ref(), &expected);
    }

    #[test]
    fn invalid_sort_is_rejected() {
        let query = parse_program(
            "Z1 := SELECT x FROM R(x, y) WHERE S(x);\n\
             Z2 := SELECT x FROM Z1(x) WHERE T(x);",
        )
        .unwrap();
        let db = random_db(5);
        let dfs = gumbo_storage::SimDfs::from_database(&db);
        let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
        // Z2 before Z1: invalid.
        let bad = vec![vec![1], vec![0]];
        assert!(engine.eval().with_sort(&bad).run(&dfs, &query).is_err());
    }

    #[test]
    fn sort_cost_is_finite_and_positive() {
        let query = parse_program(
            "Z1 := SELECT x FROM R(x, y) WHERE S(x);\n\
             Z2 := SELECT x FROM Z1(x) WHERE T(x);",
        )
        .unwrap();
        let db = random_db(5);
        let dfs = gumbo_storage::SimDfs::from_database(&db);
        let engine = GumboEngine::new(EngineConfig::default(), EvalOptions::default());
        let graph = DependencyGraph::new(&query);
        let c = engine
            .sort_cost(&dfs, &query, &graph.sequential_sort())
            .unwrap();
        assert!(c.is_finite() && c > 0.0);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use gumbo_common::{Database, Fact, Relation, Tuple};
    use gumbo_sgf::{parse_program, NaiveEvaluator};
    use gumbo_storage::SimDfs;

    fn db() -> Database {
        let mut db = Database::new();
        for (rel, t) in [
            ("R", vec![1i64, 2]),
            ("R", vec![3, 4]),
            ("G", vec![1, 5]),
            ("G", vec![6, 7]),
        ] {
            db.insert_fact(Fact::new(rel, Tuple::from_ints(&t)))
                .unwrap();
        }
        for v in [1i64, 3, 6] {
            db.insert_fact(Fact::new("S", Tuple::from_ints(&[v])))
                .unwrap();
        }
        db.insert_fact(Fact::new("T", Tuple::from_ints(&[1])))
            .unwrap();
        db.add_relation(Relation::new("U", 1));
        db
    }

    #[test]
    fn evaluate_many_unions_queries() {
        // §4.7: two separate SGF queries evaluated together; the shared
        // relation S lets Greedy-SGF group their first levels.
        let q1 = parse_program(
            "Z1 := SELECT x FROM R(x, y) WHERE S(x);\n\
             Z2 := SELECT x FROM Z1(x) WHERE T(x);",
        )
        .unwrap();
        let q2 = parse_program("Y1 := SELECT x FROM G(x, y) WHERE S(x);").unwrap();
        let database = db();

        let naive = NaiveEvaluator::new();
        let e1 = naive.evaluate_sgf_all(&q1, &database).unwrap();
        let e2 = naive.evaluate_sgf_all(&q2, &database).unwrap();

        let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
        let dfs = SimDfs::from_database(&database);
        let stats = engine
            .eval()
            .run_many(&dfs, &[q1.clone(), q2.clone()])
            .unwrap();
        assert_eq!(
            dfs.peek(&"Z2".into()).unwrap().as_ref(),
            e1.relation(&"Z2".into()).unwrap()
        );
        assert_eq!(
            dfs.peek(&"Y1".into()).unwrap().as_ref(),
            e2.relation(&"Y1".into()).unwrap()
        );

        // Grouped evaluation needs fewer rounds than the 3 the two queries
        // would take back to back (Z1 and Y1 share S and are grouped).
        assert!(stats.num_rounds() <= 3, "rounds = {}", stats.num_rounds());
    }

    #[test]
    fn evaluate_many_rejects_name_clashes() {
        let q1 = parse_program("Z1 := SELECT x FROM R(x, y) WHERE S(x);").unwrap();
        let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
        let dfs = SimDfs::from_database(&db());
        assert!(engine.eval().run_many(&dfs, &[q1.clone(), q1]).is_err());
    }

    #[test]
    fn dynamic_greedy_matches_naive() {
        let query = parse_program(
            "Z1 := SELECT x FROM R(x, y) WHERE S(x);\n\
             Z2 := SELECT x FROM G(x, y) WHERE S(x);\n\
             Z3 := SELECT x FROM Z1(x) WHERE Z2(x) OR NOT U(x);",
        )
        .unwrap();
        let database = db();
        let expected = NaiveEvaluator::new()
            .evaluate_sgf(&query, &database)
            .unwrap();
        let engine = GumboEngine::new(
            EngineConfig::unscaled(),
            EvalOptions {
                sort: SortStrategy::DynamicGreedy,
                ..EvalOptions::default()
            },
        );
        let dfs = SimDfs::from_database(&database);
        let (_, got) = engine.eval().run_with_output(&dfs, &query).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn dynamic_greedy_groups_overlapping_sources() {
        // Z1 and Z2 share S -> the first dynamic group contains both.
        let query = parse_program(
            "Z1 := SELECT x FROM R(x, y) WHERE S(x);\n\
             Z2 := SELECT x FROM G(x, y) WHERE S(x);\n\
             Z3 := SELECT x FROM Z1(x) WHERE Z2(x);",
        )
        .unwrap();
        let engine = GumboEngine::new(
            EngineConfig::unscaled(),
            EvalOptions {
                sort: SortStrategy::DynamicGreedy,
                ..EvalOptions::default()
            },
        );
        let dfs = SimDfs::from_database(&db());
        let stats = engine.eval().dynamic().run(&dfs, &query).unwrap();
        // Two dynamic iterations: {Z1, Z2} then {Z3}. Each fuses to one
        // 1-ROUND job here.
        assert_eq!(stats.num_rounds(), 2);
    }
}
