//! Plan cost estimation: the planner-side mirror of the engine's metering.
//!
//! Gumbo estimates intermediate data sizes "through simulation of the map
//! function on a sample of the input relations" (§5.1 (3)). The estimator
//! combines
//!
//! * a **catalog** of relation statistics (sizes from the DFS, upper bounds
//!   for not-yet-computed intermediate relations — the paper's `K ≤ N₁`
//!   approximation from §4.1), and
//! * **sampled conformance rates**: the fraction of a relation's tuples
//!   conforming to an atom, measured on a reservoir sample,
//!
//! to produce the same [`JobProfile`]s the engine measures, priced by the
//! same cost model. Estimated and measured costs therefore differ only
//! through sampling error and upper-bound slack — which is exactly the
//! planner-accuracy story of §5.2.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};

use gumbo_common::{ByteSize, GumboError, RelationName, Result, Tuple};
use gumbo_mr::{
    filter_bytes_for, job_cost, predicted_fp_rate_for, CostConstants, CostModelKind,
    InputPartition, JobConfig, JobEstimate, JobProfile,
};
use gumbo_sgf::Atom;
use gumbo_storage::{reservoir_sample, Dfs};

use crate::plan::{BsgfSetPlan, OneRoundKind, PayloadMode};
use crate::semijoin::{cond_groups, identity_vars, QueryContext, SemiJoin};

/// Per-value byte weight (the paper's data layout).
const VALUE_BYTES: f64 = 10.0;
/// Per-message header weight (see `gumbo_mr::message`).
const HEADER_BYTES: f64 = 4.0;

/// Statistics for one relation, at cost-model scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelStats {
    /// Total size in (scaled) bytes.
    pub bytes: ByteSize,
    /// Number of (scaled) tuples.
    pub tuples: u64,
    /// Arity.
    pub arity: usize,
}

/// The planner's view of relation sizes.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    stats: BTreeMap<RelationName, RelStats>,
}

impl Catalog {
    /// Build a catalog from every file currently in the DFS, scaled.
    ///
    /// Uses [`Dfs::peek`], so building plan-time statistics never charges
    /// the byte meters — on any backend.
    pub fn from_dfs(dfs: &dyn Dfs, scale: u64) -> Self {
        let mut stats = BTreeMap::new();
        for name in dfs.file_names() {
            let rel = dfs.peek(&name).expect("listed file exists");
            stats.insert(
                name,
                RelStats {
                    bytes: ByteSize::bytes(rel.estimated_bytes()).scaled(scale),
                    tuples: rel.len() as u64 * scale,
                    arity: rel.arity(),
                },
            );
        }
        Catalog { stats }
    }

    /// Insert (or overwrite) statistics, e.g. an upper bound for a future
    /// intermediate relation.
    pub fn insert(&mut self, name: RelationName, stats: RelStats) {
        self.stats.insert(name, stats);
    }

    /// Look up statistics.
    pub fn get(&self, name: &RelationName) -> Result<RelStats> {
        self.stats
            .get(name)
            .copied()
            .ok_or_else(|| GumboError::Plan(format!("no statistics for relation {name}")))
    }
}

/// Plan-time prediction of what a Bloom-filtered shuffle
/// ([`gumbo_mr::ShuffleFilterMode`]) saves on one MSJ job: the broadcast
/// cost of the per-group filters weighed against the shuffle bytes they
/// suppress. Computed by [`Estimator::msj_filter_prediction`] from the
/// *exact* key overlap of the (unscaled) base relations — the planner-side
/// mirror of the engine's filter build prepass — then priced at catalog
/// scale like every other estimate.
#[derive(Debug, Clone)]
pub struct FilterPrediction {
    /// Broadcast bytes of the per-group Bloom filter pair, scaled.
    pub filter_bytes: ByteSize,
    /// Predicted shuffle bytes suppressed (net of false positives), scaled.
    pub saved_bytes: ByteSize,
    /// Predicted suppressed messages, scaled.
    pub saved_records: u64,
    /// Predicted false-positive rate over non-matching probes (weighted
    /// across the job's filters).
    pub predicted_fp_rate: f64,
    /// Per input relation: (map-output bytes, records) suppressed, scaled —
    /// what [`Estimator::msj_filtered_estimate`] subtracts per partition.
    saved_per_input: HashMap<String, (f64, f64)>,
}

impl FilterPrediction {
    /// Whether filtering is predicted to reduce net shuffled bytes: the
    /// suppressed volume must exceed the filter broadcast itself. This is
    /// the `auto`-mode verdict.
    pub fn profitable(&self) -> bool {
        self.saved_bytes > self.filter_bytes
    }
}

/// The plan cost estimator.
pub struct Estimator<'a> {
    catalog: Catalog,
    constants: CostConstants,
    model: CostModelKind,
    /// Cost-model scale the catalog was built at (1 for analytic).
    scale: u64,
    /// Sampling source for conformance rates (None = assume full conformance,
    /// the simplification the paper's own Eq. 5/6 analysis makes).
    dfs: Option<&'a dyn Dfs>,
    sample_size: usize,
    seed: u64,
    conform_cache: RefCell<HashMap<Atom, f64>>,
}

impl<'a> Estimator<'a> {
    /// Estimator over a DFS with sampling.
    pub fn new(
        dfs: &'a dyn Dfs,
        scale: u64,
        constants: CostConstants,
        model: CostModelKind,
        sample_size: usize,
        seed: u64,
    ) -> Self {
        Estimator {
            catalog: Catalog::from_dfs(dfs, scale),
            constants,
            model,
            scale,
            dfs: Some(dfs),
            sample_size,
            seed,
            conform_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Analytic estimator over an explicit catalog (no sampling) — used for
    /// planning over not-yet-materialized relations and in unit tests.
    pub fn analytic(catalog: Catalog, constants: CostConstants, model: CostModelKind) -> Self {
        Estimator {
            catalog,
            constants,
            model,
            scale: 1,
            dfs: None,
            sample_size: 0,
            seed: 0,
            conform_cache: RefCell::new(HashMap::new()),
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> CostModelKind {
        self.model
    }

    /// Switch the cost model (the §5.2 experiment plans the same queries
    /// under both models).
    pub fn with_model(mut self, model: CostModelKind) -> Self {
        self.model = model;
        self
    }

    /// Mutable access to the catalog (to register upper bounds).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Fraction of `atom`'s relation conforming to `atom`, from a sample.
    pub fn conform_rate(&self, atom: &Atom) -> f64 {
        if let Some(rate) = self.conform_cache.borrow().get(atom) {
            return *rate;
        }
        let rate = match self.dfs {
            Some(dfs) => match dfs.peek(atom.relation()) {
                Ok(rel) if !rel.is_empty() && rel.arity() == atom.arity() => {
                    let sample = reservoir_sample(&rel, self.sample_size.max(1), self.seed);
                    let hits = sample.iter().filter(|t| atom.conforms_tuple(t)).count();
                    hits as f64 / sample.len() as f64
                }
                Ok(_) => 0.0,
                // Relation not materialized yet: assume full conformance.
                Err(_) => 1.0,
            },
            None => 1.0,
        };
        self.conform_cache.borrow_mut().insert(atom.clone(), rate);
        rate
    }

    // ----------------------------------------------------------- sizes --

    fn payload_bytes(sj: &SemiJoin, mode: PayloadMode) -> f64 {
        match mode {
            PayloadMode::Full => VALUE_BYTES * sj.identity_vars.len() as f64,
            PayloadMode::Reference => VALUE_BYTES,
        }
    }

    fn x_tuple_bytes(sj: &SemiJoin, mode: PayloadMode) -> f64 {
        match mode {
            PayloadMode::Full => VALUE_BYTES * sj.identity_vars.len() as f64,
            PayloadMode::Reference => 2.0 * VALUE_BYTES,
        }
    }

    /// Upper bound on the `Xᵢ` relation of a semi-join (`|Xᵢ| ≤ |α|`).
    fn x_upper_bound(&self, sj: &SemiJoin, mode: PayloadMode) -> Result<RelStats> {
        let guard = self.catalog.get(sj.guard.relation())?;
        let tuples = (guard.tuples as f64 * self.conform_rate(&sj.guard)).round() as u64;
        Ok(RelStats {
            bytes: ByteSize::bytes((tuples as f64 * Self::x_tuple_bytes(sj, mode)).round() as u64),
            tuples,
            arity: match mode {
                PayloadMode::Full => sj.identity_vars.len(),
                PayloadMode::Reference => 2,
            },
        })
    }

    /// Upper bound on a query's output (`|Z| ≤ |guard|`), for SGF chaining.
    pub fn output_upper_bound(&self, query: &gumbo_sgf::BsgfQuery) -> Result<RelStats> {
        let guard = self.catalog.get(query.guard().relation())?;
        let tuples = (guard.tuples as f64 * self.conform_rate(query.guard())).round() as u64;
        let arity = query.output_vars().len();
        Ok(RelStats {
            bytes: ByteSize::bytes((tuples as f64 * VALUE_BYTES * arity as f64).round() as u64),
            tuples,
            arity,
        })
    }

    // -------------------------------------------------------- profiles --

    /// Estimated profile of `MSJ(group)` — the generalization of Eq. 5.
    pub fn msj_profile(
        &self,
        ctx: &QueryContext,
        group: &[usize],
        mode: PayloadMode,
        cfg: &JobConfig,
    ) -> Result<JobProfile> {
        let sjs: Vec<&SemiJoin> = group.iter().map(|&i| ctx.semijoin(i)).collect();
        let (assert_groups, _) = cond_groups(&sjs);

        // Same input ordering as `build_msj_job`: guards first, then conds.
        let mut inputs: Vec<RelationName> = Vec::new();
        for sj in &sjs {
            if !inputs.contains(sj.guard.relation()) {
                inputs.push(sj.guard.relation().clone());
            }
        }
        for (atom, _) in &assert_groups {
            if !inputs.contains(atom.relation()) {
                inputs.push(atom.relation().clone());
            }
        }

        let mut partitions = Vec::with_capacity(inputs.len());
        for rel in &inputs {
            let stats = self.catalog.get(rel)?;
            let mut out_bytes = 0.0f64;
            let mut records = 0.0f64;
            for sj in &sjs {
                if sj.guard.relation() == rel {
                    let n = stats.tuples as f64 * self.conform_rate(&sj.guard);
                    out_bytes += n
                        * (VALUE_BYTES * sj.join_key.len() as f64
                            + HEADER_BYTES
                            + Self::payload_bytes(sj, mode));
                    records += n;
                }
            }
            for (atom, key) in &assert_groups {
                if atom.relation() == rel {
                    let n = stats.tuples as f64 * self.conform_rate(atom);
                    out_bytes += n * (VALUE_BYTES * key.len() as f64 + HEADER_BYTES);
                    records += n;
                }
            }
            partitions.push(InputPartition {
                label: rel.to_string(),
                input: stats.bytes,
                map_output: ByteSize::bytes(out_bytes.round() as u64),
                records_out: records.round() as u64,
                mappers: cfg.mappers_for(stats.bytes),
            });
        }

        let total_in: ByteSize = partitions.iter().map(|p| p.input).sum();
        let total_m: ByteSize = partitions.iter().map(|p| p.map_output).sum();
        let mut output = ByteSize::ZERO;
        for sj in &sjs {
            output += self.x_upper_bound(sj, mode)?.bytes;
        }
        Ok(JobProfile {
            partitions,
            reducers: cfg.reducer_policy.reducers(total_in, total_m),
            output,
        })
    }

    /// Full [`JobEstimate`] of `MSJ(group)` for the shared estimation
    /// layer: the same profile [`Estimator::msj_cost`] prices, packaged
    /// with its cost decomposition, shuffle/output sizes and suggested
    /// parallelism so the DAG scheduler can place and size the job.
    pub fn msj_estimate(
        &self,
        ctx: &QueryContext,
        group: &[usize],
        mode: PayloadMode,
        cfg: &JobConfig,
    ) -> Result<JobEstimate> {
        Ok(JobEstimate::from_profile(
            self.model,
            &self.constants,
            &self.msj_profile(ctx, group, mode, cfg)?,
        ))
    }

    /// Predict what a Bloom-filtered shuffle saves on `MSJ(group)`.
    ///
    /// Mirrors the engine's filter semantics exactly: per assert group, a
    /// request survives iff its join key is in the group's assert-key set
    /// (up to false positives), and an assert survives iff its key is
    /// requested by some guard routed to the group. The overlap is computed
    /// on the materialized base relations (via [`Dfs::peek`], unmetered),
    /// so `None` is returned for the analytic estimator or when an input
    /// is not yet materialized — in which case `auto` mode leaves the job
    /// unfiltered.
    pub fn msj_filter_prediction(
        &self,
        ctx: &QueryContext,
        group: &[usize],
        mode: PayloadMode,
        bits_per_key: u32,
    ) -> Option<FilterPrediction> {
        let dfs = self.dfs?;
        let sjs: Vec<&SemiJoin> = group.iter().map(|&i| ctx.semijoin(i)).collect();
        let (assert_groups, assignment) = cond_groups(&sjs);
        if assert_groups.is_empty() {
            return None;
        }

        // Materialize every input relation once (unmetered peeks).
        let mut rels: HashMap<RelationName, std::sync::Arc<gumbo_common::Relation>> =
            HashMap::new();
        for name in sjs
            .iter()
            .map(|sj| sj.guard.relation())
            .chain(assert_groups.iter().map(|(atom, _)| atom.relation()))
        {
            if !rels.contains_key(name) {
                rels.insert(name.clone(), dfs.peek(name).ok()?);
            }
        }

        // Pass 1: the assert-key set of every group (what requests probe).
        let mut assert_keys: Vec<HashSet<Tuple>> = vec![HashSet::new(); assert_groups.len()];
        for (g, (atom, key_vars)) in assert_groups.iter().enumerate() {
            for t in rels[atom.relation()].iter() {
                if atom.conforms_tuple(t) {
                    assert_keys[g].insert(atom.project(t, key_vars));
                }
            }
        }

        // Pass 2: per semi-join, the requested keys (what asserts probe)
        // and the number of requests whose key misses the assert set.
        let mut req_keys: Vec<HashSet<Tuple>> = vec![HashSet::new(); assert_groups.len()];
        let mut req_miss = vec![0u64; sjs.len()];
        for (local, sj) in sjs.iter().enumerate() {
            let g = assignment[&sj.id];
            for t in rels[sj.guard.relation()].iter() {
                if sj.guard.conforms_tuple(t) {
                    let key = sj.guard.project(t, &sj.join_key);
                    if !assert_keys[g].contains(&key) {
                        req_miss[local] += 1;
                    }
                    req_keys[g].insert(key);
                }
            }
        }

        // Pass 3: asserts whose key no routed guard requests.
        let mut assert_miss = vec![0u64; assert_groups.len()];
        for (g, (atom, key_vars)) in assert_groups.iter().enumerate() {
            for t in rels[atom.relation()].iter() {
                if atom.conforms_tuple(t) && !req_keys[g].contains(&atom.project(t, key_vars)) {
                    assert_miss[g] += 1;
                }
            }
        }

        // Price the suppression: a miss is shuffled anyway with probability
        // fp (the probed filter's false-positive rate), and every message
        // costs what `msj_profile` charges it.
        let mut raw_filter_bytes = 0u64;
        let mut saved_per_input: HashMap<String, (f64, f64)> = HashMap::new();
        let mut fp_weighted = 0.0f64;
        let mut fp_weight = 0u64;
        let scale = self.scale as f64;
        for (local, sj) in sjs.iter().enumerate() {
            let g = assignment[&sj.id];
            let fp = predicted_fp_rate_for(assert_keys[g].len() as u64, bits_per_key);
            let saved = req_miss[local] as f64 * (1.0 - fp) * scale;
            let per_msg = VALUE_BYTES * sj.join_key.len() as f64
                + HEADER_BYTES
                + Self::payload_bytes(sj, mode);
            let slot = saved_per_input
                .entry(sj.guard.relation().to_string())
                .or_default();
            slot.0 += saved * per_msg;
            slot.1 += saved;
            fp_weighted += fp * req_miss[local] as f64;
            fp_weight += req_miss[local];
        }
        for (g, (atom, key_vars)) in assert_groups.iter().enumerate() {
            let fp = predicted_fp_rate_for(req_keys[g].len() as u64, bits_per_key);
            let saved = assert_miss[g] as f64 * (1.0 - fp) * scale;
            let per_msg = VALUE_BYTES * key_vars.len() as f64 + HEADER_BYTES;
            let slot = saved_per_input
                .entry(atom.relation().to_string())
                .or_default();
            slot.0 += saved * per_msg;
            slot.1 += saved;
            fp_weighted += fp * assert_miss[g] as f64;
            fp_weight += assert_miss[g];
            raw_filter_bytes += filter_bytes_for(assert_keys[g].len() as u64, bits_per_key)
                + filter_bytes_for(req_keys[g].len() as u64, bits_per_key);
        }

        let predicted_fp_rate = if fp_weight > 0 {
            fp_weighted / fp_weight as f64
        } else {
            0.0
        };
        let saved_bytes = ByteSize::bytes(
            saved_per_input
                .values()
                .map(|(b, _)| b)
                .sum::<f64>()
                .round() as u64,
        );
        let saved_records = saved_per_input
            .values()
            .map(|(_, r)| r)
            .sum::<f64>()
            .round() as u64;
        Some(FilterPrediction {
            filter_bytes: ByteSize::bytes(raw_filter_bytes).scaled(self.scale),
            saved_bytes,
            saved_records,
            predicted_fp_rate,
            saved_per_input,
        })
    }

    /// [`Estimator::msj_estimate`] under a Bloom-filtered shuffle: the
    /// per-partition map output shrinks by the predicted suppression and
    /// the filter broadcast is charged as transfer
    /// ([`JobEstimate::with_filter`]) — the same decomposition the engine
    /// measures for a filtered job.
    pub fn msj_filtered_estimate(
        &self,
        ctx: &QueryContext,
        group: &[usize],
        mode: PayloadMode,
        cfg: &JobConfig,
        pred: &FilterPrediction,
    ) -> Result<JobEstimate> {
        let mut profile = self.msj_profile(ctx, group, mode, cfg)?;
        for p in &mut profile.partitions {
            if let Some(&(bytes, records)) = pred.saved_per_input.get(&p.label) {
                p.map_output =
                    ByteSize::bytes(p.map_output.as_bytes().saturating_sub(bytes.round() as u64));
                p.records_out = p.records_out.saturating_sub(records.round() as u64);
            }
        }
        let total_in: ByteSize = profile.partitions.iter().map(|p| p.input).sum();
        let total_m: ByteSize = profile.partitions.iter().map(|p| p.map_output).sum();
        profile.reducers = cfg.reducer_policy.reducers(total_in, total_m);
        Ok(
            JobEstimate::from_profile(self.model, &self.constants, &profile).with_filter(
                &self.constants,
                pred.filter_bytes,
                pred.predicted_fp_rate,
            ),
        )
    }

    /// Estimated cost of `MSJ(group)`.
    pub fn msj_cost(
        &self,
        ctx: &QueryContext,
        group: &[usize],
        mode: PayloadMode,
        cfg: &JobConfig,
    ) -> Result<f64> {
        Ok(job_cost(
            self.model,
            &self.constants,
            &self.msj_profile(ctx, group, mode, cfg)?,
        ))
    }

    /// Estimated profile of the set's EVAL job — Eq. 7 generalized.
    pub fn eval_profile(
        &self,
        ctx: &QueryContext,
        mode: PayloadMode,
        cfg: &JobConfig,
    ) -> Result<JobProfile> {
        let mut partitions = Vec::new();
        // X inputs.
        for sj in ctx.semijoins() {
            let x = self.x_upper_bound(sj, mode)?;
            let per_tuple = Self::x_tuple_bytes(sj, mode) + HEADER_BYTES;
            partitions.push(InputPartition {
                label: sj.x_name.to_string(),
                input: x.bytes,
                map_output: ByteSize::bytes((x.tuples as f64 * per_tuple).round() as u64),
                records_out: x.tuples,
                mappers: cfg.mappers_for(x.bytes),
            });
        }
        // Guard re-reads (deduplicated).
        let mut guard_rels: Vec<RelationName> = Vec::new();
        for q in ctx.queries() {
            if !guard_rels.contains(q.guard().relation()) {
                guard_rels.push(q.guard().relation().clone());
            }
        }
        for rel in &guard_rels {
            let stats = self.catalog.get(rel)?;
            let mut out_bytes = 0.0;
            let mut records = 0.0;
            for q in ctx.queries() {
                if q.guard().relation() == rel {
                    let n = stats.tuples as f64 * self.conform_rate(q.guard());
                    let ident = identity_vars(q.guard()).len() as f64;
                    let per = match mode {
                        // key = identity tuple, value = 4 B tag
                        PayloadMode::Full => VALUE_BYTES * ident + HEADER_BYTES,
                        // key = (guard, id), value = header + full tuple
                        PayloadMode::Reference => {
                            2.0 * VALUE_BYTES
                                + HEADER_BYTES
                                + VALUE_BYTES * q.guard().arity() as f64
                        }
                    };
                    out_bytes += n * per;
                    records += n;
                }
            }
            partitions.push(InputPartition {
                label: rel.to_string(),
                input: stats.bytes,
                map_output: ByteSize::bytes(out_bytes.round() as u64),
                records_out: records.round() as u64,
                mappers: cfg.mappers_for(stats.bytes),
            });
        }

        let total_in: ByteSize = partitions.iter().map(|p| p.input).sum();
        let total_m: ByteSize = partitions.iter().map(|p| p.map_output).sum();
        let mut output = ByteSize::ZERO;
        for q in ctx.queries() {
            output += self.output_upper_bound(q)?.bytes;
        }
        Ok(JobProfile {
            partitions,
            reducers: cfg.reducer_policy.reducers(total_in, total_m),
            output,
        })
    }

    /// Full [`JobEstimate`] of the set's EVAL job.
    pub fn eval_estimate(
        &self,
        ctx: &QueryContext,
        mode: PayloadMode,
        cfg: &JobConfig,
    ) -> Result<JobEstimate> {
        Ok(JobEstimate::from_profile(
            self.model,
            &self.constants,
            &self.eval_profile(ctx, mode, cfg)?,
        ))
    }

    /// Estimated cost of the EVAL job.
    pub fn eval_cost(&self, ctx: &QueryContext, mode: PayloadMode, cfg: &JobConfig) -> Result<f64> {
        Ok(job_cost(
            self.model,
            &self.constants,
            &self.eval_profile(ctx, mode, cfg)?,
        ))
    }

    /// Estimated profile of a fused 1-ROUND job.
    pub fn one_round_profile(
        &self,
        ctx: &QueryContext,
        kind: OneRoundKind,
        cfg: &JobConfig,
    ) -> Result<JobProfile> {
        let sjs: Vec<&SemiJoin> = ctx.semijoins().iter().collect();
        let (assert_groups, _) = cond_groups(&sjs);
        let mut inputs: Vec<RelationName> = Vec::new();
        for q in ctx.queries() {
            if !inputs.contains(q.guard().relation()) {
                inputs.push(q.guard().relation().clone());
            }
        }
        for (atom, _) in &assert_groups {
            if !inputs.contains(atom.relation()) {
                inputs.push(atom.relation().clone());
            }
        }
        let mut partitions = Vec::new();
        for rel in &inputs {
            let stats = self.catalog.get(rel)?;
            let mut out_bytes = 0.0;
            let mut records = 0.0;
            for (j, q) in ctx.queries().iter().enumerate() {
                if q.guard().relation() == rel {
                    let n = stats.tuples as f64 * self.conform_rate(q.guard());
                    let out_w = VALUE_BYTES * q.output_vars().len() as f64;
                    // SameKey: one request per guard tuple; Disjunctive: one
                    // request per literal.
                    let requests = match kind {
                        OneRoundKind::SameKey => 1.0,
                        OneRoundKind::Disjunctive => ctx.semijoins_of(j).len().max(1) as f64,
                    };
                    let key_len = ctx
                        .semijoins_of(j)
                        .first()
                        .map_or(0.0, |&i| ctx.semijoin(i).join_key.len() as f64);
                    out_bytes += n * requests * (VALUE_BYTES * key_len + HEADER_BYTES + out_w);
                    records += n * requests;
                }
            }
            for (atom, key) in &assert_groups {
                if atom.relation() == rel {
                    let n = stats.tuples as f64 * self.conform_rate(atom);
                    out_bytes += n * (VALUE_BYTES * key.len() as f64 + HEADER_BYTES);
                    records += n;
                }
            }
            partitions.push(InputPartition {
                label: rel.to_string(),
                input: stats.bytes,
                map_output: ByteSize::bytes(out_bytes.round() as u64),
                records_out: records.round() as u64,
                mappers: cfg.mappers_for(stats.bytes),
            });
        }
        let total_in: ByteSize = partitions.iter().map(|p| p.input).sum();
        let total_m: ByteSize = partitions.iter().map(|p| p.map_output).sum();
        let mut output = ByteSize::ZERO;
        for q in ctx.queries() {
            output += self.output_upper_bound(q)?.bytes;
        }
        Ok(JobProfile {
            partitions,
            reducers: cfg.reducer_policy.reducers(total_in, total_m),
            output,
        })
    }

    /// Full [`JobEstimate`] of a fused 1-ROUND job.
    pub fn one_round_estimate(
        &self,
        ctx: &QueryContext,
        kind: OneRoundKind,
        cfg: &JobConfig,
    ) -> Result<JobEstimate> {
        Ok(JobEstimate::from_profile(
            self.model,
            &self.constants,
            &self.one_round_profile(ctx, kind, cfg)?,
        ))
    }

    /// Estimated total cost of a full plan for the query set (Eq. 9).
    pub fn plan_cost(&self, ctx: &QueryContext, plan: &BsgfSetPlan) -> Result<f64> {
        match plan.one_round {
            Some(kind) => Ok(job_cost(
                self.model,
                &self.constants,
                &self.one_round_profile(ctx, kind, &plan.job_config)?,
            )),
            None => {
                let mut total = self.eval_cost(ctx, plan.mode, &plan.job_config)?;
                for group in &plan.groups {
                    total += self.msj_cost(ctx, group, plan.mode, &plan.job_config)?;
                }
                Ok(total)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Database, Relation, Tuple};
    use gumbo_sgf::parse_query;
    use gumbo_storage::SimDfs;

    fn test_db(guard_n: i64, cond_n: i64, match_every: i64) -> Database {
        let mut db = Database::new();
        let mut r = Relation::new("R", 4);
        for i in 0..guard_n {
            r.insert(Tuple::from_ints(&[i, i + 1, i + 2, i + 3]))
                .unwrap();
        }
        db.add_relation(r);
        for name in ["S", "T", "U", "V"] {
            let mut c = Relation::new(name, 1);
            for i in 0..cond_n {
                c.insert(Tuple::from_ints(&[i * match_every])).unwrap();
            }
            db.add_relation(c);
        }
        db
    }

    fn a1_ctx() -> QueryContext {
        let q = parse_query(
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) \
             WHERE S(x) AND T(y) AND U(z) AND V(w);",
        )
        .unwrap();
        QueryContext::new(vec![q]).unwrap()
    }

    fn estimator(dfs: &SimDfs) -> Estimator<'_> {
        Estimator::new(
            dfs,
            1000,
            CostConstants::default(),
            CostModelKind::Gumbo,
            64,
            42,
        )
    }

    #[test]
    fn grouping_shares_guard_scan() {
        // One MSJ over all four semi-joins reads R once; four singleton jobs
        // read R four times -> grouped total input must be smaller.
        let dfs = SimDfs::from_database(&test_db(1000, 250, 2));
        let ctx = a1_ctx();
        let est = estimator(&dfs);
        let cfg = JobConfig::default();
        let grouped = est
            .msj_profile(&ctx, &[0, 1, 2, 3], PayloadMode::Reference, &cfg)
            .unwrap();
        let singles: Vec<JobProfile> = (0..4)
            .map(|i| {
                est.msj_profile(&ctx, &[i], PayloadMode::Reference, &cfg)
                    .unwrap()
            })
            .collect();
        let singles_input: ByteSize = singles.iter().map(|p| p.total_input()).sum();
        assert!(grouped.total_input() < singles_input);
        // Intermediate data is the same work either way (no packing model
        // in estimates): grouped M == sum of singleton Ms.
        let singles_m: ByteSize = singles.iter().map(|p| p.total_map_output()).sum();
        assert_eq!(grouped.total_map_output(), singles_m);
    }

    #[test]
    fn grouped_cost_beats_singletons_with_shared_guard() {
        let dfs = SimDfs::from_database(&test_db(1000, 250, 2));
        let ctx = a1_ctx();
        let est = estimator(&dfs);
        let cfg = JobConfig::default();
        let grouped = est
            .msj_cost(&ctx, &[0, 1, 2, 3], PayloadMode::Reference, &cfg)
            .unwrap();
        let singles: f64 = (0..4)
            .map(|i| {
                est.msj_cost(&ctx, &[i], PayloadMode::Reference, &cfg)
                    .unwrap()
            })
            .sum();
        // Shared guard read + 3 saved job overheads.
        assert!(grouped < singles, "grouped {grouped} vs singles {singles}");
    }

    #[test]
    fn reference_mode_shrinks_shuffle() {
        let dfs = SimDfs::from_database(&test_db(1000, 250, 2));
        let ctx = a1_ctx();
        let est = estimator(&dfs);
        let cfg = JobConfig::default();
        let full = est
            .msj_profile(&ctx, &[0, 1, 2, 3], PayloadMode::Full, &cfg)
            .unwrap();
        let reference = est
            .msj_profile(&ctx, &[0, 1, 2, 3], PayloadMode::Reference, &cfg)
            .unwrap();
        assert!(reference.total_map_output() < full.total_map_output());
    }

    #[test]
    fn conform_rate_sampled() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        for i in 0..500 {
            // Half the tuples have second field 0.
            r.insert(Tuple::from_ints(&[i, i % 2])).unwrap();
        }
        db.add_relation(r);
        let dfs = SimDfs::from_database(&db);
        let est = estimator(&dfs);
        let atom = Atom::new(
            "R",
            vec![gumbo_sgf::Term::var("x"), gumbo_sgf::Term::int(0)],
        );
        let rate = est.conform_rate(&atom);
        assert!((rate - 0.5).abs() < 0.2, "sampled rate {rate}");
        // Full-variable atom conforms always.
        let all = Atom::vars("R", &["x", "y"]);
        assert_eq!(est.conform_rate(&all), 1.0);
    }

    #[test]
    fn missing_relation_assumed_conforming() {
        let dfs = SimDfs::new();
        let mut est = estimator(&dfs);
        est.catalog_mut().insert(
            "Virtual".into(),
            RelStats {
                bytes: ByteSize::mb(100),
                tuples: 10_000_000,
                arity: 2,
            },
        );
        assert_eq!(est.conform_rate(&Atom::vars("Virtual", &["x", "y"])), 1.0);
        // And its stats resolve from the catalog.
        let q = parse_query("Z := SELECT x FROM Virtual(x, y) WHERE Virtual(y, q);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let cost = est.msj_cost(&ctx, &[0], PayloadMode::Reference, &JobConfig::default());
        assert!(cost.is_ok());
    }

    #[test]
    fn plan_cost_sums_jobs() {
        let dfs = SimDfs::from_database(&test_db(1000, 250, 2));
        let ctx = a1_ctx();
        let est = estimator(&dfs);
        let cfg = JobConfig::default();
        let plan_par = BsgfSetPlan::singletons(&ctx, PayloadMode::Reference, cfg);
        let plan_one = BsgfSetPlan::single_group(&ctx, PayloadMode::Reference, cfg);
        let c_par = est.plan_cost(&ctx, &plan_par).unwrap();
        let c_one = est.plan_cost(&ctx, &plan_one).unwrap();
        assert!(c_one < c_par);
        let eval = est.eval_cost(&ctx, PayloadMode::Reference, &cfg).unwrap();
        let msj_all = est
            .msj_cost(&ctx, &[0, 1, 2, 3], PayloadMode::Reference, &cfg)
            .unwrap();
        assert!((c_one - (eval + msj_all)).abs() < 1e-9);
    }

    #[test]
    fn one_round_beats_two_round_for_a3() {
        // A3: all conditionals on x -> 1-ROUND avoids the EVAL job entirely.
        let q = parse_query(
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) \
             WHERE S(x) AND T(x) AND U(x) AND V(x);",
        )
        .unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let dfs = SimDfs::from_database(&test_db(1000, 250, 2));
        let est = estimator(&dfs);
        let cfg = JobConfig::default();
        let two = est
            .plan_cost(
                &ctx,
                &BsgfSetPlan::single_group(&ctx, PayloadMode::Reference, cfg),
            )
            .unwrap();
        let one = est
            .plan_cost(&ctx, &BsgfSetPlan::one_round(OneRoundKind::SameKey, cfg))
            .unwrap();
        assert!(one < two, "1-ROUND {one} vs 2-round {two}");
    }

    #[test]
    fn wang_model_collapses_partitions() {
        let dfs = SimDfs::from_database(&test_db(1000, 250, 2));
        let ctx = a1_ctx();
        let cfg = JobConfig::default();
        let g = estimator(&dfs);
        let w = estimator(&dfs).with_model(CostModelKind::Wang);
        // Both produce finite costs; equality is not expected in general.
        let cg = g
            .msj_cost(&ctx, &[0, 1, 2, 3], PayloadMode::Full, &cfg)
            .unwrap();
        let cw = w
            .msj_cost(&ctx, &[0, 1, 2, 3], PayloadMode::Full, &cfg)
            .unwrap();
        assert!(cg.is_finite() && cw.is_finite());
    }
}
