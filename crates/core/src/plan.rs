//! Query plans for sets of BSGF queries (the *basic MR programs* of §4.4/§4.5).
//!
//! A [`BsgfSetPlan`] is a partition `S₁ ∪ … ∪ S_p` of the query set's
//! semi-joins into MSJ jobs, followed by one `EVAL` job — or a fused
//! 1-ROUND job when applicable. [`BsgfSetPlan::build_program`] lowers the
//! plan to an executable [`MrProgram`].

use std::fmt;

use gumbo_common::Result;
use gumbo_mr::{JobConfig, MrProgram, ShuffleFilterMode};

use crate::estimate::Estimator;
use crate::eval::build_eval_job;
use crate::msj::build_msj_job;
use crate::oneround::{build_disjunctive_job, build_same_key_job};
use crate::semijoin::QueryContext;

/// How requests identify their guard tuple (§5.1 (2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PayloadMode {
    /// Carry the full guard identity tuple.
    Full,
    /// Carry a `(guard, id)` reference; EVAL re-reads the guard relation.
    /// This is Gumbo's default: it "significantly reduces the number of
    /// bytes that are shuffled".
    #[default]
    Reference,
}

/// The fused single-job plan kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneRoundKind {
    /// All conditional atoms of each query share one join key.
    SameKey,
    /// Every condition is an OR of (possibly negated) atoms.
    Disjunctive,
}

/// A plan for one set of BSGF queries.
#[derive(Debug, Clone)]
pub struct BsgfSetPlan {
    /// Partition of semi-join ids into MSJ jobs (ignored for 1-ROUND plans).
    pub groups: Vec<Vec<usize>>,
    /// Payload mode for MSJ/EVAL.
    pub mode: PayloadMode,
    /// If set, the whole set is evaluated by a single fused job.
    pub one_round: Option<OneRoundKind>,
    /// Per-job configuration.
    pub job_config: JobConfig,
    /// The Bloom-filtered shuffle mode the engine will run MSJ jobs
    /// under. The planner uses it to decide whether to attach *filtered*
    /// estimates (and, in `auto` mode, to record per-job profitability
    /// verdicts) so placement and predicted net time see the same plan
    /// the engine executes.
    pub shuffle_filter: ShuffleFilterMode,
}

impl BsgfSetPlan {
    /// The 2-round plan with one MSJ job per partition class.
    pub fn two_round(groups: Vec<Vec<usize>>, mode: PayloadMode, job_config: JobConfig) -> Self {
        BsgfSetPlan {
            groups,
            mode,
            one_round: None,
            job_config,
            shuffle_filter: ShuffleFilterMode::Off,
        }
    }

    /// The ungrouped plan: every semi-join in its own MSJ job (the paper's
    /// PAR strategy).
    pub fn singletons(ctx: &QueryContext, mode: PayloadMode, job_config: JobConfig) -> Self {
        let groups = (0..ctx.semijoins().len()).map(|i| vec![i]).collect();
        BsgfSetPlan::two_round(groups, mode, job_config)
    }

    /// The fully grouped plan: all semi-joins in one MSJ job.
    pub fn single_group(ctx: &QueryContext, mode: PayloadMode, job_config: JobConfig) -> Self {
        let all: Vec<usize> = (0..ctx.semijoins().len()).collect();
        let groups = if all.is_empty() { vec![] } else { vec![all] };
        BsgfSetPlan::two_round(groups, mode, job_config)
    }

    /// A fused 1-ROUND plan.
    pub fn one_round(kind: OneRoundKind, job_config: JobConfig) -> Self {
        BsgfSetPlan {
            groups: Vec::new(),
            mode: PayloadMode::Full,
            one_round: Some(kind),
            job_config,
            shuffle_filter: ShuffleFilterMode::Off,
        }
    }

    /// Builder-style: set the shuffle-filter mode the engine will run
    /// under (affects only estimate annotation and `auto` verdicts).
    pub fn with_shuffle_filter(mut self, mode: ShuffleFilterMode) -> Self {
        self.shuffle_filter = mode;
        self
    }

    /// Number of MapReduce jobs the plan will run.
    pub fn num_jobs(&self) -> usize {
        match self.one_round {
            Some(_) => 1,
            None => self.groups.len() + 1,
        }
    }

    /// Lower the plan to an executable MapReduce program.
    ///
    /// 2-round plans produce: round 1 = all MSJ jobs (concurrent),
    /// round 2 = the EVAL job. 1-ROUND plans produce a single job.
    pub fn build_program(&self, ctx: &QueryContext) -> Result<MrProgram> {
        self.build(ctx, None)
    }

    /// [`BsgfSetPlan::build_program`] with estimation-layer annotations:
    /// every job carries the [`gumbo_mr::JobEstimate`] the given
    /// estimator prices it at (the same profiles the planner optimized),
    /// so `MrProgram::into_dag()` yields a cost-annotated DAG the
    /// scheduler can place by. Annotation is best-effort: a job whose
    /// estimate cannot be computed (missing catalog statistics) is left
    /// unannotated rather than failing the run.
    pub fn build_annotated_program(
        &self,
        ctx: &QueryContext,
        est: &Estimator<'_>,
    ) -> Result<MrProgram> {
        self.build(ctx, Some(est))
    }

    fn build(&self, ctx: &QueryContext, est: Option<&Estimator<'_>>) -> Result<MrProgram> {
        let mut program = MrProgram::new();
        match self.one_round {
            Some(kind) => {
                let mut job = match kind {
                    OneRoundKind::SameKey => build_same_key_job(ctx, self.job_config)?,
                    OneRoundKind::Disjunctive => build_disjunctive_job(ctx, self.job_config)?,
                };
                job.estimate =
                    est.and_then(|e| e.one_round_estimate(ctx, kind, &self.job_config).ok());
                program.push_job(job);
            }
            None => {
                let mut covered = vec![false; ctx.semijoins().len()];
                let mut msj_jobs = Vec::with_capacity(self.groups.len());
                for group in &self.groups {
                    for &i in group {
                        if covered[i] {
                            return Err(gumbo_common::GumboError::Plan(format!(
                                "semi-join {i} appears in two groups"
                            )));
                        }
                        covered[i] = true;
                    }
                    if !group.is_empty() {
                        let mut job = build_msj_job(ctx, group, self.mode, self.job_config);
                        job.estimate = est.and_then(|e| {
                            e.msj_estimate(ctx, group, self.mode, &self.job_config).ok()
                        });
                        // Shuffle-filter annotation: predict the Bloom
                        // filter's net effect, record the `auto` verdict on
                        // the job, and — when the engine will actually
                        // filter — swap in the filtered estimate so the
                        // scheduler places by the bytes that will really
                        // move.
                        if let (Some(e), Some(bits)) = (est, self.shuffle_filter.bits_per_key()) {
                            if let Some(pred) = e.msj_filter_prediction(ctx, group, self.mode, bits)
                            {
                                let profitable = pred.profitable();
                                if let Some(spec) = job.filter.as_mut() {
                                    spec.auto_profitable = Some(profitable);
                                }
                                let will_filter = profitable
                                    || matches!(
                                        self.shuffle_filter,
                                        ShuffleFilterMode::Bloom { .. }
                                    );
                                if will_filter {
                                    job.estimate = e
                                        .msj_filtered_estimate(
                                            ctx,
                                            group,
                                            self.mode,
                                            &self.job_config,
                                            &pred,
                                        )
                                        .ok()
                                        .or(job.estimate);
                                }
                            }
                        }
                        msj_jobs.push(job);
                    }
                }
                if let Some(missing) = covered.iter().position(|&c| !c) {
                    return Err(gumbo_common::GumboError::Plan(format!(
                        "semi-join {missing} not covered by any group"
                    )));
                }
                program.push_round(msj_jobs);
                let mut eval = build_eval_job(ctx, self.mode, self.job_config);
                eval.estimate =
                    est.and_then(|e| e.eval_estimate(ctx, self.mode, &self.job_config).ok());
                program.push_job(eval);
            }
        }
        Ok(program)
    }
}

impl fmt::Display for BsgfSetPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.one_round {
            Some(kind) => write!(f, "1-ROUND plan ({kind:?})"),
            None => {
                write!(f, "2-round plan: ")?;
                for (i, g) in self.groups.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "MSJ{g:?}")?;
                }
                write!(f, " ; EVAL")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Database, Fact, Relation, Tuple};
    use gumbo_mr::{Engine, EngineConfig, Executor};
    use gumbo_sgf::{parse_query, NaiveEvaluator};
    use gumbo_storage::SimDfs;

    fn example4_ctx() -> QueryContext {
        // Query (8) from Example 4.
        let q =
            parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));")
                .unwrap();
        QueryContext::new(vec![q]).unwrap()
    }

    fn example4_db() -> Database {
        let mut db = Database::new();
        for (name, arity) in [("R", 2), ("S", 2), ("T", 1), ("U", 1)] {
            db.add_relation(Relation::new(name, arity));
        }
        for (rel, t) in [
            ("R", vec![1i64, 10]),
            ("R", vec![2, 20]),
            ("R", vec![3, 30]),
            ("S", vec![1, 0]),
            ("S", vec![2, 0]),
            ("T", vec![10]),
            ("U", vec![2]),
        ] {
            db.insert_fact(Fact::new(rel, Tuple::from_ints(&t)))
                .unwrap();
        }
        db
    }

    /// All three alternative plans of Figure 2 must produce identical results.
    #[test]
    fn figure2_alternatives_agree() {
        let ctx = example4_ctx();
        let db = example4_db();
        let expected = NaiveEvaluator::new()
            .evaluate_bsgf(&ctx.queries()[0], &db)
            .unwrap();
        let plans = [
            vec![vec![0], vec![1], vec![2]], // (a): separate jobs
            vec![vec![0, 2], vec![1]],       // (b): X1 with X3
            vec![vec![0, 1, 2]],             // (c): all in one
        ];
        for (i, groups) in plans.into_iter().enumerate() {
            for mode in [PayloadMode::Full, PayloadMode::Reference] {
                let plan = BsgfSetPlan::two_round(groups.clone(), mode, JobConfig::default());
                let program = plan.build_program(&ctx).unwrap();
                let dfs = SimDfs::from_database(&db);
                Engine::new(EngineConfig::unscaled())
                    .execute(&dfs, &program)
                    .unwrap();
                let got = dfs.peek(&"Z".into()).unwrap();
                assert_eq!(got.as_ref(), &expected, "plan {i} mode {mode:?}");
            }
        }
    }

    #[test]
    fn plan_job_counts() {
        let ctx = example4_ctx();
        let par = BsgfSetPlan::singletons(&ctx, PayloadMode::Reference, JobConfig::default());
        assert_eq!(par.num_jobs(), 4); // 3 MSJ + 1 EVAL
        assert_eq!(par.build_program(&ctx).unwrap().num_rounds(), 2);
        let single = BsgfSetPlan::single_group(&ctx, PayloadMode::Reference, JobConfig::default());
        assert_eq!(single.num_jobs(), 2);
        let fused = BsgfSetPlan::one_round(OneRoundKind::SameKey, JobConfig::default());
        assert_eq!(fused.num_jobs(), 1);
    }

    #[test]
    fn incomplete_partition_rejected() {
        let ctx = example4_ctx();
        let plan = BsgfSetPlan::two_round(
            vec![vec![0], vec![1]],
            PayloadMode::Full,
            JobConfig::default(),
        );
        assert!(plan.build_program(&ctx).is_err());
    }

    #[test]
    fn overlapping_partition_rejected() {
        let ctx = example4_ctx();
        let plan = BsgfSetPlan::two_round(
            vec![vec![0, 1], vec![1, 2]],
            PayloadMode::Full,
            JobConfig::default(),
        );
        assert!(plan.build_program(&ctx).is_err());
    }

    #[test]
    fn query_without_condition_is_pure_eval() {
        let q = parse_query("Z := SELECT x FROM R(x, y);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let plan = BsgfSetPlan::single_group(&ctx, PayloadMode::Full, JobConfig::default());
        assert_eq!(plan.num_jobs(), 1); // zero MSJ groups + EVAL
        let program = plan.build_program(&ctx).unwrap();
        assert_eq!(program.num_rounds(), 1);

        let mut db = Database::new();
        db.insert_fact(Fact::new("R", Tuple::from_ints(&[1, 2])))
            .unwrap();
        let dfs = SimDfs::from_database(&db);
        Engine::new(EngineConfig::unscaled())
            .execute(&dfs, &program)
            .unwrap();
        assert_eq!(dfs.peek(&"Z".into()).unwrap().len(), 1);
    }
}
