//! Plan optimization: the NP-hard problems `BSGF-Opt` (Theorem 1) and
//! `SGF-Opt` (Theorem 2) with their greedy heuristics and brute-force
//! reference solvers.

pub mod bruteforce;
pub mod greedy_bsgf;
pub mod greedy_sgf;
pub mod optimal_sgf;

pub use bruteforce::optimal_partition;
pub use greedy_bsgf::greedy_partition;
pub use greedy_sgf::greedy_sgf_sort;
pub use optimal_sgf::optimal_sgf_sort;
