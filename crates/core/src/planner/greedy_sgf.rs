//! `Greedy-SGF` (§4.6): greedy multiway topological sort maximizing
//! relation overlap.
//!
//! The algorithm colors all dependency-graph vertices blue, then repeatedly:
//!
//! 1. lets `D` be the blue vertices with no blue predecessors;
//! 2. seeks a pair `(u, Fᵢ)` with `u ∈ D` such that inserting `u` into the
//!    existing group `Fᵢ` keeps the sequence a topological sort and
//!    `overlap(u, Fᵢ) > 0`;
//! 3. if such pairs exist, applies the one with maximal overlap; otherwise
//!    appends `{u}` as a new group;
//! 4. colors `u` red.
//!
//! `overlap(Q, F)` counts the relations occurring in `Q` that also occur in
//! `F` (input relations, cf. the paper's Example 5 where
//! `overlap(Q₂, {Q₁, Q₃, Q₄, Q₅}) = 1` via the shared relation `T`).
//! Runs in `O(n³)`.

use std::collections::BTreeSet;

use gumbo_common::RelationName;
use gumbo_sgf::{DependencyGraph, MultiwayTopoSort, SgfQuery};

/// `overlap(Q_u, F)`: number of distinct relations of query `u` that also
/// occur in the queries of `group`.
pub fn overlap(query: &SgfQuery, u: usize, group: &[usize]) -> usize {
    let u_rels = query.queries()[u].mentioned_relations();
    let group_rels: BTreeSet<RelationName> = group
        .iter()
        .flat_map(|&v| query.queries()[v].mentioned_relations())
        .collect();
    u_rels.intersection(&group_rels).count()
}

/// Compute the `Greedy-SGF` multiway topological sort of an SGF query.
pub fn greedy_sgf_sort(query: &SgfQuery) -> MultiwayTopoSort {
    let graph = DependencyGraph::new(query);
    let n = graph.len();
    let mut blue: BTreeSet<usize> = (0..n).collect();
    let mut sort: MultiwayTopoSort = Vec::new();
    // Group index holding each placed (red) vertex.
    let mut group_of: Vec<Option<usize>> = vec![None; n];

    while !blue.is_empty() {
        // D: blue vertices whose predecessors are all red.
        let available: Vec<usize> = blue
            .iter()
            .copied()
            .filter(|&v| graph.predecessors(v).iter().all(|p| !blue.contains(p)))
            .collect();
        debug_assert!(!available.is_empty(), "DAG always has available vertices");

        // Feasibility of inserting u into group i: every predecessor of u
        // lies in a group strictly before i. (Successors of u are still
        // blue, so they impose no constraint yet.)
        let min_group = |u: usize| -> usize {
            graph
                .predecessors(u)
                .iter()
                .map(|&p| group_of[p].expect("red predecessor") + 1)
                .max()
                .unwrap_or(0)
        };

        let mut best: Option<(usize, usize, usize)> = None; // (u, group, overlap)
        for &u in &available {
            let lo = min_group(u);
            for (i, group) in sort.iter().enumerate().skip(lo) {
                let ov = overlap(query, u, group);
                if ov > 0 {
                    let better = match best {
                        None => true,
                        // Maximal overlap; ties broken toward earlier groups
                        // then smaller vertex ids for determinism.
                        Some((bu, bi, bov)) => ov > bov || (ov == bov && (i, u) < (bi, bu)),
                    };
                    if better {
                        best = Some((u, i, ov));
                    }
                }
            }
        }

        let u = match best {
            Some((u, i, _)) => {
                sort[i].push(u);
                group_of[u] = Some(i);
                u
            }
            None => {
                // No positive-overlap insertion: append the smallest
                // available vertex as its own group.
                let u = available[0];
                sort.push(vec![u]);
                group_of[u] = Some(sort.len() - 1);
                u
            }
        };
        blue.remove(&u);
    }
    sort
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_sgf::parse_program;

    #[test]
    fn overlap_matches_paper_example5() {
        let q = parse_program(
            "Z1 := SELECT (x, y) FROM R1(x, y) WHERE S(x);\n\
             Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(x);\n\
             Z3 := SELECT (x, y) FROM Z2(x, y) WHERE U(x);\n\
             Z4 := SELECT (x, y) FROM R2(x, y) WHERE T(x);\n\
             Z5 := SELECT (x, y) FROM Z3(x, y) WHERE Z4(x, x);",
        )
        .unwrap();
        // Q2 vs {Q1, Q3, Q4, Q5}: only T is shared -> 1.
        assert_eq!(overlap(&q, 1, &[0, 2, 3, 4]), 1);
        // Q2 vs {Q4}: T again.
        assert_eq!(overlap(&q, 1, &[3]), 1);
        // Q1 vs {Q3}: nothing shared.
        assert_eq!(overlap(&q, 0, &[2]), 0);
    }

    #[test]
    fn greedy_groups_q4_with_q2_on_example5() {
        // Q4 reads {R2, T}; T overlaps Q2 ({Z1, T}). Greedy should place
        // Q4 into Q2's group (both are valid topologically).
        let q = parse_program(
            "Z1 := SELECT (x, y) FROM R1(x, y) WHERE S(x);\n\
             Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(x);\n\
             Z3 := SELECT (x, y) FROM Z2(x, y) WHERE U(x);\n\
             Z4 := SELECT (x, y) FROM R2(x, y) WHERE T(x);\n\
             Z5 := SELECT (x, y) FROM Z3(x, y) WHERE Z4(x, x);",
        )
        .unwrap();
        let sort = greedy_sgf_sort(&q);
        DependencyGraph::new(&q).validate_sort(&sort).unwrap();
        // Find Q4 (index 3) and Q2 (index 1): same group.
        let g2 = sort.iter().position(|g| g.contains(&1)).unwrap();
        let g4 = sort.iter().position(|g| g.contains(&3)).unwrap();
        assert_eq!(g2, g4, "sort was {sort:?}");
    }

    #[test]
    fn greedy_sort_is_always_valid() {
        let q = parse_program(
            "Z1 := SELECT x FROM R(x) WHERE S(x);\n\
             Z2 := SELECT x FROM G(x) WHERE S(x);\n\
             Z3 := SELECT x FROM Z1(x) WHERE Z2(x);\n\
             Z4 := SELECT x FROM H(x) WHERE T(x);",
        )
        .unwrap();
        let sort = greedy_sgf_sort(&q);
        DependencyGraph::new(&q).validate_sort(&sort).unwrap();
        // Z1 and Z2 share S: grouped together.
        let g1 = sort.iter().position(|g| g.contains(&0)).unwrap();
        let g2 = sort.iter().position(|g| g.contains(&1)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn independent_disjoint_queries_stay_separate() {
        let q = parse_program(
            "Z1 := SELECT x FROM R(x) WHERE S(x);\n\
             Z2 := SELECT x FROM G(x) WHERE T(x);",
        )
        .unwrap();
        let sort = greedy_sgf_sort(&q);
        // No overlap anywhere: each vertex becomes its own group.
        assert_eq!(sort.len(), 2);
    }

    #[test]
    fn single_query_single_group() {
        let q = parse_program("Z := SELECT x FROM R(x) WHERE S(x);").unwrap();
        assert_eq!(greedy_sgf_sort(&q), vec![vec![0]]);
    }

    #[test]
    fn chain_cannot_be_grouped() {
        let q = parse_program(
            "Z1 := SELECT x FROM R(x) WHERE S(x);\n\
             Z2 := SELECT x FROM Z1(x) WHERE S(x);\n\
             Z3 := SELECT x FROM Z2(x) WHERE S(x);",
        )
        .unwrap();
        let sort = greedy_sgf_sort(&q);
        DependencyGraph::new(&q).validate_sort(&sort).unwrap();
        assert_eq!(sort.len(), 3, "chain forces sequential groups: {sort:?}");
    }
}
