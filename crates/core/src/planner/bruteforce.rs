//! Brute-force `BSGF-Opt`: exact minimum-cost partition by exhaustive
//! enumeration of set partitions.
//!
//! The decision variant is NP-complete (Theorem 1), so this is exponential
//! (Bell numbers): usable for the small queries of the optimality
//! experiments ("for small queries the optimal solution can be found using
//! a brute-force search", §4.4) and as ground truth for `Greedy-BSGF`.

use std::collections::BTreeSet;

use super::greedy_bsgf::Block;

/// Maximum n before enumeration is refused (B(12) ≈ 4.2M partitions).
const MAX_N: usize = 12;

/// Exhaustively find the minimum-cost partition of `0..n`.
///
/// # Panics
/// Panics if `n > 12` (Bell-number blow-up guard).
pub fn optimal_partition(n: usize, cost: &mut dyn FnMut(&Block) -> f64) -> (Vec<Block>, f64) {
    assert!(
        n <= MAX_N,
        "optimal_partition is exponential; n = {n} too large"
    );
    let mut memo: std::collections::HashMap<Block, f64> = std::collections::HashMap::new();
    let mut priced = |set: &Block, cost: &mut dyn FnMut(&Block) -> f64| -> f64 {
        if let Some(c) = memo.get(set) {
            return *c;
        }
        let c = cost(set);
        memo.insert(set.clone(), c);
        c
    };

    let mut best: Option<(Vec<Block>, f64)> = None;
    let mut current: Vec<Block> = Vec::new();
    enumerate(0, n, &mut current, &mut |partition| {
        let total: f64 = partition.iter().map(|b| priced(b, cost)).sum();
        if best.as_ref().is_none_or(|(_, c)| total < *c) {
            best = Some((partition.to_vec(), total));
        }
    });
    match best {
        Some((mut blocks, total)) => {
            blocks.sort_by_key(|b| *b.iter().next().expect("non-empty"));
            (blocks, total)
        }
        None => (Vec::new(), 0.0),
    }
}

/// Enumerate all partitions of `0..n` by assigning each element either to an
/// existing block or to a fresh one (restricted-growth strings).
fn enumerate(i: usize, n: usize, current: &mut Vec<Block>, visit: &mut impl FnMut(&[Block])) {
    if i == n {
        if !current.is_empty() || n == 0 {
            visit(current);
        }
        return;
    }
    for b in 0..current.len() {
        current[b].insert(i);
        enumerate(i + 1, n, current, visit);
        current[b].remove(&i);
    }
    current.push(BTreeSet::from([i]));
    enumerate(i + 1, n, current, visit);
    current.pop();
}

#[cfg(test)]
mod tests {
    use super::super::greedy_bsgf::greedy_partition;
    use super::*;

    #[test]
    fn enumerates_bell_number_of_partitions() {
        // B(4) = 15.
        let mut count = 0usize;
        let mut current = Vec::new();
        enumerate(0, 4, &mut current, &mut |_| count += 1);
        assert_eq!(count, 15);
    }

    #[test]
    fn finds_exact_optimum_greedy_misses() {
        // Same adversarial cost as the greedy test: optimal is one block.
        let mut cost = |s: &Block| match s.len() {
            1 => 1.0,
            2 => 2.5,
            3 => 0.5,
            _ => 99.0,
        };
        let (blocks, total) = optimal_partition(3, &mut cost);
        assert_eq!(blocks.len(), 1);
        assert!((total - 0.5).abs() < 1e-12);
    }

    #[test]
    fn optimal_never_exceeds_greedy() {
        // Pseudo-random subadditive-ish cost; check OPT ≤ GOPT over several
        // deterministic instances.
        for seed in 0..20u64 {
            let f = move |s: &Block| {
                let mut h = seed.wrapping_mul(0x9e37_79b9);
                for &x in s {
                    h = h.wrapping_mul(31).wrapping_add(x as u64);
                }
                5.0 + (h % 100) as f64 / 10.0 + s.len() as f64
            };
            let mut c1 = f;
            let mut c2 = f;
            let (_, opt) = optimal_partition(5, &mut c1);
            let (_, gopt) = greedy_partition(5, &mut c2);
            assert!(opt <= gopt + 1e-9, "seed {seed}: opt {opt} > greedy {gopt}");
        }
    }

    #[test]
    fn singleton_and_empty_cases() {
        let mut cost = |_: &Block| 2.0;
        let (blocks, total) = optimal_partition(1, &mut cost);
        assert_eq!(blocks.len(), 1);
        assert!((total - 2.0).abs() < 1e-12);
        let (blocks0, total0) = optimal_partition(0, &mut cost);
        assert!(blocks0.is_empty());
        assert_eq!(total0, 0.0);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn refuses_large_inputs() {
        let mut cost = |_: &Block| 0.0;
        optimal_partition(13, &mut cost);
    }
}
