//! `Greedy-BSGF` (§4.4): gain-driven grouping of semi-joins into MSJ jobs.
//!
//! Starting from the trivial partition `S₁ ∪ … ∪ Sₙ` (one semi-join per
//! job), repeatedly merge the pair with the greatest positive
//! `gain(Sᵢ, S_j) = cost(Sᵢ) + cost(S_j) − cost(Sᵢ ∪ S_j)` until no
//! positive-gain pair remains — the heuristic of Wang & Chan adopted by the
//! paper, driven here by an arbitrary subset-cost oracle so that the same
//! algorithm serves the real estimator, synthetic cost functions in tests,
//! and the Appendix-A reductions.

use std::collections::BTreeSet;

/// One block of a partition.
pub type Block = BTreeSet<usize>;

/// Run `Greedy-BSGF` over items `0..n` with the given subset-cost oracle.
///
/// Returns the partition (blocks sorted by smallest element) and its total
/// cost. The oracle is memoized internally, so repeated subsets are priced
/// once.
pub fn greedy_partition(n: usize, cost: &mut dyn FnMut(&Block) -> f64) -> (Vec<Block>, f64) {
    let mut memo: std::collections::HashMap<Block, f64> = std::collections::HashMap::new();
    let mut priced = |set: &Block, cost: &mut dyn FnMut(&Block) -> f64| -> f64 {
        if let Some(c) = memo.get(set) {
            return *c;
        }
        let c = cost(set);
        memo.insert(set.clone(), c);
        c
    };

    let mut blocks: Vec<Block> = (0..n).map(|i| BTreeSet::from([i])).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                let ci = priced(&blocks[i], cost);
                let cj = priced(&blocks[j], cost);
                let union: Block = blocks[i].union(&blocks[j]).copied().collect();
                let cu = priced(&union, cost);
                let gain = ci + cj - cu;
                // Strictly positive gain; deterministic tie-break on (i, j).
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((i, j, gain));
                }
            }
        }
        match best {
            Some((i, j, _)) => {
                let merged: Block = blocks[i].union(&blocks[j]).copied().collect();
                // Remove j first (j > i) to keep indices valid.
                blocks.remove(j);
                blocks.remove(i);
                blocks.push(merged);
                blocks.sort_by_key(|b| *b.iter().next().expect("non-empty block"));
            }
            None => break,
        }
    }
    let total = blocks.iter().map(|b| priced(b, cost)).sum();
    (blocks, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks_of(v: &[(usize, &[usize])]) -> Vec<Block> {
        v.iter().map(|(_, b)| b.iter().copied().collect()).collect()
    }

    #[test]
    fn no_gain_keeps_singletons() {
        // Additive cost: merging never helps.
        let mut cost = |s: &Block| s.len() as f64;
        let (blocks, total) = greedy_partition(4, &mut cost);
        assert_eq!(blocks.len(), 4);
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_overhead_merges_everything() {
        // cost(S) = 10 + |S|: each merge saves one overhead of 10.
        let mut cost = |s: &Block| 10.0 + s.len() as f64;
        let (blocks, total) = greedy_partition(5, &mut cost);
        assert_eq!(blocks.len(), 1);
        assert!((total - 15.0).abs() < 1e-12);
    }

    #[test]
    fn superadditive_penalty_blocks_merging() {
        // cost(S) = |S|^2: merging is always worse.
        let mut cost = |s: &Block| (s.len() * s.len()) as f64;
        let (blocks, _) = greedy_partition(4, &mut cost);
        assert_eq!(blocks.len(), 4);
    }

    #[test]
    fn selective_affinity() {
        // Items 0,1 share a guard (merging them is free); others don't.
        let mut cost = |s: &Block| {
            let base: f64 = s.len() as f64 * 5.0;
            let discount = if s.contains(&0) && s.contains(&1) {
                5.0
            } else {
                0.0
            };
            2.0 + base - discount // 2.0 = job overhead
        };
        let (blocks, _) = greedy_partition(3, &mut cost);
        // 0 and 1 merge (gain 5 + 2 overhead); 2 joins too since overhead
        // saving (2.0) is positive gain.
        assert_eq!(blocks.len(), 1);
        // Force overhead 0: then only {0,1} merges.
        let mut cost2 = |s: &Block| {
            let base: f64 = s.len() as f64 * 5.0;
            let discount = if s.contains(&0) && s.contains(&1) {
                5.0
            } else {
                0.0
            };
            base - discount
        };
        let (blocks2, total2) = greedy_partition(3, &mut cost2);
        assert_eq!(blocks2, blocks_of(&[(0, &[0, 1]), (1, &[2])]));
        assert!((total2 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_never_worse_than_trivial() {
        // A cost where pairwise merges look bad but the full merge is best:
        // greedy stops at singletons; optimal is the single block. The
        // invariant we *do* guarantee: greedy ≤ trivial partition cost.
        let mut cost = |s: &Block| match s.len() {
            1 => 1.0,
            2 => 2.5, // pairwise merge: negative gain
            3 => 0.5, // full merge: much cheaper (greedy never sees it)
            _ => 99.0,
        };
        let (blocks, total) = greedy_partition(3, &mut cost);
        assert_eq!(blocks.len(), 3);
        assert!((total - 3.0).abs() < 1e-12);
        let trivial: f64 = 3.0;
        assert!(total <= trivial + 1e-12);
    }

    #[test]
    fn empty_input() {
        let mut cost = |_: &Block| 1.0;
        let (blocks, total) = greedy_partition(0, &mut cost);
        assert!(blocks.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn deterministic_output_order() {
        let mut cost = |s: &Block| 10.0 + s.len() as f64;
        let (a, _) = greedy_partition(4, &mut cost);
        let mut cost2 = |s: &Block| 10.0 + s.len() as f64;
        let (b, _) = greedy_partition(4, &mut cost2);
        assert_eq!(a, b);
    }
}
