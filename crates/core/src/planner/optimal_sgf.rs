//! Brute-force `SGF-Opt`: exact minimum-cost multiway topological sort.
//!
//! The decision variant is NP-complete (Theorem 2, by reduction from
//! Subset Sum). This solver enumerates every multiway topological sort of
//! the dependency graph and prices each with a caller-supplied cost
//! function (`cost(F) = Σᵢ cost(GOPT(Fᵢ))`, Eq. 10) — the paper computes
//! optimal sorts "through brute-force methods" to validate `Greedy-SGF` on
//! C1–C4 (§5.3).

use gumbo_common::{GumboError, Result};
use gumbo_sgf::{DependencyGraph, MultiwayTopoSort, SgfQuery};

/// Find the minimum-cost multiway topological sort.
///
/// `sort_cost` prices a full sort; errors propagate. Refuses queries with
/// more than 12 subqueries (the enumeration is exponential).
pub fn optimal_sgf_sort(
    query: &SgfQuery,
    sort_cost: &mut dyn FnMut(&MultiwayTopoSort) -> Result<f64>,
) -> Result<(MultiwayTopoSort, f64)> {
    let graph = DependencyGraph::new(query);
    if graph.len() > 12 {
        return Err(GumboError::Plan(format!(
            "optimal SGF sort is exponential; {} subqueries is too many",
            graph.len()
        )));
    }
    let mut best: Option<(MultiwayTopoSort, f64)> = None;
    for sort in graph.all_multiway_sorts() {
        let c = sort_cost(&sort)?;
        if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
            best = Some((sort, c));
        }
    }
    best.ok_or_else(|| GumboError::Plan("no topological sort found".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::greedy_sgf::greedy_sgf_sort;
    use gumbo_sgf::parse_program;

    fn example5() -> SgfQuery {
        parse_program(
            "Z1 := SELECT (x, y) FROM R1(x, y) WHERE S(x);\n\
             Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(x);\n\
             Z3 := SELECT (x, y) FROM Z2(x, y) WHERE U(x);\n\
             Z4 := SELECT (x, y) FROM R2(x, y) WHERE T(x);\n\
             Z5 := SELECT (x, y) FROM Z3(x, y) WHERE Z4(x, x);",
        )
        .unwrap()
    }

    #[test]
    fn fewest_groups_cost_picks_maximal_grouping() {
        // Cost = number of groups: the optimum merges Q4 into the first
        // chain slot, giving 4 groups.
        let q = example5();
        let (sort, cost) =
            optimal_sgf_sort(&q, &mut |s: &MultiwayTopoSort| Ok(s.len() as f64)).unwrap();
        assert_eq!(cost, 4.0);
        DependencyGraph::new(&q).validate_sort(&sort).unwrap();
    }

    #[test]
    fn optimal_never_exceeds_greedy_under_same_cost() {
        // Price a sort by Σ per-group (overhead + distinct relations),
        // rewarding grouping queries that share relations.
        let q = example5();
        let mut price = |s: &MultiwayTopoSort| -> Result<f64> {
            let mut total = 0.0;
            for group in s {
                let rels: std::collections::BTreeSet<_> = group
                    .iter()
                    .flat_map(|&i| q.queries()[i].mentioned_relations())
                    .collect();
                total += 10.0 + rels.len() as f64;
            }
            Ok(total)
        };
        let (_, opt) = optimal_sgf_sort(&q, &mut price).unwrap();
        let greedy = greedy_sgf_sort(&q);
        let g_cost = price(&greedy).unwrap();
        assert!(opt <= g_cost + 1e-9, "opt {opt} > greedy {g_cost}");
    }

    #[test]
    fn propagates_cost_errors() {
        let q = example5();
        let r = optimal_sgf_sort(&q, &mut |_: &MultiwayTopoSort| {
            Err(GumboError::Plan("boom".into()))
        });
        assert!(r.is_err());
    }

    #[test]
    fn refuses_oversized_queries() {
        let text: String = (0..13)
            .map(|i| format!("Z{i} := SELECT x FROM R{i}(x) WHERE S(x);\n"))
            .collect();
        let q = parse_program(&text).unwrap();
        assert!(optimal_sgf_sort(&q, &mut |_| Ok(0.0)).is_err());
    }
}
