//! 1-ROUND plans: MSJ + EVAL fused into a single job (§5.1, optimization 4).
//!
//! Two triggers:
//!
//! * **same key**: all conditional atoms of a query share one join key, so
//!   every semi-join verdict for a guard tuple lands in the same reduce
//!   group — the Boolean formula can be evaluated there and then;
//! * **disjunctive**: the condition is an OR of (possibly negated) atoms, so
//!   the output is a union of per-literal contributions, each decidable in
//!   its own reduce group (set semantics deduplicate).
//!
//! In both cases the fused reducer writes the final output relation
//! directly — no second round, no `Xᵢ` intermediates.

use gumbo_common::{GumboError, RelationName, Result, Tuple};
use gumbo_mr::{Job, JobConfig, Mapper, Message, Payload, Reducer};
use gumbo_sgf::{Atom, BoolExpr, Condition, Var};

use crate::semijoin::{cond_groups, QueryContext};

// ------------------------------------------------------------ same key --

#[derive(Debug, Clone)]
struct FusedQuery {
    output: RelationName,
    guard: Atom,
    join_key: Vec<Var>,
    output_vars: Vec<Var>,
    /// `ϕ_C` over *local* indices into `assert_group_of`.
    formula: BoolExpr,
    /// Per semi-join of this query: its assert-group index.
    assert_group_of: Vec<u32>,
}

struct SameKeyMapper {
    queries: Vec<FusedQuery>,
    asserts: Vec<(Atom, Vec<Var>)>,
}

impl Mapper for SameKeyMapper {
    fn map(&self, fact: &gumbo_common::Fact, _index: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        for (j, q) in self.queries.iter().enumerate() {
            if q.guard.conforms_fact(fact) {
                // One request per guard tuple (not per semi-join): all the
                // query's verdicts live at this single key.
                let key = q.guard.project(&fact.tuple, &q.join_key);
                let out = q.guard.project(&fact.tuple, &q.output_vars);
                emit(
                    key,
                    Message::Req {
                        cond: j as u32,
                        payload: Payload::Tuple(out),
                    },
                );
            }
        }
        for (g, (atom, key_vars)) in self.asserts.iter().enumerate() {
            if atom.conforms_fact(fact) {
                emit(
                    atom.project(&fact.tuple, key_vars),
                    Message::Assert { cond: g as u32 },
                );
            }
        }
    }
}

struct SameKeyReducer {
    queries: Vec<FusedQuery>,
}

impl Reducer for SameKeyReducer {
    fn reduce(&self, _key: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
        let present: Vec<u32> = values
            .iter()
            .filter_map(|m| match m {
                Message::Assert { cond } => Some(*cond),
                _ => None,
            })
            .collect();
        for m in values {
            if let Message::Req {
                cond,
                payload: Payload::Tuple(out),
            } = m
            {
                let q = &self.queries[*cond as usize];
                let holds = q
                    .formula
                    .evaluate(&|sj| present.contains(&q.assert_group_of[sj]));
                if holds {
                    emit(&q.output, out.clone());
                }
            }
        }
    }
}

/// Build the fused same-key 1-ROUND job for a whole query set. Fails if
/// some query is not same-key fusible.
pub fn build_same_key_job(ctx: &QueryContext, config: JobConfig) -> Result<Job> {
    let sjs: Vec<&crate::semijoin::SemiJoin> = ctx.semijoins().iter().collect();
    let (asserts, assignment) = cond_groups(&sjs);
    let mut queries = Vec::with_capacity(ctx.queries().len());
    for (j, q) in ctx.queries().iter().enumerate() {
        if !ctx.same_key_fusible(j) {
            return Err(GumboError::Plan(format!(
                "query {} is not same-key 1-ROUND fusible",
                q.output()
            )));
        }
        let ids = ctx.semijoins_of(j);
        let assert_group_of: Vec<u32> = ids.iter().map(|&i| assignment[&i] as u32).collect();
        // Re-localize the global formula onto positions within `ids`.
        let formula = localize(ctx.formula(j).expect("fusible implies condition"), ids);
        queries.push(FusedQuery {
            output: q.output().clone(),
            guard: q.guard().clone(),
            join_key: ctx.semijoin(ids[0]).join_key.clone(),
            output_vars: q.output_vars().to_vec(),
            formula,
            assert_group_of,
        });
    }
    Ok(build_job(
        "1ROUND",
        ctx,
        queries,
        asserts,
        config,
        |qs, asserts| {
            (
                Box::new(SameKeyMapper {
                    queries: qs.clone(),
                    asserts,
                }),
                Box::new(SameKeyReducer { queries: qs }),
            )
        },
    ))
}

// --------------------------------------------------------- disjunctive --

#[derive(Debug, Clone)]
struct Literal {
    /// Key projection for the literal's semi-join.
    join_key: Vec<Var>,
    /// Assert group the literal tests.
    assert_group: u32,
    /// `true` for `κ`, `false` for `NOT κ`.
    positive: bool,
    /// Owning query.
    query: u32,
}

struct DisjunctiveMapper {
    queries: Vec<FusedQuery>,
    literals: Vec<Literal>,
    asserts: Vec<(Atom, Vec<Var>)>,
}

impl Mapper for DisjunctiveMapper {
    fn map(&self, fact: &gumbo_common::Fact, _index: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        for (l, lit) in self.literals.iter().enumerate() {
            let q = &self.queries[lit.query as usize];
            if q.guard.conforms_fact(fact) {
                let key = q.guard.project(&fact.tuple, &lit.join_key);
                let out = q.guard.project(&fact.tuple, &q.output_vars);
                emit(
                    key,
                    Message::Req {
                        cond: l as u32,
                        payload: Payload::Tuple(out),
                    },
                );
            }
        }
        for (g, (atom, key_vars)) in self.asserts.iter().enumerate() {
            if atom.conforms_fact(fact) {
                emit(
                    atom.project(&fact.tuple, key_vars),
                    Message::Assert { cond: g as u32 },
                );
            }
        }
    }
}

struct DisjunctiveReducer {
    queries: Vec<FusedQuery>,
    literals: Vec<Literal>,
}

impl Reducer for DisjunctiveReducer {
    fn reduce(&self, _key: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
        let present: Vec<u32> = values
            .iter()
            .filter_map(|m| match m {
                Message::Assert { cond } => Some(*cond),
                _ => None,
            })
            .collect();
        for m in values {
            if let Message::Req {
                cond,
                payload: Payload::Tuple(out),
            } = m
            {
                let lit = &self.literals[*cond as usize];
                let hit = present.contains(&lit.assert_group);
                if hit == lit.positive {
                    emit(&self.queries[lit.query as usize].output, out.clone());
                }
            }
        }
    }
}

/// Build the fused disjunctive 1-ROUND job for a whole query set. Fails if
/// some query's condition is not an OR of literals.
pub fn build_disjunctive_job(ctx: &QueryContext, config: JobConfig) -> Result<Job> {
    let sjs: Vec<&crate::semijoin::SemiJoin> = ctx.semijoins().iter().collect();
    let (asserts, assignment) = cond_groups(&sjs);
    let mut queries = Vec::new();
    let mut literals = Vec::new();
    for (j, q) in ctx.queries().iter().enumerate() {
        if !ctx.disjunctive_fusible(j) {
            return Err(GumboError::Plan(format!(
                "query {} is not disjunctive 1-ROUND fusible",
                q.output()
            )));
        }
        let cond = q.condition().expect("fusible implies condition");
        let atoms = q.conditional_atoms();
        let ids = ctx.semijoins_of(j);
        collect_literals(cond, true, &mut |atom, positive| {
            let local = atoms
                .iter()
                .position(|a| *a == atom)
                .expect("atom of condition");
            let sj = ctx.semijoin(ids[local]);
            literals.push(Literal {
                join_key: sj.join_key.clone(),
                assert_group: assignment[&sj.id] as u32,
                positive,
                query: j as u32,
            });
        });
        queries.push(FusedQuery {
            output: q.output().clone(),
            guard: q.guard().clone(),
            join_key: Vec::new(), // unused in disjunctive mode
            output_vars: q.output_vars().to_vec(),
            formula: BoolExpr::Const(true), // unused in disjunctive mode
            assert_group_of: Vec::new(),
        });
    }
    Ok(build_job(
        "1ROUND-OR",
        ctx,
        queries.clone(),
        asserts.clone(),
        config,
        move |qs, asserts| {
            (
                Box::new(DisjunctiveMapper {
                    queries: qs.clone(),
                    literals: literals.clone(),
                    asserts,
                }),
                Box::new(DisjunctiveReducer {
                    queries: qs,
                    literals: literals.clone(),
                }),
            )
        },
    ))
}

fn collect_literals(c: &Condition, positive: bool, f: &mut impl FnMut(&Atom, bool)) {
    match c {
        Condition::Atom(a) => f(a, positive),
        Condition::Not(inner) => collect_literals(inner, !positive, f),
        Condition::Or(l, r) => {
            collect_literals(l, positive, f);
            collect_literals(r, positive, f);
        }
        Condition::And(..) => unreachable!("checked by disjunctive_fusible"),
    }
}

// ---------------------------------------------------------------- glue --

type MapRed = (Box<dyn Mapper>, Box<dyn Reducer>);

fn build_job(
    tag: &str,
    ctx: &QueryContext,
    queries: Vec<FusedQuery>,
    asserts: Vec<(Atom, Vec<Var>)>,
    config: JobConfig,
    make: impl FnOnce(Vec<FusedQuery>, Vec<(Atom, Vec<Var>)>) -> MapRed,
) -> Job {
    let mut inputs: Vec<RelationName> = Vec::new();
    for q in &queries {
        if !inputs.contains(q.guard.relation()) {
            inputs.push(q.guard.relation().clone());
        }
    }
    for (atom, _) in &asserts {
        if !inputs.contains(atom.relation()) {
            inputs.push(atom.relation().clone());
        }
    }
    let outputs: Vec<(RelationName, usize)> = queries
        .iter()
        .map(|q| (q.output.clone(), q.output_vars.len()))
        .collect();
    let out_list: Vec<String> = ctx
        .queries()
        .iter()
        .map(|q| q.output().to_string())
        .collect();
    let (mapper, reducer) = make(queries, asserts);
    Job {
        name: format!("{tag}({})", out_list.join(",")),
        inputs,
        outputs,
        mapper,
        reducer,
        config,
        estimate: None,
        filter: None,
    }
}

/// Rewrite a formula over global semi-join ids into local positions within
/// `ids` (the query's own semi-joins).
fn localize(e: &BoolExpr, ids: &[usize]) -> BoolExpr {
    match e {
        BoolExpr::Var(g) => BoolExpr::Var(ids.iter().position(|i| i == g).expect("own semi-join")),
        BoolExpr::Const(b) => BoolExpr::Const(*b),
        BoolExpr::Not(x) => BoolExpr::Not(Box::new(localize(x, ids))),
        BoolExpr::And(l, r) => {
            BoolExpr::And(Box::new(localize(l, ids)), Box::new(localize(r, ids)))
        }
        BoolExpr::Or(l, r) => BoolExpr::Or(Box::new(localize(l, ids)), Box::new(localize(r, ids))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Database, Fact, Relation};
    use gumbo_mr::{EngineConfig, ExecutorKind, MrProgram};
    use gumbo_sgf::{parse_query, NaiveEvaluator};
    use gumbo_storage::SimDfs;

    fn db(facts: &[(&str, &[i64])], arities: &[(&str, usize)]) -> Database {
        let mut db = Database::new();
        for (name, arity) in arities {
            db.add_relation(Relation::new(*name, *arity));
        }
        for (rel, t) in facts {
            db.insert_fact(Fact::new(*rel, Tuple::from_ints(t)))
                .unwrap();
        }
        db
    }

    fn run_fused(job: Job, database: &Database) -> SimDfs {
        let dfs = SimDfs::from_database(database);
        let mut program = MrProgram::new();
        program.push_job(job);
        // Fused 1-ROUND jobs run on the multi-threaded runtime here, so
        // every naive-evaluator comparison below also covers it.
        ExecutorKind::Parallel { threads: 2 }
            .build(EngineConfig::unscaled())
            .execute(&dfs, &program)
            .unwrap();
        dfs
    }

    #[test]
    fn same_key_fusion_matches_naive() {
        // A3 shape with mixed AND/OR/NOT, all on key x.
        let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND (T(x) OR NOT U(x));")
            .unwrap();
        let d = db(
            &[
                ("R", &[1, 10]),
                ("R", &[2, 20]),
                ("R", &[3, 30]),
                ("S", &[1]),
                ("S", &[2]),
                ("T", &[1]),
                ("U", &[2]),
            ],
            &[("R", 2), ("S", 1), ("T", 1), ("U", 1)],
        );
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let job = build_same_key_job(&ctx, JobConfig::default()).unwrap();
        let dfs = run_fused(job, &d);
        assert_eq!(dfs.peek(&"Z".into()).unwrap().as_ref(), &expected);
    }

    #[test]
    fn same_key_rejects_mixed_keys() {
        let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(y);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        assert!(build_same_key_job(&ctx, JobConfig::default()).is_err());
    }

    #[test]
    fn b2_uniqueness_query_fused() {
        // B2: tuples connected to exactly one of S,T via x (reduced form).
        let q = parse_query(
            "Z := SELECT (x, y) FROM R(x, y) WHERE \
             (S(x) AND NOT T(x)) OR (NOT S(x) AND T(x));",
        )
        .unwrap();
        let d = db(
            &[
                ("R", &[1, 0]), // only S -> in
                ("R", &[2, 0]), // only T -> in
                ("R", &[3, 0]), // both -> out
                ("R", &[4, 0]), // neither -> out
                ("S", &[1]),
                ("S", &[3]),
                ("T", &[2]),
                ("T", &[3]),
            ],
            &[("R", 2), ("S", 1), ("T", 1)],
        );
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let job = build_same_key_job(&ctx, JobConfig::default()).unwrap();
        let dfs = run_fused(job, &d);
        assert_eq!(dfs.peek(&"Z".into()).unwrap().as_ref(), &expected);
        assert_eq!(expected.len(), 2);
    }

    #[test]
    fn disjunctive_fusion_matches_naive() {
        // C4 shape: OR over different keys, with a negated literal.
        let q =
            parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR NOT T(y) OR U(x);").unwrap();
        let d = db(
            &[
                ("R", &[1, 10]), // S(1) -> in
                ("R", &[2, 20]), // T(20) present, no S/U -> out
                ("R", &[3, 30]), // no T(30) -> in via NOT T
                ("S", &[1]),
                ("T", &[10]),
                ("T", &[20]),
            ],
            &[("R", 2), ("S", 1), ("T", 1), ("U", 1)],
        );
        let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        let job = build_disjunctive_job(&ctx, JobConfig::default()).unwrap();
        let dfs = run_fused(job, &d);
        assert_eq!(dfs.peek(&"Z".into()).unwrap().as_ref(), &expected);
        // R(1,10): T(10) holds so NOT T fails, but S fires -> included once.
        assert!(expected.contains(&Tuple::from_ints(&[1, 10])));
    }

    #[test]
    fn disjunctive_rejects_conjunctions() {
        let q = parse_query("Z := SELECT x FROM R(x) WHERE S(x) AND T(x);").unwrap();
        let ctx = QueryContext::new(vec![q]).unwrap();
        assert!(build_disjunctive_job(&ctx, JobConfig::default()).is_err());
    }

    #[test]
    fn multi_query_same_key_fusion() {
        // Two A3-like queries fused into one job, sharing S's assert stream.
        let q1 = parse_query("Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(x);").unwrap();
        let q2 = parse_query("Z2 := SELECT (x, y) FROM G(x, y) WHERE S(x);").unwrap();
        let d = db(
            &[
                ("R", &[1, 0]),
                ("R", &[2, 0]),
                ("G", &[1, 5]),
                ("G", &[9, 5]),
                ("S", &[1]),
                ("S", &[2]),
                ("T", &[1]),
            ],
            &[("R", 2), ("G", 2), ("S", 1), ("T", 1)],
        );
        let naive = NaiveEvaluator::new();
        let e1 = naive.evaluate_bsgf(&q1, &d).unwrap();
        let e2 = naive.evaluate_bsgf(&q2, &d).unwrap();
        let ctx = QueryContext::new(vec![q1, q2]).unwrap();
        let job = build_same_key_job(&ctx, JobConfig::default()).unwrap();
        // Assert sharing: S(x)@[x] appears once in the assert table.
        let dfs = run_fused(job, &d);
        assert_eq!(dfs.peek(&"Z1".into()).unwrap().as_ref(), &e1);
        assert_eq!(dfs.peek(&"Z2".into()).unwrap().as_ref(), &e2);
    }
}
