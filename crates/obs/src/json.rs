//! A minimal JSON model: build, print, and parse without any external
//! dependency. This is the workspace's single JSON vocabulary — the
//! bench crate re-exports [`Json`] for its `BENCH_*.json` reports, the
//! CLI uses it for `--stats-json`, and the `trace-check` binary uses
//! [`Json::parse`] to validate emitted Chrome traces.

use std::fmt;

/// A JSON value. Numbers keep the integer/float split so `u64` byte
/// counters round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float; non-finite values print as `null`.
    Num(f64),
    /// An unsigned integer, printed without a decimal point.
    Int(u64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (covers `Num` and `Int`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Integer payload (`Int`, or an integral non-negative `Num`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Array elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Strict enough for round-tripping our own
    /// output: supports all value kinds, string escapes (including
    /// `\uXXXX`), and rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn escape(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => escape(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogates only arise for non-BMP chars, which we
                            // never emit ourselves; map them to the replacement
                            // char rather than implementing pairing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_bench_report_format() {
        let doc = Json::obj(vec![
            ("name", Json::Str("scale \"x\"\n".to_string())),
            ("points", Json::Arr(vec![Json::Num(1.5), Json::Int(2)])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
            ("missing", Json::Null),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"scale \"x\"\n","points":[1.5,2],"nested":{"ok":true},"missing":null}"#
        );
    }

    #[test]
    fn round_trips_through_parse() {
        let doc = Json::obj(vec![
            ("ts", Json::Num(12.25)),
            ("bytes", Json::Int(u64::MAX)),
            ("tag", Json::Str("a\tb\u{1}c".to_string())),
            ("flags", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("neg", Json::Num(-3.0)),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\" : [ 1 , -2.5 , \"\\u0041\\n\" ] } ").unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("A\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2] tail").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn non_finite_floats_print_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
