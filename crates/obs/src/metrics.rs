//! Atomic counter/gauge registry.
//!
//! Handles are declared as statics (`static SPILLS: Counter =
//! Counter::new("shuffle.spill_runs")`) and updated from hot paths.
//! While metrics are disabled — the default — `add`/`set` are a single
//! relaxed load and return; registration (the only allocating step)
//! happens lazily on the first *enabled* update, so the disabled path
//! never allocates. Metrics turn on automatically whenever a trace
//! sink is installed, or explicitly via [`set_metrics_enabled`]
//! (`gumbo-cli --metrics-dump`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Explicit switch (`--metrics-dump`), OR'd with the tracer switch.
static METRICS: AtomicBool = AtomicBool::new(false);
/// All registered cells, in registration order.
static REGISTRY: Mutex<Vec<Arc<MetricCell>>> = Mutex::new(Vec::new());

/// Counter vs gauge — affects dump semantics only (counters are
/// monotone sums, gauges are last-write-wins levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing sum.
    Counter,
    /// Last-set level.
    Gauge,
}

#[derive(Debug)]
struct MetricCell {
    name: &'static str,
    kind: MetricKind,
    value: AtomicU64,
}

/// Enable or disable metric collection independently of tracing.
pub fn set_metrics_enabled(on: bool) {
    METRICS.store(on, Ordering::SeqCst);
}

/// Are metric updates being applied? True when either the explicit
/// switch or a trace sink is on.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed) || crate::enabled()
}

fn register(name: &'static str, kind: MetricKind) -> Arc<MetricCell> {
    let cell = Arc::new(MetricCell {
        name,
        kind,
        value: AtomicU64::new(0),
    });
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(cell.clone());
    cell
}

/// A named monotone counter. `const`-constructible; cheap to bump.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<MetricCell>>,
}

impl Counter {
    /// Declare a counter (registration is deferred to first use).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `n`. A no-op (one relaxed load) while metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| register(self.name, MetricKind::Counter))
            .value
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Bump by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A named last-write-wins gauge. `const`-constructible.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<MetricCell>>,
}

impl Gauge {
    /// Declare a gauge (registration is deferred to first use).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Set the level. A no-op while metrics are disabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| register(self.name, MetricKind::Gauge))
            .value
            .store(v, Ordering::Relaxed);
    }

    /// Record `v` if it exceeds the current level (high-water mark).
    #[inline]
    pub fn max(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| register(self.name, MetricKind::Gauge))
            .value
            .fetch_max(v, Ordering::Relaxed);
    }
}

/// Snapshot every registered metric as `(name, kind, value)`, in
/// registration order.
pub fn metrics_snapshot() -> Vec<(&'static str, MetricKind, u64)> {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|c| (c.name, c.kind, c.value.load(Ordering::Relaxed)))
        .collect()
}

/// Zero every registered metric (tests; between CLI runs).
pub fn metrics_reset() {
    for cell in REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        cell.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static HITS: Counter = Counter::new("test.hits");
    static DEPTH: Gauge = Gauge::new("test.depth");

    #[test]
    fn disabled_updates_are_dropped_and_enabled_ones_stick() {
        let _serial = crate::tests::EXCLUSIVE
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_metrics_enabled(false);
        crate::uninstall();
        HITS.incr(); // dropped — and must not register either
        assert!(!metrics_snapshot().iter().any(|(n, _, _)| *n == "test.hits"));

        set_metrics_enabled(true);
        HITS.add(2);
        HITS.incr();
        DEPTH.set(7);
        DEPTH.max(3); // below the level — keeps 7
        DEPTH.max(11);
        set_metrics_enabled(false);

        let snap = metrics_snapshot();
        let get = |name: &str| snap.iter().find(|(n, _, _)| *n == name).unwrap();
        assert_eq!(get("test.hits"), &("test.hits", MetricKind::Counter, 3));
        assert_eq!(get("test.depth"), &("test.depth", MetricKind::Gauge, 11));

        metrics_reset();
        let snap = metrics_snapshot();
        assert!(snap
            .iter()
            .filter(|(n, _, _)| n.starts_with("test."))
            .all(|(_, _, v)| *v == 0));
    }
}
