//! # gumbo-obs
//!
//! Zero-dependency observability for the gumbo engine: a lock-cheap
//! tracer emitting **spans** (enter/exit with monotonic timestamps and
//! key=value fields) and **typed instant events** to an installable
//! [`TraceSink`], plus an atomic counter/gauge registry ([`metrics`]).
//!
//! The design constraint is the *disabled* path: every executor phase,
//! shuffle flush and scheduler transition in the engine is instrumented,
//! so with no sink installed the whole subsystem must collapse to one
//! relaxed atomic load — **no allocation, no formatting, no locking**
//! (the workspace `alloc_smoke` test pins the zero-allocation claim
//! down with a counting global allocator). Field construction is
//! deferred behind closures that are never invoked while disabled.
//!
//! ```
//! use std::sync::Arc;
//! let ring = Arc::new(gumbo_obs::RingSink::new(1024));
//! gumbo_obs::install(ring.clone());
//! {
//!     let mut span = gumbo_obs::span_with("map", |f| f.u64("tasks", 8));
//!     gumbo_obs::event("spill:run", |f| f.u64("bytes", 4096));
//!     span.record(|f| f.f64("observed_cost", 1.5));
//! } // span closes here
//! gumbo_obs::uninstall();
//! assert_eq!(ring.events().len(), 3); // begin, instant, end
//! ```
//!
//! Three sinks are provided ([`sink`]): an in-memory ring buffer for
//! tests, a JSONL writer, and a Chrome trace-event exporter
//! (`chrome://tracing` / Perfetto) keyed by worker-thread lanes.
//! Timestamps are monotonic nanoseconds since the first install;
//! each OS thread gets a small dense lane id on first emission, so
//! spans opened and closed on one thread nest correctly in a timeline.

pub mod json;
pub mod metrics;
pub mod sink;

pub use metrics::{
    metrics_enabled, metrics_reset, metrics_snapshot, set_metrics_enabled, Counter, Gauge,
    MetricKind,
};
pub use sink::{ChromeTraceSink, JsonlSink, RingSink, TraceFormat, TraceSink};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Events and fields
// ---------------------------------------------------------------------------

/// A field value. Numbers and booleans are stored unboxed; only string
/// fields own heap data — and they are only ever built when a sink is
/// installed.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (byte counts, indices, cardinalities).
    U64(u64),
    /// A float (costs, ratios, seconds).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// An owned string (job names, tenants, policies).
    Str(String),
}

/// One `key=value` annotation on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Static field name.
    pub key: &'static str,
    /// The value.
    pub value: FieldValue,
}

/// A write-only builder handed to the field closures of [`span_with`],
/// [`event`] and [`Span::record`]. The closure is never invoked while
/// tracing is disabled.
#[derive(Debug, Default)]
pub struct FieldSet(Vec<Field>);

impl FieldSet {
    fn push(&mut self, key: &'static str, value: FieldValue) {
        self.0.push(Field { key, value });
    }

    /// Attach an unsigned integer field.
    pub fn u64(&mut self, key: &'static str, value: u64) {
        self.push(key, FieldValue::U64(value));
    }

    /// Attach a float field.
    pub fn f64(&mut self, key: &'static str, value: f64) {
        self.push(key, FieldValue::F64(value));
    }

    /// Attach a boolean field.
    pub fn bool(&mut self, key: &'static str, value: bool) {
        self.push(key, FieldValue::Bool(value));
    }

    /// Attach a string field (copied — the closure only runs when a
    /// sink is installed).
    pub fn str(&mut self, key: &'static str, value: &str) {
        self.push(key, FieldValue::Str(value.to_string()));
    }
}

/// What kind of trace record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened ([`span`] / [`span_with`]).
    Begin,
    /// A span closed (guard drop; carries the span's recorded fields,
    /// plus `aborted=true` when closed by a panic unwind).
    End,
    /// A point-in-time event ([`event`]).
    Instant,
}

/// One trace record, as delivered to a [`TraceSink`].
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic nanoseconds since the tracing epoch (first install).
    pub ts_ns: u64,
    /// Dense per-thread lane id (1-based; assigned on first emission).
    pub lane: u64,
    /// Begin/End/Instant.
    pub kind: EventKind,
    /// Static span/event name (e.g. `"map"`, `"sched:claim"`).
    pub name: &'static str,
    /// Attached fields.
    pub fields: Vec<Field>,
}

// ---------------------------------------------------------------------------
// Global tracer state
// ---------------------------------------------------------------------------

/// Fast-path switch: one relaxed load decides everything.
static TRACING: AtomicBool = AtomicBool::new(false);
/// The installed sink. Only read-locked on the (sink-installed) slow
/// path; install/uninstall take the write lock.
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
/// The tracing epoch: set once, at the first install.
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Next lane id to hand to a thread (0 means "unassigned").
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LANE: Cell<u64> = const { Cell::new(0) };
}

/// This thread's lane id, assigned densely on first use.
pub fn lane() -> u64 {
    LANE.with(|slot| {
        let lane = slot.get();
        if lane != 0 {
            return lane;
        }
        let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        slot.set(lane);
        lane
    })
}

/// Monotonic nanoseconds since the shared tracing epoch (the process's
/// first observability touch). Every trace event's `ts_ns` and the
/// scheduler's submission timestamps (`queued_ns`/`admitted_ns`/
/// `completed_ns`) come from this one clock, so they are directly
/// comparable.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Install a sink and enable tracing. Replaces any previous sink
/// (without finishing it — callers own that hand-off).
pub fn install(sink: Arc<dyn TraceSink>) {
    let _ = EPOCH.get_or_init(Instant::now);
    *SINK.write().expect("unpoisoned sink slot") = Some(sink);
    TRACING.store(true, Ordering::SeqCst);
}

/// Disable tracing, remove the sink, and call its
/// [`TraceSink::finish`] (flushing file-backed sinks). Returns the
/// sink so callers can inspect it. No-op when nothing is installed.
pub fn uninstall() -> Option<Arc<dyn TraceSink>> {
    TRACING.store(false, Ordering::SeqCst);
    let sink = SINK.write().expect("unpoisoned sink slot").take();
    if let Some(sink) = &sink {
        sink.finish();
    }
    sink
}

/// Is a sink installed? One relaxed atomic load — the engine's hot
/// paths gate all field construction on this.
#[inline]
pub fn enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn emit(kind: EventKind, name: &'static str, fields: Vec<Field>) {
    let guard = SINK.read().expect("unpoisoned sink slot");
    if let Some(sink) = guard.as_ref() {
        sink.record(&Event {
            ts_ns: now_ns(),
            lane: lane(),
            kind,
            name,
            fields,
        });
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A live span: emits [`EventKind::End`] when dropped, on the same
/// thread (lane) that opened it, so per-lane Begin/End sequences are
/// properly nested by construction. When the drop happens during a
/// panic unwind the End event carries `aborted=true`.
#[must_use = "a span closes when this guard drops; bind it with `let`"]
#[derive(Debug)]
pub struct Span {
    live: bool,
    name: &'static str,
    end_fields: Vec<Field>,
}

impl Span {
    /// Append fields to be emitted on this span's End event (e.g.
    /// measured costs known only at the end). The closure only runs if
    /// the span was opened with tracing enabled.
    pub fn record(&mut self, fill: impl FnOnce(&mut FieldSet)) {
        if !self.live {
            return;
        }
        let mut fields = FieldSet(std::mem::take(&mut self.end_fields));
        fill(&mut fields);
        self.end_fields = fields.0;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let mut fields = std::mem::take(&mut self.end_fields);
        if std::thread::panicking() {
            fields.push(Field {
                key: "aborted",
                value: FieldValue::Bool(true),
            });
        }
        emit(EventKind::End, self.name, fields);
    }
}

/// Open a span with no fields. Free when disabled.
pub fn span(name: &'static str) -> Span {
    span_with(name, |_| {})
}

/// Open a span, building its Begin fields with `fill`. The closure is
/// not invoked while tracing is disabled, so callers may format/clone
/// freely inside it.
pub fn span_with(name: &'static str, fill: impl FnOnce(&mut FieldSet)) -> Span {
    if !enabled() {
        return Span {
            live: false,
            name,
            end_fields: Vec::new(),
        };
    }
    let mut fields = FieldSet::default();
    fill(&mut fields);
    emit(EventKind::Begin, name, fields.0);
    Span {
        live: true,
        name,
        end_fields: Vec::new(),
    }
}

/// Emit a point-in-time event. The field closure is not invoked while
/// tracing is disabled.
pub fn event(name: &'static str, fill: impl FnOnce(&mut FieldSet)) {
    if !enabled() {
        return;
    }
    let mut fields = FieldSet::default();
    fill(&mut fields);
    emit(EventKind::Instant, name, fields.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tracer state is process-global; tests that install sinks take
    /// this lock so their event streams cannot interleave.
    pub(crate) static EXCLUSIVE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_and_events_are_inert() {
        let _serial = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let mut span = span_with("x", |_| panic!("field closure must not run"));
        span.record(|_| panic!("record closure must not run"));
        event("y", |_| panic!("event closure must not run"));
        drop(span);
        assert!(!enabled());
    }

    #[test]
    fn ring_sink_sees_balanced_spans_with_fields() {
        let _serial = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(RingSink::new(64));
        install(ring.clone());
        {
            let mut outer = span_with("outer", |f| f.str("job", "j1"));
            {
                let _inner = span("inner");
                event("tick", |f| f.u64("n", 3));
            }
            outer.record(|f| f.f64("cost", 2.5));
        }
        uninstall();
        let events = ring.events();
        let names: Vec<_> = events.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            names,
            vec![
                (EventKind::Begin, "outer"),
                (EventKind::Begin, "inner"),
                (EventKind::Instant, "tick"),
                (EventKind::End, "inner"),
                (EventKind::End, "outer"),
            ]
        );
        let end = events.last().unwrap();
        assert_eq!(end.fields[0].key, "cost");
        assert_eq!(end.fields[0].value, FieldValue::F64(2.5));
        assert!(events.iter().all(|e| e.lane >= 1));
        // Timestamps are monotone within the lane.
        let ts: Vec<_> = events.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn spans_closed_by_unwind_are_marked_aborted() {
        let _serial = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(RingSink::new(64));
        install(ring.clone());
        let boom = std::panic::catch_unwind(|| {
            let _span = span("doomed");
            panic!("unwind through the span guard");
        });
        uninstall();
        assert!(boom.is_err());
        let events = ring.events();
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::End && e.name == "doomed")
            .expect("span closed during unwind");
        assert!(end
            .fields
            .iter()
            .any(|f| f.key == "aborted" && f.value == FieldValue::Bool(true)));
    }
}
