//! Trace sinks: where emitted [`Event`]s go.
//!
//! * [`RingSink`] — bounded in-memory buffer; the test workhorse.
//! * [`JsonlSink`] — one JSON object per line; greppable, streamable.
//! * [`ChromeTraceSink`] — the Chrome trace-event array format, loadable
//!   in `chrome://tracing` or <https://ui.perfetto.dev>; thread lanes
//!   map to trace `tid`s so per-lane Begin/End pairs render as nested
//!   slices.

use crate::json::Json;
use crate::{Event, EventKind, Field, FieldValue};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A destination for trace events. Implementations must tolerate
/// concurrent `record` calls from many worker threads.
pub trait TraceSink: Send + Sync {
    /// Deliver one event.
    fn record(&self, event: &Event);
    /// Flush/close; called once by [`crate::uninstall`].
    fn finish(&self) {}
}

/// File trace format selected by `--trace-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON array (default; Perfetto-loadable).
    Chrome,
    /// One JSON object per line.
    Jsonl,
}

impl TraceFormat {
    /// Parse a `--trace-format` value.
    pub fn parse(s: &str) -> Result<TraceFormat, String> {
        match s {
            "chrome" => Ok(TraceFormat::Chrome),
            "jsonl" => Ok(TraceFormat::Jsonl),
            other => Err(format!(
                "unknown trace format '{other}' (expected chrome|jsonl)"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

/// Bounded in-memory sink. When full, the oldest events are dropped
/// (and counted), so a small ring never aborts a long run.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Snapshot the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discard all buffered events.
    pub fn clear(&self) {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }
}

// ---------------------------------------------------------------------------
// Shared JSON shaping
// ---------------------------------------------------------------------------

fn field_json(value: &FieldValue) -> Json {
    match value {
        FieldValue::U64(n) => Json::Int(*n),
        FieldValue::F64(x) => Json::Num(*x),
        FieldValue::Bool(b) => Json::Bool(*b),
        FieldValue::Str(s) => Json::Str(s.clone()),
    }
}

fn args_json(fields: &[Field]) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|f| (f.key.to_string(), field_json(&f.value)))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

/// Streaming sink writing one JSON object per event per line:
/// `{"ts_ns":..,"lane":..,"ph":"B|E|i","name":..,"args":{..}}`.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

fn phase_code(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = Json::obj([
            ("ts_ns", Json::Int(event.ts_ns)),
            ("lane", Json::Int(event.lane)),
            ("ph", Json::Str(phase_code(event.kind).to_string())),
            ("name", Json::Str(event.name.to_string())),
            ("args", args_json(&event.fields)),
        ]);
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
    }

    fn finish(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

// ---------------------------------------------------------------------------
// Chrome trace events
// ---------------------------------------------------------------------------

struct ChromeState {
    out: BufWriter<File>,
    wrote_any: bool,
    done: bool,
}

/// Streaming Chrome trace-event sink: a single JSON array of
/// `{"name","cat","ph","ts","pid","tid","args"}` objects. Timestamps
/// are microseconds; `tid` is the tracing lane, so every lane's
/// Begin/End events nest into slices in the Perfetto timeline.
pub struct ChromeTraceSink {
    state: Mutex<ChromeState>,
}

impl ChromeTraceSink {
    /// Create (truncating) the file at `path` and write the array
    /// opener.
    pub fn create(path: &Path) -> std::io::Result<ChromeTraceSink> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(b"[")?;
        Ok(ChromeTraceSink {
            state: Mutex::new(ChromeState {
                out,
                wrote_any: false,
                done: false,
            }),
        })
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        let mut pairs = vec![
            ("name", Json::Str(event.name.to_string())),
            ("cat", Json::Str("gumbo".to_string())),
            ("ph", Json::Str(phase_code(event.kind).to_string())),
            ("ts", Json::Num(event.ts_ns as f64 / 1000.0)),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(event.lane)),
        ];
        if event.kind == EventKind::Instant {
            pairs.push(("s", Json::Str("t".to_string())));
        }
        pairs.push(("args", args_json(&event.fields)));
        let obj = Json::obj(pairs);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.done {
            return;
        }
        if state.wrote_any {
            let _ = state.out.write_all(b",\n");
        }
        state.wrote_any = true;
        let _ = write!(state.out, "{obj}");
    }

    fn finish(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.done {
            return;
        }
        state.done = true;
        let _ = state.out.write_all(b"]\n");
        let _ = state.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &'static str, fields: Vec<Field>) -> Event {
        Event {
            ts_ns: 1500,
            lane: 2,
            kind,
            name,
            fields,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gumbo-obs-{}-{name}", std::process::id()))
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = RingSink::new(2);
        for name in ["a", "b", "c"] {
            ring.record(&ev(EventKind::Instant, name, Vec::new()));
        }
        let names: Vec<_> = ring.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert!(ring.events().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn jsonl_writes_one_parseable_object_per_line() {
        let path = tmp("jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&ev(
            EventKind::Begin,
            "map",
            vec![Field {
                key: "tasks",
                value: FieldValue::U64(4),
            }],
        ));
        sink.record(&ev(EventKind::End, "map", Vec::new()));
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(first.get("name").unwrap().as_str(), Some("map"));
        assert_eq!(
            first.get("args").unwrap().get("tasks").unwrap().as_u64(),
            Some(4)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_emits_a_valid_event_array() {
        let path = tmp("chrome");
        let sink = ChromeTraceSink::create(&path).unwrap();
        sink.record(&ev(EventKind::Begin, "job", Vec::new()));
        sink.record(&ev(
            EventKind::Instant,
            "spill:run",
            vec![Field {
                key: "bytes",
                value: FieldValue::U64(4096),
            }],
        ));
        sink.record(&ev(EventKind::End, "job", Vec::new()));
        sink.finish();
        sink.finish(); // idempotent
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let events = doc.as_arr().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(events[0].get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(events[1].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("bytes")
                .unwrap()
                .as_u64(),
            Some(4096)
        );
        std::fs::remove_file(&path).ok();
    }
}
