//! # gumbo-sgf
//!
//! The **Strictly Guarded Fragment** query language of the paper
//! *Parallel Evaluation of Multi-Semi-Joins* (Daenen et al., 2016), §3.1:
//!
//! * [`Term`]s, [`Atom`]s and conformance (`f ⊨ α`) with projection
//!   `π_{α;x̄}(f)` — the notational toolkit of §4;
//! * [`Condition`] trees: Boolean combinations (AND/OR/NOT) of conditional
//!   atoms appearing in a `WHERE` clause;
//! * [`BsgfQuery`]: basic strictly guarded fragment queries
//!   `Z := SELECT x̄ FROM R(t̄) [WHERE C]`, with guardedness validation;
//! * [`SgfQuery`]: sequences of BSGF queries `Z₁ := ξ₁; …; Zₙ := ξₙ` where
//!   later queries may reference earlier output relations;
//! * a hand-written lexer/parser for the paper's SQL-like syntax and a
//!   pretty-printer that round-trips through it;
//! * the dependency graph `G_Q` and *multiway topological sorts* (§4.6);
//! * a naive reference evaluator implementing the semantics directly —
//!   the ground truth every MapReduce strategy is tested against.

pub mod atom;
pub mod condition;
pub mod depgraph;
pub mod naive;
pub mod parser;
pub mod query;
pub mod term;

pub use atom::Atom;
pub use condition::{BoolExpr, Condition};
pub use depgraph::{DependencyGraph, MultiwayTopoSort};
pub use naive::NaiveEvaluator;
pub use parser::{parse_program, parse_query};
pub use query::{BsgfQuery, SgfQuery};
pub use term::{Term, Var};

#[cfg(test)]
mod proptests;
