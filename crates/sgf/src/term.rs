//! Variables and terms.
//!
//! A *term* is either a data value or a variable (§3.1).

use std::fmt;
use std::sync::Arc;

use gumbo_common::Value;

/// An interned variable name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A term: variable or constant data value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable from **V**.
    Var(Var),
    /// A constant from **D**.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Var::new(name))
    }

    /// Shorthand for an integer constant term.
    pub fn int(v: i64) -> Self {
        Term::Const(Value::Int(v))
    }

    /// Shorthand for a string constant term.
    pub fn str(s: impl AsRef<str>) -> Self {
        Term::Const(Value::str(s))
    }

    /// Return the variable, if this term is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Return the constant, if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_accessors() {
        let t = Term::var("x");
        assert!(t.is_var());
        assert_eq!(t.as_var().unwrap().name(), "x");
        assert!(t.as_const().is_none());
    }

    #[test]
    fn const_accessors() {
        let t = Term::int(4);
        assert!(!t.is_var());
        assert_eq!(t.as_const(), Some(&Value::Int(4)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::int(4).to_string(), "4");
        assert_eq!(Term::str("bad").to_string(), "\"bad\"");
    }

    #[test]
    fn vars_with_same_name_are_equal() {
        assert_eq!(Var::new("x"), Var::from("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }
}
