//! BSGF and SGF queries with guardedness validation.

use std::collections::BTreeSet;
use std::fmt;

use gumbo_common::{GumboError, RelationName, Result};

use crate::atom::Atom;
use crate::condition::Condition;
use crate::term::Var;

/// A basic strictly guarded fragment query (§3.1, Eq. 1):
///
/// ```text
/// Z := SELECT x̄ FROM R(t̄) [ WHERE C ];
/// ```
///
/// Invariants enforced by [`BsgfQuery::new`]:
/// * every output variable of `x̄` occurs in the guard `R(t̄)`;
/// * for each pair of *distinct* conditional atoms `S(ū)`, `T(v̄)` in `C`,
///   every shared variable also occurs in the guard (the guardedness
///   condition that keeps the query in GF);
/// * the output relation does not appear as its own guard or conditional
///   atom (no recursion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsgfQuery {
    output: RelationName,
    output_vars: Vec<Var>,
    guard: Atom,
    condition: Option<Condition>,
}

impl BsgfQuery {
    /// Construct and validate a BSGF query.
    pub fn new(
        output: impl Into<RelationName>,
        output_vars: Vec<Var>,
        guard: Atom,
        condition: Option<Condition>,
    ) -> Result<Self> {
        let output = output.into();
        let guard_vars = guard.var_set();
        for v in &output_vars {
            if !guard_vars.contains(v) {
                return Err(GumboError::InvalidQuery(format!(
                    "output variable {v} does not occur in guard {guard}"
                )));
            }
        }
        if let Some(cond) = &condition {
            let atoms = cond.conditional_atoms();
            for (i, a) in atoms.iter().enumerate() {
                if *a.relation() == output {
                    return Err(GumboError::InvalidQuery(format!(
                        "conditional atom {a} references the query's own output relation"
                    )));
                }
                for b in atoms.iter().skip(i + 1) {
                    let shared: BTreeSet<_> =
                        a.var_set().intersection(&b.var_set()).cloned().collect();
                    for v in shared {
                        if !guard_vars.contains(&v) {
                            return Err(GumboError::InvalidQuery(format!(
                                "conditional atoms {a} and {b} share variable {v} \
                                 which does not occur in the guard {guard}"
                            )));
                        }
                    }
                }
            }
        }
        if *guard.relation() == output {
            return Err(GumboError::InvalidQuery(format!(
                "guard {guard} references the query's own output relation"
            )));
        }
        Ok(BsgfQuery {
            output,
            output_vars,
            guard,
            condition,
        })
    }

    /// The output relation symbol `Z`.
    pub fn output(&self) -> &RelationName {
        &self.output
    }

    /// The output variables `x̄`.
    pub fn output_vars(&self) -> &[Var] {
        &self.output_vars
    }

    /// The guard atom `R(t̄)`.
    pub fn guard(&self) -> &Atom {
        &self.guard
    }

    /// The `WHERE` condition, if any.
    pub fn condition(&self) -> Option<&Condition> {
        self.condition.as_ref()
    }

    /// The distinct conditional atoms `κ₁, …, κₙ` of the condition.
    pub fn conditional_atoms(&self) -> Vec<&Atom> {
        self.condition
            .as_ref()
            .map(|c| c.conditional_atoms())
            .unwrap_or_default()
    }

    /// All relation symbols the query *reads* (guard + conditional atoms).
    pub fn input_relations(&self) -> BTreeSet<RelationName> {
        let mut out = BTreeSet::new();
        out.insert(self.guard.relation().clone());
        for a in self.conditional_atoms() {
            out.insert(a.relation().clone());
        }
        out
    }

    /// The paper's `overlap(Q, F)` ingredient: relation symbols occurring in
    /// the query (inputs; the output name is a fresh symbol by construction).
    pub fn mentioned_relations(&self) -> BTreeSet<RelationName> {
        self.input_relations()
    }

    /// Arity of the output relation.
    pub fn output_arity(&self) -> usize {
        self.output_vars.len()
    }
}

impl fmt::Display for BsgfQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := SELECT ", self.output)?;
        if self.output_vars.len() == 1 {
            write!(f, "{}", self.output_vars[0])?;
        } else {
            write!(f, "(")?;
            for (i, v) in self.output_vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " FROM {}", self.guard)?;
        if let Some(c) = &self.condition {
            write!(f, " WHERE {c}")?;
        }
        write!(f, ";")
    }
}

/// A strictly guarded fragment query: a sequence `Z₁ := ξ₁; …; Zₙ := ξₙ`
/// where each `ξᵢ` may mention earlier outputs `Z_j` (`j < i`) as guard or
/// conditional atoms. The final `Zₙ` is the query's output (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgfQuery {
    queries: Vec<BsgfQuery>,
}

impl SgfQuery {
    /// Construct and validate an SGF query.
    ///
    /// Validation ensures output names are pairwise distinct and that every
    /// reference to a `Z`-relation points to an *earlier* subquery.
    pub fn new(queries: Vec<BsgfQuery>) -> Result<Self> {
        if queries.is_empty() {
            return Err(GumboError::InvalidQuery(
                "SGF query with no subqueries".into(),
            ));
        }
        let mut defined: BTreeSet<RelationName> = BTreeSet::new();
        let all_outputs: BTreeSet<RelationName> =
            queries.iter().map(|q| q.output().clone()).collect();
        if all_outputs.len() != queries.len() {
            return Err(GumboError::InvalidQuery(
                "duplicate output relation names in SGF query".into(),
            ));
        }
        for q in &queries {
            for r in q.input_relations() {
                if all_outputs.contains(&r) && !defined.contains(&r) {
                    return Err(GumboError::InvalidQuery(format!(
                        "subquery {} references {} before it is defined",
                        q.output(),
                        r
                    )));
                }
            }
            defined.insert(q.output().clone());
        }
        Ok(SgfQuery { queries })
    }

    /// Wrap a single BSGF query.
    pub fn single(query: BsgfQuery) -> Self {
        SgfQuery {
            queries: vec![query],
        }
    }

    /// The subqueries, in definition order.
    pub fn queries(&self) -> &[BsgfQuery] {
        &self.queries
    }

    /// Number of subqueries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether there are no subqueries (never true for validated queries).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The output relation of the whole query (`Zₙ`).
    pub fn output(&self) -> &RelationName {
        self.queries.last().expect("validated non-empty").output()
    }

    /// All output relation names, in order.
    pub fn output_names(&self) -> Vec<RelationName> {
        self.queries.iter().map(|q| q.output().clone()).collect()
    }

    /// The *base* relations: inputs that are not outputs of any subquery.
    pub fn base_relations(&self) -> BTreeSet<RelationName> {
        let outputs: BTreeSet<RelationName> = self.output_names().into_iter().collect();
        self.queries
            .iter()
            .flat_map(|q| q.input_relations())
            .filter(|r| !outputs.contains(r))
            .collect()
    }

    /// Subquery by output name.
    pub fn query_for(&self, name: &RelationName) -> Option<&BsgfQuery> {
        self.queries.iter().find(|q| q.output() == name)
    }

    /// Combine several SGF queries into one program over the union of
    /// their BSGF subqueries (§4.7 of the paper). Output names must be
    /// globally distinct; evaluation strategies can then exploit overlap
    /// *between* the original queries.
    pub fn union(queries: &[SgfQuery]) -> Result<SgfQuery> {
        let combined: Vec<BsgfQuery> = queries
            .iter()
            .flat_map(|q| q.queries().iter().cloned())
            .collect();
        SgfQuery::new(combined)
    }
}

impl fmt::Display for SgfQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn var(v: &str) -> Var {
        Var::new(v)
    }

    fn guard_rxy() -> Atom {
        Atom::vars("R", &["x", "y"])
    }

    #[test]
    fn output_vars_must_be_guarded() {
        let err = BsgfQuery::new("Z", vec![var("q")], guard_rxy(), None).unwrap_err();
        assert!(matches!(err, GumboError::InvalidQuery(_)));
    }

    #[test]
    fn guardedness_rejects_unguarded_shared_vars() {
        // S(x, w) and T(y, w) share w, which is not in guard R(x, y).
        let c = Condition::And(
            Box::new(Condition::Atom(Atom::vars("S", &["x", "w"]))),
            Box::new(Condition::Atom(Atom::vars("T", &["y", "w"]))),
        );
        let err = BsgfQuery::new("Z", vec![var("x")], guard_rxy(), Some(c)).unwrap_err();
        assert!(err.to_string().contains('w'));
    }

    #[test]
    fn guardedness_allows_local_existentials() {
        // S(x, z1) AND NOT S(y, z2): z1, z2 are local to their atoms — fine.
        let c = Condition::And(
            Box::new(Condition::Atom(Atom::vars("S", &["x", "z1"]))),
            Box::new(Condition::Atom(Atom::vars("S", &["y", "z2"])).negated()),
        );
        assert!(BsgfQuery::new("Z", vec![var("x")], guard_rxy(), Some(c)).is_ok());
    }

    #[test]
    fn same_atom_twice_is_one_conditional() {
        let c = Condition::Or(
            Box::new(Condition::Atom(Atom::vars("S", &["x", "w"]))),
            Box::new(Condition::Atom(Atom::vars("S", &["x", "w"]))),
        );
        // Identical atoms are the *same* conditional atom, so the pairwise
        // guardedness check does not apply and w stays local.
        let q = BsgfQuery::new("Z", vec![var("x")], guard_rxy(), Some(c)).unwrap();
        assert_eq!(q.conditional_atoms().len(), 1);
    }

    #[test]
    fn no_self_reference() {
        assert!(BsgfQuery::new("R", vec![var("x")], guard_rxy(), None).is_err());
        let c = Condition::Atom(Atom::vars("Z", &["x"]));
        assert!(BsgfQuery::new("Z", vec![var("x")], guard_rxy(), Some(c)).is_err());
    }

    #[test]
    fn constants_in_guard_ok() {
        // Z5-style query: guard R(x, y, 4).
        let g = Atom::new("R", vec![Term::var("x"), Term::var("y"), Term::int(4)]);
        let q = BsgfQuery::new("Z", vec![var("x"), var("y")], g, None).unwrap();
        assert_eq!(q.output_arity(), 2);
    }

    #[test]
    fn sgf_ordering_validated() {
        let q1 = BsgfQuery::new(
            "Z1",
            vec![var("x")],
            guard_rxy(),
            Some(Condition::Atom(Atom::vars("S", &["x"]))),
        )
        .unwrap();
        let q2 = BsgfQuery::new("Z2", vec![var("x")], Atom::vars("Z1", &["x"]), None).unwrap();
        // Correct order: fine.
        assert!(SgfQuery::new(vec![q1.clone(), q2.clone()]).is_ok());
        // Reversed: Z2 references Z1 before definition.
        assert!(SgfQuery::new(vec![q2, q1]).is_err());
    }

    #[test]
    fn duplicate_outputs_rejected() {
        let q = BsgfQuery::new("Z", vec![var("x")], guard_rxy(), None).unwrap();
        assert!(SgfQuery::new(vec![q.clone(), q]).is_err());
    }

    #[test]
    fn base_relations_exclude_outputs() {
        let q1 = BsgfQuery::new("Z1", vec![var("x")], guard_rxy(), None).unwrap();
        let q2 = BsgfQuery::new(
            "Z2",
            vec![var("x")],
            Atom::vars("Z1", &["x"]),
            Some(Condition::Atom(Atom::vars("T", &["x"]))),
        )
        .unwrap();
        let sgf = SgfQuery::new(vec![q1, q2]).unwrap();
        let base: Vec<String> = sgf.base_relations().iter().map(|r| r.to_string()).collect();
        assert_eq!(base, vec!["R", "T"]);
        assert_eq!(sgf.output().as_str(), "Z2");
    }

    #[test]
    fn display_single_and_multi_var() {
        let q = BsgfQuery::new("Z", vec![var("x")], guard_rxy(), None).unwrap();
        assert_eq!(q.to_string(), "Z := SELECT x FROM R(x, y);");
        let q2 = BsgfQuery::new("Z", vec![var("x"), var("y")], guard_rxy(), None).unwrap();
        assert_eq!(q2.to_string(), "Z := SELECT (x, y) FROM R(x, y);");
    }
}
