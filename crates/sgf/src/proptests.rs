//! Property-based tests for the query language: print/parse round-trips,
//! condition-evaluation consistency and topological-sort validity.

#![cfg(test)]

use proptest::prelude::*;

use crate::atom::Atom;
use crate::condition::Condition;
use crate::depgraph::DependencyGraph;
use crate::parser::{parse_program, parse_query};
use crate::query::{BsgfQuery, SgfQuery};
use crate::term::{Term, Var};

const VARS: [&str; 4] = ["x", "y", "z", "w"];
const RELS: [&str; 4] = ["S", "T", "U", "V"];

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        0..RELS.len(),
        proptest::collection::vec(0..VARS.len(), 1..3),
        proptest::option::of(0i64..5),
    )
        .prop_map(|(r, vars, konst)| {
            let mut terms: Vec<Term> = vars.into_iter().map(|v| Term::var(VARS[v])).collect();
            if let Some(c) = konst {
                terms.push(Term::int(c));
            }
            Atom::new(RELS[r], terms)
        })
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    let leaf = arb_atom().prop_map(Condition::Atom);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|c| Condition::Not(Box::new(c))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Condition::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Condition::Or(Box::new(a), Box::new(b))),
        ]
    })
}

/// A guarded query over guard R(x, y, z, w). Atoms only use guard vars
/// (plus constants), so guardedness holds by construction.
fn arb_query() -> impl Strategy<Value = BsgfQuery> {
    (proptest::option::of(arb_condition()), 1usize..=4).prop_map(|(cond, out_n)| {
        let out: Vec<Var> = VARS.iter().take(out_n).map(Var::new).collect();
        BsgfQuery::new("Zq", out, Atom::vars("R", &VARS), cond).expect("guarded by construction")
    })
}

proptest! {
    /// Pretty-print → parse is the identity on queries.
    #[test]
    fn query_print_parse_roundtrip(q in arb_query()) {
        let text = q.to_string();
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// Condition::evaluate agrees with the BoolExpr rendering under every
    /// (synthesized) truth assignment.
    #[test]
    fn condition_and_boolexpr_agree(c in arb_condition(), mask in any::<u32>()) {
        let atoms = c.conditional_atoms();
        let phi = c.to_bool_expr(&atoms);
        let truth = |i: usize| mask & (1 << (i % 32)) != 0;
        let direct = c.evaluate(&|a: &Atom| {
            let i = atoms.iter().position(|x| *x == a).unwrap();
            truth(i)
        });
        prop_assert_eq!(direct, phi.evaluate(&truth));
    }

    /// De Morgan: ¬(A ∧ B) ≡ ¬A ∨ ¬B under every assignment.
    #[test]
    fn de_morgan(a in arb_condition(), b in arb_condition(), mask in any::<u32>()) {
        let lhs = Condition::And(Box::new(a.clone()), Box::new(b.clone())).negated();
        let rhs = Condition::Or(
            Box::new(a.negated()),
            Box::new(b.negated()),
        );
        let atoms_l = lhs.conditional_atoms();
        let truth = |atom: &Atom| {
            let i = atoms_l.iter().position(|x| *x == atom).unwrap_or(31);
            mask & (1 << (i % 32)) != 0
        };
        prop_assert_eq!(lhs.evaluate(&truth), rhs.evaluate(&truth));
    }

    /// Every enumerated multiway topological sort of a random DAG-shaped
    /// program validates, and the greedy/level/sequential sorts are among
    /// the valid ones.
    #[test]
    fn sorts_are_valid(edges in proptest::collection::vec((0usize..5, 0usize..5), 0..8)) {
        // Build a 5-query program whose dependencies follow (i < j) edges.
        let mut uses: Vec<Vec<usize>> = vec![Vec::new(); 5];
        for (a, b) in edges {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi {
                uses[hi].push(lo);
            }
        }
        let mut text = String::new();
        for (j, deps) in uses.iter().enumerate() {
            let mut conds: Vec<String> = deps.iter().map(|d| format!("Z{d}(x)")).collect();
            conds.push(format!("S{j}(x)"));
            text.push_str(&format!(
                "Z{j} := SELECT x FROM R{j}(x, y) WHERE {};\n",
                conds.join(" AND ")
            ));
        }
        let program: SgfQuery = parse_program(&text).unwrap();
        let graph = DependencyGraph::new(&program);
        graph.validate_sort(&graph.sequential_sort()).unwrap();
        graph.validate_sort(&graph.level_sort()).unwrap();
        for sort in graph.all_multiway_sorts() {
            graph.validate_sort(&sort).unwrap();
        }
    }

    /// Atom conformance implies the substitution is well-defined and
    /// projection onto the join key never panics.
    #[test]
    fn conforming_tuples_project(vals in proptest::collection::vec(0i64..4, 4)) {
        let guard = Atom::vars("R", &VARS);
        let t = crate::parse_query("Q := SELECT x FROM R(x, y, z, w);").unwrap();
        let tuple = gumbo_common::Tuple::from_ints(&vals);
        prop_assert!(guard.conforms_tuple(&tuple));
        let proj = guard.project(&tuple, t.output_vars());
        prop_assert_eq!(proj.arity(), 1);
        // Substitution covers exactly the distinct variables.
        prop_assert_eq!(guard.substitution(&tuple).count(), 4);
    }
}
