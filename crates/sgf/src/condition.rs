//! `WHERE`-clause condition trees and their Boolean-formula abstraction.
//!
//! A BSGF `WHERE` clause is a Boolean combination `C` of conditional atoms
//! (§3.1). Query planning replaces each distinct conditional atom `κᵢ` by a
//! propositional variable `Xᵢ`, producing the formula `ϕ_C` evaluated by the
//! `EVAL` job (§4.3/§4.4); [`Condition::to_bool_expr`] performs exactly that
//! replacement.

use std::collections::BTreeSet;
use std::fmt;

use crate::atom::Atom;

/// A Boolean combination of conditional atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Condition {
    /// A conditional atom `κ`.
    Atom(Atom),
    /// Negation `NOT C`.
    Not(Box<Condition>),
    /// Conjunction `C₁ AND C₂`.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction `C₁ OR C₂`.
    Or(Box<Condition>, Box<Condition>),
}

impl Condition {
    /// Build a conjunction of conditions. Panics on an empty list.
    pub fn and_all(conds: impl IntoIterator<Item = Condition>) -> Condition {
        Self::fold(conds, |a, b| Condition::And(Box::new(a), Box::new(b)))
    }

    /// Build a disjunction of conditions. Panics on an empty list.
    pub fn or_all(conds: impl IntoIterator<Item = Condition>) -> Condition {
        Self::fold(conds, |a, b| Condition::Or(Box::new(a), Box::new(b)))
    }

    /// Negate this condition.
    pub fn negated(self) -> Condition {
        Condition::Not(Box::new(self))
    }

    fn fold(
        conds: impl IntoIterator<Item = Condition>,
        op: impl Fn(Condition, Condition) -> Condition,
    ) -> Condition {
        let mut it = conds.into_iter();
        let first = it.next().expect("boolean combination of zero conditions");
        it.fold(first, op)
    }

    /// The distinct conditional atoms of the condition, in first-appearance
    /// order (the paper's `κ₁, …, κₙ`; it notes they are implicitly all
    /// different atoms).
    pub fn conditional_atoms(&self) -> Vec<&Atom> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.walk(&mut |atom| {
            if seen.insert(atom.clone()) {
                out.push(atom);
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Atom)) {
        match self {
            Condition::Atom(a) => f(a),
            Condition::Not(c) => c.walk(f),
            Condition::And(l, r) | Condition::Or(l, r) => {
                l.walk(f);
                r.walk(f);
            }
        }
    }

    /// Replace each conditional atom by its index in `atoms`, yielding the
    /// propositional formula `ϕ_C` over variables `X₀, …, X_{n−1}`.
    ///
    /// # Panics
    /// Panics if the condition mentions an atom not present in `atoms`.
    pub fn to_bool_expr(&self, atoms: &[&Atom]) -> BoolExpr {
        match self {
            Condition::Atom(a) => {
                let idx = atoms
                    .iter()
                    .position(|x| *x == a)
                    .unwrap_or_else(|| panic!("atom {a} missing from atom table"));
                BoolExpr::Var(idx)
            }
            Condition::Not(c) => BoolExpr::Not(Box::new(c.to_bool_expr(atoms))),
            Condition::And(l, r) => BoolExpr::And(
                Box::new(l.to_bool_expr(atoms)),
                Box::new(r.to_bool_expr(atoms)),
            ),
            Condition::Or(l, r) => BoolExpr::Or(
                Box::new(l.to_bool_expr(atoms)),
                Box::new(r.to_bool_expr(atoms)),
            ),
        }
    }

    /// Evaluate the condition given, for each atom, whether its semi-join
    /// membership test succeeded (a truth assignment keyed by atom).
    pub fn evaluate(&self, truth: &impl Fn(&Atom) -> bool) -> bool {
        match self {
            Condition::Atom(a) => truth(a),
            Condition::Not(c) => !c.evaluate(truth),
            Condition::And(l, r) => l.evaluate(truth) && r.evaluate(truth),
            Condition::Or(l, r) => l.evaluate(truth) || r.evaluate(truth),
        }
    }

    /// Whether the condition uses only OR and NOT above its atoms
    /// (one of the two triggers for the 1-ROUND optimization, §5.1 (4)).
    pub fn is_disjunctive(&self) -> bool {
        match self {
            Condition::Atom(_) => true,
            Condition::Not(c) => c.is_disjunctive(),
            Condition::Or(l, r) => l.is_disjunctive() && r.is_disjunctive(),
            Condition::And(..) => false,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Atom(a) => write!(f, "{a}"),
            Condition::Not(c) => write!(f, "NOT {}", Paren(c)),
            Condition::And(l, r) => write!(f, "{} AND {}", Paren(l), Paren(r)),
            Condition::Or(l, r) => write!(f, "{} OR {}", Paren(l), Paren(r)),
        }
    }
}

/// Helper that parenthesizes non-atomic subconditions so that the printed
/// form parses back to the same tree.
struct Paren<'a>(&'a Condition);

impl fmt::Display for Paren<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Condition::Atom(_) => write!(f, "{}", self.0),
            _ => write!(f, "({})", self.0),
        }
    }
}

/// A propositional formula over variables identified by index — the `ϕ`
/// consumed by the `EVAL` job of §4.3.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Propositional variable `Xᵢ`.
    Var(usize),
    /// Constant truth value.
    Const(bool),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Evaluate under the assignment "Xᵢ is true iff `present(i)`".
    ///
    /// In the EVAL reducer, `present(i)` is "the group's value set contains
    /// index `i`", i.e. tuple `ā` belongs to relation `Xᵢ`.
    pub fn evaluate(&self, present: &impl Fn(usize) -> bool) -> bool {
        match self {
            BoolExpr::Var(i) => present(*i),
            BoolExpr::Const(b) => *b,
            BoolExpr::Not(e) => !e.evaluate(present),
            BoolExpr::And(l, r) => l.evaluate(present) && r.evaluate(present),
            BoolExpr::Or(l, r) => l.evaluate(present) || r.evaluate(present),
        }
    }

    /// The set of variable indices mentioned.
    pub fn vars(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<usize>) {
        match self {
            BoolExpr::Var(i) => {
                out.insert(*i);
            }
            BoolExpr::Const(_) => {}
            BoolExpr::Not(e) => e.collect_vars(out),
            BoolExpr::And(l, r) | BoolExpr::Or(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// Shift every variable index by `offset` (used when several queries'
    /// formulas are packed into one EVAL job, §4.5).
    pub fn shifted(&self, offset: usize) -> BoolExpr {
        match self {
            BoolExpr::Var(i) => BoolExpr::Var(i + offset),
            BoolExpr::Const(b) => BoolExpr::Const(*b),
            BoolExpr::Not(e) => BoolExpr::Not(Box::new(e.shifted(offset))),
            BoolExpr::And(l, r) => {
                BoolExpr::And(Box::new(l.shifted(offset)), Box::new(r.shifted(offset)))
            }
            BoolExpr::Or(l, r) => {
                BoolExpr::Or(Box::new(l.shifted(offset)), Box::new(r.shifted(offset)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn s(v: &str) -> Condition {
        Condition::Atom(Atom::new("S", vec![Term::var(v)]))
    }

    #[test]
    fn conditional_atoms_dedup_in_order() {
        // S(x) AND (T(x) OR S(x))
        let t = Condition::Atom(Atom::new("T", vec![Term::var("x")]));
        let c = Condition::And(
            Box::new(s("x")),
            Box::new(Condition::Or(Box::new(t), Box::new(s("x")))),
        );
        let atoms = c.conditional_atoms();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].relation().as_str(), "S");
        assert_eq!(atoms[1].relation().as_str(), "T");
    }

    #[test]
    fn bool_expr_replacement_and_evaluation() {
        // ϕ = X0 AND NOT X1, cf. the EVAL description in §4.3.
        let c = Condition::And(Box::new(s("x")), Box::new(s("y").negated()));
        let atoms = c.conditional_atoms();
        let phi = c.to_bool_expr(&atoms);
        assert!(phi.evaluate(&|i| i == 0));
        assert!(!phi.evaluate(&|i| i == 0 || i == 1));
        assert!(!phi.evaluate(&|_| false));
    }

    #[test]
    fn evaluate_matches_bool_expr_semantics() {
        let c = Condition::Or(Box::new(s("x")), Box::new(s("y")));
        assert!(c.evaluate(&|a: &Atom| a.var_set().contains(&"y".into())));
        assert!(!c.evaluate(&|_| false));
    }

    #[test]
    fn disjunctive_detection() {
        assert!(Condition::Or(Box::new(s("x")), Box::new(s("y").negated())).is_disjunctive());
        assert!(!Condition::And(Box::new(s("x")), Box::new(s("y"))).is_disjunctive());
        // NOT over OR stays disjunctive; NOT over AND does not.
        assert!(Condition::Or(Box::new(s("x")), Box::new(s("y")))
            .negated()
            .is_disjunctive());
    }

    #[test]
    fn display_round_trips_structure() {
        let c = Condition::And(
            Box::new(Condition::Or(Box::new(s("x")), Box::new(s("y")))),
            Box::new(s("z").negated()),
        );
        assert_eq!(c.to_string(), "(S(x) OR S(y)) AND (NOT S(z))");
    }

    #[test]
    fn shifted_moves_all_vars() {
        let e = BoolExpr::And(Box::new(BoolExpr::Var(0)), Box::new(BoolExpr::Var(2)));
        assert_eq!(
            e.shifted(3).vars().into_iter().collect::<Vec<_>>(),
            vec![3, 5]
        );
    }

    #[test]
    fn and_all_or_all_fold_left() {
        let c = Condition::and_all(vec![s("a"), s("b"), s("c")]);
        assert_eq!(c.conditional_atoms().len(), 3);
        let d = Condition::or_all(vec![s("a"), s("b")]);
        assert!(matches!(d, Condition::Or(..)));
    }
}
