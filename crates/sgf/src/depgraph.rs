//! The dependency graph `G_Q` of an SGF query and multiway topological sorts.
//!
//! §4.6 of the paper: `G_Q` has one node per BSGF subquery and an edge
//! `Qᵢ → Q_j` whenever relation `Zᵢ` is mentioned in `ξ_j`. A *multiway
//! topological sort* is a sequence `(F₁, …, F_k)` of disjoint groups covering
//! all nodes such that every edge goes from an earlier group to a strictly
//! later one. Any such sort is a valid evaluation order where each group is
//! evaluated as one batch of BSGF queries (§4.5).

use std::collections::{BTreeMap, BTreeSet};

use gumbo_common::{GumboError, RelationName, Result};

use crate::query::SgfQuery;

/// A multiway topological sort: groups of subquery indices, evaluated left
/// to right.
pub type MultiwayTopoSort = Vec<Vec<usize>>;

/// The dependency graph of an SGF query.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    n: usize,
    /// `edges[i]` = set of j such that there is an edge i → j (Z_i used by ξ_j).
    edges: Vec<BTreeSet<usize>>,
    /// Reverse adjacency: `preds[j]` = set of i with i → j.
    preds: Vec<BTreeSet<usize>>,
}

impl DependencyGraph {
    /// Build the dependency graph of an SGF query.
    pub fn new(query: &SgfQuery) -> Self {
        let n = query.len();
        let index_of: BTreeMap<&RelationName, usize> = query
            .queries()
            .iter()
            .enumerate()
            .map(|(i, q)| (q.output(), i))
            .collect();
        let mut edges = vec![BTreeSet::new(); n];
        let mut preds = vec![BTreeSet::new(); n];
        for (j, q) in query.queries().iter().enumerate() {
            for rel in q.input_relations() {
                if let Some(&i) = index_of.get(&rel) {
                    edges[i].insert(j);
                    preds[j].insert(i);
                }
            }
        }
        DependencyGraph { n, edges, preds }
    }

    /// Number of nodes (BSGF subqueries).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Successors of node `i` (subqueries that consume `Zᵢ`).
    pub fn successors(&self, i: usize) -> &BTreeSet<usize> {
        &self.edges[i]
    }

    /// Predecessors of node `j` (subqueries whose outputs `ξ_j` reads).
    pub fn predecessors(&self, j: usize) -> &BTreeSet<usize> {
        &self.preds[j]
    }

    /// Whether there is an edge `i → j`.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.edges[i].contains(&j)
    }

    /// Validate that `sort` is a multiway topological sort of this graph:
    /// a partition of `0..n` where every edge crosses from an earlier group
    /// to a strictly later group.
    pub fn validate_sort(&self, sort: &MultiwayTopoSort) -> Result<()> {
        let mut group_of: BTreeMap<usize, usize> = BTreeMap::new();
        for (g, group) in sort.iter().enumerate() {
            if group.is_empty() {
                return Err(GumboError::Plan(format!(
                    "empty group {g} in topological sort"
                )));
            }
            for &v in group {
                if v >= self.n {
                    return Err(GumboError::Plan(format!("node {v} out of range")));
                }
                if group_of.insert(v, g).is_some() {
                    return Err(GumboError::Plan(format!("node {v} appears twice")));
                }
            }
        }
        if group_of.len() != self.n {
            return Err(GumboError::Plan(format!(
                "sort covers {} of {} nodes",
                group_of.len(),
                self.n
            )));
        }
        for (i, succs) in self.edges.iter().enumerate() {
            for &j in succs {
                if group_of[&i] >= group_of[&j] {
                    return Err(GumboError::Plan(format!(
                        "edge {i} -> {j} does not cross to a later group"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The trivial (singleton-groups) topological sort in definition order.
    ///
    /// Definition order is always valid because [`SgfQuery::new`] enforces
    /// that subqueries only reference earlier outputs.
    pub fn sequential_sort(&self) -> MultiwayTopoSort {
        (0..self.n).map(|i| vec![i]).collect()
    }

    /// The *level* sort: group `F_l` holds all nodes at dependency depth `l`
    /// (longest path from a source). This is the PARUNIT grouping of §5.3:
    /// queries on the same level are executed in parallel.
    pub fn level_sort(&self) -> MultiwayTopoSort {
        let mut depth = vec![0usize; self.n];
        // Nodes are already topologically ordered by definition order.
        for j in 0..self.n {
            for &i in &self.preds[j] {
                depth[j] = depth[j].max(depth[i] + 1);
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut groups: MultiwayTopoSort = vec![Vec::new(); max_depth + 1];
        for (v, &d) in depth.iter().enumerate() {
            groups[d].push(v);
        }
        groups.retain(|g| !g.is_empty());
        groups
    }

    /// Enumerate *all* multiway topological sorts.
    ///
    /// Exponential; intended for the brute-force optimal SGF planner on
    /// small queries (the paper computes optimal sorts "through brute-force
    /// methods" for its C1–C4 comparison, §5.3). Panics if `n > 12` to guard
    /// against accidental blow-ups.
    pub fn all_multiway_sorts(&self) -> Vec<MultiwayTopoSort> {
        assert!(
            self.n <= 12,
            "all_multiway_sorts is exponential; n = {} too large",
            self.n
        );
        let mut out = Vec::new();
        let remaining: BTreeSet<usize> = (0..self.n).collect();
        self.enumerate(&remaining, &mut Vec::new(), &mut out);
        out
    }

    fn enumerate(
        &self,
        remaining: &BTreeSet<usize>,
        prefix: &mut MultiwayTopoSort,
        out: &mut Vec<MultiwayTopoSort>,
    ) {
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        // D = available nodes: all predecessors already placed.
        let available: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&v| self.preds[v].iter().all(|p| !remaining.contains(p)))
            .collect();
        // Choose any non-empty subset of D as the next group.
        let k = available.len();
        for mask in 1u32..(1 << k) {
            let group: Vec<usize> = (0..k)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| available[b])
                .collect();
            let mut rest = remaining.clone();
            for &v in &group {
                rest.remove(&v);
            }
            prefix.push(group);
            self.enumerate(&rest, prefix, out);
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// The SGF query of Example 5 in the paper.
    fn example5() -> SgfQuery {
        parse_program(
            "Z1 := SELECT (x, y) FROM R1(x, y) WHERE S(x);\n\
             Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(x);\n\
             Z3 := SELECT (x, y) FROM Z2(x, y) WHERE U(x);\n\
             Z4 := SELECT (x, y) FROM R2(x, y) WHERE T(x);\n\
             Z5 := SELECT (x, y) FROM Z3(x, y) WHERE Z4(x, x);",
        )
        .unwrap()
    }

    #[test]
    fn example5_edges() {
        let g = DependencyGraph::new(&example5());
        // Chain Q1 -> Q2 -> Q3 -> Q5 and Q4 -> Q5 (0-based: 0->1->2->4, 3->4).
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 4));
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.predecessors(4).len(), 2);
    }

    #[test]
    fn example5_has_exactly_four_sorts_with_q4_placed_before_q5() {
        // The paper lists exactly 4 multiway topological sorts for Example 5.
        // (Q4 can be merged into any of the three chain groups or stand alone
        // before Q5; the enumeration below also finds sorts where Q4 forms
        // its own group in other positions, so we filter to the paper's
        // canonical presentations: group sequences of length 4 or 5.)
        let g = DependencyGraph::new(&example5());
        let sorts = g.all_multiway_sorts();
        for s in &sorts {
            g.validate_sort(s).unwrap();
        }
        // Paper's four sorts must all be present.
        let paper_sorts: Vec<MultiwayTopoSort> = vec![
            vec![vec![0, 3], vec![1], vec![2], vec![4]],
            vec![vec![0], vec![1, 3], vec![2], vec![4]],
            vec![vec![0], vec![1], vec![2, 3], vec![4]],
            vec![vec![0], vec![1], vec![2], vec![3], vec![4]],
        ];
        for ps in &paper_sorts {
            assert!(
                sorts.iter().any(|s| sorts_equal(s, ps)),
                "missing paper sort {ps:?}"
            );
        }
    }

    fn sorts_equal(a: &MultiwayTopoSort, b: &MultiwayTopoSort) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                let xs: BTreeSet<_> = x.iter().collect();
                let ys: BTreeSet<_> = y.iter().collect();
                xs == ys
            })
    }

    #[test]
    fn sequential_sort_is_valid() {
        let g = DependencyGraph::new(&example5());
        g.validate_sort(&g.sequential_sort()).unwrap();
    }

    #[test]
    fn level_sort_groups_independent_queries() {
        let g = DependencyGraph::new(&example5());
        let levels = g.level_sort();
        g.validate_sort(&levels).unwrap();
        // Q1 (idx 0) and Q4 (idx 3) are both sources -> same level.
        assert_eq!(levels[0], vec![0, 3]);
        // Chain forces 4 levels total.
        assert_eq!(levels.len(), 4);
    }

    #[test]
    fn validate_rejects_bad_sorts() {
        let g = DependencyGraph::new(&example5());
        // Missing node.
        assert!(g.validate_sort(&vec![vec![0, 1, 2, 3]]).is_err());
        // Edge within one group (0 -> 1).
        assert!(g
            .validate_sort(&vec![vec![0, 1], vec![2], vec![3], vec![4]])
            .is_err());
        // Reversed.
        assert!(g
            .validate_sort(&vec![vec![4], vec![2], vec![1], vec![0], vec![3]])
            .is_err());
        // Duplicate node.
        assert!(g
            .validate_sort(&vec![vec![0], vec![0], vec![1], vec![2], vec![3], vec![4]])
            .is_err());
    }

    #[test]
    fn all_sorts_of_independent_pair() {
        let q = parse_program(
            "Z1 := SELECT x FROM R(x) WHERE S(x);\n\
             Z2 := SELECT x FROM G(x) WHERE T(x);",
        )
        .unwrap();
        let g = DependencyGraph::new(&q);
        let sorts = g.all_multiway_sorts();
        // {1}{2}, {2}{1}, {1,2}: three sorts.
        assert_eq!(sorts.len(), 3);
    }
}
