//! Lexer and recursive-descent parser for the paper's SQL-like SGF syntax.
//!
//! Grammar (§3.1 and the examples throughout the paper):
//!
//! ```text
//! program   := statement+
//! statement := Ident ":=" SELECT varlist FROM atom [ WHERE cond ] ";"
//! varlist   := var | "(" var ("," var)* ")"
//! atom      := Ident "(" term ("," term)* ")"
//! term      := var | integer | string-literal
//! cond      := conj ( OR conj )*
//! conj      := unary ( AND unary )*
//! unary     := NOT unary | "(" cond ")" | atom
//! ```
//!
//! Keywords are case-insensitive; identifiers are `[A-Za-z_][A-Za-z0-9_]*`.
//! `OR` binds weaker than `AND`, matching the paper's example queries (e.g.
//! query (8) of Example 4 reads `S(x,z) AND (T(y) OR NOT U(x))` with
//! explicit parentheses, and query B2 relies on AND binding tighter).

use gumbo_common::{GumboError, Result};

use crate::atom::Atom;
use crate::condition::Condition;
use crate::query::{BsgfQuery, SgfQuery};
use crate::term::{Term, Var};

/// Parse a full SGF program (one or more `Z := SELECT …;` statements).
pub fn parse_program(input: &str) -> Result<SgfQuery> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut queries = Vec::new();
    while !p.at_end() {
        queries.push(p.statement()?);
    }
    SgfQuery::new(queries)
}

/// Parse a single BSGF statement.
pub fn parse_query(input: &str) -> Result<BsgfQuery> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.statement()?;
    if !p.at_end() {
        return Err(p.error("trailing input after statement"));
    }
    Ok(q)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Assign, // :=
    LParen,
    RParen,
    Comma,
    Semi,
    Select,
    From,
    Where,
    And,
    Or,
    Not,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL-style line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    tok: Tok::Semi,
                    offset: i,
                });
                i += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        tok: Tok::Assign,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(GumboError::Parse {
                        message: "expected ':='".into(),
                        offset: i,
                    });
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(GumboError::Parse {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i].parse().map_err(|_| GumboError::Parse {
                    message: "integer literal out of range".into(),
                    offset: start,
                })?;
                out.push(Spanned {
                    tok: Tok::Int(n),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let tok = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Tok::Select,
                    "FROM" => Tok::From,
                    "WHERE" => Tok::Where,
                    "AND" => Tok::And,
                    "OR" => Tok::Or,
                    "NOT" => Tok::Not,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, offset: start });
            }
            other => {
                return Err(GumboError::Parse {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |s| s.offset)
    }

    fn error(&self, message: impl Into<String>) -> GumboError {
        GumboError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            got => Err(GumboError::Parse {
                message: format!("expected {what}, found {got:?}"),
                offset: self.offset(),
            }),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(GumboError::Parse {
                message: format!("expected {what}, found {got:?}"),
                offset: self.offset(),
            }),
        }
    }

    fn statement(&mut self) -> Result<BsgfQuery> {
        let output = self.ident("output relation name")?;
        self.expect(&Tok::Assign, "':='")?;
        self.expect(&Tok::Select, "SELECT")?;
        let output_vars = self.varlist()?;
        self.expect(&Tok::From, "FROM")?;
        let guard = self.atom()?;
        let condition = if self.peek() == Some(&Tok::Where) {
            self.next();
            Some(self.cond()?)
        } else {
            None
        };
        self.expect(&Tok::Semi, "';'")?;
        BsgfQuery::new(output, output_vars, guard, condition)
    }

    fn varlist(&mut self) -> Result<Vec<Var>> {
        if self.peek() == Some(&Tok::LParen) {
            self.next();
            let mut vars = vec![Var::new(self.ident("variable")?)];
            while self.peek() == Some(&Tok::Comma) {
                self.next();
                vars.push(Var::new(self.ident("variable")?));
            }
            self.expect(&Tok::RParen, "')'")?;
            Ok(vars)
        } else {
            Ok(vec![Var::new(self.ident("variable")?)])
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        let rel = self.ident("relation name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut terms = vec![self.term()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            terms.push(self.term()?);
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(Atom::new(rel, terms))
    }

    fn term(&mut self) -> Result<Term> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(Term::var(s)),
            Some(Tok::Int(n)) => Ok(Term::int(n)),
            Some(Tok::Str(s)) => Ok(Term::str(s)),
            got => Err(GumboError::Parse {
                message: format!("expected term, found {got:?}"),
                offset: self.offset(),
            }),
        }
    }

    /// `cond := conj (OR conj)*`
    fn cond(&mut self) -> Result<Condition> {
        let mut left = self.conj()?;
        while self.peek() == Some(&Tok::Or) {
            self.next();
            let right = self.conj()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// `conj := unary (AND unary)*`
    fn conj(&mut self) -> Result<Condition> {
        let mut left = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.next();
            let right = self.unary()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// `unary := NOT unary | "(" cond ")" | atom`
    fn unary(&mut self) -> Result<Condition> {
        match self.peek() {
            Some(Tok::Not) => {
                self.next();
                Ok(Condition::Not(Box::new(self.unary()?)))
            }
            Some(Tok::LParen) => {
                self.next();
                let c = self.cond()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(c)
            }
            Some(Tok::Ident(_)) => Ok(Condition::Atom(self.atom()?)),
            _ => Err(self.error("expected NOT, '(' or atom")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_intro_query() {
        // The running example Q from §1.
        let q =
            parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);")
                .unwrap();
        assert_eq!(q.output().as_str(), "Z");
        assert_eq!(q.output_vars().len(), 2);
        assert_eq!(q.guard().relation().as_str(), "R");
        assert_eq!(q.conditional_atoms().len(), 3);
    }

    #[test]
    fn parses_example1_queries() {
        // Intersection, difference, semijoin, antijoin from Example 1.
        parse_query("Z1 := SELECT x FROM R(x) WHERE S(x);").unwrap();
        parse_query("Z2 := SELECT x FROM R(x) WHERE NOT S(x);").unwrap();
        parse_query("Z3 := SELECT (x, y) FROM R(x, y) WHERE S(y, z);").unwrap();
        parse_query("Z4 := SELECT (x, y) FROM R(x, y) WHERE NOT S(y, z);").unwrap();
    }

    #[test]
    fn parses_constants_and_xor_structure() {
        // Z5 from Example 1: constants 4, 1, 10, and an exclusive-or shape.
        let q = parse_query(
            "Z5 := SELECT (x, y) FROM R(x, y, 4) \
             WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));",
        )
        .unwrap();
        // Two distinct conditional atoms: S(1,x) and S(y,10).
        assert_eq!(q.conditional_atoms().len(), 2);
    }

    #[test]
    fn parses_string_constants() {
        // Example 2 (book retailers).
        let program = parse_program(
            r#"Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
                     WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
               Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);"#,
        )
        .unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program.output().as_str(), "Z2");
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse_query("Z := SELECT x FROM R(x) WHERE S(x) OR T(x) AND U(x);").unwrap();
        // Must parse as S(x) OR (T(x) AND U(x)).
        match q.condition().unwrap() {
            Condition::Or(l, r) => {
                assert!(matches!(**l, Condition::Atom(_)));
                assert!(matches!(**r, Condition::And(..)));
            }
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        parse_query("Z := select x from R(x) where not S(x);").unwrap();
    }

    #[test]
    fn comments_are_skipped() {
        parse_program("-- the guard\nZ := SELECT x FROM R(x); -- done\n").unwrap();
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_query("Z := SELECT x FROM R(x) WHERE ;").unwrap_err();
        match err {
            GumboError::Parse { offset, .. } => assert!(offset > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("Z := SELECT x FROM R(x); extra").is_err());
    }

    #[test]
    fn display_round_trip() {
        let text = "Z := SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);";
        let q = parse_query(text).unwrap();
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn program_display_round_trip() {
        let text = "Z1 := SELECT x FROM R(x, y) WHERE S(x);\n\
                    Z2 := SELECT x FROM Z1(x) WHERE NOT T(x);";
        let p = parse_program(text).unwrap();
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn validation_errors_surface() {
        // Unguarded shared variable w.
        let err = parse_query("Z := SELECT x FROM R(x, y) WHERE S(x, w) AND T(y, w);").unwrap_err();
        assert!(matches!(err, GumboError::InvalidQuery(_)));
    }
}
