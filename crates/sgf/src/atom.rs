//! Atoms, conformance and atom-level projection.
//!
//! This module implements the notation of §4 of the paper:
//!
//! * a tuple `ā` *conforms to* a term vector `t̄` when equal terms carry equal
//!   values and constant terms carry exactly their constants;
//! * a fact `T(ā)` conforms to an atom `U(t̄)` (written `T(ā) ⊨ U(t̄)`) when
//!   `T = U` and `ā` conforms to `t̄`;
//! * for a conforming fact `f` and variable sequence `x̄`, the projection
//!   `π_{α;x̄}(f)` picks the coordinates of `x̄` within `α`.

use std::collections::BTreeSet;
use std::fmt;

use gumbo_common::{Fact, RelationName, Tuple, Value};

use crate::term::{Term, Var};

/// An atom `R(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    relation: RelationName,
    terms: Vec<Term>,
}

impl Atom {
    /// Create an atom over the given relation symbol and terms.
    pub fn new(relation: impl Into<RelationName>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Create an atom whose terms are all (distinct or repeated) variables.
    pub fn vars(relation: impl Into<RelationName>, vars: &[&str]) -> Self {
        Atom::new(relation, vars.iter().map(Term::var).collect())
    }

    /// The relation symbol.
    pub fn relation(&self) -> &RelationName {
        &self.relation
    }

    /// The term vector `t̄`.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The set of variables occurring in the atom, sorted.
    pub fn var_set(&self) -> BTreeSet<Var> {
        self.terms
            .iter()
            .filter_map(|t| t.as_var().cloned())
            .collect()
    }

    /// The first position at which `var` occurs, if any.
    pub fn position_of(&self, var: &Var) -> Option<usize> {
        self.terms.iter().position(|t| t.as_var() == Some(var))
    }

    /// First positions of the given variables; `None` if some variable does
    /// not occur in the atom.
    pub fn positions_of(&self, vars: &[Var]) -> Option<Vec<usize>> {
        vars.iter().map(|v| self.position_of(v)).collect()
    }

    /// The *join key* with another atom: the sorted set of shared variables.
    ///
    /// For a semi-join `π_{x̄}(α ⋉ κ)` this is the vector `z̄` on which the
    /// repartition join of §4.1 groups.
    pub fn join_key(&self, other: &Atom) -> Vec<Var> {
        self.var_set()
            .intersection(&other.var_set())
            .cloned()
            .collect()
    }

    /// Conformance test `f ⊨ α` for a bare tuple: relation symbols are
    /// checked by [`Atom::conforms_fact`]; this checks the tuple side only.
    ///
    /// A tuple `ā` conforms to `t̄` iff (1) equal terms carry equal values and
    /// (2) constant terms carry exactly their constants (§4).
    pub fn conforms_tuple(&self, tuple: &Tuple) -> bool {
        if tuple.arity() != self.terms.len() {
            return false;
        }
        // Condition (2): constants match.
        for (term, value) in self.terms.iter().zip(tuple.values()) {
            if let Term::Const(c) = term {
                if c != value {
                    return false;
                }
            }
        }
        // Condition (1): repeated variables carry equal values. Quadratic in
        // arity, but arities are tiny (≤ a handful) in every workload.
        for i in 0..self.terms.len() {
            for j in (i + 1)..self.terms.len() {
                if self.terms[i].is_var() && self.terms[i] == self.terms[j] {
                    let (a, b) = (tuple.get(i), tuple.get(j));
                    if a != b {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Full conformance test `T(ā) ⊨ U(t̄)`.
    pub fn conforms_fact(&self, fact: &Fact) -> bool {
        fact.relation == self.relation && self.conforms_tuple(&fact.tuple)
    }

    /// Projection `π_{α;x̄}(f)` of a conforming tuple onto variables `x̄`.
    ///
    /// # Panics
    /// Panics if some variable of `x̄` does not occur in the atom; callers
    /// must have validated the query (guardedness guarantees this for all
    /// projections the engine performs).
    pub fn project(&self, tuple: &Tuple, vars: &[Var]) -> Tuple {
        let positions = self
            .positions_of(vars)
            .unwrap_or_else(|| panic!("projection variables must occur in atom {self}"));
        tuple.project(&positions)
    }

    /// The substitution `σ` induced by a conforming tuple: values of each
    /// variable at its first occurrence.
    pub fn substitution<'a>(
        &'a self,
        tuple: &'a Tuple,
    ) -> impl Iterator<Item = (&'a Var, &'a Value)> {
        self.terms.iter().enumerate().filter_map(move |(i, t)| {
            let v = t.as_var()?;
            if self.position_of(v) == Some(i) {
                Some((v, tuple.get(i).expect("arity checked by conformance")))
            } else {
                None
            }
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom_xyxz() -> Atom {
        // R(x, y, x, z)
        Atom::new(
            "R",
            vec![
                Term::var("x"),
                Term::var("y"),
                Term::var("x"),
                Term::var("z"),
            ],
        )
    }

    #[test]
    fn paper_conformance_example() {
        // (1,2,1,3) conforms to (x,2,x,y) — §4.
        let a = Atom::new(
            "R",
            vec![Term::var("x"), Term::int(2), Term::var("x"), Term::var("y")],
        );
        assert!(a.conforms_tuple(&Tuple::from_ints(&[1, 2, 1, 3])));
        // Violate the repeated-variable condition.
        assert!(!a.conforms_tuple(&Tuple::from_ints(&[1, 2, 9, 3])));
        // Violate the constant condition.
        assert!(!a.conforms_tuple(&Tuple::from_ints(&[1, 5, 1, 3])));
    }

    #[test]
    fn paper_projection_example() {
        // R(1,2,1,3) ⊨ R(x,y,x,z), π_{α;x,z}(f) = (1,3) — §4.
        let a = atom_xyxz();
        let t = Tuple::from_ints(&[1, 2, 1, 3]);
        assert!(a.conforms_tuple(&t));
        assert_eq!(
            a.project(&t, &[Var::new("x"), Var::new("z")]),
            Tuple::from_ints(&[1, 3])
        );
    }

    #[test]
    fn arity_mismatch_fails_conformance() {
        assert!(!atom_xyxz().conforms_tuple(&Tuple::from_ints(&[1, 2, 1])));
    }

    #[test]
    fn conformance_checks_relation_symbol() {
        let a = Atom::vars("R", &["x"]);
        assert!(a.conforms_fact(&Fact::new("R", Tuple::from_ints(&[1]))));
        assert!(!a.conforms_fact(&Fact::new("S", Tuple::from_ints(&[1]))));
    }

    #[test]
    fn join_key_is_shared_vars() {
        let r = Atom::vars("R", &["x", "y"]);
        let s = Atom::vars("S", &["y", "z"]);
        assert_eq!(r.join_key(&s), vec![Var::new("y")]);
        // Constants never join.
        let t = Atom::new("T", vec![Term::int(1), Term::var("x")]);
        assert_eq!(r.join_key(&t), vec![Var::new("x")]);
    }

    #[test]
    fn substitution_uses_first_occurrence() {
        let a = atom_xyxz();
        let t = Tuple::from_ints(&[1, 2, 1, 3]);
        let sigma: Vec<(String, i64)> = a
            .substitution(&t)
            .map(|(v, val)| (v.name().to_string(), val.as_int().unwrap()))
            .collect();
        assert_eq!(
            sigma,
            vec![("x".into(), 1), ("y".into(), 2), ("z".into(), 3)]
        );
    }

    #[test]
    fn var_set_dedups() {
        let vs = atom_xyxz().var_set();
        assert_eq!(vs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "projection variables")]
    fn projecting_missing_var_panics() {
        let a = Atom::vars("R", &["x"]);
        a.project(&Tuple::from_ints(&[1]), &[Var::new("q")]);
    }
}
