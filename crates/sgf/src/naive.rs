//! Naive reference evaluator for BSGF and SGF queries.
//!
//! This is a direct transcription of the semantics of §3.1: for every guard
//! fact and induced substitution `σ`, evaluate the Boolean condition, where
//! an atom `T(v̄)` holds iff `σ(t̄) ∈ R(t̄) ⋉ T(v̄)`. It is deliberately
//! simple — it exists as ground truth for testing every MapReduce strategy
//! (the integration suite asserts all strategies coincide with it).
//!
//! For speed on the test workloads it indexes each conditional atom's
//! conforming facts by join key, making evaluation `O(|guard| · |C|)` after
//! one pass over the conditional relations.

use std::collections::HashSet;

use gumbo_common::{Database, Relation, Result, Tuple};

use crate::atom::Atom;
use crate::query::{BsgfQuery, SgfQuery};
use crate::term::Var;

/// Reference evaluator.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveEvaluator;

impl NaiveEvaluator {
    /// Create a reference evaluator.
    pub fn new() -> Self {
        NaiveEvaluator
    }

    /// Evaluate one BSGF query against a database, producing its output
    /// relation `Z`.
    pub fn evaluate_bsgf(&self, query: &BsgfQuery, db: &Database) -> Result<Relation> {
        let guard = query.guard();
        let guard_rel = db.relation_or_err(guard.relation())?;

        // Pre-index each conditional atom: the set of join-key projections
        // of facts conforming to it. An atom with an empty join key (no
        // variables shared with the guard) degenerates to a non-emptiness
        // test, which the same index handles via the 0-ary key.
        let cond_atoms = query.conditional_atoms();
        let indexes: Vec<(Vec<Var>, HashSet<Tuple>)> = cond_atoms
            .iter()
            .map(|atom| {
                let key = guard.join_key(atom);
                let mut set = HashSet::new();
                if let Some(rel) = db.relation(atom.relation()) {
                    if rel.arity() == atom.arity() {
                        for t in rel.iter() {
                            if atom.conforms_tuple(t) {
                                set.insert(atom.project(t, &key));
                            }
                        }
                    }
                }
                (key, set)
            })
            .collect();

        let mut out = Relation::new(query.output().clone(), query.output_arity());
        for tuple in guard_rel.iter() {
            if !guard.conforms_tuple(tuple) {
                continue;
            }
            let holds = match query.condition() {
                None => true,
                Some(cond) => cond.evaluate(&|atom: &Atom| {
                    let i = cond_atoms
                        .iter()
                        .position(|a| *a == atom)
                        .expect("atom from this condition");
                    let (key, set) = &indexes[i];
                    set.contains(&guard.project(tuple, key))
                }),
            };
            if holds {
                out.insert(guard.project(tuple, query.output_vars()))?;
            }
        }
        Ok(out)
    }

    /// Evaluate a full SGF query bottom-up, returning the database extended
    /// with *all* intermediate outputs `Z₁, …, Zₙ`.
    pub fn evaluate_sgf_all(&self, query: &SgfQuery, db: &Database) -> Result<Database> {
        let mut env = db.clone();
        for q in query.queries() {
            let rel = self.evaluate_bsgf(q, &env)?;
            env.add_relation(rel);
        }
        Ok(env)
    }

    /// Evaluate a full SGF query and return only its final output `Zₙ`.
    pub fn evaluate_sgf(&self, query: &SgfQuery, db: &Database) -> Result<Relation> {
        let env = self.evaluate_sgf_all(query, db)?;
        Ok(env
            .relation(query.output())
            .expect("final output was just computed")
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use gumbo_common::Fact;

    fn db(facts: &[(&str, &[i64])]) -> Database {
        let mut db = Database::new();
        for (rel, t) in facts {
            db.insert_fact(Fact::new(*rel, Tuple::from_ints(t)))
                .unwrap();
        }
        db
    }

    #[test]
    fn example3_semijoin() {
        // Z := π_x(R(x,z) ⋉ S(z,y)) on {R(1,2), R(4,5), S(2,3)} = {Z(1)}.
        let q = parse_query("Z := SELECT x FROM R(x, z) WHERE S(z, y);").unwrap();
        let d = db(&[("R", &[1, 2]), ("R", &[4, 5]), ("S", &[2, 3])]);
        let out = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_ints(&[1])));
    }

    #[test]
    fn intersection_and_difference() {
        let d = db(&[("R", &[1]), ("R", &[2]), ("S", &[2]), ("S", &[3])]);
        let inter = parse_query("Z := SELECT x FROM R(x) WHERE S(x);").unwrap();
        let diff = parse_query("Z := SELECT x FROM R(x) WHERE NOT S(x);").unwrap();
        let e = NaiveEvaluator::new();
        let zi = e.evaluate_bsgf(&inter, &d).unwrap();
        assert_eq!(zi.len(), 1);
        assert!(zi.contains(&Tuple::from_ints(&[2])));
        let zd = e.evaluate_bsgf(&diff, &d).unwrap();
        assert_eq!(zd.len(), 1);
        assert!(zd.contains(&Tuple::from_ints(&[1])));
    }

    #[test]
    fn intro_query_with_disjunction() {
        // Q from §1: R(x,y) WHERE (S(x,y) OR S(y,x)) AND T(x,z).
        let q =
            parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);")
                .unwrap();
        let d = db(&[
            ("R", &[1, 2]), // S(2,1) matches via S(y,x); T(1,9) exists -> in
            ("R", &[3, 4]), // no S -> out
            ("R", &[5, 6]), // S(5,6) matches but no T(5,_) -> out
            ("S", &[2, 1]),
            ("S", &[5, 6]),
            ("T", &[1, 9]),
        ]);
        let out = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_ints(&[1, 2])));
    }

    #[test]
    fn constants_filter_guard_and_conditionals() {
        let q = parse_query("Z := SELECT x FROM R(x, 4) WHERE S(1, x);").unwrap();
        let d = db(&[
            ("R", &[7, 4]),
            ("R", &[8, 5]),
            ("S", &[1, 7]),
            ("S", &[2, 8]),
        ]);
        let out = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_ints(&[7])));
    }

    #[test]
    fn repeated_vars_in_guard() {
        // Guard R(x, x) only admits diagonal tuples.
        let q = parse_query("Z := SELECT x FROM R(x, x);").unwrap();
        let d = db(&[("R", &[1, 1]), ("R", &[1, 2])]);
        let out = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_ints(&[1])));
    }

    #[test]
    fn repeated_vars_in_conditional() {
        // Z4(x) := ... WHERE Z4-style diagonal conditional S(x, x).
        let q = parse_query("Z := SELECT x FROM R(x) WHERE S(x, x);").unwrap();
        let d = db(&[("R", &[1]), ("R", &[2]), ("S", &[1, 1]), ("S", &[2, 3])]);
        let out = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_ints(&[1])));
    }

    #[test]
    fn missing_conditional_relation_is_empty() {
        // Positive atom over a missing relation is false; negated is true.
        let d = db(&[("R", &[1])]);
        let e = NaiveEvaluator::new();
        let q = parse_query("Z := SELECT x FROM R(x) WHERE Smissing(x);").unwrap();
        assert_eq!(e.evaluate_bsgf(&q, &d).unwrap().len(), 0);
        let q = parse_query("Z := SELECT x FROM R(x) WHERE NOT Smissing(x);").unwrap();
        assert_eq!(e.evaluate_bsgf(&q, &d).unwrap().len(), 1);
    }

    #[test]
    fn missing_guard_relation_errors() {
        let q = parse_query("Z := SELECT x FROM Rmissing(x);").unwrap();
        assert!(NaiveEvaluator::new()
            .evaluate_bsgf(&q, &Database::new())
            .is_err());
    }

    #[test]
    fn example2_nested_negation() {
        // Book retailers (Example 2).
        let program = parse_program(
            r#"Z1 := SELECT aut FROM Amaz(ttl, aut, r) WHERE BN(ttl, aut, r) AND BD(ttl, aut, r);
               Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);"#,
        )
        .unwrap();
        let d = db(&[
            ("Amaz", &[10, 1, 0]),
            ("BN", &[10, 1, 0]),
            ("BD", &[10, 1, 0]), // author 1 has a bad rating everywhere
            ("Amaz", &[11, 2, 0]),
            ("BN", &[11, 2, 0]), // author 2 misses BD -> not in Z1
            ("Upcoming", &[100, 1]),
            ("Upcoming", &[101, 2]),
        ]);
        let out = NaiveEvaluator::new().evaluate_sgf(&program, &d).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_ints(&[101, 2])));
    }

    #[test]
    fn sgf_all_exposes_intermediates() {
        let program = parse_program(
            "Z1 := SELECT x FROM R(x) WHERE S(x);\n\
             Z2 := SELECT x FROM Z1(x) WHERE NOT T(x);",
        )
        .unwrap();
        let d = db(&[
            ("R", &[1]),
            ("R", &[2]),
            ("S", &[1]),
            ("S", &[2]),
            ("T", &[2]),
        ]);
        let env = NaiveEvaluator::new()
            .evaluate_sgf_all(&program, &d)
            .unwrap();
        assert_eq!(env.get("Z1").unwrap().len(), 2);
        assert_eq!(env.get("Z2").unwrap().len(), 1);
    }

    #[test]
    fn projection_duplicates_collapse() {
        // Two guard tuples project to the same output tuple.
        let q = parse_query("Z := SELECT x FROM R(x, y);").unwrap();
        let d = db(&[("R", &[1, 2]), ("R", &[1, 3])]);
        let out = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn star_semijoin_example1() {
        // Z6 := SELECT (x1,...,x4) FROM R(...) WHERE S(x1,y1) AND ... (Example 1).
        let q = parse_query(
            "Z := SELECT (x1, x2, x3, x4) FROM R(x1, x2, x3, x4) \
             WHERE S(x1, y1) AND S(x2, y2) AND S(x3, y3) AND S(x4, y4);",
        )
        .unwrap();
        let d = db(&[
            ("R", &[1, 2, 3, 4]),
            ("R", &[1, 2, 3, 9]),
            ("S", &[1, 0]),
            ("S", &[2, 0]),
            ("S", &[3, 0]),
            ("S", &[4, 0]),
        ]);
        let out = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_ints(&[1, 2, 3, 4])));
    }
}
