//! [`FileDfs`]: the durable [`Dfs`] backend.
//!
//! Relations persist under a root directory as immutable, versioned
//! *segment files* plus one `MANIFEST`:
//!
//! ```text
//! root/
//!   MANIFEST            name → segment mapping (atomic tmp+rename)
//!   seg-00000000.seg    length-prefixed tuple frames (spill codec)
//!   seg-00000003.seg    …
//! ```
//!
//! # Segment format
//!
//! A segment is a sequence of spill-layer frames
//! (`[len u32][format u8][block]`, see [`crate::spill`]), written by
//! [`RunWriter`] with per-frame RLE when it wins. Each block holds up to
//! [`TUPLES_PER_FRAME`] tuples in the relation's canonical (sorted)
//! order, encoded as `[count u32]` then per tuple `[arity u16]` and per
//! value a tag byte (`0` = int, `i64` LE; `1` = string, `len u32` +
//! UTF-8). The fixed tuples-per-frame makes `tuple index → frame index`
//! arithmetic, so a range fetch touches only the frames covering it.
//!
//! Segments are never mutated: overwriting relation `R` writes a *new*
//! segment under the next generation number and retargets the manifest,
//! so a scan opened before the overwrite keeps reading its original
//! (now unlinked, still open) segment — the same snapshot isolation the
//! in-memory backend gets from `Arc`.
//!
//! The `MANIFEST` is a versioned header line plus one tab-separated line
//! per live relation (`name, segment file, arity, tuples, logical
//! bytes`); it is rewritten to a temp file, fsynced and renamed on every
//! commit, so a crash leaves either the old or the new file set — never
//! half a state.
//!
//! # Block cache
//!
//! All frame decodes go through a byte-bounded LRU `BlockCache`
//! charging each cached frame its decoded *logical* size. Hits, misses
//! and evictions are counted per instance (surfaced via
//! [`Dfs::cache_stats`]) and mirrored into the
//! process-wide `obs` metrics `dfs.cache_hits` / `dfs.cache_misses` /
//! `dfs.cache_evictions` for `--metrics-dump`.
//!
//! Byte metering is *logical* ([`Relation::estimated_bytes`]), identical
//! to [`SimDfs`](crate::SimDfs) — the equivalence suite holds both
//! backends to the same counters.

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use gumbo_common::{ByteSize, Database, GumboError, Relation, RelationName, Result, Tuple, Value};
use gumbo_obs::metrics::Counter;

use crate::dfs::{CacheStats, Dfs, RelationScan, TupleSource};
use crate::spill::{rle_decode, Compression, FrameFormat, RunWriter};

/// Tuples per segment frame. Fixed (except the final frame) so that
/// `tuple index → frame index` is plain division and a range fetch knows
/// exactly which frames cover it.
pub const TUPLES_PER_FRAME: usize = 512;

static CACHE_HITS: Counter = Counter::new("dfs.cache_hits");
static CACHE_MISSES: Counter = Counter::new("dfs.cache_misses");
static CACHE_EVICTIONS: Counter = Counter::new("dfs.cache_evictions");

fn storage_err(context: &str, e: std::io::Error) -> GumboError {
    GumboError::Storage(format!("{context}: {e}"))
}

fn corrupt(msg: impl Into<String>) -> GumboError {
    GumboError::Storage(msg.into())
}

// ---------------------------------------------------------------------
// Tuple codec (storage-resident; the shuffle has its own pair codec in
// `gumbo-mr` — segments must be decodable without the execution layer).

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(1);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    out.extend_from_slice(&(t.arity() as u16).to_le_bytes());
    for v in t.values() {
        encode_value(v, out);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated DFS segment frame"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_tuple(c: &mut Cursor<'_>) -> Result<Tuple> {
    let arity = c.u16()? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = c.take(1)?[0];
        values.push(match tag {
            0 => Value::Int(c.i64()?),
            1 => {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| corrupt("non-UTF-8 string in DFS segment"))?;
                Value::str(s)
            }
            other => return Err(corrupt(format!("unknown DFS value tag {other}"))),
        });
    }
    Ok(Tuple::new(values))
}

fn encode_frame(tuples: &[&Tuple], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in tuples {
        encode_tuple(t, out);
    }
}

fn decode_frame(block: &[u8]) -> Result<Vec<Tuple>> {
    let mut c = Cursor { buf: block, pos: 0 };
    let count = c.u32()? as usize;
    let mut tuples = Vec::with_capacity(count);
    for _ in 0..count {
        tuples.push(decode_tuple(&mut c)?);
    }
    if c.pos != block.len() {
        return Err(corrupt("trailing bytes in DFS segment frame"));
    }
    Ok(tuples)
}

// ---------------------------------------------------------------------
// Block cache

/// One decoded frame, as cached and as served to scans.
struct CachedFrame {
    tuples: Vec<Tuple>,
    /// Logical bytes of the decoded tuples — what the frame is charged
    /// against the cache budget.
    bytes: u64,
}

#[derive(Default)]
struct CacheInner {
    /// `(segment id, frame index)` → entry + its recency tick.
    map: HashMap<(u64, u32), (Arc<CachedFrame>, u64)>,
    /// Recency order: tick → key. Oldest tick evicts first.
    order: BTreeMap<u64, (u64, u32)>,
    used: u64,
    tick: u64,
}

/// A byte-bounded LRU cache of decoded segment frames, shared by every
/// scan and read of one [`FileDfs`]. `capacity == 0` disables caching
/// (every lookup is a miss that is not retained).
struct BlockCache {
    capacity: u64,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats(self.capacity);
        f.debug_struct("BlockCache").field("stats", &stats).finish()
    }
}

impl BlockCache {
    fn new(capacity: u64) -> BlockCache {
        BlockCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn get(&self, key: (u64, u32)) -> Option<Arc<CachedFrame>> {
        let mut inner = self.inner.lock().expect("unpoisoned block cache");
        if let Some((frame, tick)) = inner.map.get(&key).map(|(f, t)| (Arc::clone(f), *t)) {
            // Refresh recency.
            inner.order.remove(&tick);
            inner.tick += 1;
            let now = inner.tick;
            inner.order.insert(now, key);
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.1 = now;
            }
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HITS.incr();
            Some(frame)
        } else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            CACHE_MISSES.incr();
            None
        }
    }

    fn insert(&self, key: (u64, u32), frame: Arc<CachedFrame>) {
        if self.capacity == 0 {
            return;
        }
        let mut evicted = 0u64;
        {
            let mut inner = self.inner.lock().expect("unpoisoned block cache");
            if let Some((_, tick)) = inner.map.remove(&key) {
                // Racing loads of the same frame: replace, don't double-charge.
                inner.order.remove(&tick);
                inner.used = inner.used.saturating_sub(frame.bytes);
            }
            inner.tick += 1;
            let now = inner.tick;
            inner.used += frame.bytes;
            inner.map.insert(key, (frame, now));
            inner.order.insert(now, key);
            while inner.used > self.capacity && inner.order.len() > 1 {
                let (&oldest, &victim) = inner.order.iter().next().expect("non-empty order");
                // Never evict the frame we just inserted: a frame larger
                // than the whole budget must still be servable once.
                if victim == key && oldest == now {
                    break;
                }
                inner.order.remove(&oldest);
                if let Some((gone, _)) = inner.map.remove(&victim) {
                    inner.used = inner.used.saturating_sub(gone.bytes);
                }
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            CACHE_EVICTIONS.add(evicted);
        }
    }

    /// Drop every cached frame of a segment (its file was deleted).
    fn purge_segment(&self, seg: u64) {
        let mut inner = self.inner.lock().expect("unpoisoned block cache");
        let doomed: Vec<(u64, u32)> = inner
            .map
            .keys()
            .filter(|(s, _)| *s == seg)
            .copied()
            .collect();
        for key in doomed {
            if let Some((frame, tick)) = inner.map.remove(&key) {
                inner.order.remove(&tick);
                inner.used = inner.used.saturating_sub(frame.bytes);
            }
        }
    }

    fn stats(&self, capacity: u64) -> CacheStats {
        let cached_bytes = self.inner.lock().expect("unpoisoned block cache").used;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cached_bytes,
            capacity_bytes: capacity,
        }
    }
}

// ---------------------------------------------------------------------
// Segments

/// An open, immutable segment: the file handle plus the frame offset
/// index (rebuilt at open by walking the length prefixes).
#[derive(Debug)]
struct Segment {
    id: u64,
    file_name: String,
    arity: usize,
    tuples: usize,
    logical_bytes: u64,
    /// Byte offset of each frame's length prefix.
    frame_offsets: Vec<u64>,
    /// Held open for the segment's lifetime: an overwrite unlinks the
    /// file, but scans over this handle keep their snapshot.
    file: Mutex<File>,
}

impl Segment {
    fn open(dir: &Path, id: u64, file_name: &str, arity: usize, tuples: usize) -> Result<Segment> {
        let path = dir.join(file_name);
        let mut file = File::open(&path).map_err(|e| storage_err("opening DFS segment", e))?;
        let total = file
            .metadata()
            .map_err(|e| storage_err("statting DFS segment", e))?
            .len();
        let mut frame_offsets = Vec::with_capacity(tuples.div_ceil(TUPLES_PER_FRAME));
        let mut pos = 0u64;
        let mut len = [0u8; 4];
        while pos < total {
            file.seek(SeekFrom::Start(pos))
                .and_then(|_| file.read_exact(&mut len))
                .map_err(|e| storage_err("indexing DFS segment", e))?;
            frame_offsets.push(pos);
            pos += 4 + u64::from(u32::from_le_bytes(len));
        }
        if pos != total {
            return Err(corrupt(format!("torn DFS segment {file_name}")));
        }
        let expected = tuples.div_ceil(TUPLES_PER_FRAME);
        if frame_offsets.len() != expected {
            return Err(corrupt(format!(
                "DFS segment {file_name} has {} frames, manifest implies {expected}",
                frame_offsets.len()
            )));
        }
        Ok(Segment {
            id,
            file_name: file_name.to_string(),
            arity,
            tuples,
            logical_bytes: 0,
            frame_offsets,
            file: Mutex::new(file),
        })
    }

    /// Read and decode frame `idx` straight from the file (cache miss
    /// path).
    fn load_frame(&self, idx: u32) -> Result<CachedFrame> {
        let offset = *self
            .frame_offsets
            .get(idx as usize)
            .ok_or_else(|| corrupt("DFS frame index out of range"))?;
        let mut file = self.file.lock().expect("unpoisoned segment file");
        let mut len = [0u8; 4];
        file.seek(SeekFrom::Start(offset))
            .and_then(|_| file.read_exact(&mut len))
            .map_err(|e| storage_err("reading DFS frame length", e))?;
        let stored = u32::from_le_bytes(len) as usize;
        if stored == 0 {
            return Err(corrupt("empty DFS frame (missing format byte)"));
        }
        let mut frame = vec![0u8; stored];
        file.read_exact(&mut frame)
            .map_err(|e| storage_err("reading DFS frame", e))?;
        drop(file);
        let format = FrameFormat::from_byte(frame[0])?;
        let block = &frame[1..];
        let tuples = match format {
            FrameFormat::Raw => decode_frame(block)?,
            FrameFormat::Rle => decode_frame(&rle_decode(block)?)?,
            other => {
                return Err(corrupt(format!(
                    "unexpected frame format {other:?} in DFS segment"
                )))
            }
        };
        let bytes = tuples.iter().map(Tuple::estimated_bytes).sum();
        Ok(CachedFrame { tuples, bytes })
    }
}

/// The scan source for one relation: a pinned segment plus the shared
/// block cache. Lock-free against the DFS file map — concurrent
/// overwrites cannot disturb it.
struct FileScanSource {
    segment: Arc<Segment>,
    cache: Arc<BlockCache>,
}

impl FileScanSource {
    fn frame(&self, idx: u32) -> Result<Arc<CachedFrame>> {
        let key = (self.segment.id, idx);
        if let Some(hit) = self.cache.get(key) {
            return Ok(hit);
        }
        let loaded = Arc::new(self.segment.load_frame(idx)?);
        self.cache.insert(key, Arc::clone(&loaded));
        Ok(loaded)
    }
}

impl TupleSource for FileScanSource {
    fn fetch(&self, range: Range<usize>) -> Result<Vec<Tuple>> {
        let end = range.end.min(self.segment.tuples);
        let start = range.start.min(end);
        if start == end {
            return Ok(Vec::new());
        }
        let first = start / TUPLES_PER_FRAME;
        let last = (end - 1) / TUPLES_PER_FRAME;
        let mut out = Vec::with_capacity(end - start);
        for f in first..=last {
            let frame = self.frame(f as u32)?;
            let base = f * TUPLES_PER_FRAME;
            let lo = start.saturating_sub(base);
            let hi = (end - base).min(frame.tuples.len());
            out.extend_from_slice(&frame.tuples[lo..hi]);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// FileDfs

const MANIFEST: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "gumbo-dfs\tv1";

#[derive(Debug, Default)]
struct FileMap {
    files: BTreeMap<RelationName, Arc<Segment>>,
    next_seg: u64,
}

/// The durable file-backed [`Dfs`] implementation. See the [module
/// docs](self) for the on-disk layout and cache design;
/// [`crate::dfs`] for the metering and locking contracts it upholds.
#[derive(Debug)]
pub struct FileDfs {
    root: PathBuf,
    state: RwLock<FileMap>,
    cache: Arc<BlockCache>,
    cache_capacity: u64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    assert_sync::<FileDfs>()
};

/// Default block-cache budget when none is given: 64 MiB.
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

impl FileDfs {
    /// Create a fresh DFS at `root` (the directory is created; an
    /// existing manifest there is an error — use [`FileDfs::open`]).
    pub fn create(root: impl Into<PathBuf>, cache_bytes: u64) -> Result<FileDfs> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| storage_err("creating DFS root", e))?;
        if root.join(MANIFEST).exists() {
            return Err(GumboError::Storage(format!(
                "DFS root {} already holds a manifest; use open",
                root.display()
            )));
        }
        let dfs = FileDfs {
            root,
            state: RwLock::new(FileMap::default()),
            cache: Arc::new(BlockCache::new(cache_bytes)),
            cache_capacity: cache_bytes,
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        };
        dfs.write_manifest(&dfs.state.read().expect("unpoisoned DFS state"))?;
        Ok(dfs)
    }

    /// Reopen an existing DFS at `root`, rebuilding the frame index of
    /// every live segment from the manifest. I/O counters start at zero.
    pub fn open(root: impl Into<PathBuf>, cache_bytes: u64) -> Result<FileDfs> {
        let root = root.into();
        let manifest = fs::read_to_string(root.join(MANIFEST))
            .map_err(|e| storage_err("reading DFS manifest", e))?;
        let mut lines = manifest.lines();
        match lines.next() {
            Some(MANIFEST_HEADER) => {}
            Some(other) => return Err(corrupt(format!("unknown DFS manifest header {other:?}"))),
            None => return Err(corrupt("empty DFS manifest")),
        }
        let mut files = BTreeMap::new();
        let mut next_seg = 0u64;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split('\t').collect();
            let [name, file_name, arity, tuples, logical] = cols[..] else {
                return Err(corrupt(format!("malformed DFS manifest line {line:?}")));
            };
            let parse = |s: &str, what: &str| -> Result<u64> {
                s.parse()
                    .map_err(|_| corrupt(format!("bad {what} in DFS manifest line {line:?}")))
            };
            let seg_id = file_name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".seg"))
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| corrupt(format!("bad segment name in manifest: {file_name}")))?;
            let mut segment = Segment::open(
                &root,
                seg_id,
                file_name,
                parse(arity, "arity")? as usize,
                parse(tuples, "tuple count")? as usize,
            )?;
            segment.logical_bytes = parse(logical, "byte count")?;
            next_seg = next_seg.max(seg_id + 1);
            files.insert(RelationName::from(name), Arc::new(segment));
        }
        Ok(FileDfs {
            root,
            state: RwLock::new(FileMap { files, next_seg }),
            cache: Arc::new(BlockCache::new(cache_bytes)),
            cache_capacity: cache_bytes,
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// Open-or-create at `root`: [`FileDfs::open`] when a manifest
    /// exists, [`FileDfs::create`] otherwise (the CLI entry point).
    pub fn open_or_create(root: impl Into<PathBuf>, cache_bytes: u64) -> Result<FileDfs> {
        let root = root.into();
        if root.join(MANIFEST).exists() {
            FileDfs::open(root, cache_bytes)
        } else {
            FileDfs::create(root, cache_bytes)
        }
    }

    /// Create a DFS at `root` pre-loaded with a database. Like
    /// [`SimDfs::from_database`](crate::SimDfs::from_database), the
    /// initial load is not a metered write.
    pub fn from_database(
        root: impl Into<PathBuf>,
        cache_bytes: u64,
        db: &Database,
    ) -> Result<FileDfs> {
        let dfs = FileDfs::create(root, cache_bytes)?;
        for rel in db.relations() {
            Dfs::store(&dfs, rel.clone())?;
        }
        dfs.bytes_written.store(0, Ordering::Relaxed);
        Ok(dfs)
    }

    /// The DFS root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn segment(&self, name: &RelationName) -> Result<Arc<Segment>> {
        self.state
            .read()
            .expect("unpoisoned DFS state")
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))
    }

    /// Rewrite the manifest atomically (tmp + fsync + rename).
    fn write_manifest(&self, state: &FileMap) -> Result<()> {
        let mut body = String::from(MANIFEST_HEADER);
        body.push('\n');
        for (name, seg) in &state.files {
            body.push_str(&format!(
                "{name}\t{}\t{}\t{}\t{}\n",
                seg.file_name, seg.arity, seg.tuples, seg.logical_bytes
            ));
        }
        let tmp = self.root.join("MANIFEST.tmp");
        fs::write(&tmp, body).map_err(|e| storage_err("writing DFS manifest", e))?;
        File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(|e| storage_err("syncing DFS manifest", e))?;
        fs::rename(&tmp, self.root.join(MANIFEST))
            .map_err(|e| storage_err("publishing DFS manifest", e))?;
        Ok(())
    }

    /// Write a relation as a new segment file and return its open handle.
    fn write_segment(&self, relation: &Relation, seg_id: u64) -> Result<Segment> {
        let file_name = format!("seg-{seg_id:08}.seg");
        let path = self.root.join(&file_name);
        let mut writer = RunWriter::create_with(&path, Compression::Rle)?;
        let tuples: Vec<&Tuple> = relation.iter().collect();
        let mut buf = Vec::new();
        for chunk in tuples.chunks(TUPLES_PER_FRAME) {
            encode_frame(chunk, &mut buf);
            writer.push(&buf)?;
        }
        writer.finish()?;
        let mut segment = Segment::open(
            &self.root,
            seg_id,
            &file_name,
            relation.arity(),
            relation.len(),
        )?;
        segment.logical_bytes = relation.estimated_bytes();
        Ok(segment)
    }

    fn materialize(&self, name: &RelationName, segment: &Arc<Segment>) -> Result<Relation> {
        let source = FileScanSource {
            segment: Arc::clone(segment),
            cache: Arc::clone(&self.cache),
        };
        let tuples = source.fetch(0..segment.tuples)?;
        Relation::from_tuples(name.clone(), segment.arity, tuples)
    }
}

impl Dfs for FileDfs {
    fn backend(&self) -> &'static str {
        "file"
    }

    fn store(&self, relation: Relation) -> Result<ByteSize> {
        let _span = gumbo_obs::span_with("dfs.store", |s| {
            s.str("relation", relation.name().as_str());
            s.u64("tuples", relation.len() as u64);
        });
        let bytes = ByteSize::bytes(relation.estimated_bytes());
        let seg_id = {
            let mut state = self.state.write().expect("unpoisoned DFS state");
            let id = state.next_seg;
            state.next_seg += 1;
            id
        };
        // Encode outside the lock: only manifest publication serializes.
        let segment = Arc::new(self.write_segment(&relation, seg_id)?);
        let old = {
            let mut state = self.state.write().expect("unpoisoned DFS state");
            let old = state.files.insert(relation.name().clone(), segment);
            self.write_manifest(&state)?;
            old
        };
        if let Some(old) = old {
            // The manifest no longer references it; unlink. Open scans
            // keep their fd — the data outlives the directory entry.
            self.cache.purge_segment(old.id);
            let _ = fs::remove_file(self.root.join(&old.file_name));
        }
        self.bytes_written
            .fetch_add(bytes.as_bytes(), Ordering::Relaxed);
        Ok(bytes)
    }

    fn read(&self, name: &RelationName) -> Result<Arc<Relation>> {
        let segment = self.segment(name)?;
        self.bytes_read
            .fetch_add(segment.logical_bytes, Ordering::Relaxed);
        Ok(Arc::new(self.materialize(name, &segment)?))
    }

    fn peek(&self, name: &RelationName) -> Result<Arc<Relation>> {
        let segment = self.segment(name)?;
        Ok(Arc::new(self.materialize(name, &segment)?))
    }

    fn scan(&self, name: &RelationName) -> Result<RelationScan> {
        let segment = self.segment(name)?;
        self.bytes_read
            .fetch_add(segment.logical_bytes, Ordering::Relaxed);
        gumbo_obs::event("dfs.scan", |s| {
            s.str("relation", name.as_str());
            s.u64("bytes", segment.logical_bytes);
        });
        Ok(RelationScan::new(
            name.clone(),
            segment.arity,
            segment.tuples,
            ByteSize::bytes(segment.logical_bytes),
            Arc::new(FileScanSource {
                segment,
                cache: Arc::clone(&self.cache),
            }),
        ))
    }

    fn file_bytes(&self, name: &RelationName) -> Result<ByteSize> {
        Ok(ByteSize::bytes(self.segment(name)?.logical_bytes))
    }

    fn exists(&self, name: &RelationName) -> bool {
        self.state
            .read()
            .expect("unpoisoned DFS state")
            .files
            .contains_key(name)
    }

    fn delete(&self, name: &RelationName) -> Result<bool> {
        let old = {
            let mut state = self.state.write().expect("unpoisoned DFS state");
            let old = state.files.remove(name);
            if old.is_some() {
                self.write_manifest(&state)?;
            }
            old
        };
        match old {
            Some(seg) => {
                self.cache.purge_segment(seg.id);
                let _ = fs::remove_file(self.root.join(&seg.file_name));
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn file_names(&self) -> Vec<RelationName> {
        self.state
            .read()
            .expect("unpoisoned DFS state")
            .files
            .keys()
            .cloned()
            .collect()
    }

    fn bytes_read(&self) -> ByteSize {
        ByteSize::bytes(self.bytes_read.load(Ordering::Relaxed))
    }

    fn bytes_written(&self) -> ByteSize {
        ByteSize::bytes(self.bytes_written.load(Ordering::Relaxed))
    }

    fn reset_counters(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats(self.cache_capacity)
    }

    fn flush(&self) -> Result<()> {
        // Segments are flushed at store time and the manifest is fsynced
        // on every publication; sync the directory so the renames are
        // durable too.
        File::open(&self.root)
            .and_then(|d| d.sync_all())
            .map_err(|e| storage_err("syncing DFS root", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDfs;

    fn temp_root(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "gumbo-filedfs-{}-{}-{label}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// RAII root cleanup so `cargo test` leaves no litter.
    struct Root(PathBuf);
    impl Drop for Root {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn rel(name: &str, n: i64) -> Relation {
        Relation::from_tuples(name, 2, (0..n).map(|i| Tuple::from_ints(&[i, i * 7]))).unwrap()
    }

    fn mixed_rel(name: &str) -> Relation {
        Relation::from_tuples(
            name,
            2,
            [
                Tuple::new(vec![Value::Int(1), Value::str("bad")]),
                Tuple::new(vec![Value::Int(2), Value::str("a-longer-string-value")]),
                Tuple::new(vec![Value::Int(-3), Value::Int(i64::MIN)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn store_read_round_trip_counts_like_sim() {
        let root = Root(temp_root("roundtrip"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        let sim = SimDfs::new();
        let r = rel("R", 1000); // spans two frames
        let wf = Dfs::store(&file, r.clone()).unwrap();
        let ws = sim.store(r.clone());
        assert_eq!(wf, ws, "write metering matches sim");
        let back = Dfs::read(&file, &"R".into()).unwrap();
        assert_eq!(back.as_ref(), &r, "contents round-trip");
        assert_eq!(
            Dfs::bytes_read(&file),
            wf,
            "read metering is the logical size, not the encoded size"
        );
    }

    #[test]
    fn strings_and_negative_ints_round_trip() {
        let root = Root(temp_root("mixed"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        let r = mixed_rel("M");
        Dfs::store(&file, r.clone()).unwrap();
        assert_eq!(Dfs::peek(&file, &"M".into()).unwrap().as_ref(), &r);
    }

    #[test]
    fn reopen_after_drop_restores_everything() {
        let root = Root(temp_root("reopen"));
        let r = rel("R", 600);
        let s = mixed_rel("S");
        {
            let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
            Dfs::store(&file, r.clone()).unwrap();
            Dfs::store(&file, s.clone()).unwrap();
            Dfs::flush(&file).unwrap();
        } // dropped: nothing survives but the files
        let file = FileDfs::open(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        assert_eq!(
            file.file_names(),
            vec![RelationName::from("R"), RelationName::from("S")]
        );
        assert_eq!(Dfs::peek(&file, &"R".into()).unwrap().as_ref(), &r);
        assert_eq!(Dfs::peek(&file, &"S".into()).unwrap().as_ref(), &s);
        assert_eq!(Dfs::bytes_read(&file), ByteSize::ZERO, "peek stays free");
        // Overwrites after reopen pick fresh segment ids.
        Dfs::store(&file, rel("R", 3)).unwrap();
        assert_eq!(Dfs::peek(&file, &"R".into()).unwrap().len(), 3);
    }

    #[test]
    fn cache_hits_on_second_read_misses_on_first() {
        let root = Root(temp_root("cache"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        Dfs::store(&file, rel("R", 1024)).unwrap(); // exactly two frames
        Dfs::read(&file, &"R".into()).unwrap();
        let cold = file.cache_stats();
        assert_eq!(cold.misses, 2, "cold read misses every frame");
        assert_eq!(cold.hits, 0);
        Dfs::read(&file, &"R".into()).unwrap();
        let warm = file.cache_stats();
        assert_eq!(warm.hits, 2, "warm read is all hits");
        assert_eq!(warm.misses, 2);
        assert_eq!(warm.evictions, 0);
        assert!(warm.cached_bytes > 0);
    }

    #[test]
    fn tiny_cache_evicts_but_answers_stay_right() {
        let root = Root(temp_root("evict"));
        let r = rel("R", 4096); // 8 frames × (512 × 20 B) = 10240 B/frame
                                // Budget for barely one frame: every pass re-misses.
        let file = FileDfs::create(&root.0, 11_000).unwrap();
        Dfs::store(&file, r.clone()).unwrap();
        assert_eq!(Dfs::read(&file, &"R".into()).unwrap().as_ref(), &r);
        assert_eq!(Dfs::read(&file, &"R".into()).unwrap().as_ref(), &r);
        let stats = file.cache_stats();
        assert!(
            stats.evictions > 0,
            "a cache smaller than the input must evict: {stats:?}"
        );
        assert!(stats.cached_bytes <= 11_000, "budget respected: {stats:?}");
    }

    #[test]
    fn zero_cache_disables_retention() {
        let root = Root(temp_root("nocache"));
        let file = FileDfs::create(&root.0, 0).unwrap();
        Dfs::store(&file, rel("R", 10)).unwrap();
        Dfs::read(&file, &"R".into()).unwrap();
        Dfs::read(&file, &"R".into()).unwrap();
        let stats = file.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.cached_bytes, 0);
    }

    #[test]
    fn scan_streams_ranges_and_meters_once() {
        let root = Root(temp_root("scan"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        let r = rel("R", 1300); // three frames: 512 + 512 + 276
        let written = Dfs::store(&file, r.clone()).unwrap();
        let scan = Dfs::scan(&file, &"R".into()).unwrap();
        assert_eq!(Dfs::bytes_read(&file), written);
        // A mid-range fetch touches only covering frames.
        let mid = scan.fetch(500..530).unwrap();
        assert_eq!(mid.len(), 30);
        let touched = file.cache_stats();
        assert_eq!(touched.misses, 2, "two frames cover tuples 500..530");
        // Full reassembly equals the stored relation, in order.
        let all = scan.fetch(0..r.len()).unwrap();
        assert_eq!(all, r.iter().cloned().collect::<Vec<_>>());
        assert_eq!(
            Dfs::bytes_read(&file),
            written,
            "fetches are not re-metered"
        );
    }

    #[test]
    fn scan_snapshot_survives_overwrite() {
        let root = Root(temp_root("snapshot"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        let r5 = rel("R", 5);
        Dfs::store(&file, r5.clone()).unwrap();
        let scan = Dfs::scan(&file, &"R".into()).unwrap();
        Dfs::store(&file, rel("R", 2)).unwrap(); // unlinks the old segment
        assert_eq!(
            scan.fetch(0..5).unwrap(),
            r5.iter().cloned().collect::<Vec<_>>(),
            "open scan keeps its snapshot after overwrite"
        );
        assert_eq!(Dfs::peek(&file, &"R".into()).unwrap().len(), 2);
    }

    #[test]
    fn delete_removes_file_and_segment() {
        let root = Root(temp_root("delete"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        Dfs::store(&file, rel("R", 5)).unwrap();
        assert!(Dfs::delete(&file, &"R".into()).unwrap());
        assert!(!Dfs::exists(&file, &"R".into()));
        assert!(!Dfs::delete(&file, &"R".into()).unwrap());
        // Only the manifest remains on disk.
        let left: Vec<_> = fs::read_dir(&root.0)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".seg"))
            .collect();
        assert!(left.is_empty(), "segments left behind: {left:?}");
    }

    #[test]
    fn empty_relation_round_trips() {
        let root = Root(temp_root("empty"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        let r = Relation::new("E", 3);
        Dfs::store(&file, r.clone()).unwrap();
        let back = Dfs::peek(&file, &"E".into()).unwrap();
        assert_eq!(back.as_ref(), &r);
        assert_eq!(back.arity(), 3, "arity survives an empty store");
        // And survives a restart.
        drop(file);
        let file = FileDfs::open(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        assert_eq!(Dfs::peek(&file, &"E".into()).unwrap().arity(), 3);
    }

    #[test]
    fn from_database_load_is_unmetered() {
        let root = Root(temp_root("fromdb"));
        let db: Database = [rel("A", 10), rel("B", 20)].into_iter().collect();
        let file = FileDfs::from_database(&root.0, DEFAULT_CACHE_BYTES, &db).unwrap();
        assert_eq!(Dfs::bytes_written(&file), ByteSize::ZERO);
        assert_eq!(file.file_names().len(), 2);
    }

    #[test]
    fn create_refuses_existing_manifest() {
        let root = Root(temp_root("refuse"));
        let _first = FileDfs::create(&root.0, 0).unwrap();
        let err = FileDfs::create(&root.0, 0).unwrap_err();
        assert!(err.to_string().contains("use open"), "{err}");
        assert!(FileDfs::open_or_create(&root.0, 0).is_ok());
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let root = Root(temp_root("corrupt"));
        fs::create_dir_all(&root.0).unwrap();
        fs::write(root.0.join(MANIFEST), "not-a-manifest\tv9\n").unwrap();
        let err = FileDfs::open(&root.0, 0).unwrap_err();
        assert!(err.to_string().contains("manifest header"), "{err}");
    }

    #[test]
    fn torn_segment_is_an_error_on_open() {
        let root = Root(temp_root("torn"));
        {
            let file = FileDfs::create(&root.0, 0).unwrap();
            Dfs::store(&file, rel("R", 600)).unwrap();
        }
        // Truncate the segment mid-frame.
        let seg = fs::read_dir(&root.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let err = FileDfs::open(&root.0, 0).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn counters_match_sim_across_a_workload() {
        // Drive both backends through an identical store/read/overwrite
        // sequence: metered counters must agree exactly.
        let root = Root(temp_root("parity"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        let sim = SimDfs::new();
        let both: [&dyn Dfs; 2] = [&file, &sim];
        for dfs in both {
            dfs.store(rel("R", 700)).unwrap();
            dfs.store(mixed_rel("S")).unwrap();
            dfs.read(&"R".into()).unwrap();
            dfs.scan(&"S".into()).unwrap();
            dfs.store(rel("R", 100)).unwrap(); // overwrite
            dfs.read(&"R".into()).unwrap();
            dfs.peek(&"S".into()).unwrap();
        }
        assert_eq!(Dfs::bytes_read(&file), Dfs::bytes_read(&sim));
        assert_eq!(Dfs::bytes_written(&file), Dfs::bytes_written(&sim));
        let dbf = Dfs::to_database(&file).unwrap();
        let dbs = Dfs::to_database(&sim).unwrap();
        assert_eq!(dbf, dbs, "file sets identical after the workload");
    }

    #[test]
    fn concurrent_scans_share_the_cache_safely() {
        let root = Root(temp_root("concurrent"));
        let file = FileDfs::create(&root.0, DEFAULT_CACHE_BYTES).unwrap();
        let r = rel("R", 2048);
        Dfs::store(&file, r.clone()).unwrap();
        let expected: Vec<Tuple> = r.iter().cloned().collect();
        let file = &file;
        let expected = &expected;
        std::thread::scope(|scope| {
            for t in 0..8 {
                scope.spawn(move || {
                    let scan = Dfs::scan(file, &"R".into()).unwrap();
                    for pass in 0..4 {
                        let lo = (t * 131 + pass * 47) % 1500;
                        let hi = lo + 300;
                        assert_eq!(scan.fetch(lo..hi).unwrap(), expected[lo..hi]);
                    }
                });
            }
        });
        let stats = file.cache_stats();
        assert!(stats.hits > 0, "concurrent scans should share frames");
    }
}
