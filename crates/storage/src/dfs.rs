//! The simulated DFS: named relation files with byte accounting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gumbo_common::{ByteSize, Database, GumboError, Relation, RelationName, Result};

/// A file in the simulated DFS: one stored relation plus its size.
#[derive(Debug, Clone)]
pub struct DfsFile {
    relation: Relation,
    bytes: ByteSize,
}

impl DfsFile {
    /// The stored relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Logical size of the file.
    pub fn bytes(&self) -> ByteSize {
        self.bytes
    }
}

/// An in-memory simulated distributed file system.
///
/// Files are keyed by relation name (the engine stores each relation —
/// base input, intermediate `Xᵢ`, or query output — as one file). Reads and
/// writes bump byte counters that back the paper's *input cost* metric
/// ("number of bytes read from hdfs over the entire MR plan", §5.1).
///
/// The byte counters are atomic, so a `SimDfs` is [`Sync`]: concurrently
/// scheduled jobs (the DAG scheduler in `gumbo-sched`) can meter reads
/// through a shared reference. Mutation of the *file map* (store/delete)
/// still requires `&mut self`; concurrent runtimes guard the map with an
/// `RwLock<SimDfs>` — reads under the read lock, commits under the write
/// lock.
#[derive(Debug, Default)]
pub struct SimDfs {
    files: BTreeMap<RelationName, DfsFile>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

// The whole point of atomic counters: a shared DFS can serve concurrent,
// metered reads. (Compile-time regression check.)
const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    assert_sync::<SimDfs>()
};

impl SimDfs {
    /// Create an empty DFS.
    pub fn new() -> Self {
        SimDfs::default()
    }

    /// Create a DFS pre-loaded with every relation of a database.
    pub fn from_database(db: &Database) -> Self {
        let mut dfs = SimDfs::new();
        for rel in db.relations() {
            dfs.store(rel.clone());
        }
        // Loading the initial database is not a metered write.
        dfs.bytes_written.store(0, Ordering::Relaxed);
        dfs
    }

    /// Store a relation, overwriting any previous file of the same name and
    /// counting the write.
    pub fn store(&mut self, relation: Relation) -> ByteSize {
        let bytes = ByteSize::bytes(relation.estimated_bytes());
        self.bytes_written
            .fetch_add(bytes.as_bytes(), Ordering::Relaxed);
        self.files
            .insert(relation.name().clone(), DfsFile { relation, bytes });
        bytes
    }

    /// Read a relation, counting the read.
    pub fn read(&self, name: &RelationName) -> Result<&Relation> {
        let file = self
            .files
            .get(name)
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))?;
        self.bytes_read
            .fetch_add(file.bytes.as_bytes(), Ordering::Relaxed);
        Ok(&file.relation)
    }

    /// Inspect a relation *without* counting a read (planner/sampling use).
    pub fn peek(&self, name: &RelationName) -> Result<&Relation> {
        self.files
            .get(name)
            .map(|f| &f.relation)
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))
    }

    /// Size of a file without reading it (namenode metadata access).
    pub fn file_bytes(&self, name: &RelationName) -> Result<ByteSize> {
        self.files
            .get(name)
            .map(|f| f.bytes)
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &RelationName) -> bool {
        self.files.contains_key(name)
    }

    /// Delete a file, returning the relation if it was present.
    pub fn delete(&mut self, name: &RelationName) -> Option<Relation> {
        self.files.remove(name).map(|f| f.relation)
    }

    /// Names of all stored files, sorted.
    pub fn file_names(&self) -> impl Iterator<Item = &RelationName> + '_ {
        self.files.keys()
    }

    /// Total bytes read so far (HDFS input-cost counter).
    pub fn bytes_read(&self) -> ByteSize {
        ByteSize::bytes(self.bytes_read.load(Ordering::Relaxed))
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> ByteSize {
        ByteSize::bytes(self.bytes_written.load(Ordering::Relaxed))
    }

    /// Reset the I/O counters (between experiments).
    pub fn reset_counters(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }

    /// Export the current file set as a [`Database`] (for result checking).
    pub fn to_database(&self) -> Database {
        self.files.values().map(|f| f.relation.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Fact, Tuple};

    fn rel(name: &str, n: i64) -> Relation {
        Relation::from_tuples(name, 2, (0..n).map(|i| Tuple::from_ints(&[i, i + 1]))).unwrap()
    }

    #[test]
    fn store_and_read_counts_bytes() {
        let mut dfs = SimDfs::new();
        let written = dfs.store(rel("R", 5));
        assert_eq!(written, ByteSize::bytes(5 * 20));
        assert_eq!(dfs.bytes_written(), written);
        let r = dfs.read(&"R".into()).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(dfs.bytes_read(), written);
        // A second read counts again.
        dfs.read(&"R".into()).unwrap();
        assert_eq!(dfs.bytes_read(), written * 2);
    }

    #[test]
    fn peek_is_free() {
        let mut dfs = SimDfs::new();
        dfs.store(rel("R", 3));
        dfs.peek(&"R".into()).unwrap();
        assert_eq!(dfs.bytes_read(), ByteSize::ZERO);
    }

    #[test]
    fn missing_file_errors() {
        let dfs = SimDfs::new();
        assert!(dfs.read(&"Q".into()).is_err());
        assert!(dfs.file_bytes(&"Q".into()).is_err());
    }

    #[test]
    fn from_database_does_not_count_initial_load() {
        let mut db = Database::new();
        db.insert_fact(Fact::new("R", Tuple::from_ints(&[1, 2])))
            .unwrap();
        let dfs = SimDfs::from_database(&db);
        assert_eq!(dfs.bytes_written(), ByteSize::ZERO);
        assert!(dfs.exists(&"R".into()));
    }

    #[test]
    fn delete_removes() {
        let mut dfs = SimDfs::new();
        dfs.store(rel("R", 1));
        assert!(dfs.delete(&"R".into()).is_some());
        assert!(!dfs.exists(&"R".into()));
        assert!(dfs.delete(&"R".into()).is_none());
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut dfs = SimDfs::new();
        dfs.store(rel("R", 5));
        dfs.store(rel("R", 2));
        assert_eq!(dfs.peek(&"R".into()).unwrap().len(), 2);
    }

    #[test]
    fn concurrent_metered_reads_hammer_counters() {
        // 8 threads × 200 metered reads each through a shared reference:
        // the atomic counters must account every single read, and the
        // relation contents must stay readable throughout.
        let mut dfs = SimDfs::new();
        dfs.store(rel("R", 4)); // 4 tuples × 20 B = 80 B per read
        dfs.store(rel("S", 2)); // 2 tuples × 20 B = 40 B per read
        let dfs = &dfs;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    for i in 0..200 {
                        let name = if i % 2 == 0 { "R" } else { "S" };
                        let r = dfs.read(&name.into()).unwrap();
                        assert_eq!(r.len(), if i % 2 == 0 { 4 } else { 2 });
                    }
                });
            }
        });
        let expected = 8 * (100 * 80 + 100 * 40);
        assert_eq!(dfs.bytes_read(), ByteSize::bytes(expected));
    }

    #[test]
    fn to_database_round_trip() {
        let mut dfs = SimDfs::new();
        dfs.store(rel("A", 2));
        dfs.store(rel("B", 3));
        let db = dfs.to_database();
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.get("B").unwrap().len(), 3);
    }
}
