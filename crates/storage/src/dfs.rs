//! The [`Dfs`] storage abstraction and its in-memory implementation.
//!
//! GUMBO's cost model (§5.1) meters every byte read from and written to
//! the distributed file system; the engine only ever touches storage
//! through a narrow interface — plan-time metadata, metered relation
//! scans, and commits. [`Dfs`] pins that interface down as a trait so the
//! execution layers (`gumbo-mr`, `gumbo-sched`, `gumbo-core`,
//! `gumbo-baselines`) never depend on *where* relations live:
//!
//! * [`SimDfs`] — the in-memory simulated DFS, the historical backend and
//!   still the default: deterministic, RAM-resident, nothing survives the
//!   process.
//! * [`crate::FileDfs`] — the durable backend: relations persist as
//!   length-prefixed, versioned file segments under a root directory,
//!   fronted by a byte-bounded LRU block cache (see
//!   [`crate::file_dfs`]). Survives restarts.
//!
//! # Metering contract
//!
//! Implementations must meter **logical** bytes — the paper's 10 B/value
//! layout ([`Relation::estimated_bytes`]) — never physical encoding
//! sizes, so [`Dfs::bytes_read`] / [`Dfs::bytes_written`] are
//! backend-invariant: the same program over the same database produces
//! identical counters on every backend (the workspace's
//! `dfs_backend_equivalence` suite enforces this). Specifically:
//!
//! * [`Dfs::read`] and [`Dfs::scan`] charge the stored relation's full
//!   logical size, once per call, at call time;
//! * [`Dfs::store`] charges the relation's logical size once;
//! * [`Dfs::peek`], [`Dfs::file_bytes`], [`Dfs::exists`] and
//!   [`Dfs::file_names`] are free (namenode metadata / planner access);
//! * loading an initial database through a constructor is not metered.
//!
//! # Locking contract
//!
//! Every method takes `&self`: implementations use interior mutability
//! (and must be [`Sync`]), so a scheduler can share one `&dyn Dfs` across
//! worker threads with no external lock. Writers ([`Dfs::store`],
//! [`Dfs::delete`]) may block readers briefly, but a [`Dfs::scan`] handle
//! returned *before* a concurrent overwrite must keep yielding the
//! snapshot it was opened on (both backends guarantee this: `SimDfs`
//! hands out `Arc` snapshots, `FileDfs` segments are immutable files
//! replaced — never mutated — on overwrite).

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use gumbo_common::{ByteSize, Database, GumboError, Relation, RelationName, Result};

/// Block-cache observability counters, as reported by [`Dfs::cache_stats`].
///
/// All zeros for backends without a cache (the in-memory [`SimDfs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block lookups served from the cache.
    pub hits: u64,
    /// Block lookups that had to load from the backing store.
    pub misses: u64,
    /// Blocks evicted to stay within the byte budget.
    pub evictions: u64,
    /// Bytes currently held by the cache.
    pub cached_bytes: u64,
    /// The configured byte budget (0 = no cache).
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Fraction of block lookups served from the cache, `None` when no
    /// lookups happened (so a cold or cacheless backend reads as "n/a"
    /// rather than a perfect or zero rate).
    pub fn hit_rate(&self) -> Option<f64> {
        let lookups = self.hits + self.misses;
        (lookups > 0).then(|| self.hits as f64 / lookups as f64)
    }
}

/// A source of tuples for one opened scan: fetches any sub-range of the
/// relation's canonical (sorted) tuple order, independently of the DFS
/// instance's locks, so map tasks on worker threads can pull their splits
/// concurrently. Backends decide what "fetch" costs: the in-memory DFS
/// clones from an `Arc` snapshot; the file backend reads and decodes only
/// the segment frames covering the range (through the block cache).
pub trait TupleSource: Send + Sync {
    /// The tuples at `range` of the relation's canonical order.
    fn fetch(&self, range: Range<usize>) -> Result<Vec<gumbo_common::Tuple>>;
}

/// A metered streaming scan over one stored relation.
///
/// Opening the scan charges the relation's full logical size to the
/// read counter (the paper meters whole-file input costs); the handle
/// then yields tuples lazily, range by range, so callers never need the
/// whole relation resident — the point of the durable backend.
pub struct RelationScan {
    name: RelationName,
    arity: usize,
    len: usize,
    bytes: ByteSize,
    source: Arc<dyn TupleSource>,
}

impl RelationScan {
    /// Assemble a scan handle (backend constructors only).
    pub fn new(
        name: RelationName,
        arity: usize,
        len: usize,
        bytes: ByteSize,
        source: Arc<dyn TupleSource>,
    ) -> RelationScan {
        RelationScan {
            name,
            arity,
            len,
            bytes,
            source,
        }
    }

    /// The scanned relation's name.
    pub fn name(&self) -> &RelationName {
        &self.name
    }

    /// The scanned relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total tuples in the relation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical size of the relation (already metered at open).
    pub fn bytes(&self) -> ByteSize {
        self.bytes
    }

    /// Fetch the tuples of `range` (canonical order). Out-of-bounds
    /// ranges are clamped by the source.
    pub fn fetch(&self, range: Range<usize>) -> Result<Vec<gumbo_common::Tuple>> {
        self.source.fetch(range)
    }
}

impl std::fmt::Debug for RelationScan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationScan")
            .field("name", &self.name)
            .field("len", &self.len)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// The distributed-file-system contract every storage backend implements.
///
/// See the [module docs](self) for the metering and locking contracts.
/// All methods take `&self`; implementations are `Send + Sync` and manage
/// their own interior locking, so call sites share a `&dyn Dfs` freely
/// across threads.
pub trait Dfs: Send + Sync + std::fmt::Debug {
    /// A short backend name (`"sim"`, `"file"`) for logs and reports.
    fn backend(&self) -> &'static str;

    /// Store a relation, overwriting any previous file of the same name
    /// and counting the write (logical bytes).
    fn store(&self, relation: Relation) -> Result<ByteSize>;

    /// Read a whole relation, counting the read (logical bytes).
    fn read(&self, name: &RelationName) -> Result<Arc<Relation>>;

    /// Inspect a relation *without* counting a read (planner/sampling and
    /// result-checking use).
    fn peek(&self, name: &RelationName) -> Result<Arc<Relation>>;

    /// Open a metered streaming scan: charges the full logical size at
    /// open (same total as [`Dfs::read`]), then yields tuples lazily.
    fn scan(&self, name: &RelationName) -> Result<RelationScan>;

    /// Size of a file without reading it (namenode metadata access).
    fn file_bytes(&self, name: &RelationName) -> Result<ByteSize>;

    /// Whether a file exists.
    fn exists(&self, name: &RelationName) -> bool;

    /// Delete a file; returns whether it was present.
    fn delete(&self, name: &RelationName) -> Result<bool>;

    /// Names of all stored files, sorted.
    fn file_names(&self) -> Vec<RelationName>;

    /// Total metered bytes read so far (HDFS input-cost counter).
    fn bytes_read(&self) -> ByteSize;

    /// Total metered bytes written so far.
    fn bytes_written(&self) -> ByteSize;

    /// Reset the I/O counters (between experiments).
    fn reset_counters(&self);

    /// Export the current file set as a [`Database`] (result checking).
    fn to_database(&self) -> Result<Database> {
        let mut db = Database::new();
        for name in self.file_names() {
            db.add_relation(self.peek(&name)?.as_ref().clone());
        }
        Ok(db)
    }

    /// Block-cache counters; all zeros for cacheless backends.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Durability barrier: after `flush` returns, committed relations
    /// survive a process exit. No-op for volatile backends.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

/// A file in the simulated DFS: one stored relation plus its size.
#[derive(Debug, Clone)]
pub struct DfsFile {
    relation: Arc<Relation>,
    bytes: ByteSize,
}

impl DfsFile {
    /// The stored relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Logical size of the file.
    pub fn bytes(&self) -> ByteSize {
        self.bytes
    }
}

/// An in-memory simulated distributed file system.
///
/// Files are keyed by relation name (the engine stores each relation —
/// base input, intermediate `Xᵢ`, or query output — as one file). Reads and
/// writes bump byte counters that back the paper's *input cost* metric
/// ("number of bytes read from hdfs over the entire MR plan", §5.1).
///
/// The file map lives behind an internal `RwLock` and the byte counters
/// are atomic, so a `SimDfs` is [`Sync`] and every operation takes
/// `&self`: concurrently scheduled jobs (the DAG scheduler in
/// `gumbo-sched`) plan, read and commit through one shared `&dyn Dfs`
/// with no external lock. Relations are handed out as `Arc` snapshots —
/// an overwrite replaces the stored `Arc`, it never mutates data a
/// concurrent reader already holds.
#[derive(Debug, Default)]
pub struct SimDfs {
    files: RwLock<BTreeMap<RelationName, DfsFile>>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

// The whole point of interior locking + atomic counters: a shared DFS can
// serve concurrent, metered traffic. (Compile-time regression check.)
const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    assert_sync::<SimDfs>()
};

/// A scan source over an in-memory relation snapshot.
struct SimScanSource {
    relation: Arc<Relation>,
}

impl TupleSource for SimScanSource {
    fn fetch(&self, range: Range<usize>) -> Result<Vec<gumbo_common::Tuple>> {
        let end = range.end.min(self.relation.len());
        let start = range.start.min(end);
        Ok(self
            .relation
            .iter()
            .skip(start)
            .take(end - start)
            .cloned()
            .collect())
    }
}

impl SimDfs {
    /// Create an empty DFS.
    pub fn new() -> Self {
        SimDfs::default()
    }

    /// Create a DFS pre-loaded with every relation of a database.
    pub fn from_database(db: &Database) -> Self {
        let dfs = SimDfs::new();
        for rel in db.relations() {
            dfs.store(rel.clone());
        }
        // Loading the initial database is not a metered write.
        dfs.bytes_written.store(0, Ordering::Relaxed);
        dfs
    }

    /// Store a relation, overwriting any previous file of the same name and
    /// counting the write. (Inherent twin of [`Dfs::store`]; infallible on
    /// the in-memory backend.)
    pub fn store(&self, relation: Relation) -> ByteSize {
        let bytes = ByteSize::bytes(relation.estimated_bytes());
        self.bytes_written
            .fetch_add(bytes.as_bytes(), Ordering::Relaxed);
        self.files.write().expect("unpoisoned DFS file map").insert(
            relation.name().clone(),
            DfsFile {
                relation: Arc::new(relation),
                bytes,
            },
        );
        bytes
    }

    /// Read a relation, counting the read.
    pub fn read(&self, name: &RelationName) -> Result<Arc<Relation>> {
        let files = self.files.read().expect("unpoisoned DFS file map");
        let file = files
            .get(name)
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))?;
        self.bytes_read
            .fetch_add(file.bytes.as_bytes(), Ordering::Relaxed);
        Ok(Arc::clone(&file.relation))
    }

    /// Inspect a relation *without* counting a read (planner/sampling use).
    pub fn peek(&self, name: &RelationName) -> Result<Arc<Relation>> {
        self.files
            .read()
            .expect("unpoisoned DFS file map")
            .get(name)
            .map(|f| Arc::clone(&f.relation))
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))
    }

    /// Size of a file without reading it (namenode metadata access).
    pub fn file_bytes(&self, name: &RelationName) -> Result<ByteSize> {
        self.files
            .read()
            .expect("unpoisoned DFS file map")
            .get(name)
            .map(|f| f.bytes)
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &RelationName) -> bool {
        self.files
            .read()
            .expect("unpoisoned DFS file map")
            .contains_key(name)
    }

    /// Delete a file, returning the relation if it was present.
    pub fn delete(&self, name: &RelationName) -> Option<Arc<Relation>> {
        self.files
            .write()
            .expect("unpoisoned DFS file map")
            .remove(name)
            .map(|f| f.relation)
    }

    /// Names of all stored files, sorted.
    pub fn file_names(&self) -> Vec<RelationName> {
        self.files
            .read()
            .expect("unpoisoned DFS file map")
            .keys()
            .cloned()
            .collect()
    }

    /// Total bytes read so far (HDFS input-cost counter).
    pub fn bytes_read(&self) -> ByteSize {
        ByteSize::bytes(self.bytes_read.load(Ordering::Relaxed))
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> ByteSize {
        ByteSize::bytes(self.bytes_written.load(Ordering::Relaxed))
    }

    /// Reset the I/O counters (between experiments).
    pub fn reset_counters(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }

    /// Export the current file set as a [`Database`] (for result checking).
    pub fn to_database(&self) -> Database {
        self.files
            .read()
            .expect("unpoisoned DFS file map")
            .values()
            .map(|f| f.relation.as_ref().clone())
            .collect()
    }
}

impl Dfs for SimDfs {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn store(&self, relation: Relation) -> Result<ByteSize> {
        Ok(SimDfs::store(self, relation))
    }

    fn read(&self, name: &RelationName) -> Result<Arc<Relation>> {
        SimDfs::read(self, name)
    }

    fn peek(&self, name: &RelationName) -> Result<Arc<Relation>> {
        SimDfs::peek(self, name)
    }

    fn scan(&self, name: &RelationName) -> Result<RelationScan> {
        // A scan meters exactly like a whole-relation read; the handle
        // then serves ranges from the Arc snapshot, lock-free.
        let relation = SimDfs::read(self, name)?;
        Ok(RelationScan::new(
            name.clone(),
            relation.arity(),
            relation.len(),
            ByteSize::bytes(relation.estimated_bytes()),
            Arc::new(SimScanSource { relation }),
        ))
    }

    fn file_bytes(&self, name: &RelationName) -> Result<ByteSize> {
        SimDfs::file_bytes(self, name)
    }

    fn exists(&self, name: &RelationName) -> bool {
        SimDfs::exists(self, name)
    }

    fn delete(&self, name: &RelationName) -> Result<bool> {
        Ok(SimDfs::delete(self, name).is_some())
    }

    fn file_names(&self) -> Vec<RelationName> {
        SimDfs::file_names(self)
    }

    fn bytes_read(&self) -> ByteSize {
        SimDfs::bytes_read(self)
    }

    fn bytes_written(&self) -> ByteSize {
        SimDfs::bytes_written(self)
    }

    fn reset_counters(&self) {
        SimDfs::reset_counters(self)
    }

    fn to_database(&self) -> Result<Database> {
        Ok(SimDfs::to_database(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gumbo_common::{Fact, Tuple};

    fn rel(name: &str, n: i64) -> Relation {
        Relation::from_tuples(name, 2, (0..n).map(|i| Tuple::from_ints(&[i, i + 1]))).unwrap()
    }

    #[test]
    fn store_and_read_counts_bytes() {
        let dfs = SimDfs::new();
        let written = dfs.store(rel("R", 5));
        assert_eq!(written, ByteSize::bytes(5 * 20));
        assert_eq!(dfs.bytes_written(), written);
        let r = dfs.read(&"R".into()).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(dfs.bytes_read(), written);
        // A second read counts again.
        dfs.read(&"R".into()).unwrap();
        assert_eq!(dfs.bytes_read(), written * 2);
    }

    #[test]
    fn peek_is_free() {
        let dfs = SimDfs::new();
        dfs.store(rel("R", 3));
        dfs.peek(&"R".into()).unwrap();
        assert_eq!(dfs.bytes_read(), ByteSize::ZERO);
    }

    #[test]
    fn missing_file_errors() {
        let dfs = SimDfs::new();
        assert!(dfs.read(&"Q".into()).is_err());
        assert!(dfs.file_bytes(&"Q".into()).is_err());
    }

    #[test]
    fn from_database_does_not_count_initial_load() {
        let mut db = Database::new();
        db.insert_fact(Fact::new("R", Tuple::from_ints(&[1, 2])))
            .unwrap();
        let dfs = SimDfs::from_database(&db);
        assert_eq!(dfs.bytes_written(), ByteSize::ZERO);
        assert!(dfs.exists(&"R".into()));
    }

    #[test]
    fn delete_removes() {
        let dfs = SimDfs::new();
        dfs.store(rel("R", 1));
        assert!(dfs.delete(&"R".into()).is_some());
        assert!(!dfs.exists(&"R".into()));
        assert!(dfs.delete(&"R".into()).is_none());
    }

    #[test]
    fn overwrite_replaces_contents() {
        let dfs = SimDfs::new();
        dfs.store(rel("R", 5));
        dfs.store(rel("R", 2));
        assert_eq!(dfs.peek(&"R".into()).unwrap().len(), 2);
    }

    #[test]
    fn scan_meters_once_and_fetches_ranges() {
        let dfs = SimDfs::new();
        let written = dfs.store(rel("R", 10));
        let scan = Dfs::scan(&dfs, &"R".into()).unwrap();
        assert_eq!(dfs.bytes_read(), written, "scan meters the whole file");
        assert_eq!(scan.len(), 10);
        assert_eq!(scan.arity(), 2);
        // Ranges come back in canonical order and re-assemble the whole.
        let head = scan.fetch(0..3).unwrap();
        let tail = scan.fetch(3..10).unwrap();
        assert_eq!(head.len(), 3);
        assert_eq!(tail.len(), 7);
        let all = scan.fetch(0..10).unwrap();
        assert_eq!(
            head.into_iter().chain(tail).collect::<Vec<_>>(),
            all,
            "range fetches concatenate to the full scan"
        );
        // No further metering from fetches.
        assert_eq!(dfs.bytes_read(), written);
        // Out-of-bounds is clamped, not an error.
        assert!(scan.fetch(10..20).unwrap().is_empty());
    }

    #[test]
    fn scan_snapshot_survives_concurrent_overwrite() {
        let dfs = SimDfs::new();
        dfs.store(rel("R", 5));
        let scan = Dfs::scan(&dfs, &"R".into()).unwrap();
        dfs.store(rel("R", 2)); // overwrite while the scan is open
        assert_eq!(scan.fetch(0..5).unwrap().len(), 5, "snapshot isolation");
        assert_eq!(dfs.peek(&"R".into()).unwrap().len(), 2);
    }

    #[test]
    fn concurrent_metered_reads_hammer_counters() {
        // 8 threads × 200 metered reads each through a shared reference:
        // the atomic counters must account every single read, and the
        // relation contents must stay readable throughout.
        let dfs = SimDfs::new();
        dfs.store(rel("R", 4)); // 4 tuples × 20 B = 80 B per read
        dfs.store(rel("S", 2)); // 2 tuples × 20 B = 40 B per read
        let dfs = &dfs;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    for i in 0..200 {
                        let name = if i % 2 == 0 { "R" } else { "S" };
                        let r = dfs.read(&name.into()).unwrap();
                        assert_eq!(r.len(), if i % 2 == 0 { 4 } else { 2 });
                    }
                });
            }
        });
        let expected = 8 * (100 * 80 + 100 * 40);
        assert_eq!(dfs.bytes_read(), ByteSize::bytes(expected));
    }

    #[test]
    fn concurrent_stores_and_reads_are_safe() {
        // Writers overwrite R while readers hold and use snapshots: no
        // torn reads, every snapshot is a complete relation.
        let dfs = SimDfs::new();
        dfs.store(rel("R", 8));
        let dfs = &dfs;
        std::thread::scope(|scope| {
            for w in 0..4 {
                scope.spawn(move || {
                    for n in 1..30 {
                        dfs.store(rel("R", (w * 30 + n) % 9 + 1));
                    }
                });
            }
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..100 {
                        let r = dfs.peek(&"R".into()).unwrap();
                        let n = r.len();
                        assert!((1..=9).contains(&n), "complete snapshot, got {n}");
                        assert_eq!(r.iter().count(), n);
                    }
                });
            }
        });
    }

    #[test]
    fn to_database_round_trip() {
        let dfs = SimDfs::new();
        dfs.store(rel("A", 2));
        dfs.store(rel("B", 3));
        let db = dfs.to_database();
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.get("B").unwrap().len(), 3);
    }

    #[test]
    fn trait_object_round_trip() {
        // The whole surface works through `&dyn Dfs`.
        let sim = SimDfs::new();
        let dfs: &dyn Dfs = &sim;
        assert_eq!(dfs.backend(), "sim");
        dfs.store(rel("R", 3)).unwrap();
        assert!(dfs.exists(&"R".into()));
        assert_eq!(dfs.read(&"R".into()).unwrap().len(), 3);
        assert_eq!(dfs.file_names(), vec![RelationName::from("R")]);
        assert_eq!(dfs.cache_stats(), CacheStats::default());
        dfs.flush().unwrap();
        assert!(dfs.delete(&"R".into()).unwrap());
        assert!(!dfs.delete(&"R".into()).unwrap());
    }
}
