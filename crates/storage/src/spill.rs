//! Job-scoped spill directories and on-disk run files.
//!
//! When the shuffle's in-memory buffers would exceed the configured
//! memory budget (see `gumbo_mr::shuffle`), sorted runs of key-value
//! pairs are flushed to disk and merged back lazily during the reduce
//! phase. This module owns the *filesystem* half of that story:
//!
//! * [`SpillDir`] — a job-scoped temporary directory holding every run
//!   file of one job's shuffle. Removal is RAII ([`Drop`]), so the
//!   directory disappears on success, on error returns, and on panics
//!   alike — `cargo test` leaves no spill litter behind.
//! * [`RunWriter`] / [`RunReader`] — length-prefixed binary frames,
//!   buffered in both directions. Frames are opaque bytes here; the
//!   encodings (the `(key, message)` pair codec and the columnar batch
//!   frames) live next to those types in `gumbo-mr` and `gumbo-common`.
//! * [`FrameFormat`] — every frame is stored as
//!   `[len u32][format u8][block]`, the format byte naming both the
//!   payload kind (pair-encoded vs columnar batch) and whether the block
//!   is raw or RLE-compressed. Readers reject unknown format bytes and
//!   frames of the wrong kind instead of guessing, so future formats are
//!   additive, never a breaking re-interpretation of old files.
//! * [`Compression`] — an optional per-frame RLE block codec. Both the
//!   pair and the columnar encodings store integer values as 8-byte
//!   little-endian words, so real shuffle data carries long zero runs;
//!   byte-level RLE shrinks run files (roughly a quarter on the
//!   reference spill sweep, more on wide-tuple data) at the small
//!   budgets where merge passes appear. The writer picks raw or RLE per
//!   frame, whichever is smaller, so incompressible frames cost only the
//!   format byte, never an expansion.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use gumbo_common::{GumboError, Result};

/// Process-wide sequence so concurrent jobs (and repeated jobs of one
/// process) never collide on a directory name.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn storage_err(context: &str, e: std::io::Error) -> GumboError {
    GumboError::Storage(format!("{context}: {e}"))
}

/// A job-scoped temporary directory for shuffle spill runs.
///
/// Created under the system temp dir with a unique name; removed (with
/// everything inside) when dropped, covering both success and error
/// paths of the owning job.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh spill directory for a job. `label` is embedded in
    /// the directory name (sanitized) purely for debuggability.
    ///
    /// Runs land under `$GUMBO_SPILL_DIR` when set, else the system temp
    /// dir. On distros where `/tmp` is RAM-backed tmpfs, spilling there
    /// would consume the very memory the budget protects — point
    /// `GUMBO_SPILL_DIR` at real disk in that case.
    pub fn create(label: &str) -> Result<SpillDir> {
        let root = std::env::var_os("GUMBO_SPILL_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        SpillDir::create_under(&root, label)
    }

    /// [`SpillDir::create`] with an explicit spill root.
    pub fn create_under(root: &Path, label: &str) -> Result<SpillDir> {
        let clean: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(40)
            .collect();
        let path = root.join(format!(
            "gumbo-spill-{}-{}-{clean}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&path).map_err(|e| storage_err("creating spill dir", e))?;
        Ok(SpillDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The path for one run file: partition `partition`, sequence `seq`
    /// within that partition.
    pub fn run_path(&self, partition: usize, seq: u64) -> PathBuf {
        self.path.join(format!("p{partition}-r{seq}.run"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failure to clean a temp dir must not mask the
        // job's own outcome (including an unwind in progress).
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// The block codec a [`RunWriter`] *may* apply to frames (the shuffle
/// derives it from the memory budget's `compress` flag). Readers no
/// longer need to agree up front: each frame's [`FrameFormat`] byte
/// records what was actually stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Frames stored verbatim.
    #[default]
    None,
    /// Frames stored byte-level RLE-encoded whenever that is smaller
    /// than the raw payload — per frame, whichever wins.
    Rle,
}

/// The per-frame format byte: payload kind × block codec.
///
/// Every run-file frame is `[len u32][format u8][block]` with
/// `len = 1 + block.len()`. The format byte is authoritative — a reader
/// rejects frames whose kind it did not expect and format bytes it does
/// not know, so corrupt or future-format files surface as errors rather
/// than silently wrong data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameFormat {
    /// A pair-encoded frame, raw block.
    Raw = 0,
    /// A pair-encoded frame, byte-level RLE block.
    Rle = 1,
    /// A columnar batch frame, raw block.
    Columnar = 2,
    /// A columnar batch frame, byte-level RLE block.
    ColumnarRle = 3,
}

impl FrameFormat {
    /// Decode a format byte; unknown values are an error, not a guess.
    pub fn from_byte(b: u8) -> Result<FrameFormat> {
        match b {
            0 => Ok(FrameFormat::Raw),
            1 => Ok(FrameFormat::Rle),
            2 => Ok(FrameFormat::Columnar),
            3 => Ok(FrameFormat::ColumnarRle),
            other => Err(GumboError::Storage(format!(
                "unknown spill frame format {other}"
            ))),
        }
    }
}

/// Byte-level run-length encoding: a sequence of `(count, byte)` pairs
/// with `1 ≤ count ≤ 255`. Worst case doubles the data (no run longer
/// than one), which is why the writer stores the raw payload instead
/// whenever RLE does not win.
fn rle_encode_into(data: &[u8], out: &mut Vec<u8>) {
    out.clear();
    let mut i = 0;
    while i < data.len() {
        let byte = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == byte {
            run += 1;
        }
        out.push(run as u8);
        out.push(byte);
        i += run;
    }
}

#[cfg(test)]
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    rle_encode_into(data, &mut out);
    out
}

/// Inverse of [`rle_encode`]. Rejects malformed input (odd length, zero
/// run counts) instead of guessing — a corrupt run must surface as an
/// error, never as silently different data. Shared with the durable-DFS
/// segment reader (`crate::file_dfs`), which random-accesses frames that
/// a [`RunWriter`] stored.
pub(crate) fn rle_decode(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() % 2 != 0 {
        return Err(GumboError::Storage(
            "malformed RLE spill block (odd length)".into(),
        ));
    }
    let mut out = Vec::with_capacity(data.len());
    for pair in data.chunks_exact(2) {
        let (count, byte) = (pair[0], pair[1]);
        if count == 0 {
            return Err(GumboError::Storage(
                "malformed RLE spill block (zero-length run)".into(),
            ));
        }
        out.extend(std::iter::repeat_n(byte, count as usize));
    }
    Ok(out)
}

/// Buffered writer of length-prefixed, format-tagged binary frames.
pub struct RunWriter {
    writer: BufWriter<File>,
    compression: Compression,
    frames: u64,
    bytes: u64,
    scratch: Vec<u8>,
}

impl RunWriter {
    /// Create (truncating) an uncompressed run file.
    pub fn create(path: &Path) -> Result<RunWriter> {
        RunWriter::create_with(path, Compression::None)
    }

    /// Create (truncating) a run file with an explicit block codec.
    pub fn create_with(path: &Path, compression: Compression) -> Result<RunWriter> {
        let file = File::create(path).map_err(|e| storage_err("creating spill run", e))?;
        Ok(RunWriter {
            writer: BufWriter::new(file),
            compression,
            frames: 0,
            bytes: 0,
            scratch: Vec::new(),
        })
    }

    /// Append one pair-encoded frame ([`FrameFormat::Raw`] /
    /// [`FrameFormat::Rle`]).
    pub fn push(&mut self, frame: &[u8]) -> Result<()> {
        self.push_tagged(frame, FrameFormat::Raw, FrameFormat::Rle)
    }

    /// Append one columnar batch frame ([`FrameFormat::Columnar`] /
    /// [`FrameFormat::ColumnarRle`]).
    pub fn push_columnar(&mut self, frame: &[u8]) -> Result<()> {
        self.push_tagged(frame, FrameFormat::Columnar, FrameFormat::ColumnarRle)
    }

    fn push_tagged(&mut self, frame: &[u8], raw: FrameFormat, rle: FrameFormat) -> Result<()> {
        let (block, format): (&[u8], FrameFormat) = match self.compression {
            Compression::None => (frame, raw),
            Compression::Rle => {
                rle_encode_into(frame, &mut self.scratch);
                if self.scratch.len() < frame.len() {
                    (&self.scratch, rle)
                } else {
                    (frame, raw)
                }
            }
        };
        let stored = block.len() + 1;
        let len = u32::try_from(stored)
            .map_err(|_| GumboError::Storage("spill frame exceeds 4 GiB".into()))?;
        self.writer
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.writer.write_all(&[format as u8]))
            .and_then(|()| self.writer.write_all(block))
            .map_err(|e| storage_err("writing spill run", e))?;
        self.frames += 1;
        self.bytes += 4 + stored as u64;
        Ok(())
    }

    /// Flush and close, returning `(frames, file bytes)` written.
    pub fn finish(mut self) -> Result<(u64, u64)> {
        self.writer
            .flush()
            .map_err(|e| storage_err("flushing spill run", e))?;
        Ok((self.frames, self.bytes))
    }
}

/// Buffered reader of length-prefixed, format-tagged binary frames.
pub struct RunReader {
    reader: BufReader<File>,
}

impl RunReader {
    /// Open a run file for sequential reading. No codec needs to be
    /// declared: each frame's format byte says how it was stored.
    pub fn open(path: &Path) -> Result<RunReader> {
        let file = File::open(path).map_err(|e| storage_err("opening spill run", e))?;
        Ok(RunReader {
            reader: BufReader::new(file),
        })
    }

    /// Read the next pair-encoded frame, or `None` at a clean end of
    /// file. A columnar frame here means the file was written by the
    /// other data plane — an error, never a misparse.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        match self.next_tagged()? {
            None => Ok(None),
            Some((FrameFormat::Raw, block)) => Ok(Some(block)),
            Some((FrameFormat::Rle, block)) => Ok(Some(rle_decode(&block)?)),
            Some((f @ (FrameFormat::Columnar | FrameFormat::ColumnarRle), _)) => {
                Err(GumboError::Storage(format!(
                    "columnar spill frame ({f:?}) in a pair-format read"
                )))
            }
        }
    }

    /// Read the next columnar batch frame, or `None` at a clean end of
    /// file. Pair-encoded frames are rejected symmetrically to
    /// [`next_frame`](Self::next_frame).
    pub fn next_columnar_frame(&mut self) -> Result<Option<Vec<u8>>> {
        match self.next_tagged()? {
            None => Ok(None),
            Some((FrameFormat::Columnar, block)) => Ok(Some(block)),
            Some((FrameFormat::ColumnarRle, block)) => Ok(Some(rle_decode(&block)?)),
            Some((f @ (FrameFormat::Raw | FrameFormat::Rle), _)) => Err(GumboError::Storage(
                format!("pair-encoded spill frame ({f:?}) in a columnar read"),
            )),
        }
    }

    /// Read the next `(format, block)`, or `None` at a clean end of file.
    ///
    /// A *torn* length prefix (EOF after 1–3 bytes), a missing format
    /// byte, and a truncated block are all errors, not ends of file:
    /// silently ending a truncated run early would make the shuffle merge
    /// drop data and return a wrong answer with exit code 0.
    fn next_tagged(&mut self) -> Result<Option<(FrameFormat, Vec<u8>)>> {
        let mut len = [0u8; 4];
        let mut got = 0;
        while got < len.len() {
            match self.reader.read(&mut len[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(GumboError::Storage(
                        "truncated spill frame length (torn run file)".into(),
                    ))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(storage_err("reading spill frame length", e)),
            }
        }
        let stored = u32::from_le_bytes(len) as usize;
        if stored == 0 {
            return Err(GumboError::Storage(
                "empty spill frame (missing format byte)".into(),
            ));
        }
        let mut frame = vec![0u8; stored];
        self.reader
            .read_exact(&mut frame)
            .map_err(|e| storage_err("reading spill frame (torn run file)", e))?;
        let format = FrameFormat::from_byte(frame[0])?;
        // Strip the format byte in place: no second allocation on the
        // merge/read hot path.
        frame.drain(..1);
        Ok(Some((format, frame)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_order() {
        let dir = SpillDir::create("roundtrip").unwrap();
        let path = dir.run_path(3, 0);
        let mut w = RunWriter::create(&path).unwrap();
        let frames: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; i as usize]).collect();
        for f in &frames {
            w.push(f).unwrap();
        }
        let (n, bytes) = w.finish().unwrap();
        assert_eq!(n, 100);
        // 4-byte length + 1 format byte + payload, per frame.
        assert_eq!(
            bytes,
            frames.iter().map(|f| 4 + 1 + f.len() as u64).sum::<u64>()
        );

        let mut r = RunReader::open(&path).unwrap();
        for f in &frames {
            assert_eq!(r.next_frame().unwrap().as_deref(), Some(f.as_slice()));
        }
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let dir = SpillDir::create("cleanup").unwrap();
        let path = dir.path().to_path_buf();
        let run = dir.run_path(0, 0);
        let mut w = RunWriter::create(&run).unwrap();
        w.push(b"payload").unwrap();
        w.finish().unwrap();
        assert!(path.is_dir());
        assert!(run.is_file());
        drop(dir);
        assert!(!path.exists(), "spill dir {path:?} survived drop");
    }

    #[test]
    fn spill_dir_is_removed_on_panic_unwind() {
        let seen = std::sync::Mutex::new(PathBuf::new());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let dir = SpillDir::create("unwind").unwrap();
            *seen.lock().unwrap() = dir.path().to_path_buf();
            panic!("job failed mid-shuffle");
        }));
        assert!(outcome.is_err());
        let path = seen.lock().unwrap().clone();
        assert!(!path.exists(), "spill dir {path:?} survived an unwind");
    }

    #[test]
    fn run_paths_are_distinct_per_partition_and_seq() {
        let dir = SpillDir::create("paths").unwrap();
        let mut all: Vec<PathBuf> = Vec::new();
        for p in 0..3 {
            for s in 0..3 {
                all.push(dir.run_path(p, s));
            }
        }
        let unique: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn dirs_of_concurrent_jobs_do_not_collide() {
        let a = SpillDir::create("same-label").unwrap();
        let b = SpillDir::create("same-label").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn explicit_spill_root_is_honored() {
        let root = std::env::temp_dir().join(format!("gumbo-spill-root-{}", std::process::id()));
        let dir = SpillDir::create_under(&root, "rooted").unwrap();
        assert!(dir.path().starts_with(&root), "{:?}", dir.path());
        let inner = dir.path().to_path_buf();
        drop(dir);
        assert!(!inner.exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_length_prefix_is_an_error_not_eof() {
        let dir = SpillDir::create("torn").unwrap();
        let path = dir.run_path(0, 0);
        let mut w = RunWriter::create(&path).unwrap();
        w.push(b"intact").unwrap();
        w.finish().unwrap();
        // Truncate mid-prefix of a would-be second frame.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[7, 0]); // 2 of 4 length bytes
        fs::write(&path, bytes).unwrap();

        let mut r = RunReader::open(&path).unwrap();
        assert_eq!(
            r.next_frame().unwrap().as_deref(),
            Some(b"intact".as_slice())
        );
        let err = r.next_frame().unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn rle_round_trips_arbitrary_blocks() {
        let blocks: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1000],                            // one long run
            (0..=255u8).collect(),                    // no runs at all
            vec![1, 1, 1, 2, 2, 0, 0, 0, 0, 9],       // mixed
            std::iter::repeat_n(42u8, 300).collect(), // run > 255
        ];
        for b in &blocks {
            assert_eq!(&rle_decode(&rle_encode(b)).unwrap(), b);
        }
        assert!(rle_decode(&[1]).is_err(), "odd length rejected");
        assert!(rle_decode(&[0, 5]).is_err(), "zero run rejected");
    }

    #[test]
    fn compressed_frames_round_trip_and_shrink_zero_heavy_data() {
        let dir = SpillDir::create("rle").unwrap();
        // Zero-heavy frames like the 8-byte-LE integer layout produces.
        let frames: Vec<Vec<u8>> = (0..50i64)
            .map(|i| {
                let mut f = Vec::new();
                f.extend_from_slice(&1u32.to_le_bytes());
                f.extend_from_slice(&i.to_le_bytes());
                f.extend_from_slice(&[0u8; 32]);
                f
            })
            .collect();
        let raw_total: u64 = frames.iter().map(|f| 4 + 1 + f.len() as u64).sum();

        let plain = dir.run_path(0, 0);
        let mut w = RunWriter::create_with(&plain, Compression::None).unwrap();
        for f in &frames {
            w.push(f).unwrap();
        }
        let (_, plain_bytes) = w.finish().unwrap();
        assert_eq!(plain_bytes, raw_total);

        let packed = dir.run_path(0, 1);
        let mut w = RunWriter::create_with(&packed, Compression::Rle).unwrap();
        for f in &frames {
            w.push(f).unwrap();
        }
        let (n, packed_bytes) = w.finish().unwrap();
        assert_eq!(n, 50);
        assert!(
            packed_bytes < plain_bytes / 2,
            "RLE should at least halve zero-heavy runs: {packed_bytes} vs {plain_bytes}"
        );

        let mut r = RunReader::open(&packed).unwrap();
        for f in &frames {
            assert_eq!(r.next_frame().unwrap().as_deref(), Some(f.as_slice()));
        }
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn incompressible_frames_survive_rle_mode() {
        // A frame with no runs: the writer must fall back to the raw
        // block (one tag byte of overhead) and the reader must undo it.
        let dir = SpillDir::create("rle-raw").unwrap();
        let frame: Vec<u8> = (0..=255u8).collect();
        let path = dir.run_path(0, 0);
        let mut w = RunWriter::create_with(&path, Compression::Rle).unwrap();
        w.push(&frame).unwrap();
        let (_, bytes) = w.finish().unwrap();
        assert_eq!(bytes, 4 + 1 + frame.len() as u64, "raw + format byte only");
        let mut r = RunReader::open(&path).unwrap();
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(frame.as_slice()));
    }

    #[test]
    fn unknown_format_byte_is_an_error() {
        let dir = SpillDir::create("bad-format").unwrap();
        let path = dir.run_path(0, 0);
        // Hand-craft a frame with an invalid format byte (9).
        fs::write(&path, [2u8, 0, 0, 0, 9, 9]).unwrap();
        let mut r = RunReader::open(&path).unwrap();
        let err = r.next_frame().unwrap_err();
        assert!(
            err.to_string().contains("unknown spill frame format"),
            "{err}"
        );
    }

    #[test]
    fn columnar_frames_round_trip_in_both_codecs() {
        let dir = SpillDir::create("columnar").unwrap();
        let frames: Vec<Vec<u8>> = (0..20i64)
            .map(|i| {
                let mut f = i.to_le_bytes().to_vec();
                f.extend_from_slice(&[0u8; 24]); // zero-heavy, like int columns
                f
            })
            .collect();
        for compression in [Compression::None, Compression::Rle] {
            let path = dir.run_path(0, u64::from(compression == Compression::Rle));
            let mut w = RunWriter::create_with(&path, compression).unwrap();
            for f in &frames {
                w.push_columnar(f).unwrap();
            }
            let (n, _) = w.finish().unwrap();
            assert_eq!(n, 20);
            let mut r = RunReader::open(&path).unwrap();
            for f in &frames {
                assert_eq!(r.next_columnar_frame().unwrap().as_deref(), Some(&f[..]));
            }
            assert!(r.next_columnar_frame().unwrap().is_none());
        }
    }

    #[test]
    fn frame_kind_mismatch_is_rejected_both_ways() {
        let dir = SpillDir::create("kind-mismatch").unwrap();
        let pair_run = dir.run_path(0, 0);
        let mut w = RunWriter::create(&pair_run).unwrap();
        w.push(b"pair frame").unwrap();
        w.finish().unwrap();
        let err = RunReader::open(&pair_run)
            .unwrap()
            .next_columnar_frame()
            .unwrap_err();
        assert!(err.to_string().contains("pair-encoded"), "{err}");

        let col_run = dir.run_path(0, 1);
        let mut w = RunWriter::create(&col_run).unwrap();
        w.push_columnar(b"columnar frame").unwrap();
        w.finish().unwrap();
        let err = RunReader::open(&col_run).unwrap().next_frame().unwrap_err();
        assert!(err.to_string().contains("columnar"), "{err}");
    }

    #[test]
    fn torn_frame_header_and_body_are_errors() {
        let dir = SpillDir::create("torn-header").unwrap();
        // A full length prefix claiming 5 bytes, but only the format byte
        // present: the body read must fail loudly.
        let torn_body = dir.run_path(0, 0);
        fs::write(&torn_body, [5u8, 0, 0, 0, 0]).unwrap();
        let err = RunReader::open(&torn_body)
            .unwrap()
            .next_frame()
            .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");

        // A zero-length frame has no room for its format byte.
        let headless = dir.run_path(0, 1);
        fs::write(&headless, [0u8, 0, 0, 0]).unwrap();
        let err = RunReader::open(&headless)
            .unwrap()
            .next_frame()
            .unwrap_err();
        assert!(err.to_string().contains("missing format byte"), "{err}");
    }

    #[test]
    fn empty_file_reads_as_no_frames() {
        let dir = SpillDir::create("empty").unwrap();
        let path = dir.run_path(0, 0);
        let w = RunWriter::create(&path).unwrap();
        assert_eq!(w.finish().unwrap(), (0, 0));
        let mut r = RunReader::open(&path).unwrap();
        assert!(r.next_frame().unwrap().is_none());
    }
}
