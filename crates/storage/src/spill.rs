//! Job-scoped spill directories and on-disk run files.
//!
//! When the shuffle's in-memory buffers would exceed the configured
//! memory budget (see `gumbo_mr::shuffle`), sorted runs of key-value
//! pairs are flushed to disk and merged back lazily during the reduce
//! phase. This module owns the *filesystem* half of that story:
//!
//! * [`SpillDir`] — a job-scoped temporary directory holding every run
//!   file of one job's shuffle. Removal is RAII ([`Drop`]), so the
//!   directory disappears on success, on error returns, and on panics
//!   alike — `cargo test` leaves no spill litter behind.
//! * [`RunWriter`] / [`RunReader`] — length-prefixed binary frames,
//!   buffered in both directions. Frames are opaque bytes here; the
//!   encoding of `(key, message)` pairs lives next to those types in
//!   `gumbo-mr`.
//!
//! Run files are plain uncompressed frames for now; compressed runs are
//! a ROADMAP follow-up.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use gumbo_common::{GumboError, Result};

/// Process-wide sequence so concurrent jobs (and repeated jobs of one
/// process) never collide on a directory name.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn storage_err(context: &str, e: std::io::Error) -> GumboError {
    GumboError::Storage(format!("{context}: {e}"))
}

/// A job-scoped temporary directory for shuffle spill runs.
///
/// Created under the system temp dir with a unique name; removed (with
/// everything inside) when dropped, covering both success and error
/// paths of the owning job.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh spill directory for a job. `label` is embedded in
    /// the directory name (sanitized) purely for debuggability.
    ///
    /// Runs land under `$GUMBO_SPILL_DIR` when set, else the system temp
    /// dir. On distros where `/tmp` is RAM-backed tmpfs, spilling there
    /// would consume the very memory the budget protects — point
    /// `GUMBO_SPILL_DIR` at real disk in that case.
    pub fn create(label: &str) -> Result<SpillDir> {
        let root = std::env::var_os("GUMBO_SPILL_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        SpillDir::create_under(&root, label)
    }

    /// [`SpillDir::create`] with an explicit spill root.
    pub fn create_under(root: &Path, label: &str) -> Result<SpillDir> {
        let clean: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(40)
            .collect();
        let path = root.join(format!(
            "gumbo-spill-{}-{}-{clean}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&path).map_err(|e| storage_err("creating spill dir", e))?;
        Ok(SpillDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The path for one run file: partition `partition`, sequence `seq`
    /// within that partition.
    pub fn run_path(&self, partition: usize, seq: u64) -> PathBuf {
        self.path.join(format!("p{partition}-r{seq}.run"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failure to clean a temp dir must not mask the
        // job's own outcome (including an unwind in progress).
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Buffered writer of length-prefixed binary frames.
pub struct RunWriter {
    writer: BufWriter<File>,
    frames: u64,
    bytes: u64,
}

impl RunWriter {
    /// Create (truncating) a run file.
    pub fn create(path: &Path) -> Result<RunWriter> {
        let file = File::create(path).map_err(|e| storage_err("creating spill run", e))?;
        Ok(RunWriter {
            writer: BufWriter::new(file),
            frames: 0,
            bytes: 0,
        })
    }

    /// Append one frame.
    pub fn push(&mut self, frame: &[u8]) -> Result<()> {
        let len = u32::try_from(frame.len())
            .map_err(|_| GumboError::Storage("spill frame exceeds 4 GiB".into()))?;
        self.writer
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.writer.write_all(frame))
            .map_err(|e| storage_err("writing spill run", e))?;
        self.frames += 1;
        self.bytes += 4 + frame.len() as u64;
        Ok(())
    }

    /// Flush and close, returning `(frames, file bytes)` written.
    pub fn finish(mut self) -> Result<(u64, u64)> {
        self.writer
            .flush()
            .map_err(|e| storage_err("flushing spill run", e))?;
        Ok((self.frames, self.bytes))
    }
}

/// Buffered reader of length-prefixed binary frames.
pub struct RunReader {
    reader: BufReader<File>,
}

impl RunReader {
    /// Open a run file for sequential reading.
    pub fn open(path: &Path) -> Result<RunReader> {
        let file = File::open(path).map_err(|e| storage_err("opening spill run", e))?;
        Ok(RunReader {
            reader: BufReader::new(file),
        })
    }

    /// Read the next frame, or `None` at a clean end of file.
    ///
    /// A *torn* length prefix (EOF after 1–3 bytes) is an error, not an
    /// end of file: silently ending a truncated run early would make the
    /// shuffle merge drop data and return a wrong answer with exit
    /// code 0.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let mut len = [0u8; 4];
        let mut got = 0;
        while got < len.len() {
            match self.reader.read(&mut len[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(GumboError::Storage(
                        "truncated spill frame length (torn run file)".into(),
                    ))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(storage_err("reading spill frame length", e)),
            }
        }
        let mut frame = vec![0u8; u32::from_le_bytes(len) as usize];
        self.reader
            .read_exact(&mut frame)
            .map_err(|e| storage_err("reading spill frame", e))?;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_order() {
        let dir = SpillDir::create("roundtrip").unwrap();
        let path = dir.run_path(3, 0);
        let mut w = RunWriter::create(&path).unwrap();
        let frames: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; i as usize]).collect();
        for f in &frames {
            w.push(f).unwrap();
        }
        let (n, bytes) = w.finish().unwrap();
        assert_eq!(n, 100);
        assert_eq!(
            bytes,
            frames.iter().map(|f| 4 + f.len() as u64).sum::<u64>()
        );

        let mut r = RunReader::open(&path).unwrap();
        for f in &frames {
            assert_eq!(r.next_frame().unwrap().as_deref(), Some(f.as_slice()));
        }
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let dir = SpillDir::create("cleanup").unwrap();
        let path = dir.path().to_path_buf();
        let run = dir.run_path(0, 0);
        let mut w = RunWriter::create(&run).unwrap();
        w.push(b"payload").unwrap();
        w.finish().unwrap();
        assert!(path.is_dir());
        assert!(run.is_file());
        drop(dir);
        assert!(!path.exists(), "spill dir {path:?} survived drop");
    }

    #[test]
    fn spill_dir_is_removed_on_panic_unwind() {
        let seen = std::sync::Mutex::new(PathBuf::new());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let dir = SpillDir::create("unwind").unwrap();
            *seen.lock().unwrap() = dir.path().to_path_buf();
            panic!("job failed mid-shuffle");
        }));
        assert!(outcome.is_err());
        let path = seen.lock().unwrap().clone();
        assert!(!path.exists(), "spill dir {path:?} survived an unwind");
    }

    #[test]
    fn run_paths_are_distinct_per_partition_and_seq() {
        let dir = SpillDir::create("paths").unwrap();
        let mut all: Vec<PathBuf> = Vec::new();
        for p in 0..3 {
            for s in 0..3 {
                all.push(dir.run_path(p, s));
            }
        }
        let unique: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn dirs_of_concurrent_jobs_do_not_collide() {
        let a = SpillDir::create("same-label").unwrap();
        let b = SpillDir::create("same-label").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn explicit_spill_root_is_honored() {
        let root = std::env::temp_dir().join(format!("gumbo-spill-root-{}", std::process::id()));
        let dir = SpillDir::create_under(&root, "rooted").unwrap();
        assert!(dir.path().starts_with(&root), "{:?}", dir.path());
        let inner = dir.path().to_path_buf();
        drop(dir);
        assert!(!inner.exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_length_prefix_is_an_error_not_eof() {
        let dir = SpillDir::create("torn").unwrap();
        let path = dir.run_path(0, 0);
        let mut w = RunWriter::create(&path).unwrap();
        w.push(b"intact").unwrap();
        w.finish().unwrap();
        // Truncate mid-prefix of a would-be second frame.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[7, 0]); // 2 of 4 length bytes
        fs::write(&path, bytes).unwrap();

        let mut r = RunReader::open(&path).unwrap();
        assert_eq!(
            r.next_frame().unwrap().as_deref(),
            Some(b"intact".as_slice())
        );
        let err = r.next_frame().unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn empty_file_reads_as_no_frames() {
        let dir = SpillDir::create("empty").unwrap();
        let path = dir.run_path(0, 0);
        let w = RunWriter::create(&path).unwrap();
        assert_eq!(w.finish().unwrap(), (0, 0));
        let mut r = RunReader::open(&path).unwrap();
        assert!(r.next_frame().unwrap().is_none());
    }
}
