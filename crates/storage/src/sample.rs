//! Reservoir sampling of stored relations.
//!
//! Gumbo estimates intermediate (map-output) data sizes by "simulation of
//! the map function on a sample of the input relations" (§5.1, optimization
//! (3)). This module provides the deterministic sampling primitive; the
//! simulation itself lives in `gumbo-core::planner::sampling`.

use gumbo_common::{Relation, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a uniform sample of up to `k` tuples from `relation` using
/// Algorithm R (reservoir sampling) with a fixed seed for reproducibility.
///
/// Returns all tuples when the relation has at most `k`.
pub fn reservoir_sample(relation: &Relation, k: usize, seed: u64) -> Vec<Tuple> {
    if k == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<Tuple> = Vec::with_capacity(k);
    for (i, tuple) in relation.iter().enumerate() {
        if i < k {
            reservoir.push(tuple.clone());
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = tuple.clone();
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn rel(n: i64) -> Relation {
        Relation::from_tuples("R", 1, (0..n).map(|i| Tuple::from_ints(&[i]))).unwrap()
    }

    #[test]
    fn small_relation_returned_whole() {
        let r = rel(3);
        let s = reservoir_sample(&r, 10, 42);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sample_size_capped_at_k() {
        let r = rel(1000);
        let s = reservoir_sample(&r, 32, 42);
        assert_eq!(s.len(), 32);
        // All sampled tuples come from the relation.
        for t in &s {
            assert!(r.contains(t));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let r = rel(500);
        assert_eq!(reservoir_sample(&r, 16, 7), reservoir_sample(&r, 16, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let r = rel(500);
        let a: BTreeSet<_> = reservoir_sample(&r, 16, 1).into_iter().collect();
        let b: BTreeSet<_> = reservoir_sample(&r, 16, 2).into_iter().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_k_is_empty() {
        assert!(reservoir_sample(&rel(10), 0, 0).is_empty());
    }

    #[test]
    fn coverage_is_roughly_uniform() {
        // Every element should be sampled at least once across many seeds.
        let r = rel(20);
        let mut seen = BTreeSet::new();
        for seed in 0..200 {
            for t in reservoir_sample(&r, 5, seed) {
                seen.insert(t);
            }
        }
        assert_eq!(seen.len(), 20);
    }
}
