//! # gumbo-storage
//!
//! The storage plane: a [`Dfs`] trait standing in for HDFS, with two
//! backends, plus the local spill files the bounded-memory shuffle uses.
//!
//! The paper's algorithms interact with HDFS only through a narrow
//! interface: reading relation files (at `hr` cost/MB), writing outputs
//! (at `hw` cost/MB), the split structure that determines mapper counts,
//! and **sampling** input relations to estimate map-output sizes (Gumbo
//! optimization (3), §5.1). The [`Dfs`] trait pins that interface down —
//! metered reads/scans/stores, free metadata peeks, byte counters — and
//! two backends implement it:
//!
//! * [`SimDfs`] — in-memory, deterministic, the default;
//! * [`FileDfs`] — durable file segments + manifest under a root
//!   directory, fronted by a byte-bounded LRU block cache
//!   ([`file_dfs`]).
//!
//! Alongside the DFS, the [`spill`] module provides the *local* storage
//! the bounded-memory shuffle uses: job-scoped temporary directories of
//! length-prefixed run files, removed via RAII on success and error
//! paths alike. [`FileDfs`] segments reuse the same frame codec.

pub mod dfs;
pub mod file_dfs;
pub mod sample;
pub mod spill;

pub use dfs::{CacheStats, Dfs, DfsFile, RelationScan, SimDfs, TupleSource};
pub use file_dfs::{FileDfs, DEFAULT_CACHE_BYTES};
pub use sample::reservoir_sample;
pub use spill::{Compression, FrameFormat, RunReader, RunWriter, SpillDir};
