//! # gumbo-storage
//!
//! A simulated distributed file system standing in for HDFS.
//!
//! The paper's algorithms interact with HDFS only through a narrow
//! interface: reading relation files (at `hr` cost/MB), writing outputs (at
//! `hw` cost/MB), the split structure that determines mapper counts, and
//! **sampling** input relations to estimate map-output sizes (Gumbo
//! optimization (3), §5.1). [`SimDfs`] implements exactly that interface
//! over in-memory relations with deterministic byte accounting.
//!
//! Alongside the simulated DFS, the [`spill`] module provides the *local*
//! storage the bounded-memory shuffle uses: job-scoped temporary
//! directories of length-prefixed run files, removed via RAII on success
//! and error paths alike.

pub mod dfs;
pub mod sample;
pub mod spill;

pub use dfs::{DfsFile, SimDfs};
pub use sample::reservoir_sample;
pub use spill::{Compression, FrameFormat, RunReader, RunWriter, SpillDir};
