//! The shared **estimation layer**: per-job cost estimates that both the
//! planner and the scheduler consume.
//!
//! Historically the §3.3 cost model served only the planner — grouping
//! semi-joins (`Greedy-BSGF`) and ordering groups (`Greedy-SGF`) by
//! estimated cost, after which the estimates were thrown away. This
//! module makes the estimate a first-class artifact: a [`JobEstimate`]
//! is produced at plan time (from the same [`JobProfile`]s the planner
//! prices — Eq. 2 for the per-partition `cost_gumbo` model, Eq. 3 for
//! the aggregated `cost_wang` model of Wang & Chan), attached to each
//! [`crate::Job`], and carried through [`crate::MrProgram::into_dag`] so
//! every DAG node is cost-annotated. The scheduler in `gumbo-sched` then
//! uses the annotations for
//!
//! * **placement** — picking which ready job to run next
//!   (shortest-job-first on [`JobEstimate::total_cost`], or
//!   critical-path on [`crate::JobDag::critical_paths`]);
//! * **thread sizing** — [`JobEstimate::suggested_parallelism`] bounds a
//!   job's worker pool under a total-core budget;
//! * **prediction** — [`list_schedule_makespan`] simulates list
//!   scheduling of the annotated DAG under `max_concurrent_jobs` slots,
//!   yielding the predicted DAG net time reported in
//!   [`crate::ProgramStats::predicted_net_time`].
//!
//! The estimate's cost decomposition (`map_cost` / `reduce_cost` /
//! `total_cost = cost_h + map + reduce`) mirrors exactly the measured
//! decomposition in [`crate::JobStats`], so estimated and observed jobs
//! are directly comparable — the planner-accuracy story of §5.2.

use gumbo_common::ByteSize;

use crate::cost::{job_cost, CostConstants, CostModelKind};
use crate::profile::JobProfile;

/// A plan-time estimate of one MapReduce job, priced by the §3.3 cost
/// model over an estimated [`JobProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobEstimate {
    /// Estimated map-phase cost (per-partition Eq. 2 sum under the Gumbo
    /// model; aggregated Eq. 3 under the Wang model).
    pub map_cost: f64,
    /// Estimated reduce-phase cost (`cost_red(M, K)`).
    pub reduce_cost: f64,
    /// Estimated full job cost: `cost_h + map_cost + reduce_cost` — the
    /// shortest-job-first placement key.
    pub total_cost: f64,
    /// Estimated DFS input, `Σᵢ Nᵢ`.
    pub input_bytes: ByteSize,
    /// Estimated shuffle volume, `M = Σᵢ Mᵢ`.
    pub shuffle_bytes: ByteSize,
    /// Estimated output cardinality `K` (upper bound, §4.1's `K ≤ N₁`).
    pub output_bytes: ByteSize,
    /// Estimated reduce-task count.
    pub reducers: usize,
    /// Suggested intra-job parallelism: the widest phase of the job
    /// (`max(Σᵢ mᵢ, r)`). The scheduler clamps this under its total-core
    /// budget when sizing per-job worker pools.
    pub suggested_parallelism: usize,
    /// Predicted (scaled) bytes of the Bloom-filter broadcast when this
    /// job runs the filtered shuffle; [`ByteSize::ZERO`] for unfiltered
    /// estimates. When set, `shuffle_bytes` is already the *filtered*
    /// (post-suppression) volume, so `shuffle_bytes + filter_bytes` is
    /// the predicted communication — the quantity `auto` mode compares
    /// against the unfiltered shuffle.
    pub filter_bytes: ByteSize,
    /// Predicted filter false-positive rate (`(1 − e^{−kn/m})^k`); `None`
    /// for unfiltered estimates.
    pub predicted_fp_rate: Option<f64>,
}

impl JobEstimate {
    /// Price an estimated profile under the chosen cost model. The
    /// decomposition matches the engine's measured accounting in
    /// `commit_job`, so estimates and observations compare like for like.
    pub fn from_profile(
        model: CostModelKind,
        constants: &CostConstants,
        profile: &JobProfile,
    ) -> JobEstimate {
        let reduce_cost =
            constants.cost_red(profile.total_map_output(), profile.reducers, profile.output);
        let map_cost = match model {
            CostModelKind::Gumbo => profile
                .partitions
                .iter()
                .map(|p| constants.cost_map(p))
                .sum(),
            CostModelKind::Wang => {
                job_cost(CostModelKind::Wang, constants, profile)
                    - constants.job_overhead
                    - reduce_cost
            }
        };
        JobEstimate {
            map_cost,
            reduce_cost,
            total_cost: constants.job_overhead + map_cost + reduce_cost,
            input_bytes: profile.total_input(),
            shuffle_bytes: profile.total_map_output(),
            output_bytes: profile.output,
            reducers: profile.reducers,
            suggested_parallelism: profile.total_mappers().max(profile.reducers).max(1),
            filter_bytes: ByteSize::ZERO,
            predicted_fp_rate: None,
        }
    }

    /// Fold a predicted filter broadcast into this estimate: records the
    /// filter bytes and fp rate, and charges the broadcast's transfer
    /// cost to the map phase — mirroring `commit_job`'s measured
    /// accounting, so `total_cost = cost_h + map + reduce` still holds.
    /// Call on an estimate built from the *filtered* (post-suppression)
    /// profile.
    pub fn with_filter(
        mut self,
        constants: &CostConstants,
        filter_bytes: ByteSize,
        predicted_fp_rate: f64,
    ) -> JobEstimate {
        let broadcast_cost = constants.transfer * filter_bytes.as_mb();
        self.filter_bytes = filter_bytes;
        self.predicted_fp_rate = Some(predicted_fp_rate);
        self.map_cost += broadcast_cost;
        self.total_cost += broadcast_cost;
        self
    }
}

/// Longest estimated path from each node to a sink, *including* the
/// node's own duration — the critical-path priority of `cp` placement.
///
/// `deps[i]` lists the prerequisite indices of node `i`; every edge must
/// point forward (`dep < i`), which is exactly the invariant
/// [`crate::JobDag`] maintains. A node's critical path is its duration
/// plus the maximum critical path among the nodes that depend on it; the
/// maximum over all nodes is the DAG's critical-path length — a lower
/// bound on the makespan of *any* schedule, however many job slots.
pub fn critical_path_lengths<D: AsRef<[usize]>>(durations: &[f64], deps: &[D]) -> Vec<f64> {
    assert_eq!(durations.len(), deps.len(), "one dep list per node");
    let mut cp = durations.to_vec();
    // Reverse order: dependents of i always have indices > i.
    for i in (0..deps.len()).rev() {
        let tail = cp[i];
        for &d in deps[i].as_ref() {
            debug_assert!(d < i, "edges point forward");
            if cp[d] < durations[d] + tail {
                cp[d] = durations[d] + tail;
            }
        }
    }
    cp
}

/// Makespan of list-scheduling a DAG of jobs onto `slots` identical job
/// slots: each job starts the moment all its prerequisites have finished
/// and a slot is free, with ready ties broken by the priority function
/// (then by index). This is the scheduler-aware **net-time model**: with
/// per-job durations from the estimation layer it *predicts* the wall
/// clock of DAG-scheduled execution, complementing the paper's per-round
/// model (sum of round makespans) which assumes a barrier between
/// rounds.
///
/// `priority(i)` ranks ready jobs (smaller runs first); pass a constant
/// for plain FIFO-by-index order.
pub fn list_schedule_makespan_by<D, F>(
    durations: &[f64],
    deps: &[D],
    slots: usize,
    priority: F,
) -> f64
where
    D: AsRef<[usize]>,
    F: Fn(usize) -> f64,
{
    list_schedule_finish_times_by(durations, deps, slots, priority)
        .into_iter()
        .fold(0.0, f64::max)
}

/// The per-job finish times of [`list_schedule_makespan_by`]'s simulated
/// schedule (seconds from schedule start). The multi-tenant scheduler
/// uses these to predict each *submission's* completion inside one
/// global simulation — cross-submission conflict edges and slot
/// contention included — so the prediction is comparable to the
/// per-submission wall clock it is reported next to.
pub fn list_schedule_finish_times_by<D, F>(
    durations: &[f64],
    deps: &[D],
    slots: usize,
    priority: F,
) -> Vec<f64>
where
    D: AsRef<[usize]>,
    F: Fn(usize) -> f64,
{
    assert_eq!(durations.len(), deps.len(), "one dep list per node");
    let n = durations.len();
    let mut finish_at = vec![0.0f64; n];
    if n == 0 {
        return finish_at;
    }
    let slots = slots.max(1);
    let mut indegree: Vec<usize> = deps.iter().map(|d| d.as_ref().len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, d) in deps.iter().enumerate() {
        for &p in d.as_ref() {
            dependents[p].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut running: Vec<(f64, usize)> = Vec::new(); // (finish time, node)
    let mut time = 0.0f64;
    loop {
        while running.len() < slots && !ready.is_empty() {
            // Claim the highest-priority ready job (ties: lowest index).
            let best = ready
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    (priority(a), a)
                        .partial_cmp(&(priority(b), b))
                        .expect("finite priorities")
                })
                .map(|(pos, _)| pos)
                .expect("non-empty ready list");
            let node = ready.swap_remove(best);
            let finish = time + durations[node];
            finish_at[node] = finish;
            running.push((finish, node));
        }
        if running.is_empty() {
            break;
        }
        // Advance to the earliest completion.
        let next = running
            .iter()
            .enumerate()
            .min_by(|(_, (a, _)), (_, (b, _))| a.partial_cmp(b).expect("finite finish times"))
            .map(|(pos, _)| pos)
            .expect("non-empty running set");
        let (finish, node) = running.swap_remove(next);
        time = finish;
        for &d in &dependents[node] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.push(d);
            }
        }
    }
    finish_at
}

/// [`list_schedule_makespan_by`] with FIFO (flat-index) tie-breaking —
/// the deterministic, policy-independent definition the predicted DAG
/// net-time metric uses.
pub fn list_schedule_makespan<D: AsRef<[usize]>>(
    durations: &[f64],
    deps: &[D],
    slots: usize,
) -> f64 {
    list_schedule_makespan_by(durations, deps, slots, |_| 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::InputPartition;

    fn profile() -> JobProfile {
        JobProfile {
            partitions: vec![
                InputPartition {
                    label: "R".into(),
                    input: ByteSize::mb(1000),
                    map_output: ByteSize::mb(2000),
                    records_out: 1_000_000,
                    mappers: 8,
                },
                InputPartition {
                    label: "S".into(),
                    input: ByteSize::mb(500),
                    map_output: ByteSize::mb(100),
                    records_out: 100_000,
                    mappers: 4,
                },
            ],
            reducers: 6,
            output: ByteSize::mb(300),
        }
    }

    #[test]
    fn estimate_decomposition_is_consistent() {
        let c = CostConstants::default();
        let p = profile();
        for model in [CostModelKind::Gumbo, CostModelKind::Wang] {
            let e = JobEstimate::from_profile(model, &c, &p);
            assert!(
                (e.total_cost - (c.job_overhead + e.map_cost + e.reduce_cost)).abs() < 1e-9,
                "{model:?}"
            );
            assert!(
                (e.total_cost - job_cost(model, &c, &p)).abs() < 1e-6,
                "{model:?}"
            );
            assert_eq!(e.input_bytes, ByteSize::mb(1500));
            assert_eq!(e.shuffle_bytes, ByteSize::mb(2100));
            assert_eq!(e.output_bytes, ByteSize::mb(300));
            assert_eq!(e.reducers, 6);
            assert_eq!(e.suggested_parallelism, 12); // 12 mappers > 6 reducers
        }
    }

    #[test]
    fn filtered_estimate_keeps_the_decomposition() {
        let c = CostConstants::default();
        let p = profile();
        let base = JobEstimate::from_profile(CostModelKind::Gumbo, &c, &p);
        let filtered = base.clone().with_filter(&c, ByteSize::mb(2), 0.01);
        assert!(filtered.total_cost > base.total_cost);
        assert!(
            (filtered.total_cost - (c.job_overhead + filtered.map_cost + filtered.reduce_cost))
                .abs()
                < 1e-9
        );
        assert_eq!(filtered.filter_bytes, ByteSize::mb(2));
        assert_eq!(filtered.predicted_fp_rate, Some(0.01));
        assert_eq!(filtered.reduce_cost, base.reduce_cost);
    }

    #[test]
    fn critical_paths_on_a_diamond() {
        // 0 → {1, 2} → 3 with durations 1, 2, 5, 1.
        let deps: [&[usize]; 4] = [&[], &[0], &[0], &[1, 2]];
        let cp = critical_path_lengths(&[1.0, 2.0, 5.0, 1.0], &deps);
        assert_eq!(cp, vec![7.0, 3.0, 6.0, 1.0]);
    }

    #[test]
    fn chain_on_one_slot_is_the_sum() {
        let deps: [&[usize]; 3] = [&[], &[0], &[1]];
        let d = [2.0, 3.0, 4.0];
        assert!((list_schedule_makespan(&d, &deps, 1) - 9.0).abs() < 1e-12);
        // A chain cannot go faster with more slots.
        assert!((list_schedule_makespan(&d, &deps, 8) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_overlaps_with_enough_slots() {
        let deps: [&[usize]; 4] = [&[], &[0], &[0], &[1, 2]];
        let d = [1.0, 2.0, 5.0, 1.0];
        // 1 slot: everything serial.
        assert!((list_schedule_makespan(&d, &deps, 1) - 9.0).abs() < 1e-12);
        // 2+ slots: the two middle jobs overlap -> critical path 1+5+1.
        assert!((list_schedule_makespan(&d, &deps, 2) - 7.0).abs() < 1e-12);
        let cp = critical_path_lengths(&d, &deps);
        assert!((list_schedule_makespan(&d, &deps, 4) - cp[0]).abs() < 1e-12);
    }

    #[test]
    fn priority_order_changes_the_packing() {
        // Two independent pairs {0(3.0)}, {1(1.0)}, one slot free at a
        // time for the second wave: with SJF ordering the short job goes
        // first. Shapes makespan only under contention.
        let deps: [&[usize]; 3] = [&[], &[], &[1]];
        let d = [3.0, 1.0, 1.0];
        // FIFO on 1 slot: 0, 1, 2 -> 5. SJF: 1, 2 ... still 5 total on
        // one slot (work conserving), but job 2 finishes earlier; the
        // makespan is the same here — assert both are the total.
        assert!((list_schedule_makespan(&d, &deps, 1) - 5.0).abs() < 1e-12);
        assert!((list_schedule_makespan_by(&d, &deps, 1, |i| d[i]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dag_has_zero_makespan() {
        let deps: [&[usize]; 0] = [];
        assert_eq!(list_schedule_makespan(&[], &deps, 4), 0.0);
    }
}
