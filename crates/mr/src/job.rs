//! Job definitions: mapper/reducer traits and per-job configuration.

use std::fmt;

use gumbo_common::{ByteSize, Fact, RelationName, Tuple};

use crate::estimate::JobEstimate;
use crate::message::Message;
use crate::shuffle_filter::FilterSpec;

/// A map function `µ`.
///
/// Called once per input fact, in the deterministic order of the job's
/// input relations. `index` is the fact's position within its relation's
/// canonical (sorted) order — the tuple id used by the guard-reference
/// optimization (§5.1 (2)).
pub trait Mapper: Send + Sync {
    /// Process one fact, emitting key-value pairs.
    fn map(&self, fact: &Fact, index: u64, emit: &mut dyn FnMut(Tuple, Message));
}

/// A reduce function `ρ`.
///
/// Called once per key group with all values for that key.
pub trait Reducer: Send + Sync {
    /// Process one group, emitting `(output relation, tuple)` pairs.
    fn reduce(&self, key: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple));
}

/// How a job chooses its reducer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducerPolicy {
    /// Gumbo's policy (§5.1 (3)): reducers sized by **intermediate** data,
    /// one reducer per `mb_per_reducer` MB of (estimated) map output.
    /// The paper allocates 256 MB per reducer.
    ByIntermediate {
        /// MB of intermediate data per reducer.
        mb_per_reducer: u64,
    },
    /// Pig's default policy (§5.2): reducers sized by map **input**,
    /// one reducer per `mb_per_reducer` MB of input (Pig uses 1 GB).
    ByInput {
        /// MB of map input per reducer.
        mb_per_reducer: u64,
    },
    /// A fixed reducer count.
    Fixed(usize),
}

impl ReducerPolicy {
    /// Gumbo's default: 256 MB of intermediate data per reducer.
    pub fn gumbo_default() -> Self {
        ReducerPolicy::ByIntermediate {
            mb_per_reducer: 256,
        }
    }

    /// Pig's default: 1 GB of input per reducer.
    pub fn pig_default() -> Self {
        ReducerPolicy::ByInput {
            mb_per_reducer: 1000,
        }
    }

    /// Resolve the reducer count from (scaled) input and intermediate sizes.
    pub fn reducers(&self, total_input: ByteSize, total_map_output: ByteSize) -> usize {
        match *self {
            ReducerPolicy::ByIntermediate { mb_per_reducer } => {
                div_ceil_mb(total_map_output, mb_per_reducer)
            }
            ReducerPolicy::ByInput { mb_per_reducer } => div_ceil_mb(total_input, mb_per_reducer),
            ReducerPolicy::Fixed(r) => r.max(1),
        }
    }
}

fn div_ceil_mb(bytes: ByteSize, mb_per_reducer: u64) -> usize {
    let per = (mb_per_reducer.max(1)) * gumbo_common::MB;
    (bytes.as_bytes().div_ceil(per)).max(1) as usize
}

/// Per-job knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Message packing (§5.1 (1)): key bytes are charged once per distinct
    /// key per map task instead of once per message.
    pub packing: bool,
    /// Reducer allocation policy.
    pub reducer_policy: ReducerPolicy,
    /// DFS split size in MB (Hadoop default 128 MB) — determines `mᵢ`.
    pub split_mb: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            packing: true,
            reducer_policy: ReducerPolicy::gumbo_default(),
            split_mb: 128,
        }
    }
}

impl JobConfig {
    /// Configuration modelling the Pig/Hive baselines: no packing, Pig's
    /// input-based reducer allocation.
    pub fn baseline() -> Self {
        JobConfig {
            packing: false,
            reducer_policy: ReducerPolicy::pig_default(),
            split_mb: 128,
        }
    }

    /// Number of map tasks for an input of the given (scaled) size.
    pub fn mappers_for(&self, input: ByteSize) -> usize {
        let split = (self.split_mb.max(1)) * gumbo_common::MB;
        (input.as_bytes().div_ceil(split)).max(1) as usize
    }
}

/// One MapReduce job: `(µ, ρ)` plus input/output wiring and configuration.
pub struct Job {
    /// Display name (e.g. `MSJ(X1,X2)` or `EVAL(R, φ)`).
    pub name: String,
    /// Input relation files, read in order.
    pub inputs: Vec<RelationName>,
    /// Declared outputs with arities; created (possibly empty) on completion.
    pub outputs: Vec<(RelationName, usize)>,
    /// The map function.
    pub mapper: Box<dyn Mapper>,
    /// The reduce function.
    pub reducer: Box<dyn Reducer>,
    /// Job configuration.
    pub config: JobConfig,
    /// Plan-time cost estimate from the shared estimation layer
    /// ([`crate::estimate`]). Attached by the planner (`None` for jobs
    /// built outside it); carried through `MrProgram::into_dag()` so the
    /// scheduler can place, size and predict from the same numbers the
    /// planner optimized.
    pub estimate: Option<JobEstimate>,
    /// How this job's messages map onto filterable semijoin sides
    /// ([`crate::shuffle_filter`]). `None` (the default for jobs built
    /// outside the MSJ planner) means the job never runs the filtered
    /// shuffle, whatever [`crate::EngineConfig::shuffle_filter`] says.
    pub filter: Option<FilterSpec>,
}

impl Job {
    /// Attach (or replace) this job's plan-time estimate.
    pub fn with_estimate(mut self, estimate: JobEstimate) -> Job {
        self.estimate = Some(estimate);
        self
    }
    /// Names of the relations this job reads, in read order.
    ///
    /// Together with [`Job::output_names`] this is the job's complete DFS
    /// footprint — the dependency information the DAG lowering
    /// (`MrProgram::into_dag`) infers scheduling edges from.
    pub fn input_names(&self) -> impl Iterator<Item = &RelationName> + '_ {
        self.inputs.iter()
    }

    /// Names of the relations this job writes (declared outputs).
    pub fn output_names(&self) -> impl Iterator<Item = &RelationName> + '_ {
        self.outputs.iter().map(|(name, _)| name)
    }
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .field("config", &self.config)
            .field("estimate", &self.estimate)
            .field("filter", &self.filter)
            .finish_non_exhaustive()
    }
}

/// Test-only fixtures shared by this crate's unit and property tests: a
/// mapper/reducer pair that emits nothing, and a job builder that only
/// cares about relation wiring (which is all the program/DAG layers look
/// at).
#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::message::Message;

    /// Emits nothing, on either side of the shuffle.
    pub(crate) struct Noop;

    impl Mapper for Noop {
        fn map(&self, _: &Fact, _: u64, _: &mut dyn FnMut(Tuple, Message)) {}
    }

    impl Reducer for Noop {
        fn reduce(&self, _: &Tuple, _: &[Message], _: &mut dyn FnMut(&RelationName, Tuple)) {}
    }

    /// A no-op job reading `inputs` and declaring unary `outputs`.
    pub(crate) fn noop_job<I, O>(name: impl Into<String>, inputs: I, outputs: O) -> Job
    where
        I: IntoIterator,
        I::Item: Into<RelationName>,
        O: IntoIterator,
        O::Item: Into<RelationName>,
    {
        Job {
            name: name.into(),
            inputs: inputs.into_iter().map(Into::into).collect(),
            outputs: outputs.into_iter().map(|n| (n.into(), 1)).collect(),
            mapper: Box::new(Noop),
            reducer: Box::new(Noop),
            config: JobConfig::default(),
            estimate: None,
            filter: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gumbo_policy_sizes_by_intermediate() {
        let p = ReducerPolicy::gumbo_default();
        // 1000 MB intermediate / 256 MB = 4 reducers; input is ignored.
        assert_eq!(p.reducers(ByteSize::mb(1_000_000), ByteSize::mb(1000)), 4);
        assert_eq!(p.reducers(ByteSize::ZERO, ByteSize::mb(1)), 1);
    }

    #[test]
    fn pig_policy_sizes_by_input() {
        let p = ReducerPolicy::pig_default();
        // 5 GB input / 1 GB = 5 reducers; intermediate is ignored.
        assert_eq!(p.reducers(ByteSize::mb(5000), ByteSize::mb(1_000_000)), 5);
    }

    #[test]
    fn fixed_policy_clamps_to_one() {
        assert_eq!(
            ReducerPolicy::Fixed(0).reducers(ByteSize::ZERO, ByteSize::ZERO),
            1
        );
        assert_eq!(
            ReducerPolicy::Fixed(7).reducers(ByteSize::ZERO, ByteSize::ZERO),
            7
        );
    }

    #[test]
    fn at_least_one_reducer_for_empty_data() {
        assert_eq!(
            ReducerPolicy::gumbo_default().reducers(ByteSize::ZERO, ByteSize::ZERO),
            1
        );
    }

    #[test]
    fn mapper_count_from_splits() {
        let cfg = JobConfig::default();
        assert_eq!(cfg.mappers_for(ByteSize::mb(4000)), 32); // 4 GB / 128 MB
        assert_eq!(cfg.mappers_for(ByteSize::mb(1)), 1);
        assert_eq!(cfg.mappers_for(ByteSize::ZERO), 1);
        assert_eq!(cfg.mappers_for(ByteSize::mb(129)), 2);
    }
}
