//! The cluster model: net time as makespan of task waves.
//!
//! The paper measures *net time* (query start to end) on a 10-node cluster
//! with 10-core nodes (§5.1). We model the cluster as `nodes × slots`
//! parallel task slots per phase and compute the makespan of scheduling a
//! bag of task durations with LPT (longest processing time first) list
//! scheduling — the same greedy policy Hadoop's scheduler approximates for
//! independent tasks.

/// A cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cluster {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
}

impl Default for Cluster {
    /// The paper's setup: 10 nodes, 10 cores each (YARN caps vcores at 10).
    fn default() -> Self {
        Cluster {
            nodes: 10,
            map_slots_per_node: 10,
            reduce_slots_per_node: 10,
        }
    }
}

impl Cluster {
    /// A cluster with `nodes` nodes and the paper's per-node slot counts.
    pub fn with_nodes(nodes: usize) -> Self {
        Cluster {
            nodes,
            ..Cluster::default()
        }
    }

    /// Total map slots.
    pub fn map_slots(&self) -> usize {
        (self.nodes * self.map_slots_per_node).max(1)
    }

    /// Total reduce slots.
    pub fn reduce_slots(&self) -> usize {
        (self.nodes * self.reduce_slots_per_node).max(1)
    }
}

/// Makespan of scheduling independent tasks onto `slots` identical machines
/// using LPT list scheduling. Deterministic; ties broken by insertion order.
pub fn lpt_makespan(durations: &[f64], slots: usize) -> f64 {
    let slots = slots.max(1);
    if durations.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = durations.to_vec();
    // Descending; total order is safe because durations are finite & >= 0.
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite durations"));
    let mut loads = vec![0.0f64; slots.min(sorted.len())];
    for d in sorted {
        // Assign to the least-loaded slot.
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite loads"))
            .expect("at least one slot");
        loads[idx] += d;
    }
    loads.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bag_has_zero_makespan() {
        assert_eq!(lpt_makespan(&[], 10), 0.0);
    }

    #[test]
    fn single_slot_sums() {
        assert!((lpt_makespan(&[1.0, 2.0, 3.0], 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn enough_slots_gives_max() {
        assert!((lpt_makespan(&[1.0, 2.0, 3.0], 10) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_balances() {
        // 4 tasks of 1.0 on 2 slots -> 2.0.
        assert!((lpt_makespan(&[1.0; 4], 2) - 2.0).abs() < 1e-12);
        // {3,3,2,2,2} on 2 slots: LPT assigns 3|3, 2|2, 2 -> makespan 7
        // (optimal is 6; LPT is a 7/6-approximation, good enough for the
        // wave-scheduling model).
        assert!((lpt_makespan(&[3.0, 3.0, 2.0, 2.0, 2.0], 2) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_monotone_in_slots() {
        let tasks: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let m5 = lpt_makespan(&tasks, 5);
        let m10 = lpt_makespan(&tasks, 10);
        let m40 = lpt_makespan(&tasks, 40);
        assert!(m5 >= m10);
        assert!(m10 >= m40);
        assert!((m40 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_slot_arithmetic() {
        let c = Cluster::default();
        assert_eq!(c.map_slots(), 100);
        assert_eq!(Cluster::with_nodes(5).map_slots(), 50);
        let tiny = Cluster {
            nodes: 0,
            map_slots_per_node: 0,
            reduce_slots_per_node: 0,
        };
        assert_eq!(tiny.map_slots(), 1);
    }
}
