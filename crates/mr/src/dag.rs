//! Job DAGs: the dependency-graph form of an MR program (§3.2).
//!
//! The paper defines an MR program as a *DAG of jobs* whose rounds are
//! merely the levels of that DAG. [`MrProgram`] stores rounds directly
//! (that is how the paper's plans are written down); [`MrProgram::into_dag`]
//! recovers the DAG by inferring edges from each job's input/output
//! relation names. The lowering preserves round semantics exactly: the
//! round-order flattening of the program is always a valid topological
//! order of the resulting DAG, and any other topological order produces
//! byte-identical DFS contents — which is what lets the dependency-driven
//! scheduler in `gumbo-sched` overlap jobs from different rounds without
//! changing a single answer byte.
//!
//! Edges are *conflict* edges over the flattened job sequence: an earlier
//! job is a dependency of a later one iff they touch a common relation
//! with at least one side writing it —
//!
//! * **write → read** (true dependency): the consumer must see the
//!   producer's file;
//! * **read → write** (anti-dependency): the reader must see the file
//!   *before* it is overwritten;
//! * **write → write** (output dependency): the last writer's file must
//!   survive.
//!
//! Jobs of one round never conflict in practice (the round-barrier
//! executor runs them against the same DFS snapshot), but if they do, the
//! in-round execution order is preserved by the same rule — sequential
//! consistency with the barrier runtime is never lost, only relaxed where
//! provably safe.

use std::collections::BTreeSet;

use gumbo_common::RelationName;

use crate::estimate::{critical_path_lengths, list_schedule_makespan, JobEstimate};
use crate::job::Job;
use crate::program::MrProgram;

/// One node of a [`JobDag`]: a job plus its dependency wiring and the
/// round it occupied in the source program (kept so per-job statistics and
/// per-round wall-clock accounting stay identical to barrier execution).
#[derive(Debug)]
pub struct DagNode {
    /// The job to execute.
    pub job: Job,
    /// Round index (0-based) of the job in the source program.
    pub round: usize,
    deps: Vec<usize>,
    dependents: Vec<usize>,
}

impl DagNode {
    /// Indices of the nodes this job waits for.
    pub fn deps(&self) -> &[usize] {
        &self.deps
    }

    /// Indices of the nodes waiting for this job.
    pub fn dependents(&self) -> &[usize] {
        &self.dependents
    }

    /// The job's plan-time cost estimate, if the planner attached one.
    pub fn estimate(&self) -> Option<&JobEstimate> {
        self.job.estimate.as_ref()
    }

    /// The node's estimated cost for scheduling decisions: the
    /// estimate's total cost, or `0` when unannotated (so unannotated
    /// DAGs degrade to pure tie-break order rather than failing).
    pub fn estimated_cost(&self) -> f64 {
        self.job
            .estimate
            .as_ref()
            .map(|e| e.total_cost)
            .unwrap_or(0.0)
    }
}

/// A dependency DAG of MapReduce jobs, indexed in the source program's
/// round-order flattening (which is always a valid topological order).
#[derive(Debug, Default)]
pub struct JobDag {
    nodes: Vec<DagNode>,
}

/// A job's DFS footprint — its input and output relation names as sets —
/// precomputed once so pairwise conflict checks are set lookups instead
/// of repeated set construction (edge inference is O(n²) pairs).
#[derive(Debug, Clone)]
pub struct JobFootprint {
    reads: BTreeSet<RelationName>,
    writes: BTreeSet<RelationName>,
}

impl JobFootprint {
    /// Capture a job's read/write sets.
    pub fn of(job: &Job) -> JobFootprint {
        JobFootprint {
            reads: job.input_names().cloned().collect(),
            writes: job.output_names().cloned().collect(),
        }
    }

    /// Whether the job with this (earlier) footprint must complete before
    /// a job with the `later` footprint may start: they share a relation
    /// that at least one of them writes (write→read, read→write, or
    /// write→write).
    pub fn conflicts_with(&self, later: &JobFootprint) -> bool {
        later
            .writes
            .iter()
            .any(|r| self.writes.contains(r) || self.reads.contains(r))
            || later.reads.iter().any(|r| self.writes.contains(r))
    }
}

/// Whether an earlier job must complete before a later one may start —
/// [`JobFootprint::conflicts_with`] for a one-off pair. Public so the
/// multi-tenant scheduler can apply the same rule *across* submissions in
/// admission order (it precomputes footprints for batch checks).
pub fn jobs_conflict(earlier: &Job, later: &Job) -> bool {
    JobFootprint::of(earlier).conflicts_with(&JobFootprint::of(later))
}

impl JobDag {
    /// Build the DAG from rounds of jobs, inferring conflict edges over
    /// the flattened sequence. Direct edges are kept minimal per pair:
    /// every conflicting earlier job becomes a dependency (no transitive
    /// reduction — the scheduler only needs indegrees). Empty rounds are
    /// dropped (as [`MrProgram`] itself guarantees), so node round
    /// indices are always contiguous from 0 — the per-round stats
    /// reconstruction in `gumbo-sched` relies on this.
    pub fn from_rounds(rounds: Vec<Vec<Job>>) -> JobDag {
        let mut nodes: Vec<DagNode> = Vec::new();
        let mut footprints: Vec<JobFootprint> = Vec::new();
        for (round, jobs) in rounds
            .into_iter()
            .filter(|jobs| !jobs.is_empty())
            .enumerate()
        {
            for job in jobs {
                let idx = nodes.len();
                let footprint = JobFootprint::of(&job);
                let deps: Vec<usize> = footprints
                    .iter()
                    .enumerate()
                    .filter(|(_, earlier)| earlier.conflicts_with(&footprint))
                    .map(|(i, _)| i)
                    .collect();
                for &d in &deps {
                    nodes[d].dependents.push(idx);
                }
                footprints.push(footprint);
                nodes.push(DagNode {
                    job,
                    round,
                    deps,
                    dependents: Vec::new(),
                });
            }
        }
        JobDag { nodes }
    }

    /// The nodes, in the source program's round-order flattening.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// One node by index.
    pub fn node(&self, idx: usize) -> &DagNode {
        &self.nodes[idx]
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no jobs.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of rounds the source program had (`max round + 1`).
    pub fn num_rounds(&self) -> usize {
        self.nodes.iter().map(|n| n.round + 1).max().unwrap_or(0)
    }

    /// All edges `(dep, dependent)`, each pointing from an earlier flat
    /// index to a later one.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for &d in &n.deps {
                edges.push((d, i));
            }
        }
        edges.sort_unstable();
        edges
    }

    /// Longest estimated path from each node to a sink (own cost
    /// included), over the nodes' attached [`JobEstimate`]s — the
    /// priority of critical-path (`cp`) placement. Unannotated nodes
    /// contribute zero cost, so a fully unannotated DAG degrades to
    /// FIFO-by-tie-break. The estimates are a function of each job alone
    /// (attached at plan time), so these lengths are invariant under any
    /// ready-queue order the scheduler chooses.
    pub fn critical_paths(&self) -> Vec<f64> {
        let durations: Vec<f64> = self.nodes.iter().map(DagNode::estimated_cost).collect();
        let deps: Vec<&[usize]> = self.nodes.iter().map(|n| n.deps.as_slice()).collect();
        critical_path_lengths(&durations, &deps)
    }

    /// Predicted net time of this DAG under `slots` concurrent job
    /// slots: list-scheduling simulation with the given per-job
    /// durations (estimated costs at plan time, or reconstructed per-job
    /// wall clock after execution). See [`crate::estimate`].
    pub fn predicted_net_time(&self, durations: &[f64], slots: usize) -> f64 {
        let deps: Vec<&[usize]> = self.nodes.iter().map(|n| n.deps.as_slice()).collect();
        list_schedule_makespan(durations, &deps, slots)
    }

    /// A deterministic topological order (Kahn's algorithm, smallest ready
    /// index first). Because edges always point forward in the flat order,
    /// this returns `0..len` — the round-order flattening itself — which
    /// is exactly the "round semantics preserved as dependencies" claim.
    pub fn topo_order(&self) -> Vec<usize> {
        let mut indegree: Vec<usize> = self.nodes.iter().map(|n| n.deps.len()).collect();
        let mut ready: BTreeSet<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(&next) = ready.iter().next() {
            ready.remove(&next);
            order.push(next);
            for &dep in &self.nodes[next].dependents {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    ready.insert(dep);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "conflict edges form a DAG");
        order
    }
}

impl MrProgram {
    /// Lower the program to its dependency DAG (§3.2), inferring edges
    /// from input/output relation names. Round semantics are preserved:
    /// the program's round order is a topological order of the result,
    /// and every conflict between jobs of different rounds becomes an
    /// explicit dependency.
    pub fn into_dag(self) -> JobDag {
        JobDag::from_rounds(self.into_rounds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::test_support::noop_job;

    fn job(name: &str, inputs: &[&str], outputs: &[&str]) -> Job {
        noop_job(name, inputs.iter().copied(), outputs.iter().copied())
    }

    #[test]
    fn data_dependencies_become_edges() {
        // round 1: A reads R writes X; B reads S writes Y (independent).
        // round 2: C reads X and Y.
        let mut p = MrProgram::new();
        p.push_round(vec![job("A", &["R"], &["X"]), job("B", &["S"], &["Y"])]);
        p.push_job(job("C", &["X", "Y"], &["Z"]));
        let dag = p.into_dag();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.edges(), vec![(0, 2), (1, 2)]);
        assert_eq!(dag.node(2).deps(), &[0, 1]);
        assert_eq!(dag.node(0).dependents(), &[2]);
    }

    #[test]
    fn independent_rounds_have_no_edges() {
        // Two rounds that share nothing: the barrier was pure overhead.
        let mut p = MrProgram::new();
        p.push_job(job("A", &["R"], &["X"]));
        p.push_job(job("B", &["S"], &["Y"]));
        let dag = p.into_dag();
        assert!(dag.edges().is_empty());
        assert_eq!(dag.num_rounds(), 2);
    }

    #[test]
    fn anti_and_output_dependencies_are_kept() {
        // A reads X; B (later) overwrites X → A before B (anti).
        // C (later still) also writes X → B before C (output), A before C.
        let mut p = MrProgram::new();
        p.push_job(job("A", &["X"], &["Y"]));
        p.push_job(job("B", &["R"], &["X"]));
        p.push_job(job("C", &["S"], &["X"]));
        let dag = p.into_dag();
        assert_eq!(dag.edges(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn topo_order_is_the_flat_order() {
        let mut p = MrProgram::new();
        p.push_round(vec![job("A", &["R"], &["X"]), job("B", &["X"], &["Y"])]);
        p.push_job(job("C", &["Y"], &["Z"]));
        let dag = p.into_dag();
        assert_eq!(dag.topo_order(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_rounds_are_dropped_by_from_rounds() {
        // Built directly (not via MrProgram, which already drops empty
        // rounds): round indices must come out contiguous, or the
        // scheduler would charge overhead for phantom rounds.
        let dag = JobDag::from_rounds(vec![
            vec![],
            vec![job("A", &["R"], &["X"])],
            vec![],
            vec![job("B", &["X"], &["Y"])],
        ]);
        assert_eq!(dag.num_rounds(), 2);
        assert_eq!(dag.node(0).round, 0);
        assert_eq!(dag.node(1).round, 1);
    }

    #[test]
    fn estimates_survive_the_lowering_and_drive_critical_paths() {
        use crate::cost::{CostConstants, CostModelKind};
        use crate::estimate::JobEstimate;
        use crate::profile::{InputPartition, JobProfile};
        use gumbo_common::ByteSize;

        let est = |cost: f64| {
            JobEstimate::from_profile(
                CostModelKind::Gumbo,
                &CostConstants {
                    job_overhead: cost,
                    ..CostConstants::appendix_a()
                },
                &JobProfile {
                    partitions: vec![InputPartition {
                        label: "s".into(),
                        input: ByteSize::ZERO,
                        map_output: ByteSize::ZERO,
                        records_out: 0,
                        mappers: 1,
                    }],
                    reducers: 1,
                    output: ByteSize::ZERO,
                },
            )
        };
        // Chain A → B → C with costs 2, 3, 4.
        let mut p = MrProgram::new();
        p.push_job(job("A", &["R"], &["X"]).with_estimate(est(2.0)));
        p.push_job(job("B", &["X"], &["Y"]).with_estimate(est(3.0)));
        p.push_job(job("C", &["Y"], &["Z"]).with_estimate(est(4.0)));
        let dag = p.into_dag();
        for (node, want) in dag.nodes().iter().zip([2.0, 3.0, 4.0]) {
            assert_eq!(node.estimate().unwrap().total_cost, want);
            assert_eq!(node.estimated_cost(), want);
        }
        // Critical paths on a chain: suffix sums; prediction = total on
        // any slot count (a chain cannot overlap).
        assert_eq!(dag.critical_paths(), vec![9.0, 7.0, 4.0]);
        assert_eq!(dag.predicted_net_time(&[2.0, 3.0, 4.0], 1), 9.0);
        assert_eq!(dag.predicted_net_time(&[2.0, 3.0, 4.0], 4), 9.0);
        // Unannotated DAGs degrade to zero-cost critical paths.
        let mut q = MrProgram::new();
        q.push_job(job("A", &["R"], &["X"]));
        assert_eq!(q.into_dag().critical_paths(), vec![0.0]);
    }

    #[test]
    fn rounds_survive_the_lowering() {
        let mut p = MrProgram::new();
        p.push_round(vec![job("A", &["R"], &["X"]), job("B", &["S"], &["Y"])]);
        p.push_job(job("C", &["X"], &["Z"]));
        let dag = p.into_dag();
        assert_eq!(dag.node(0).round, 0);
        assert_eq!(dag.node(1).round, 0);
        assert_eq!(dag.node(2).round, 1);
    }
}
