//! # gumbo-mr
//!
//! A deterministic MapReduce substrate: the execution environment the paper
//! assumes (Hadoop MR, §3.2) rebuilt as an in-memory engine plus a cluster
//! simulator, together with the paper's I/O **cost model** (§3.3).
//!
//! ## What "executing" means here
//!
//! Jobs *really run*: the mapper is applied to every input fact, key-value
//! pairs are hash-partitioned to reducers, grouped, and reduced — so query
//! results are real and can be checked against a reference evaluator. At
//! the same time every stage is *metered*: per-input-partition map output
//! bytes `Mᵢ`, metadata `M̂ᵢ`, mapper counts `mᵢ`, shuffle volume `M`,
//! output size `K`. Those measurements feed
//!
//! * the cost model (`cost`), yielding the paper's **total time** (aggregate
//!   cost over all tasks, the pay-as-you-go metric), and
//! * the cluster simulator (`cluster`), yielding **net time** (wall-clock:
//!   the makespan of scheduling task waves onto `nodes × slots`).
//!
//! ## The two runtimes
//!
//! Execution is abstracted behind the [`Executor`] trait
//! ([`executor`]), with two interchangeable implementations:
//!
//! * [`SimulatedExecutor`] (alias [`Engine`], the default) — the
//!   single-threaded deterministic simulator described above;
//! * [`ParallelExecutor`] — a real multi-threaded runtime that fans map
//!   tasks, the partitioned shuffle and reduce tasks out over a fixed
//!   worker pool while collecting the *same* metering.
//!
//! Both produce byte-identical answer relations and identical
//! [`JobStats`] (the shared pipeline in [`executor`] makes this
//! structural); pick one with [`ExecutorKind`]. Use the simulator for
//! reproducible §5 experiments and the parallel runtime when you want the
//! answer as fast as the hardware allows.
//!
//! A configurable *scale factor* maps laptop-sized relations onto the
//! paper's 100M-tuple regime: all byte quantities are multiplied by it
//! before entering the cost model, so merge-pass counts and reducer
//! allocations match the paper's operating point.
//!
//! ## Bounded-memory shuffle
//!
//! Both runtimes shuffle through the budget-charged buffers of
//! [`shuffle`]: with [`EngineConfig::mem_budget`] set, per-reducer
//! buffers spill sorted runs to job-scoped disk directories instead of
//! growing past the limit, and the reduce phase streams a merge of the
//! runs plus the in-memory tail. Answers and metered statistics are
//! byte-identical with spilling on or off; [`JobStats`] additionally
//! reports `spilled_bytes` / `spill_files` / `spill_merge_passes`.
//!
//! Both cost models are provided: the paper's per-partition model
//! ([`cost::CostModelKind::Gumbo`], Eq. 2) and the aggregate model of Wang &
//! Chan / MRShare it refines ([`cost::CostModelKind::Wang`], Eq. 3).
//!
//! ## The estimation layer
//!
//! [`estimate`] packages plan-time cost estimates as [`JobEstimate`]s
//! attached to [`Job`]s, so the same numbers the planner optimizes drive
//! the DAG scheduler's placement (shortest-job-first / critical-path),
//! per-job thread sizing, and the predicted DAG net-time metric
//! ([`ProgramStats::predicted_net_time`]).

pub mod batch_shuffle;
pub mod cluster;
pub mod cost;
pub mod dag;
pub mod estimate;
pub mod executor;
pub mod hash;
pub mod job;
pub mod message;
pub mod metrics;
pub mod parallel;
pub mod profile;
pub mod program;
pub mod shuffle;
pub mod shuffle_filter;
pub mod simulated;

pub use batch_shuffle::{BatchGroupStream, BatchPartition, PairBatch, TupleStore};
pub use cluster::Cluster;
pub use cost::{job_cost, CostConstants, CostModelKind};
pub use dag::{DagNode, JobDag};
pub use estimate::{
    critical_path_lengths, list_schedule_makespan, list_schedule_makespan_by, JobEstimate,
};
pub use executor::{
    commit_job, plan_job, ComputedJob, DataPlane, EngineConfig, Executor, ExecutorKind, MapPlan,
};
pub use job::{Job, JobConfig, Mapper, Reducer, ReducerPolicy};
pub use message::{Message, Payload};
pub use metrics::{JobStats, ProgramStats};
pub use parallel::ParallelExecutor;
pub use profile::{InputPartition, JobProfile};
pub use program::MrProgram;
pub use shuffle::{
    GroupStream, MemBudget, MemoryBudget, ShuffleSpill, SpillStats, SpillingPartition,
};
pub use shuffle_filter::{
    filter_bytes_for, predicted_fp_rate_for, FilterSpec, FilterStats, ShuffleFilterMode,
    SplitBlockBloom,
};
pub use simulated::{Engine, SimulatedExecutor};

#[cfg(test)]
mod proptests;
