//! Deterministic hashing for reducer partitioning.
//!
//! `std`'s default hasher is randomized per process, which would make
//! simulated schedules (and therefore reported times) non-reproducible.
//! We use FNV-1a over a canonical byte rendering of the key instead.

use gumbo_common::{Tuple, TupleView, Value, ValueRef};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Deterministic hash of a key tuple.
pub fn hash_tuple(tuple: &Tuple) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for v in tuple.values() {
        match v {
            Value::Int(i) => {
                mix(&[0u8]);
                mix(&i.to_le_bytes());
            }
            Value::Str(s) => {
                mix(&[1u8]);
                mix(s.as_bytes());
                mix(&[0xff]);
            }
        }
    }
    h
}

/// Deterministic hash of a columnar key view — byte-for-byte the same
/// mixing as [`hash_tuple`], so `hash_view(batch.view(r))` always equals
/// `hash_tuple(&batch.tuple(r))` and both data planes route every key to
/// the same reducer.
pub fn hash_view(view: TupleView<'_>) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for v in view.values() {
        match v {
            ValueRef::Int(i) => {
                mix(&[0u8]);
                mix(&i.to_le_bytes());
            }
            ValueRef::Str(s) => {
                mix(&[1u8]);
                mix(s.as_bytes());
                mix(&[0xff]);
            }
        }
    }
    h
}

/// Reducer index for a key under `r` reducers.
pub fn partition(tuple: &Tuple, reducers: usize) -> usize {
    debug_assert!(reducers > 0);
    (hash_tuple(tuple) % reducers as u64) as usize
}

/// Reducer index for a columnar key view — agrees with [`partition`] on
/// the materialized key.
pub fn partition_view(view: TupleView<'_>, reducers: usize) -> usize {
    debug_assert!(reducers > 0);
    (hash_view(view) % reducers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        let t = Tuple::from_ints(&[1, 2, 3]);
        assert_eq!(hash_tuple(&t), hash_tuple(&t.clone()));
    }

    #[test]
    fn different_tuples_differ() {
        assert_ne!(
            hash_tuple(&Tuple::from_ints(&[1])),
            hash_tuple(&Tuple::from_ints(&[2]))
        );
        // Int 1 and string "1" must not collide by construction (type tags).
        assert_ne!(
            hash_tuple(&Tuple::from_ints(&[1])),
            hash_tuple(&Tuple::new(vec![Value::str("1")]))
        );
    }

    #[test]
    fn partition_in_range() {
        for i in 0..100 {
            let p = partition(&Tuple::from_ints(&[i]), 7);
            assert!(p < 7);
        }
    }

    #[test]
    fn partition_spreads_keys() {
        // All 100 keys on one of 10 reducers would indicate a broken hash.
        let mut counts = [0usize; 10];
        for i in 0..100 {
            counts[partition(&Tuple::from_ints(&[i]), 10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "unbalanced: {counts:?}");
    }

    #[test]
    fn view_hash_matches_tuple_hash() {
        use gumbo_common::TupleBatch;
        let tuples = [
            Tuple::from_ints(&[]),
            Tuple::from_ints(&[1, -2, i64::MAX]),
            Tuple::new(vec![Value::str("1"), Value::Int(1), Value::str("")]),
        ];
        for t in &tuples {
            let mut batch = TupleBatch::new(t.arity());
            batch.push_tuple(t);
            assert_eq!(hash_view(batch.view(0)), hash_tuple(t), "{t}");
            assert_eq!(partition_view(batch.view(0), 7), partition(t, 7), "{t}");
        }
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }
}
