//! Execution statistics: the paper's four performance metrics (§5.1).
//!
//! 1. **total time** — aggregate time spent by all mappers and reducers;
//! 2. **net time** — elapsed time from query submission to final result;
//! 3. **input cost** — bytes read from the DFS over the entire plan;
//! 4. **communication cost** — bytes transferred from mappers to reducers.

use std::fmt;

use gumbo_common::ByteSize;

use crate::cluster::{lpt_makespan, Cluster};
use crate::profile::JobProfile;

/// Statistics for one executed job.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Job name.
    pub name: String,
    /// Round index (0-based) within the program.
    pub round: usize,
    /// The measured profile (scaled bytes).
    pub profile: JobProfile,
    /// Per-partition map cost + reduce cost under the engine's cost model.
    pub map_cost: f64,
    /// Reduce-phase cost.
    pub reduce_cost: f64,
    /// Full job cost (`cost_h + map + reduce`) — this job's total time.
    pub total_cost: f64,
    /// Simulated durations of each map task.
    pub map_task_durations: Vec<f64>,
    /// Simulated durations of each reduce task.
    pub reduce_task_durations: Vec<f64>,
    /// Number of result tuples written (across all outputs).
    pub output_tuples: u64,
    /// Estimated bytes of shuffle data spilled to disk under the memory
    /// budget (0 when the shuffle fit in memory).
    ///
    /// The spill counters are *real-machine* observations, not paper
    /// metrics: when concurrent jobs share one budget they may vary run
    /// to run, so equivalence harnesses compare every field above but
    /// none of these.
    pub spilled_bytes: u64,
    /// On-disk bytes of the *initial* spill-run flushes: actual run-file
    /// bytes (length-prefixed encoded frames, RLE-block compressed when
    /// the budget's `--spill-compress` flag is set). The companion
    /// figure to `spilled_bytes`, which uses the budget's
    /// *estimated-bytes* accounting for the same flushed data — so
    /// compare the disk figures of a compressed and an uncompressed run
    /// to measure the compression win (the `spill` bench's `64k` vs
    /// `64k+rle` rows). Intermediate merge-pass outputs rewrite already
    /// counted data; like `spilled_bytes` this counter excludes them
    /// (`spill_files` includes them).
    pub spilled_disk_bytes: u64,
    /// Spill run files written (initial flushes + merge outputs).
    pub spill_files: u64,
    /// Intermediate merge passes needed before the final streaming merge.
    pub spill_merge_passes: u64,
    /// Scaled bytes of the Bloom-filter broadcast artifacts
    /// ([`crate::shuffle_filter`]) this job published before its map
    /// phase; 0 when the job ran unfiltered. Counted into
    /// [`JobStats::communication_bytes`] — the filters travel over the
    /// same network the shuffle does.
    pub filter_bytes: u64,
    /// Candidate `Assert`/`Req` messages the filtered shuffle dropped
    /// because their keys cannot match. Deterministic: a pure function of
    /// the data and the filter, identical across runtimes, planes and
    /// thread counts.
    pub suppressed_messages: u64,
    /// Candidate messages tested against a filter.
    pub filter_probes: u64,
    /// Filter passes whose key is absent from the other side's exact key
    /// set — the messages filtering could have saved but (by Bloom
    /// false-positive) did not.
    pub filter_false_positives: u64,
    /// Planner-estimated total cost (`JobEstimate::total_cost`), when the
    /// job carried an estimate. The observed side is `total_cost`; the
    /// pair is the raw input of the feedback-calibration roadmap item.
    /// Deterministic — a pure function of the plan — so equivalence
    /// harnesses compare it like any other modeled field.
    pub estimated_cost: Option<f64>,
}

impl JobStats {
    /// Bytes read from the DFS by this job.
    pub fn input_bytes(&self) -> ByteSize {
        self.profile.total_input()
    }

    /// Bytes shuffled map → reduce by this job, *plus* the bytes of any
    /// broadcast filter artifacts — the filtered shuffle only wins when
    /// the suppressed message bytes exceed the filters it shipped, and
    /// this metric is where that trade settles.
    pub fn communication_bytes(&self) -> ByteSize {
        self.profile.total_map_output() + ByteSize::bytes(self.filter_bytes)
    }

    /// Observed false-positive rate of this job's shuffle filters: false
    /// positives over the probes that *should* have been suppressed
    /// (false positives + true suppressions). `None` when the job ran
    /// unfiltered or every probed key matched.
    pub fn observed_fp_rate(&self) -> Option<f64> {
        let misses = self.filter_false_positives + self.suppressed_messages;
        if misses == 0 {
            None
        } else {
            Some(self.filter_false_positives as f64 / misses as f64)
        }
    }

    /// Bytes written to the DFS by this job.
    pub fn output_bytes(&self) -> ByteSize {
        self.profile.output
    }

    /// Observed-over-estimated cost ratio: 1.0 = perfectly calibrated,
    /// above 1 = the planner was optimistic. `None` when the job carried
    /// no estimate or the estimate was non-positive.
    pub fn estimate_error(&self) -> Option<f64> {
        match self.estimated_cost {
            Some(est) if est > 0.0 => Some(self.total_cost / est),
            _ => None,
        }
    }
}

/// Per-round wall-clock accounting.
#[derive(Debug, Clone, Copy)]
pub struct RoundStats {
    /// Makespan of the round's pooled map tasks.
    pub map_makespan: f64,
    /// Makespan of the round's pooled reduce tasks.
    pub reduce_makespan: f64,
    /// Job-start overhead charged to the round's wall clock.
    pub overhead: f64,
}

impl RoundStats {
    /// Wall-clock accounting of one round: the jobs' map and reduce
    /// tasks pooled onto the cluster's slots, plus the job-start
    /// overhead. The single definition of the paper's per-round net-time
    /// model — used by both the round-barrier executor and the DAG
    /// scheduler's equivalence reconstruction.
    pub fn pooled<'a>(
        jobs: impl Iterator<Item = &'a JobStats> + Clone,
        cluster: Cluster,
        overhead: f64,
    ) -> RoundStats {
        let map_tasks: Vec<f64> = jobs
            .clone()
            .flat_map(|j| j.map_task_durations.iter().copied())
            .collect();
        let reduce_tasks: Vec<f64> = jobs
            .flat_map(|j| j.reduce_task_durations.iter().copied())
            .collect();
        RoundStats {
            map_makespan: lpt_makespan(&map_tasks, cluster.map_slots()),
            reduce_makespan: lpt_makespan(&reduce_tasks, cluster.reduce_slots()),
            overhead,
        }
    }

    /// Wall-clock duration of the round.
    pub fn net_time(&self) -> f64 {
        self.overhead + self.map_makespan + self.reduce_makespan
    }
}

/// Statistics for a full program execution.
#[derive(Debug, Clone, Default)]
pub struct ProgramStats {
    /// Per-job statistics, in execution order.
    pub jobs: Vec<JobStats>,
    /// Per-round wall-clock statistics.
    pub round_stats: Vec<RoundStats>,
    /// Predicted **DAG net time** (seconds): the completion time of the
    /// program's last job in a list-scheduling simulation over
    /// `max_concurrent_jobs` slots, with each job's duration
    /// reconstructed exactly as the per-round model prices a single-job
    /// round (`cost_h` + pooled map makespan + pooled reduce makespan).
    /// In multi-tenant runs the simulation is *global* — cross-submission
    /// conflict edges and slot contention included — so each
    /// submission's prediction is comparable to its wall clock. Set by
    /// the DAG scheduler; `None` on the round-barrier path, whose
    /// net-time model is the per-round sum. When the DAG is a chain and
    /// only one job slot exists, the two models coincide.
    pub predicted_net_time: Option<f64>,
}

impl ProgramStats {
    /// **Net time**: sum of round wall-clock durations.
    pub fn net_time(&self) -> f64 {
        self.round_stats.iter().map(RoundStats::net_time).sum()
    }

    /// **Total time**: aggregate cost over all jobs (the pay-as-you-go
    /// metric the paper's planners minimize).
    pub fn total_time(&self) -> f64 {
        self.jobs.iter().map(|j| j.total_cost).sum()
    }

    /// **Input cost**: bytes read from the DFS over the whole plan.
    pub fn input_bytes(&self) -> ByteSize {
        self.jobs.iter().map(JobStats::input_bytes).sum()
    }

    /// **Communication cost**: bytes shuffled map → reduce over the plan.
    pub fn communication_bytes(&self) -> ByteSize {
        self.jobs.iter().map(JobStats::communication_bytes).sum()
    }

    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.round_stats.len()
    }

    /// Number of jobs executed.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total shuffle bytes spilled to disk across all jobs.
    pub fn spilled_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.spilled_bytes).sum()
    }

    /// Total on-disk bytes of flushed spill runs across all jobs (the
    /// post-compression companion of [`ProgramStats::spilled_bytes`]).
    pub fn spilled_disk_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.spilled_disk_bytes).sum()
    }

    /// Total spill run files written across all jobs.
    pub fn spill_files(&self) -> u64 {
        self.jobs.iter().map(|j| j.spill_files).sum()
    }

    /// Total intermediate spill merge passes across all jobs.
    pub fn spill_merge_passes(&self) -> u64 {
        self.jobs.iter().map(|j| j.spill_merge_passes).sum()
    }

    /// Total (scaled) bytes of broadcast filter artifacts across all jobs.
    pub fn filter_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.filter_bytes).sum()
    }

    /// Total messages the filtered shuffle suppressed across all jobs.
    pub fn suppressed_messages(&self) -> u64 {
        self.jobs.iter().map(|j| j.suppressed_messages).sum()
    }

    /// Total filter probes across all jobs.
    pub fn filter_probes(&self) -> u64 {
        self.jobs.iter().map(|j| j.filter_probes).sum()
    }

    /// Total filter false positives across all jobs.
    pub fn filter_false_positives(&self) -> u64 {
        self.jobs.iter().map(|j| j.filter_false_positives).sum()
    }

    /// Program-wide observed filter false-positive rate (see
    /// [`JobStats::observed_fp_rate`]); `None` when nothing was filtered
    /// or every probed key matched.
    pub fn observed_fp_rate(&self) -> Option<f64> {
        let misses = self.filter_false_positives() + self.suppressed_messages();
        if misses == 0 {
            None
        } else {
            Some(self.filter_false_positives() as f64 / misses as f64)
        }
    }

    /// Mean observed/estimated cost ratio over the jobs that carried an
    /// estimate; `None` when no job did.
    pub fn mean_estimate_error(&self) -> Option<f64> {
        let errors: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(JobStats::estimate_error)
            .collect();
        if errors.is_empty() {
            None
        } else {
            Some(errors.iter().sum::<f64>() / errors.len() as f64)
        }
    }

    /// Merge another program's stats after this one (sequential composition,
    /// used when an SGF plan runs group after group).
    pub fn extend(&mut self, mut other: ProgramStats) {
        let round_offset = self.round_stats.len();
        for j in &mut other.jobs {
            j.round += round_offset;
        }
        self.jobs.extend(other.jobs);
        self.round_stats.extend(other.round_stats);
        // Sequential composition: predicted wall clocks add (a later
        // program cannot start before the earlier one finishes).
        self.predicted_net_time = match (self.predicted_net_time, other.predicted_net_time) {
            (Some(a), Some(b)) => Some(a + b),
            (one, None) => one,
            (None, other) => other,
        };
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "net {:.1}s | total {:.1}s | input {} | comm {} | {} jobs / {} rounds",
            self.net_time(),
            self.total_time(),
            self.input_bytes(),
            self.communication_bytes(),
            self.num_jobs(),
            self.num_rounds(),
        )?;
        if let Some(predicted) = self.predicted_net_time {
            writeln!(
                f,
                "  predicted dag net time: {predicted:.1}s (list-scheduled job DAG)"
            )?;
        }
        for j in &self.jobs {
            write!(
                f,
                "  [round {}] {}: cost {:.1}s (map {:.1} + reduce {:.1}), in {}, shuffle {}, out {}",
                j.round + 1,
                j.name,
                j.total_cost,
                j.map_cost,
                j.reduce_cost,
                j.input_bytes(),
                j.communication_bytes(),
                j.output_bytes(),
            )?;
            if j.spill_files > 0 {
                write!(
                    f,
                    ", spilled {} B ({} B on disk) in {} runs ({} merge passes)",
                    j.spilled_bytes, j.spilled_disk_bytes, j.spill_files, j.spill_merge_passes,
                )?;
            }
            if j.filter_bytes > 0 {
                write!(
                    f,
                    ", filter {} suppressed {} msgs (fp {})",
                    ByteSize::bytes(j.filter_bytes),
                    j.suppressed_messages,
                    match j.observed_fp_rate() {
                        Some(rate) => format!("{rate:.4}"),
                        None => "n/a".to_string(),
                    },
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::InputPartition;

    fn stats(cost: f64) -> JobStats {
        JobStats {
            name: "j".into(),
            round: 0,
            profile: JobProfile {
                partitions: vec![InputPartition {
                    label: "R".into(),
                    input: ByteSize::mb(10),
                    map_output: ByteSize::mb(20),
                    records_out: 5,
                    mappers: 1,
                }],
                reducers: 2,
                output: ByteSize::mb(3),
            },
            map_cost: cost / 2.0,
            reduce_cost: cost / 2.0,
            total_cost: cost,
            map_task_durations: vec![1.0],
            reduce_task_durations: vec![0.5, 0.5],
            output_tuples: 1,
            spilled_bytes: 0,
            spilled_disk_bytes: 0,
            spill_files: 0,
            spill_merge_passes: 0,
            filter_bytes: 0,
            suppressed_messages: 0,
            filter_probes: 0,
            filter_false_positives: 0,
            estimated_cost: None,
        }
    }

    #[test]
    fn totals_aggregate_jobs() {
        let mut p = ProgramStats::default();
        p.jobs.push(stats(10.0));
        p.jobs.push(stats(5.0));
        p.round_stats.push(RoundStats {
            map_makespan: 2.0,
            reduce_makespan: 1.0,
            overhead: 10.0,
        });
        assert!((p.total_time() - 15.0).abs() < 1e-12);
        assert!((p.net_time() - 13.0).abs() < 1e-12);
        assert_eq!(p.input_bytes(), ByteSize::mb(20));
        assert_eq!(p.communication_bytes(), ByteSize::mb(40));
    }

    #[test]
    fn extend_offsets_rounds() {
        let mut a = ProgramStats::default();
        a.jobs.push(stats(1.0));
        a.round_stats.push(RoundStats {
            map_makespan: 1.0,
            reduce_makespan: 0.0,
            overhead: 0.0,
        });
        let mut b = ProgramStats::default();
        b.jobs.push(stats(2.0));
        b.round_stats.push(RoundStats {
            map_makespan: 1.0,
            reduce_makespan: 0.0,
            overhead: 0.0,
        });
        a.extend(b);
        assert_eq!(a.jobs[1].round, 1);
        assert_eq!(a.num_rounds(), 2);
        assert!((a.total_time() - 3.0).abs() < 1e-12);
    }
}
