//! Property-based tests for the cost model, the cluster scheduler, the
//! program → DAG lowering, and the spill merge.

#![cfg(test)]

use std::collections::BTreeMap;

use proptest::prelude::*;

use gumbo_common::{ByteSize, Tuple};

use crate::batch_shuffle::{BatchPartition, PairBatch};
use crate::cluster::lpt_makespan;
use crate::cost::{job_cost, CostConstants, CostModelKind};
use crate::dag::jobs_conflict;
use crate::hash::hash_tuple;
use crate::job::test_support::noop_job;
use crate::job::Job;
use crate::message::{Message, Payload};
use crate::profile::{InputPartition, JobProfile};
use crate::program::MrProgram;
use crate::shuffle::{MemBudget, MemoryBudget, ShuffleSpill, SpillingPartition};
use crate::shuffle_filter::{FilterCollector, FilterSpec, ProbeTally, SplitBlockBloom};

/// A no-op job touching relations `Rk` for the given name codes.
fn rel_job(inputs: &[u8], outputs: &[u8]) -> Job {
    noop_job(
        format!("job({inputs:?}->{outputs:?})"),
        inputs.iter().map(|k| format!("R{k}")),
        outputs.iter().map(|k| format!("R{k}")),
    )
}

fn part(n_mb: u64, m_mb: u64, records: u64, mappers: usize) -> InputPartition {
    InputPartition {
        label: "p".into(),
        input: ByteSize::mb(n_mb),
        map_output: ByteSize::mb(m_mb),
        records_out: records,
        mappers: mappers.max(1),
    }
}

proptest! {
    /// Costs are non-negative, finite, and at least the job overhead.
    #[test]
    fn cost_is_sane(
        n in 0u64..100_000, m in 0u64..100_000, r in 1usize..500,
        k in 0u64..100_000, mappers in 1usize..500,
    ) {
        let c = CostConstants::default();
        let profile = JobProfile {
            partitions: vec![part(n, m, m * 1000, mappers)],
            reducers: r,
            output: ByteSize::mb(k),
        };
        for kind in [CostModelKind::Gumbo, CostModelKind::Wang] {
            let cost = job_cost(kind, &c, &profile);
            prop_assert!(cost.is_finite());
            prop_assert!(cost >= c.job_overhead - 1e-9);
        }
    }

    /// Cost is monotone in input size, map output, and reduce output.
    #[test]
    fn cost_monotone(
        n in 0u64..50_000, m in 0u64..50_000, k in 0u64..50_000,
        dn in 0u64..10_000, dm in 0u64..10_000, dk in 0u64..10_000,
    ) {
        let c = CostConstants::default();
        let base = JobProfile {
            partitions: vec![part(n, m, 0, 8)],
            reducers: 16,
            output: ByteSize::mb(k),
        };
        let bigger = JobProfile {
            partitions: vec![part(n + dn, m + dm, 0, 8)],
            reducers: 16,
            output: ByteSize::mb(k + dk),
        };
        prop_assert!(
            job_cost(CostModelKind::Gumbo, &c, &bigger)
                >= job_cost(CostModelKind::Gumbo, &c, &base) - 1e-9
        );
    }

    /// More mappers never increase the map cost (per-task shares shrink).
    #[test]
    fn more_mappers_never_hurt(m in 1u64..100_000, mappers in 1usize..100) {
        let c = CostConstants::default();
        let fewer = part(m, m, 0, mappers);
        let more = part(m, m, 0, mappers * 2);
        prop_assert!(c.cost_map(&more) <= c.cost_map(&fewer) + 1e-9);
    }

    /// With a single input partition the two models coincide exactly.
    #[test]
    fn models_coincide_on_single_partition(
        n in 0u64..50_000, m in 0u64..50_000, records in 0u64..10_000_000,
        mappers in 1usize..100, r in 1usize..100, k in 0u64..10_000,
    ) {
        let c = CostConstants::default();
        let profile = JobProfile {
            partitions: vec![part(n, m, records, mappers)],
            reducers: r,
            output: ByteSize::mb(k),
        };
        let g = job_cost(CostModelKind::Gumbo, &c, &profile);
        let w = job_cost(CostModelKind::Wang, &c, &profile);
        prop_assert!((g - w).abs() < 1e-6, "gumbo {} vs wang {}", g, w);
    }

    /// LPT makespan bounds: max task ≤ makespan ≤ total work, and
    /// makespan ≥ total/slots (work conservation).
    #[test]
    fn lpt_bounds(
        durations in proptest::collection::vec(0.0f64..100.0, 1..40),
        slots in 1usize..20,
    ) {
        let ms = lpt_makespan(&durations, slots);
        let total: f64 = durations.iter().sum();
        let max = durations.iter().cloned().fold(0.0, f64::max);
        prop_assert!(ms >= max - 1e-9);
        prop_assert!(ms <= total + 1e-9);
        prop_assert!(ms >= total / slots as f64 - 1e-9);
        // LPT is a 4/3-approximation of the optimum, which is itself
        // >= max(total/slots, max): check the guarantee.
        let lower = (total / slots as f64).max(max);
        prop_assert!(ms <= 4.0 / 3.0 * lower + max + 1e-9);
    }

    /// Makespan is monotone: adding a task never shrinks it.
    #[test]
    fn lpt_monotone_in_tasks(
        durations in proptest::collection::vec(0.0f64..100.0, 1..30),
        extra in 0.0f64..100.0,
        slots in 1usize..10,
    ) {
        let before = lpt_makespan(&durations, slots);
        let mut more = durations.clone();
        more.push(extra);
        prop_assert!(lpt_makespan(&more, slots) >= before - 1e-9);
    }

    /// Merge-of-runs preserves the grouping order reducers observe: for
    /// any pair sequence and any budget (however many spill runs and
    /// intermediate merge passes it forces), the grouped stream equals
    /// the unlimited in-memory `BTreeMap` grouping — keys in sorted
    /// order, values in global emission order.
    #[test]
    fn spill_merge_preserves_reducer_grouping_order(
        keys in proptest::collection::vec(0i64..12, 0usize..120),
        budget in 0u64..400,
    ) {
        // Tag every pair with its emission index so order is observable.
        let pairs: Vec<(Tuple, Message)> = keys
            .iter()
            .enumerate()
            .map(|(seq, &k)| {
                (
                    Tuple::from_ints(&[k]),
                    Message::Req {
                        cond: seq as u32,
                        payload: Payload::Ref { guard: 0, id: seq as u64 },
                    },
                )
            })
            .collect();

        let mut expected: BTreeMap<Tuple, Vec<Message>> = BTreeMap::new();
        for (k, v) in &pairs {
            expected.entry(k.clone()).or_default().push(v.clone());
        }

        let tracker = MemoryBudget::new(MemBudget::bytes(budget));
        let spill = ShuffleSpill::new("proptest");
        let mut part = SpillingPartition::new(0, &tracker, &spill, 1);
        for (k, v) in pairs {
            part.push(k, v).unwrap();
        }
        let (mut stream, stats) = part.into_groups().unwrap();
        let mut got: Vec<(Tuple, Vec<Message>)> = Vec::new();
        while let Some(group) = stream.next_group().unwrap() {
            got.push(group);
        }
        drop(stream);

        let expected: Vec<(Tuple, Vec<Message>)> = expected.into_iter().collect();
        prop_assert_eq!(got, expected, "budget {} (stats {:?})", budget, stats);
        if let Some(limit) = tracker.limit() {
            prop_assert!(tracker.peak() <= limit);
        }
        prop_assert_eq!(tracker.used(), 0, "all charges released");
    }

    /// The columnar plane reproduces the pair plane's reducer groupings
    /// byte for byte: for any pair sequence (mixed message shapes, string
    /// keys and payloads included) and any budget — however many columnar
    /// spill frames and intermediate merge passes it forces — the batch
    /// partition's grouped stream equals the pair partition's, with
    /// identical total byte accounting.
    #[test]
    fn columnar_spill_merge_matches_pair_plane_grouping(
        keys in proptest::collection::vec(0i64..12, 0usize..120),
        budget in 0u64..400,
    ) {
        // Vary message shape with the emission index so frames carry
        // every kind, including dictionary-encoded payload tuples.
        let pairs: Vec<(Tuple, Message)> = keys
            .iter()
            .enumerate()
            .map(|(seq, &k)| {
                let key = if k % 3 == 0 {
                    Tuple::new(vec![gumbo_common::Value::str(format!("k{k}"))])
                } else {
                    Tuple::from_ints(&[k])
                };
                let msg = match seq % 4 {
                    0 => Message::Assert { cond: seq as u32 },
                    1 => Message::Req {
                        cond: seq as u32,
                        payload: Payload::Ref { guard: 0, id: seq as u64 },
                    },
                    2 => Message::Req {
                        cond: seq as u32,
                        payload: Payload::Tuple(Tuple::new(vec![
                            gumbo_common::Value::Int(seq as i64),
                            gumbo_common::Value::str("p"),
                        ])),
                    },
                    _ => Message::GuardTuple {
                        guard: seq as u32,
                        tuple: Tuple::from_ints(&[seq as i64]),
                    },
                };
                (key, msg)
            })
            .collect();

        // Pair plane under the same budget: the reference grouping.
        let pair_tracker = MemoryBudget::new(MemBudget::bytes(budget));
        let pair_spill = ShuffleSpill::new("proptest-pairs");
        let mut pair_part = SpillingPartition::new(0, &pair_tracker, &pair_spill, 1);
        for (k, v) in pairs.clone() {
            pair_part.push(k, v).unwrap();
        }
        let pair_bytes = pair_part.total_bytes();
        let (mut pair_stream, _) = pair_part.into_groups().unwrap();
        let mut expected: Vec<(Tuple, Vec<Message>)> = Vec::new();
        while let Some(group) = pair_stream.next_group().unwrap() {
            expected.push(group);
        }
        drop(pair_stream);

        // Columnar plane: one batch through a budget-charged partition.
        let tracker = MemoryBudget::new(MemBudget::bytes(budget));
        let spill = ShuffleSpill::new("proptest-columnar");
        let mut part = BatchPartition::new(0, &tracker, &spill, 1);
        let mut batch = PairBatch::new();
        for (k, v) in &pairs {
            batch.push_pair(k, v);
        }
        part.push_batch(&batch).unwrap();
        prop_assert_eq!(part.total_bytes(), pair_bytes, "total byte accounting");
        let (mut stream, stats) = part.into_groups().unwrap();
        let mut got: Vec<(Tuple, Vec<Message>)> = Vec::new();
        while let Some(group) = stream.next_group().unwrap() {
            got.push(group);
        }
        drop(stream);

        prop_assert_eq!(got, expected, "budget {} (stats {:?})", budget, stats);
        if let Some(limit) = tracker.limit() {
            prop_assert!(tracker.peak() <= limit);
        }
        prop_assert_eq!(tracker.used(), 0, "all charges released");
    }

    /// The filtered shuffle never drops a message whose key the other
    /// side holds: for any random key sets (mixed arities) inserted on
    /// both sides of their assert group, every `Req` and `Assert` must
    /// survive `keep` — Bloom filters have no false negatives, and with
    /// every key mutually present there are no false positives either.
    #[test]
    fn shuffle_filter_has_no_false_negatives(
        keys in proptest::collection::vec(
            proptest::collection::vec(-100i64..100, 1usize..4),
            1usize..150,
        ),
        bits in 6u32..17,
    ) {
        // One semijoin per assert group: cond 0 -> group 0, cond 1 -> 1.
        let spec = FilterSpec::new(vec![0, 1], 2);
        let mut collector = FilterCollector::new(&spec);
        for (idx, k) in keys.iter().enumerate() {
            let key = Tuple::from_ints(k);
            let g = (idx % 2) as u32;
            collector.observe(&key, &Message::Assert { cond: g });
            collector.observe(&key, &Message::Req {
                cond: g,
                payload: Payload::Ref { guard: 0, id: 0 },
            });
        }
        let filters = collector.seal(bits);
        let mut tally = ProbeTally::default();
        for (idx, k) in keys.iter().enumerate() {
            let key = Tuple::from_ints(k);
            let g = (idx % 2) as u32;
            prop_assert!(filters.keep(&key, &Message::Req {
                cond: g,
                payload: Payload::Ref { guard: 0, id: 0 },
            }, &mut tally), "request key {:?} dropped", k);
            prop_assert!(
                filters.keep(&key, &Message::Assert { cond: g }, &mut tally),
                "assert key {:?} dropped", k
            );
        }
        prop_assert_eq!(tally.suppressed, 0);
        prop_assert_eq!(tally.false_positives, 0, "all keys are mutually present");
    }

    /// The observed false-positive rate stays within twice the filter's
    /// own predicted rate (plus a small absolute slack for tiny counts):
    /// split-block filters run slightly above the classic Bloom formula
    /// at low densities, and `2x + 8` is the contract the planner's
    /// savings discount relies on.
    #[test]
    fn bloom_observed_fp_within_twice_predicted(
        n in 1u64..2000,
        bits in 6u32..17,
        seed in any::<u64>(),
    ) {
        let key = |i: u64| Tuple::from_ints(&[(seed ^ i) as i64, i as i64]);
        let mut bloom = SplitBlockBloom::with_capacity(n, bits);
        for i in 0..n {
            bloom.insert(hash_tuple(&key(i)));
        }
        let probes = 4096u64;
        let observed = (n..n + probes)
            .filter(|&i| bloom.contains(hash_tuple(&key(i))))
            .count() as f64;
        let expected = bloom.predicted_fp_rate(n) * probes as f64;
        prop_assert!(
            observed <= 2.0 * expected + 8.0,
            "observed {} false positives vs predicted {:.2} (n={}, bits={})",
            observed, expected, n, bits
        );
    }

    /// `into_dag()` over random programs preserves round semantics as
    /// dependencies: every edge points forward in round order, the flat
    /// (round-order) indexing is itself a valid topological order,
    /// `topo_order()` respects every edge, and any pair of jobs that
    /// conflict on a relation is explicitly ordered by an edge.
    #[test]
    fn into_dag_topo_order_consistent_with_rounds(
        spec in proptest::collection::vec(
            proptest::collection::vec(
                (
                    proptest::collection::vec(0u8..6, 0usize..4),
                    proptest::collection::vec(0u8..6, 0usize..3),
                ),
                1..4,
            ),
            1..5,
        ),
    ) {
        let mut program = MrProgram::new();
        for round in &spec {
            program.push_round(
                round.iter().map(|(ins, outs)| rel_job(ins, outs)).collect(),
            );
        }
        let expected_jobs = program.num_jobs();
        let expected_rounds = program.num_rounds();

        let dag = program.into_dag();
        prop_assert_eq!(dag.len(), expected_jobs);
        prop_assert_eq!(dag.num_rounds(), expected_rounds);

        // Edges point forward both in flat order (so the round-order
        // flattening is a topological order) and in round order.
        for (u, v) in dag.edges() {
            prop_assert!(u < v);
            prop_assert!(dag.node(u).round <= dag.node(v).round);
        }

        // topo_order() is a permutation respecting every edge.
        let order = dag.topo_order();
        prop_assert_eq!(order.len(), dag.len());
        let mut position = vec![usize::MAX; dag.len()];
        for (at, &node) in order.iter().enumerate() {
            prop_assert_eq!(position[node], usize::MAX, "node emitted twice");
            position[node] = at;
        }
        for (u, v) in dag.edges() {
            prop_assert!(position[u] < position[v]);
        }

        // Soundness: every conflicting pair is ordered by a direct edge,
        // so no topological order can reorder a read past a write.
        for u in 0..dag.len() {
            for v in (u + 1)..dag.len() {
                if jobs_conflict(&dag.node(u).job, &dag.node(v).job) {
                    prop_assert!(
                        dag.node(v).deps().contains(&u),
                        "conflicting pair ({}, {}) lacks an edge", u, v
                    );
                }
            }
        }
    }
}
