//! The bounded-memory shuffle: a shared memory budget, spill-to-disk
//! partition buffers, and the streaming merge the reduce phase consumes.
//!
//! The in-memory shuffle of the original engine buffered every key-value
//! pair, so the largest evaluable input was bounded by RAM. This module
//! makes memory a *budget* instead of an assumption:
//!
//! * [`MemBudget`] — the configuration knob (a `Copy` spec: a byte limit
//!   or unlimited), carried by `EngineConfig`, `EvalOptions` and
//!   `SchedulerConfig` and parsed from `--mem-budget` on the CLI;
//! * [`MemoryBudget`] — the runtime tracker: one instance per executor,
//!   shared by every job that executor runs (including jobs running
//!   *concurrently* under the DAG scheduler, which hands one executor to
//!   all its workers). Map output is charged as it is emitted into the
//!   per-reducer buffers; charging is compare-and-swap guarded, so the
//!   tracked shuffle memory can never exceed the limit — a partition
//!   that cannot charge flushes itself to disk instead;
//! * `SpillingPartition` — one reducer partition's buffer. When the
//!   buffer crosses its share of the budget (`limit / reducers`) or the
//!   global budget is exhausted, the buffer is stable-sorted by key and
//!   flushed as a run file under the job-scoped
//!   [`gumbo_storage::SpillDir`]; the reduce phase then streams a merge
//!   of the spill runs plus the in-memory tail.
//!
//! **Determinism.** Answers are byte-identical with spilling on or off,
//! whatever the budget and whenever the flushes happen. Each run is a
//! contiguous, stable-sorted slice of the partition's pair sequence in
//! global emission order; the k-way merge yields keys in ascending order
//! and, within a key, drains earlier runs before later ones — which
//! reconstructs exactly the `BTreeMap` grouping of the unlimited path
//! (keys sorted, values in emission order). Spill *statistics* (bytes,
//! run counts, merge passes) may legitimately differ across runs when
//! concurrent jobs share the budget; they are reported in
//! [`crate::JobStats`] but excluded from cross-runtime equivalence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gumbo_common::{GumboError, Result, Tuple, Value};
use gumbo_storage::{Compression, RunReader, RunWriter, SpillDir};

use crate::message::{Message, Payload};

/// How many sources (runs + the in-memory tail) a single streaming merge
/// may read at once. With more runs than this, intermediate merge passes
/// first collapse the oldest runs into one.
pub const MERGE_FANIN: usize = 16;

/// Charging granule for *unlimited* budgets: with no cap to enforce, the
/// shared tracker is bumped once per 64 KiB of buffered data rather than
/// once per pair, so the default path pays almost no shared-atomic
/// traffic while `used`/`peak` stay observable (over-reported by at most
/// one granule per live partition).
pub(crate) const UNLIMITED_GRANULE: u64 = 64 * 1024;

/// Workspace-wide shuffle metrics, shared by both data planes. Inert (one
/// relaxed load) unless tracing or `--metrics-dump` is on.
pub(crate) static SPILL_RUNS: gumbo_obs::Counter = gumbo_obs::Counter::new("shuffle.spill_runs");
pub(crate) static SPILL_BYTES: gumbo_obs::Counter =
    gumbo_obs::Counter::new("shuffle.spilled_bytes");
pub(crate) static BUDGET_DENIALS: gumbo_obs::Counter =
    gumbo_obs::Counter::new("shuffle.budget_denials");
pub(crate) static MERGE_PASSES: gumbo_obs::Counter =
    gumbo_obs::Counter::new("shuffle.merge_passes");

// ---------------------------------------------------------------------------
// Budget spec + tracker
// ---------------------------------------------------------------------------

/// A shuffle memory budget *specification*: a byte limit (or unlimited)
/// plus whether spilled runs are RLE-block compressed on disk.
///
/// This is the `Copy` value the configuration layers carry
/// (`EngineConfig::mem_budget`, `EvalOptions::mem_budget`,
/// `SchedulerConfig::mem_budget`); executors resolve it into a shared
/// [`MemoryBudget`] tracker when built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemBudget {
    limit: Option<u64>,
    compress: bool,
}

impl MemBudget {
    /// No limit: the shuffle buffers everything in memory (the historical
    /// behavior), while still tracking usage for observability.
    pub const UNLIMITED: MemBudget = MemBudget {
        limit: None,
        compress: false,
    };

    /// A hard limit on tracked shuffle memory, in bytes.
    pub fn bytes(limit: u64) -> MemBudget {
        MemBudget {
            limit: Some(limit),
            compress: false,
        }
    }

    /// The same budget with spill-run compression switched on or off
    /// (`--spill-compress` on the CLI). Compression changes only the
    /// on-disk representation of runs — answers, grouping order and all
    /// non-spill statistics are byte-identical either way.
    pub fn compressed(self, compress: bool) -> MemBudget {
        MemBudget { compress, ..self }
    }

    /// Whether spill runs are RLE-block compressed on disk.
    pub fn compress(&self) -> bool {
        self.compress
    }

    /// The run-file codec this budget selects.
    pub fn run_compression(&self) -> Compression {
        if self.compress {
            Compression::Rle
        } else {
            Compression::None
        }
    }

    /// The limit in bytes, or `None` when unlimited.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Whether a limit is set.
    pub fn is_limited(&self) -> bool {
        self.limit.is_some()
    }

    /// Parse a CLI spelling: `unlimited` / `none`, a plain byte count, or
    /// a count with a binary suffix (`64k`, `16m`, `1g`).
    pub fn parse(s: &str) -> Option<MemBudget> {
        let s = s.trim().to_ascii_lowercase();
        if s == "unlimited" || s == "none" {
            return Some(MemBudget::UNLIMITED);
        }
        let (digits, mult) = match s.strip_suffix(['k', 'm', 'g']) {
            Some(prefix) => {
                let mult = match s.as_bytes()[s.len() - 1] {
                    b'k' => 1u64 << 10,
                    b'm' => 1 << 20,
                    _ => 1 << 30,
                };
                (prefix, mult)
            }
            None => (s.as_str(), 1),
        };
        let n: u64 = digits.parse().ok()?;
        Some(MemBudget::bytes(n.checked_mul(mult)?))
    }

    /// The CLI spelling of this budget (the compression flag is a
    /// separate CLI switch and is not part of the label).
    pub fn label(&self) -> String {
        match self.limit {
            None => "unlimited".into(),
            Some(b) => b.to_string(),
        }
    }
}

/// The runtime memory tracker backing a [`MemBudget`].
///
/// One instance is shared by every job an executor runs; the DAG
/// scheduler shares one executor across its worker threads, so
/// concurrent jobs draw from (and are bounded by) the *same* budget.
/// `try_charge` is CAS-guarded: tracked usage — and therefore the
/// recorded peak — never exceeds the limit.
#[derive(Debug, Default)]
pub struct MemoryBudget {
    spec: MemBudget,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryBudget {
    /// Create a tracker for a budget spec.
    pub fn new(spec: MemBudget) -> MemoryBudget {
        MemoryBudget {
            spec,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// An unlimited tracker.
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget::new(MemBudget::UNLIMITED)
    }

    /// The spec this tracker enforces.
    pub fn spec(&self) -> MemBudget {
        self.spec
    }

    /// The byte limit, or `None` when unlimited.
    pub fn limit(&self) -> Option<u64> {
        self.spec.limit()
    }

    /// Try to reserve `bytes` of shuffle memory. Returns `false` (without
    /// reserving anything) when the reservation would exceed the limit.
    pub fn try_charge(&self, bytes: u64) -> bool {
        let Some(limit) = self.spec.limit() else {
            // Unlimited: nothing to enforce, so skip the CAS loop — plain
            // relaxed counters keep usage/peak observable.
            let next = self
                .used
                .fetch_add(bytes, Ordering::Relaxed)
                .saturating_add(bytes);
            self.peak.fetch_max(next, Ordering::Relaxed);
            return true;
        };
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(bytes);
            if next > limit {
                return false;
            }
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(now) => current = now,
            }
        }
    }

    /// Return previously charged bytes to the pool.
    pub fn release(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Currently tracked shuffle bytes.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of tracked shuffle bytes. By construction this
    /// never exceeds the limit. Exact when a limit is set; under an
    /// unlimited budget partitions charge in 64 KiB granules
    /// (`UNLIMITED_GRANULE`), so the peak is an upper bound (over by at
    /// most one granule per live partition).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// One partition's soft share of the budget: a partition flushes once
    /// its buffer crosses this, keeping `partitions` concurrent buffers
    /// collectively under the limit.
    pub fn partition_share(&self, partitions: usize) -> u64 {
        match self.spec.limit() {
            None => u64::MAX,
            Some(limit) => limit / partitions.max(1) as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-job spill statistics
// ---------------------------------------------------------------------------

/// Spill accounting for one job (summed over its partitions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Estimated bytes of key-value data flushed to disk (same
    /// `estimated_bytes` accounting the budget charges) — the *raw* side
    /// of the raw/on-disk pair.
    pub spilled_bytes: u64,
    /// Actual file bytes of those initial flushes (length-prefixed
    /// encoded frames, RLE-block compressed when the budget asks for
    /// it) — the *on-disk* side. Encoded frames differ from the
    /// estimated accounting, so measure compression by comparing the
    /// disk figures of a compressed and an uncompressed run.
    pub spilled_disk_bytes: u64,
    /// Run files written (initial flushes plus intermediate merge
    /// outputs).
    pub spill_files: u64,
    /// Intermediate merge passes needed to bring the run count under the
    /// merge fan-in before the final streaming pass.
    pub merge_passes: u64,
}

impl SpillStats {
    /// Accumulate another partition's (or job's) counters.
    pub fn absorb(&mut self, other: SpillStats) {
        self.spilled_bytes += other.spilled_bytes;
        self.spilled_disk_bytes += other.spilled_disk_bytes;
        self.spill_files += other.spill_files;
        self.merge_passes += other.merge_passes;
    }
}

// ---------------------------------------------------------------------------
// Pair codec
// ---------------------------------------------------------------------------

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(0);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(1);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

fn encode_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    buf.extend_from_slice(&(t.arity() as u32).to_le_bytes());
    for v in t.values() {
        encode_value(buf, v);
    }
}

/// Serialize one `(key, message)` pair into `buf` (cleared first).
pub(crate) fn encode_pair(buf: &mut Vec<u8>, key: &Tuple, value: &Message) {
    buf.clear();
    encode_tuple(buf, key);
    match value {
        Message::Assert { cond } => {
            buf.push(0);
            buf.extend_from_slice(&cond.to_le_bytes());
        }
        Message::Req { cond, payload } => {
            buf.push(1);
            buf.extend_from_slice(&cond.to_le_bytes());
            match payload {
                Payload::Tuple(t) => {
                    buf.push(0);
                    encode_tuple(buf, t);
                }
                Payload::Ref { guard, id } => {
                    buf.push(1);
                    buf.extend_from_slice(&guard.to_le_bytes());
                    buf.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        Message::Tag { rel } => {
            buf.push(2);
            buf.extend_from_slice(&rel.to_le_bytes());
        }
        Message::GuardTuple { guard, tuple } => {
            buf.push(3);
            buf.extend_from_slice(&guard.to_le_bytes());
            encode_tuple(buf, tuple);
        }
    }
}

struct FrameCursor<'a> {
    frame: &'a [u8],
    at: usize,
}

impl<'a> FrameCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.frame.len());
        let end = end.ok_or_else(|| GumboError::Storage("truncated spill frame".into()))?;
        let slice = &self.frame[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let arity = self.u32()? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(match self.u8()? {
                0 => Value::Int(self.i64()?),
                1 => {
                    let len = self.u32()? as usize;
                    let bytes = self.take(len)?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| GumboError::Storage("non-UTF-8 spill string".into()))?;
                    Value::str(s)
                }
                tag => {
                    return Err(GumboError::Storage(format!(
                        "unknown spill value tag {tag}"
                    )))
                }
            });
        }
        Ok(Tuple::new(values))
    }
}

/// Deserialize one `(key, message)` pair from a frame.
pub(crate) fn decode_pair(frame: &[u8]) -> Result<(Tuple, Message)> {
    let mut c = FrameCursor { frame, at: 0 };
    let key = c.tuple()?;
    let message = match c.u8()? {
        0 => Message::Assert { cond: c.u32()? },
        1 => {
            let cond = c.u32()?;
            let payload = match c.u8()? {
                0 => Payload::Tuple(c.tuple()?),
                1 => Payload::Ref {
                    guard: c.u32()?,
                    id: c.u64()?,
                },
                tag => {
                    return Err(GumboError::Storage(format!(
                        "unknown spill payload tag {tag}"
                    )))
                }
            };
            Message::Req { cond, payload }
        }
        2 => Message::Tag { rel: c.u32()? },
        3 => Message::GuardTuple {
            guard: c.u32()?,
            tuple: c.tuple()?,
        },
        tag => {
            return Err(GumboError::Storage(format!(
                "unknown spill message tag {tag}"
            )))
        }
    };
    Ok((key, message))
}

// ---------------------------------------------------------------------------
// Job-scoped spill directory (lazily created, shared across partitions)
// ---------------------------------------------------------------------------

/// Lazily-created, job-scoped spill directory shared by every partition
/// of one job's shuffle. The directory only touches the filesystem on
/// the first actual flush and is removed when this handle drops (success
/// and error paths alike).
///
/// Public (like [`SpillingPartition`] and [`GroupStream`]) so the bench
/// crate and the workspace-level allocation smoke test can drive the
/// shuffle layer directly; not a stability surface.
pub struct ShuffleSpill {
    label: String,
    dir: Mutex<Option<SpillDir>>,
}

impl ShuffleSpill {
    /// A lazily-created spill scope for one job's shuffle.
    pub fn new(job_name: &str) -> ShuffleSpill {
        ShuffleSpill {
            label: job_name.to_string(),
            dir: Mutex::new(None),
        }
    }

    /// The job name this spill scope belongs to (trace event labels).
    pub(crate) fn label(&self) -> &str {
        &self.label
    }

    /// Allocate the path for a new run file, creating the directory on
    /// first use.
    pub(crate) fn run_path(&self, partition: usize, seq: u64) -> Result<std::path::PathBuf> {
        let mut guard = self.dir.lock().expect("unpoisoned spill dir");
        if guard.is_none() {
            *guard = Some(SpillDir::create(&self.label)?);
        }
        Ok(guard
            .as_ref()
            .expect("just created")
            .run_path(partition, seq))
    }
}

// ---------------------------------------------------------------------------
// Spilling partition buffer
// ---------------------------------------------------------------------------

/// One run on disk: pairs stable-sorted by key, a contiguous slice of the
/// partition's emission-order pair sequence.
pub(crate) struct Run {
    pub(crate) path: std::path::PathBuf,
}

impl Drop for Run {
    fn drop(&mut self) {
        // Eager per-run cleanup keeps disk usage bounded during long
        // merges; the SpillDir drop sweeps up anything left.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The shuffle buffer of one reducer partition, charging the shared
/// [`MemoryBudget`] as pairs arrive and spilling sorted runs when its
/// share of the budget is exceeded (or the global budget is exhausted).
///
/// This is the *pair* (row-at-a-time) data plane; the columnar
/// equivalent is [`crate::batch_shuffle::BatchPartition`].
pub struct SpillingPartition<'a> {
    partition: usize,
    share: u64,
    budget: &'a MemoryBudget,
    spill: &'a ShuffleSpill,
    compression: Compression,
    pairs: Vec<(Tuple, Message)>,
    /// Bytes currently reserved in the budget for `pairs`.
    charged: u64,
    /// Estimated bytes held in `pairs` (may exceed `charged` by at most
    /// one overflow pair that could not be reserved).
    buffered: u64,
    /// Total estimated bytes ever pushed (the job's `reducer_bytes`).
    total_bytes: u64,
    runs: Vec<Run>,
    next_seq: u64,
    stats: SpillStats,
}

impl<'a> SpillingPartition<'a> {
    /// An empty buffer for reducer `partition` of `partitions`.
    pub fn new(
        partition: usize,
        budget: &'a MemoryBudget,
        spill: &'a ShuffleSpill,
        partitions: usize,
    ) -> SpillingPartition<'a> {
        SpillingPartition {
            partition,
            share: budget.partition_share(partitions),
            budget,
            spill,
            compression: budget.spec().run_compression(),
            pairs: Vec::new(),
            charged: 0,
            buffered: 0,
            total_bytes: 0,
            runs: Vec::new(),
            next_seq: 0,
            stats: SpillStats::default(),
        }
    }

    /// Total estimated bytes pushed into this partition so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Accept one pair (in global emission order), charging the budget
    /// and flushing a sorted run when over the share or out of budget.
    pub fn push(&mut self, key: Tuple, value: Message) -> Result<()> {
        let bytes = key.estimated_bytes() + value.estimated_bytes();
        self.total_bytes += bytes;
        if self.budget.limit().is_none() {
            // Unlimited (the default): nothing can fail and nothing will
            // ever flush, so charge the shared tracker in coarse granules
            // — usage/peak stay observable (rounded up to the granule)
            // without two shared-cacheline atomics per pair on the
            // parallel drain's hot path.
            self.buffered += bytes;
            self.pairs.push((key, value));
            if self.buffered > self.charged {
                let grant =
                    (self.buffered - self.charged).div_ceil(UNLIMITED_GRANULE) * UNLIMITED_GRANULE;
                let granted = self.budget.try_charge(grant);
                debug_assert!(granted, "an unlimited budget always grants");
                self.charged += grant;
            }
            return Ok(());
        }
        if self.budget.try_charge(bytes) {
            self.charged += bytes;
            self.buffered += bytes;
            self.pairs.push((key, value));
            if self.buffered > self.share {
                self.flush()?;
            }
        } else {
            // Global budget exhausted: flush what we hold — including
            // this (briefly unreserved) pair — straight to disk.
            BUDGET_DENIALS.incr();
            gumbo_obs::event("budget:exhausted", |f| {
                f.str("job", self.spill.label());
                f.u64("partition", self.partition as u64);
                f.u64("denied_bytes", bytes);
                f.u64("buffered_bytes", self.buffered);
            });
            self.buffered += bytes;
            self.pairs.push((key, value));
            self.flush()?;
        }
        Ok(())
    }

    /// Stable-sort the buffer by key and write it out as one run.
    fn flush(&mut self) -> Result<()> {
        if self.pairs.is_empty() {
            return Ok(());
        }
        // The span's `bytes` field is exactly this flush's increment of
        // `JobStats.spilled_bytes` — traces and stats stay reconcilable.
        let mut span = gumbo_obs::span_with("spill:run", |f| {
            f.str("job", self.spill.label());
            f.u64("partition", self.partition as u64);
            f.u64("bytes", self.buffered);
            f.u64("pairs", self.pairs.len() as u64);
        });
        self.pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable: emission order kept per key
        let path = self.spill.run_path(self.partition, self.next_seq)?;
        self.next_seq += 1;
        let mut writer = RunWriter::create_with(&path, self.compression)?;
        let mut frame = Vec::new();
        for (k, v) in self.pairs.drain(..) {
            encode_pair(&mut frame, &k, &v);
            writer.push(&frame)?;
        }
        let (_, disk_bytes) = writer.finish()?;
        span.record(|f| f.u64("disk_bytes", disk_bytes));
        SPILL_RUNS.incr();
        SPILL_BYTES.add(self.buffered);
        self.runs.push(Run { path });
        self.stats.spill_files += 1;
        self.stats.spilled_bytes += self.buffered;
        self.stats.spilled_disk_bytes += disk_bytes;
        self.budget.release(self.charged);
        self.charged = 0;
        self.buffered = 0;
        Ok(())
    }

    /// Finish the partition: collapse runs under the merge fan-in, sort
    /// the in-memory tail, and hand back the grouped stream the reducer
    /// consumes plus this partition's spill statistics.
    pub fn into_groups(mut self) -> Result<(GroupStream<'a>, SpillStats)> {
        // Intermediate passes: merge the *oldest* runs into one (stable:
        // ties drain earlier runs first) until runs + tail fit the fan-in.
        while self.runs.len() + 1 > MERGE_FANIN {
            let take = MERGE_FANIN.min(self.runs.len());
            let _span = gumbo_obs::span_with("spill:merge", |f| {
                f.str("job", self.spill.label());
                f.u64("partition", self.partition as u64);
                f.u64("fan_in", take as u64);
            });
            let oldest: Vec<Run> = self.runs.drain(..take).collect();
            let mut sources = Vec::with_capacity(oldest.len());
            for run in &oldest {
                sources.push(PairSource::open_run(&run.path)?);
            }
            let path = self.spill.run_path(self.partition, self.next_seq)?;
            self.next_seq += 1;
            let mut writer = RunWriter::create_with(&path, self.compression)?;
            let mut merge = MergePairs::new(sources);
            let mut frame = Vec::new();
            while let Some(i) = merge.min_source() {
                let (k, v) = merge.pop(i)?;
                encode_pair(&mut frame, &k, &v);
                writer.push(&frame)?;
            }
            writer.finish()?;
            // The merged run holds the oldest data: it must stay first.
            self.runs.insert(0, Run { path });
            MERGE_PASSES.incr();
            self.stats.spill_files += 1;
            self.stats.merge_passes += 1;
        }

        self.pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut sources = Vec::with_capacity(self.runs.len() + 1);
        for run in &self.runs {
            sources.push(PairSource::open_run(&run.path)?);
        }
        sources.push(PairSource::from_memory(std::mem::take(&mut self.pairs)));
        let stats = self.stats;
        Ok((
            GroupStream {
                merge: MergePairs::new(sources),
                budget: self.budget,
                charged: std::mem::take(&mut self.charged),
                // Keep the run files alive (and the tail's budget charge
                // held) until the stream is fully consumed.
                _runs: std::mem::take(&mut self.runs),
            },
            stats,
        ))
    }
}

impl Drop for SpillingPartition<'_> {
    fn drop(&mut self) {
        self.budget.release(self.charged);
    }
}

// ---------------------------------------------------------------------------
// Streaming merge
// ---------------------------------------------------------------------------

/// One merge input: a run on disk or the sorted in-memory tail.
enum PairSource {
    Run(RunReader),
    Mem(std::vec::IntoIter<(Tuple, Message)>),
}

impl PairSource {
    fn open_run(path: &std::path::Path) -> Result<Peeked> {
        let mut source = PairSource::Run(RunReader::open(path)?);
        let head = source.pull()?;
        Ok(Peeked { source, head })
    }

    fn from_memory(pairs: Vec<(Tuple, Message)>) -> Peeked {
        let mut source = PairSource::Mem(pairs.into_iter());
        let head = source.pull().expect("in-memory source cannot fail");
        Peeked { source, head }
    }

    fn pull(&mut self) -> Result<Option<(Tuple, Message)>> {
        match self {
            PairSource::Run(reader) => match reader.next_frame()? {
                Some(frame) => Ok(Some(decode_pair(&frame)?)),
                None => Ok(None),
            },
            PairSource::Mem(iter) => Ok(iter.next()),
        }
    }
}

/// A merge input with its next pair pre-read.
struct Peeked {
    source: PairSource,
    head: Option<(Tuple, Message)>,
}

/// K-way stable merge over sorted pair sources: keys ascend; for equal
/// keys, earlier sources drain first — reconstructing global emission
/// order within each key because source order *is* emission order.
struct MergePairs {
    sources: Vec<Peeked>,
}

impl MergePairs {
    fn new(sources: Vec<Peeked>) -> MergePairs {
        MergePairs { sources }
    }

    /// Index of the source holding the smallest head key (earliest source
    /// wins ties), or `None` when everything is drained.
    fn min_source(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in self.sources.iter().enumerate() {
            let Some((key, _)) = &s.head else { continue };
            match best {
                Some(b) if self.sources[b].head.as_ref().expect("has head").0 <= *key => {}
                _ => best = Some(i),
            }
        }
        best
    }

    /// Pop the head of source `i` (which the caller selected via
    /// [`MergePairs::min_source`]) and refill its peek slot.
    fn pop(&mut self, i: usize) -> Result<(Tuple, Message)> {
        let source = &mut self.sources[i];
        let pair = source.head.take().expect("selected source has a head");
        source.head = source.source.pull()?;
        Ok(pair)
    }
}

/// The grouped stream a reducer consumes: `(key, values)` with keys in
/// ascending order and values in global emission order — exactly the
/// iteration order of the unlimited path's `BTreeMap` grouping.
pub struct GroupStream<'a> {
    merge: MergePairs,
    budget: &'a MemoryBudget,
    charged: u64,
    _runs: Vec<Run>,
}

impl GroupStream<'_> {
    /// The next key group, or `None` when the partition is exhausted.
    pub fn next_group(&mut self) -> Result<Option<(Tuple, Vec<Message>)>> {
        let mut values = Vec::new();
        Ok(self.next_group_into(&mut values)?.map(|key| (key, values)))
    }

    /// The next key group with its values appended into a caller-owned
    /// scratch vector (cleared first), so one allocation serves every
    /// group of a reduce. One `min_source` scan per pair: the selected
    /// index is popped directly rather than recomputed.
    pub fn next_group_into(&mut self, values: &mut Vec<Message>) -> Result<Option<Tuple>> {
        values.clear();
        let Some(i) = self.merge.min_source() else {
            return Ok(None);
        };
        let (key, first) = self.merge.pop(i)?;
        values.push(first);
        while let Some(i) = self.merge.min_source() {
            match &self.merge.sources[i].head {
                Some((k, _)) if *k == key => values.push(self.merge.pop(i)?.1),
                _ => break,
            }
        }
        Ok(Some(key))
    }
}

impl Drop for GroupStream<'_> {
    fn drop(&mut self) {
        self.budget.release(self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(key: i64, seq: u64) -> (Tuple, Message) {
        (
            Tuple::from_ints(&[key]),
            Message::Req {
                cond: seq as u32,
                payload: Payload::Ref { guard: 0, id: seq },
            },
        )
    }

    /// Group a pair sequence through a `SpillingPartition` under `spec`.
    fn group_with(
        spec: MemBudget,
        pairs: &[(Tuple, Message)],
    ) -> (Vec<(Tuple, Vec<Message>)>, SpillStats, u64) {
        let budget = MemoryBudget::new(spec);
        let spill = ShuffleSpill::new("test");
        let mut part = SpillingPartition::new(0, &budget, &spill, 1);
        for (k, v) in pairs {
            part.push(k.clone(), v.clone()).unwrap();
        }
        let (mut stream, stats) = part.into_groups().unwrap();
        let mut groups = Vec::new();
        while let Some(g) = stream.next_group().unwrap() {
            groups.push(g);
        }
        drop(stream);
        assert_eq!(budget.used(), 0, "all charges released");
        (groups, stats, budget.peak())
    }

    #[test]
    fn codec_round_trips_every_message_shape() {
        let tuples = [
            Tuple::from_ints(&[]),
            Tuple::from_ints(&[1, -7, i64::MAX]),
            Tuple::new(vec![Value::str("hello"), Value::Int(0), Value::str("")]),
        ];
        let messages = [
            Message::Assert { cond: 3 },
            Message::Tag { rel: u32::MAX },
            Message::Req {
                cond: 1,
                payload: Payload::Tuple(Tuple::from_ints(&[5, 6])),
            },
            Message::Req {
                cond: 2,
                payload: Payload::Ref {
                    guard: 9,
                    id: 1 << 40,
                },
            },
            Message::GuardTuple {
                guard: 0,
                tuple: Tuple::new(vec![Value::str("g")]),
            },
        ];
        let mut frame = Vec::new();
        for k in &tuples {
            for v in &messages {
                encode_pair(&mut frame, k, v);
                let (k2, v2) = decode_pair(&frame).unwrap();
                assert_eq!((&k2, &v2), (k, v));
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_pair(&[]).is_err());
        assert!(decode_pair(&[9, 9, 9, 9, 9]).is_err());
    }

    #[test]
    fn mem_budget_parses_cli_spellings() {
        assert_eq!(MemBudget::parse("unlimited"), Some(MemBudget::UNLIMITED));
        assert_eq!(MemBudget::parse("none"), Some(MemBudget::UNLIMITED));
        assert_eq!(MemBudget::parse("262144"), Some(MemBudget::bytes(262144)));
        assert_eq!(MemBudget::parse("64k"), Some(MemBudget::bytes(64 << 10)));
        assert_eq!(MemBudget::parse("16M"), Some(MemBudget::bytes(16 << 20)));
        assert_eq!(MemBudget::parse("1g"), Some(MemBudget::bytes(1 << 30)));
        assert_eq!(MemBudget::parse("banana"), None);
        assert_eq!(MemBudget::parse(""), None);
    }

    #[test]
    fn charging_never_exceeds_the_limit() {
        let b = MemoryBudget::new(MemBudget::bytes(100));
        assert!(b.try_charge(60));
        assert!(b.try_charge(40));
        assert!(!b.try_charge(1));
        assert_eq!(b.used(), 100);
        assert_eq!(b.peak(), 100);
        b.release(50);
        assert!(b.try_charge(30));
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn concurrent_charging_respects_the_limit() {
        let b = MemoryBudget::new(MemBudget::bytes(1000));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        if b.try_charge(7) {
                            assert!(b.used() <= 1000);
                            b.release(7);
                        }
                    }
                });
            }
        });
        assert!(b.peak() <= 1000);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn spilled_grouping_matches_in_memory_grouping() {
        // Interleaved keys with per-pair sequence markers: grouping must
        // keep values in emission order however many runs are forced.
        let keys = [3i64, 1, 3, 2, 1, 3, 1, 2, 2, 3, 1, 1];
        let pairs: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| pair(k, i as u64))
            .collect();
        let (reference, ref_stats, _) = group_with(MemBudget::UNLIMITED, &pairs);
        assert_eq!(ref_stats, SpillStats::default());
        for budget in [1u64, 16, 64, 200] {
            let (groups, stats, peak) = group_with(MemBudget::bytes(budget), &pairs);
            assert_eq!(groups, reference, "budget {budget}");
            assert!(stats.spilled_bytes > 0, "budget {budget} never spilled");
            assert!(peak <= budget, "budget {budget}: peak {peak}");
        }
    }

    #[test]
    fn many_runs_trigger_intermediate_merge_passes() {
        // Budget of 1 byte: every pair becomes its own run, far beyond
        // the merge fan-in.
        let pairs: Vec<_> = (0..100).map(|i| pair(i % 5, i as u64)).collect();
        let (reference, _, _) = group_with(MemBudget::UNLIMITED, &pairs);
        let (groups, stats, _) = group_with(MemBudget::bytes(1), &pairs);
        assert_eq!(groups, reference);
        assert_eq!(
            stats.spill_files as usize,
            100 + stats.merge_passes as usize
        );
        assert!(
            stats.merge_passes > 0,
            "100 single-pair runs need intermediate merges"
        );
    }

    #[test]
    fn compressed_runs_group_identically_and_shrink_on_disk() {
        // Repetitive integer pairs (8-byte LE words full of zero bytes):
        // RLE must cut the on-disk size while grouping stays identical.
        let pairs: Vec<_> = (0..200).map(|i| pair(i % 7, i as u64)).collect();
        let (reference, _, _) = group_with(MemBudget::UNLIMITED, &pairs);
        let plain_spec = MemBudget::bytes(64);
        let packed_spec = MemBudget::bytes(64).compressed(true);
        assert!(packed_spec.compress() && !plain_spec.compress());
        let (plain_groups, plain_stats, _) = group_with(plain_spec, &pairs);
        let (packed_groups, packed_stats, peak) = group_with(packed_spec, &pairs);
        assert_eq!(plain_groups, reference);
        assert_eq!(
            packed_groups, reference,
            "compression must not change grouping"
        );
        // Same raw spill volume either way; compression only shrinks disk.
        assert_eq!(packed_stats.spilled_bytes, plain_stats.spilled_bytes);
        assert!(packed_stats.spilled_disk_bytes > 0);
        assert!(
            packed_stats.spilled_disk_bytes < plain_stats.spilled_disk_bytes,
            "rle {} should beat raw {}",
            packed_stats.spilled_disk_bytes,
            plain_stats.spilled_disk_bytes
        );
        assert!(peak <= 64);
    }

    #[test]
    fn empty_partition_yields_no_groups() {
        let (groups, stats, peak) = group_with(MemBudget::bytes(10), &[]);
        assert!(groups.is_empty());
        assert_eq!(stats, SpillStats::default());
        assert_eq!(peak, 0);
    }
}
