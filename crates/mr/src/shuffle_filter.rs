//! Bloom-filtered semijoin shuffle: membership filters that suppress
//! non-matching `Assert`/`Req` traffic *before* the exact shuffle.
//!
//! The paper's cost model (§3.3) is dominated by bytes shuffled from
//! mappers to reducers, and the semijoin request/assert exchange only
//! needs *membership*: a request whose join key no conditional fact
//! asserts can never produce output, and an assert whose key no guard
//! fact requests is never read. This module adds a two-stage filtered
//! shuffle mode:
//!
//! 1. **build** — before the map phase proper, the job's mapper runs
//!    once over the input in collect-only mode and each side's distinct
//!    join keys are summarized as a compact [`SplitBlockBloom`] filter
//!    per assert group. The filters are broadcast artifacts: their bytes
//!    are metered like any other communication
//!    ([`crate::JobStats::filter_bytes`]) and priced by the cost model's
//!    transfer constant.
//! 2. **probe** — during the real map phase every candidate `Req` is
//!    tested against the *assert* filter of its group and every `Assert`
//!    against the union-of-requests filter, and messages whose keys
//!    cannot match are suppressed.
//!
//! Bloom filters have no false negatives, so a message that could pair
//! with the other side always survives — answers are **byte-identical**
//! with filtering on or off (the workspace equivalence suite proves it).
//! False positives only cost a few extra exact messages; the observed
//! rate is reported in [`crate::JobStats`].
//!
//! Filtering is sound per *assert group*: both sides hash the same
//! salted key tuples ([`crate::hash::hash_tuple`]), and group indices
//! mirror the reducer's routing table, so an `S`-assert can never
//! satisfy a `T`-request that happens to share a key value.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use gumbo_common::Tuple;

use crate::hash::hash_tuple;
use crate::message::Message;

/// Deterministic seed mixed into every filter hash, so filter contents
/// are reproducible across runs and runtimes.
const FILTER_SEED: u64 = 0x6f5b_b100_0f11_7e25;

/// Default filter density when the mode spelling omits `:BITS_PER_KEY`.
pub const DEFAULT_BITS_PER_KEY: u32 = 10;

/// Accepted density range; spellings outside it are clamped.
pub const MIN_BITS_PER_KEY: u32 = 6;
pub const MAX_BITS_PER_KEY: u32 = 32;

/// Whether (and how) jobs run the two-stage filtered shuffle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleFilterMode {
    /// No filtering (the historical behaviour).
    #[default]
    Off,
    /// Filter every job that declares a [`FilterSpec`], at the given
    /// density.
    Bloom {
        /// Filter bits allocated per distinct key.
        bits_per_key: u32,
    },
    /// Filter a job only when the planner predicted a net byte win
    /// ([`FilterSpec::auto_profitable`]); jobs without a prediction run
    /// unfiltered.
    Auto {
        /// Filter bits allocated per distinct key.
        bits_per_key: u32,
    },
}

impl ShuffleFilterMode {
    /// Parse a CLI spelling: `off`, `bloom`, `bloom:BITS`, `auto`, or
    /// `auto:BITS`. Densities are clamped to
    /// [`MIN_BITS_PER_KEY`]..=[`MAX_BITS_PER_KEY`].
    pub fn parse(s: &str) -> Option<ShuffleFilterMode> {
        let clamp = |b: u32| b.clamp(MIN_BITS_PER_KEY, MAX_BITS_PER_KEY);
        match s {
            "off" => Some(ShuffleFilterMode::Off),
            "bloom" => Some(ShuffleFilterMode::Bloom {
                bits_per_key: DEFAULT_BITS_PER_KEY,
            }),
            "auto" => Some(ShuffleFilterMode::Auto {
                bits_per_key: DEFAULT_BITS_PER_KEY,
            }),
            _ => {
                if let Some(bits) = s.strip_prefix("bloom:") {
                    let bits: u32 = bits.parse().ok()?;
                    Some(ShuffleFilterMode::Bloom {
                        bits_per_key: clamp(bits),
                    })
                } else if let Some(bits) = s.strip_prefix("auto:") {
                    let bits: u32 = bits.parse().ok()?;
                    Some(ShuffleFilterMode::Auto {
                        bits_per_key: clamp(bits),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// The CLI spelling of this mode.
    pub fn label(&self) -> String {
        match self {
            ShuffleFilterMode::Off => "off".to_string(),
            ShuffleFilterMode::Bloom { bits_per_key } => format!("bloom:{bits_per_key}"),
            ShuffleFilterMode::Auto { bits_per_key } => format!("auto:{bits_per_key}"),
        }
    }

    /// The configured filter density, when filtering can engage.
    pub fn bits_per_key(&self) -> Option<u32> {
        match self {
            ShuffleFilterMode::Off => None,
            ShuffleFilterMode::Bloom { bits_per_key }
            | ShuffleFilterMode::Auto { bits_per_key } => Some(*bits_per_key),
        }
    }
}

/// How a job's messages map onto filterable semijoin sides. Attached to
/// [`crate::Job`]s by the MSJ builder; jobs without a spec (EVAL,
/// 1-ROUND, ad-hoc jobs) always run unfiltered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Local `Req` condition index → assert group index (the mirror of
    /// the reducer's routing table).
    pub req_group: Vec<u32>,
    /// Number of assert groups (shared conditional streams).
    pub groups: usize,
    /// Planner verdict for `auto` mode: `Some(true)` when the predicted
    /// suppressed bytes exceed the filter broadcast bytes, `Some(false)`
    /// when not, `None` when no prediction was possible (no estimator,
    /// or missing statistics).
    pub auto_profitable: Option<bool>,
}

impl FilterSpec {
    /// A spec with no planner verdict yet.
    pub fn new(req_group: Vec<u32>, groups: usize) -> FilterSpec {
        FilterSpec {
            req_group,
            groups,
            auto_profitable: None,
        }
    }
}

/// Number of bytes a filter over `keys` distinct keys occupies at the
/// given density (whole 32-byte blocks, at least one).
pub fn filter_bytes_for(keys: u64, bits_per_key: u32) -> u64 {
    let bits = keys.saturating_mul(u64::from(bits_per_key));
    bits.div_ceil(BLOCK_BITS).max(1) * BLOCK_BYTES
}

const BLOCK_BYTES: u64 = 32;
const BLOCK_BITS: u64 = BLOCK_BYTES * 8;
/// Bits set per key (one per 32-bit lane of a block).
const PROBE_BITS: u32 = 8;

/// Per-lane odd multipliers (the split-block construction of Putze et
/// al., as used by Parquet/Arrow): each selects one bit in its lane.
const SALT: [u32; 8] = [
    0x47b6_137b,
    0x4497_4d91,
    0x8824_ad5b,
    0xa2b7_289d,
    0x7054_95c7,
    0x2df1_424b,
    0x9efc_4947,
    0x5c6b_fb31,
];

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable split-block Bloom filter: 256-bit blocks of eight 32-bit
/// lanes, one probe bit per lane. One cache line per membership test,
/// no false negatives ever, false-positive rate governed by
/// `bits_per_key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitBlockBloom {
    /// Eight consecutive `u32` lanes per block.
    words: Vec<u32>,
    seed: u64,
}

impl SplitBlockBloom {
    /// A filter sized for `keys` distinct keys at `bits_per_key` density.
    pub fn with_capacity(keys: u64, bits_per_key: u32) -> SplitBlockBloom {
        SplitBlockBloom::seeded(keys, bits_per_key, FILTER_SEED)
    }

    /// [`SplitBlockBloom::with_capacity`] with an explicit hash seed.
    pub fn seeded(keys: u64, bits_per_key: u32, seed: u64) -> SplitBlockBloom {
        let blocks = filter_bytes_for(keys, bits_per_key) / BLOCK_BYTES;
        SplitBlockBloom {
            words: vec![0u32; (blocks * 8) as usize],
            seed,
        }
    }

    fn place(&self, raw: u64) -> (usize, u32) {
        let h = splitmix64(raw ^ self.seed);
        let blocks = (self.words.len() / 8) as u64;
        let block = (((h >> 32) * blocks) >> 32) as usize;
        (block * 8, h as u32)
    }

    /// Insert a pre-hashed key.
    pub fn insert(&mut self, raw: u64) {
        let (base, x) = self.place(raw);
        for (lane, salt) in SALT.iter().enumerate() {
            let bit = x.wrapping_mul(*salt) >> 27;
            self.words[base + lane] |= 1u32 << bit;
        }
    }

    /// Membership test for a pre-hashed key: `false` means *definitely
    /// absent*; `true` means present or false positive.
    pub fn contains(&self, raw: u64) -> bool {
        let (base, x) = self.place(raw);
        SALT.iter().enumerate().all(|(lane, salt)| {
            let bit = x.wrapping_mul(*salt) >> 27;
            self.words[base + lane] & (1u32 << bit) != 0
        })
    }

    /// Size of the broadcast artifact, in bytes.
    pub fn byte_size(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// Predicted false-positive rate after inserting `keys` distinct
    /// keys: the classic `(1 − e^{−kn/m})^k` approximation with `k = 8`
    /// probe bits (split-block filters run slightly above it at low
    /// densities, which is why observed rates are compared against
    /// *twice* this target).
    pub fn predicted_fp_rate(&self, keys: u64) -> f64 {
        let m = self.words.len() as f64 * 32.0;
        if m <= 0.0 {
            return 1.0;
        }
        let k = f64::from(PROBE_BITS);
        (1.0 - (-k * keys as f64 / m).exp()).powi(PROBE_BITS as i32)
    }
}

/// Predicted false-positive rate of a filter sized by
/// [`filter_bytes_for`] — the planner-side mirror of
/// [`SplitBlockBloom::predicted_fp_rate`].
pub fn predicted_fp_rate_for(keys: u64, bits_per_key: u32) -> f64 {
    let m = filter_bytes_for(keys, bits_per_key) as f64 * 8.0;
    let k = f64::from(PROBE_BITS);
    (1.0 - (-k * keys as f64 / m).exp()).powi(PROBE_BITS as i32)
}

/// Deterministic observations of one filtered job, folded into
/// [`crate::JobStats`] at commit time. All counts are sums over the
/// job's emitted messages, so they are identical across runtimes, data
/// planes and thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Unscaled bytes of the broadcast filter artifacts (both
    /// directions, all assert groups).
    pub filter_bytes: u64,
    /// Candidate messages dropped because their key cannot match.
    pub suppressed_messages: u64,
    /// Candidate messages tested against a filter.
    pub filter_probes: u64,
    /// Probes that passed the filter but whose key is absent from the
    /// other side's exact key set (the messages filtering *could* have
    /// saved but did not).
    pub filter_false_positives: u64,
}

/// Per-map-task probe counters, absorbed into the shared [`JobFilters`]
/// atomics when the task finishes (so concurrent tasks never race on
/// per-task telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeTally {
    /// Messages tested.
    pub probes: u64,
    /// Messages dropped.
    pub suppressed: u64,
    /// Filter passes that the exact key sets contradict.
    pub false_positives: u64,
}

/// Collects each side's distinct keys during the build stage (the
/// collect-only mapper pass), then seals into [`JobFilters`].
pub struct FilterCollector {
    req_group: Vec<u32>,
    assert_keys: Vec<HashSet<u64>>,
    req_keys: Vec<HashSet<u64>>,
}

impl FilterCollector {
    /// An empty collector for a job's filter spec.
    pub fn new(spec: &FilterSpec) -> FilterCollector {
        FilterCollector {
            req_group: spec.req_group.clone(),
            assert_keys: vec![HashSet::new(); spec.groups],
            req_keys: vec![HashSet::new(); spec.groups],
        }
    }

    /// Record one emitted pair from the collect-only mapper pass.
    pub fn observe(&mut self, key: &Tuple, value: &Message) {
        match value {
            Message::Assert { cond } => {
                if let Some(set) = self.assert_keys.get_mut(*cond as usize) {
                    set.insert(hash_tuple(key));
                }
            }
            Message::Req { cond, .. } => {
                let group = self.req_group.get(*cond as usize).copied();
                if let Some(set) = group.and_then(|g| self.req_keys.get_mut(g as usize)) {
                    set.insert(hash_tuple(key));
                }
            }
            _ => {}
        }
    }

    /// Build the per-group Bloom filters at the given density.
    pub fn seal(self, bits_per_key: u32) -> JobFilters {
        let bloom_of = |keys: &HashSet<u64>| {
            let mut bloom = SplitBlockBloom::with_capacity(keys.len() as u64, bits_per_key);
            for &h in keys {
                bloom.insert(h);
            }
            bloom
        };
        let assert_bloom: Vec<SplitBlockBloom> = self.assert_keys.iter().map(bloom_of).collect();
        let req_bloom: Vec<SplitBlockBloom> = self.req_keys.iter().map(bloom_of).collect();
        let filter_bytes = assert_bloom
            .iter()
            .chain(&req_bloom)
            .map(SplitBlockBloom::byte_size)
            .sum();
        JobFilters {
            req_group: self.req_group,
            assert_exact: self.assert_keys,
            req_exact: self.req_keys,
            assert_bloom,
            req_bloom,
            filter_bytes,
            suppressed: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            false_positives: AtomicU64::new(0),
        }
    }
}

/// The sealed filters of one job: per-assert-group Bloom filters in both
/// directions, the exact key sets (kept to count false positives), and
/// the shared probe counters. Immutable after sealing, so map tasks on
/// any number of threads probe it concurrently.
pub struct JobFilters {
    req_group: Vec<u32>,
    assert_exact: Vec<HashSet<u64>>,
    req_exact: Vec<HashSet<u64>>,
    assert_bloom: Vec<SplitBlockBloom>,
    req_bloom: Vec<SplitBlockBloom>,
    filter_bytes: u64,
    suppressed: AtomicU64,
    probes: AtomicU64,
    false_positives: AtomicU64,
}

impl JobFilters {
    /// Should this emitted pair survive the filter? `Req` keys probe the
    /// assert filter of their group, `Assert` keys probe the request
    /// filter; everything else always passes. No false negatives: a key
    /// present on the other side always survives.
    pub fn keep(&self, key: &Tuple, value: &Message, tally: &mut ProbeTally) -> bool {
        let (bloom, exact) = match value {
            Message::Req { cond, .. } => {
                let Some(&group) = self.req_group.get(*cond as usize) else {
                    return true;
                };
                (
                    &self.assert_bloom[group as usize],
                    &self.assert_exact[group as usize],
                )
            }
            Message::Assert { cond } => {
                let Some(bloom) = self.req_bloom.get(*cond as usize) else {
                    return true;
                };
                (bloom, &self.req_exact[*cond as usize])
            }
            _ => return true,
        };
        tally.probes += 1;
        let h = hash_tuple(key);
        if bloom.contains(h) {
            if !exact.contains(&h) {
                tally.false_positives += 1;
            }
            true
        } else {
            tally.suppressed += 1;
            false
        }
    }

    /// Fold one finished task's counters into the shared totals.
    pub fn absorb(&self, tally: ProbeTally) {
        self.probes.fetch_add(tally.probes, Ordering::Relaxed);
        self.suppressed
            .fetch_add(tally.suppressed, Ordering::Relaxed);
        self.false_positives
            .fetch_add(tally.false_positives, Ordering::Relaxed);
    }

    /// Total broadcast bytes of the filter artifacts (unscaled).
    pub fn filter_bytes(&self) -> u64 {
        self.filter_bytes
    }

    /// Number of distinct keys summarized across all filters.
    pub fn distinct_keys(&self) -> u64 {
        self.assert_exact
            .iter()
            .chain(&self.req_exact)
            .map(|s| s.len() as u64)
            .sum()
    }

    /// Snapshot the observation counters.
    pub fn stats(&self) -> FilterStats {
        FilterStats {
            filter_bytes: self.filter_bytes,
            suppressed_messages: self.suppressed.load(Ordering::Relaxed),
            filter_probes: self.probes.load(Ordering::Relaxed),
            filter_false_positives: self.false_positives.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;

    #[test]
    fn mode_parses_cli_spellings() {
        assert_eq!(
            ShuffleFilterMode::parse("off"),
            Some(ShuffleFilterMode::Off)
        );
        assert_eq!(
            ShuffleFilterMode::parse("bloom"),
            Some(ShuffleFilterMode::Bloom { bits_per_key: 10 })
        );
        assert_eq!(
            ShuffleFilterMode::parse("bloom:16"),
            Some(ShuffleFilterMode::Bloom { bits_per_key: 16 })
        );
        assert_eq!(
            ShuffleFilterMode::parse("auto:8"),
            Some(ShuffleFilterMode::Auto { bits_per_key: 8 })
        );
        // Densities clamp instead of failing.
        assert_eq!(
            ShuffleFilterMode::parse("bloom:2"),
            Some(ShuffleFilterMode::Bloom { bits_per_key: 6 })
        );
        assert_eq!(
            ShuffleFilterMode::parse("bloom:99"),
            Some(ShuffleFilterMode::Bloom { bits_per_key: 32 })
        );
        assert_eq!(ShuffleFilterMode::parse("cuckoo"), None);
        assert_eq!(ShuffleFilterMode::parse("bloom:x"), None);
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [
            ShuffleFilterMode::Off,
            ShuffleFilterMode::Bloom { bits_per_key: 10 },
            ShuffleFilterMode::Bloom { bits_per_key: 16 },
            ShuffleFilterMode::Auto { bits_per_key: 12 },
        ] {
            assert_eq!(ShuffleFilterMode::parse(&mode.label()), Some(mode));
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bloom = SplitBlockBloom::with_capacity(1000, 10);
        for i in 0..1000u64 {
            bloom.insert(splitmix64(i));
        }
        for i in 0..1000u64 {
            assert!(bloom.contains(splitmix64(i)), "key {i} lost");
        }
    }

    #[test]
    fn bloom_rejects_most_absent_keys() {
        let mut bloom = SplitBlockBloom::with_capacity(1000, 10);
        for i in 0..1000u64 {
            bloom.insert(splitmix64(i));
        }
        let fp = (1000..11_000u64)
            .filter(|&i| bloom.contains(splitmix64(i)))
            .count();
        // ~1% target at 10 bits/key; anything under 4% proves rejection.
        assert!(fp < 400, "false positives: {fp}/10000");
    }

    #[test]
    fn empty_bloom_contains_nothing() {
        let bloom = SplitBlockBloom::with_capacity(0, 10);
        assert!(bloom.byte_size() >= 32);
        assert!((0..100u64).all(|i| !bloom.contains(splitmix64(i))));
    }

    #[test]
    fn filter_sizes_are_whole_blocks() {
        assert_eq!(filter_bytes_for(0, 10), 32);
        assert_eq!(filter_bytes_for(1, 10), 32);
        assert_eq!(filter_bytes_for(26, 10), 64); // 260 bits -> 2 blocks
        let bloom = SplitBlockBloom::with_capacity(26, 10);
        assert_eq!(bloom.byte_size(), 64);
    }

    fn spec() -> FilterSpec {
        // Two semi-joins sharing assert group 0, a third in group 1.
        FilterSpec::new(vec![0, 0, 1], 2)
    }

    fn filters(assert_keys: &[(u32, i64)], req_keys: &[(u32, i64)]) -> JobFilters {
        let mut c = FilterCollector::new(&spec());
        for &(group, k) in assert_keys {
            c.observe(&Tuple::from_ints(&[k]), &Message::Assert { cond: group });
        }
        for &(cond, k) in req_keys {
            c.observe(
                &Tuple::from_ints(&[k]),
                &Message::Req {
                    cond,
                    payload: Payload::Ref { guard: 0, id: 0 },
                },
            );
        }
        c.seal(10)
    }

    #[test]
    fn matching_keys_always_survive() {
        let f = filters(&[(0, 1), (0, 2), (1, 3)], &[(0, 1), (1, 2), (2, 3)]);
        let mut tally = ProbeTally::default();
        // Req cond 0 (group 0) with key 1: asserted in group 0.
        assert!(f.keep(
            &Tuple::from_ints(&[1]),
            &Message::Req {
                cond: 0,
                payload: Payload::Ref { guard: 0, id: 0 }
            },
            &mut tally,
        ));
        // Assert group 0 with key 2: requested (cond 1 -> group 0).
        assert!(f.keep(
            &Tuple::from_ints(&[2]),
            &Message::Assert { cond: 0 },
            &mut tally,
        ));
        assert_eq!(tally.suppressed, 0);
        assert_eq!(tally.probes, 2);
    }

    #[test]
    fn unmatched_keys_are_suppressed() {
        let f = filters(&[(0, 1)], &[(0, 5)]);
        let mut tally = ProbeTally::default();
        // Req key 99: no group-0 assert has it.
        assert!(!f.keep(
            &Tuple::from_ints(&[99]),
            &Message::Req {
                cond: 0,
                payload: Payload::Ref { guard: 0, id: 0 }
            },
            &mut tally,
        ));
        // Assert group 1 key 1: no cond-2 request has it.
        assert!(!f.keep(
            &Tuple::from_ints(&[1]),
            &Message::Assert { cond: 1 },
            &mut tally,
        ));
        assert_eq!(tally.suppressed, 2);
    }

    #[test]
    fn groups_do_not_leak() {
        // Key 7 asserted only in group 1 must not satisfy a group-0 request.
        let f = filters(&[(1, 7)], &[(0, 7), (2, 7)]);
        let mut tally = ProbeTally::default();
        assert!(!f.keep(
            &Tuple::from_ints(&[7]),
            &Message::Req {
                cond: 0,
                payload: Payload::Ref { guard: 0, id: 0 }
            },
            &mut tally,
        ));
        // Cond 2 routes to group 1, where key 7 is asserted.
        assert!(f.keep(
            &Tuple::from_ints(&[7]),
            &Message::Req {
                cond: 2,
                payload: Payload::Ref { guard: 0, id: 0 }
            },
            &mut tally,
        ));
    }

    #[test]
    fn non_semijoin_messages_pass_unprobed() {
        let f = filters(&[], &[]);
        let mut tally = ProbeTally::default();
        assert!(f.keep(
            &Tuple::from_ints(&[1]),
            &Message::Tag { rel: 0 },
            &mut tally,
        ));
        assert!(f.keep(
            &Tuple::from_ints(&[1]),
            &Message::GuardTuple {
                guard: 0,
                tuple: Tuple::from_ints(&[1, 2]),
            },
            &mut tally,
        ));
        assert_eq!(tally.probes, 0);
    }

    #[test]
    fn stats_snapshot_counts_absorbed_tallies() {
        let f = filters(&[(0, 1)], &[(0, 1)]);
        f.absorb(ProbeTally {
            probes: 10,
            suppressed: 4,
            false_positives: 1,
        });
        f.absorb(ProbeTally {
            probes: 5,
            suppressed: 2,
            false_positives: 0,
        });
        let s = f.stats();
        assert_eq!(s.filter_probes, 15);
        assert_eq!(s.suppressed_messages, 6);
        assert_eq!(s.filter_false_positives, 1);
        assert!(s.filter_bytes >= 32 * 4); // two groups x two directions
    }

    #[test]
    fn predicted_fp_rate_tracks_density() {
        let sparse = predicted_fp_rate_for(1000, 16);
        let dense = predicted_fp_rate_for(1000, 6);
        assert!(sparse < dense);
        assert!(sparse > 0.0 && dense < 1.0);
    }
}
