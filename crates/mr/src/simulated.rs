//! The simulated runtime: single-threaded, deterministic, fully metered.
//!
//! This is the original engine of the reproduction — map tasks run one
//! after another on the calling thread, the shuffle is a single in-order
//! pass, and reduce partitions are processed sequentially. It exists (and
//! stays the default) because it is the *reference* runtime: simulated
//! schedules, cost accounting and answer relations are bit-for-bit
//! reproducible, which the §5 experiments and every regression test rely
//! on. The multi-threaded sibling is [`crate::parallel::ParallelExecutor`].

use std::sync::Arc;

use gumbo_common::Result;

use crate::batch_shuffle::BatchPartition;
use crate::executor::{
    build_job_filters, run_map_task, run_map_task_batch, run_reduce_stream, ComputedJob, DataPlane,
    EngineConfig, Executor, Groups, MapPlan,
};
use crate::hash::{partition, partition_view};
use crate::job::Job;
use crate::shuffle::{MemoryBudget, ShuffleSpill, SpillStats, SpillingPartition};

/// The deterministic MapReduce simulator.
#[derive(Debug, Clone, Default)]
pub struct SimulatedExecutor {
    /// Engine configuration. The memory-budget tracker is bound at
    /// construction: mutating `config.mem_budget` on an existing executor
    /// has no effect — build a new one with [`SimulatedExecutor::new`].
    pub config: EngineConfig,
    /// Shared shuffle memory tracker (clones share it, so a cloned
    /// executor draws from the same budget).
    budget: Arc<MemoryBudget>,
}

/// Historical name of the simulated runtime, kept because the simulator
/// *is* the engine of the original reproduction and most call sites read
/// naturally with it.
pub type Engine = SimulatedExecutor;

impl SimulatedExecutor {
    /// Create a simulated executor with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        SimulatedExecutor {
            config,
            budget: Arc::new(MemoryBudget::new(config.mem_budget)),
        }
    }
}

impl Executor for SimulatedExecutor {
    fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn name(&self) -> &'static str {
        "simulated"
    }

    fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    fn run_phases(&self, job: &Job, plan: MapPlan) -> Result<ComputedJob> {
        match self.config.data_plane {
            DataPlane::Pairs => self.run_phases_pairs(job, plan),
            DataPlane::Columnar => self.run_phases_columnar(job, plan),
        }
    }
}

impl SimulatedExecutor {
    /// The pair-plane pipeline: owned `(Tuple, Message)` pairs scattered
    /// one at a time.
    fn run_phases_pairs(&self, job: &Job, mut plan: MapPlan) -> Result<ComputedJob> {
        // ---- filter build (optional) -----------------------------------
        let filters = build_job_filters(&self.config, job, &plan)?;
        // ---- map phase -------------------------------------------------
        let map_span = gumbo_obs::span_with("map", |f| {
            f.str("job", &job.name);
            f.u64("tasks", plan.tasks.len() as u64);
        });
        let results: Vec<_> = plan
            .tasks
            .iter()
            .map(|t| Ok(run_map_task(job, &plan.task_facts(t)?, filters.as_ref())))
            .collect::<Result<_>>()?;
        plan.apply(self.config.scale.max(1), &results);
        drop(map_span);

        // ---- shuffle ----------------------------------------------------
        // One spilling buffer per reducer, all charging the shared budget;
        // pairs are scattered in task (= global emission) order, so each
        // partition's pair sequence is identical to the historical
        // in-memory shuffle and to the parallel runtime's.
        let reducers = plan.resolve_reducers(job);
        let shuffle_span = gumbo_obs::span_with("shuffle:flush", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });
        let spill = ShuffleSpill::new(&job.name);
        let mut parts: Vec<SpillingPartition<'_>> = (0..reducers)
            .map(|p| SpillingPartition::new(p, &self.budget, &spill, reducers))
            .collect();
        for result in results {
            for (k, v) in result.emitted {
                parts[partition(&k, reducers)].push(k, v)?;
            }
        }
        drop(shuffle_span);

        // ---- reduce phase ----------------------------------------------
        // Each partition streams a merge of its spill runs plus the
        // in-memory tail; per-reducer byte loads feed the simulated
        // reduce-task durations, so data skew shows up in net time.
        let reduce_span = gumbo_obs::span_with("reduce", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });
        let mut reducer_bytes: Vec<u64> = Vec::with_capacity(reducers);
        let mut spill_stats = SpillStats::default();
        let mut partition_outputs = Vec::with_capacity(reducers);
        for part in parts {
            reducer_bytes.push(part.total_bytes());
            let (groups, stats) = part.into_groups()?;
            spill_stats.absorb(stats);
            partition_outputs.push(run_reduce_stream(job, Groups::Pairs(groups))?);
        }
        drop(reduce_span);

        Ok(ComputedJob {
            partitions: plan.partitions,
            reducers,
            reducer_bytes,
            partition_outputs,
            spill: spill_stats,
            filter: filters.map(|f| f.stats()).unwrap_or_default(),
        })
    }

    /// The columnar pipeline: the same phases over
    /// [`crate::batch_shuffle`] batches. Per-task row routing replaces
    /// the per-pair scatter — rows are appended to each reducer's buffer
    /// in task order with ascending row indices, which is exactly the
    /// pair plane's per-partition emission order.
    fn run_phases_columnar(&self, job: &Job, mut plan: MapPlan) -> Result<ComputedJob> {
        // ---- filter build (optional) -----------------------------------
        let filters = build_job_filters(&self.config, job, &plan)?;
        // ---- map phase -------------------------------------------------
        let map_span = gumbo_obs::span_with("map", |f| {
            f.str("job", &job.name);
            f.u64("tasks", plan.tasks.len() as u64);
        });
        let results: Vec<_> = plan
            .tasks
            .iter()
            .map(|t| {
                Ok(run_map_task_batch(
                    job,
                    &plan.task_facts(t)?,
                    filters.as_ref(),
                ))
            })
            .collect::<Result<_>>()?;
        let counts: Vec<(u64, u64)> = results
            .iter()
            .map(|r| (r.output_bytes, r.records_out))
            .collect();
        plan.apply_counts(self.config.scale.max(1), &counts);
        drop(map_span);

        // ---- shuffle ----------------------------------------------------
        let reducers = plan.resolve_reducers(job);
        let shuffle_span = gumbo_obs::span_with("shuffle:flush", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });
        let spill = ShuffleSpill::new(&job.name);
        let mut parts: Vec<BatchPartition<'_>> = (0..reducers)
            .map(|p| BatchPartition::new(p, &self.budget, &spill, reducers))
            .collect();
        let mut routes: Vec<Vec<u32>> = vec![Vec::new(); reducers];
        for result in &results {
            for route in &mut routes {
                route.clear();
            }
            for row in 0..result.batch.len() {
                routes[partition_view(result.batch.key_view(row), reducers)].push(row as u32);
            }
            for (part, rows) in parts.iter_mut().zip(&routes) {
                if !rows.is_empty() {
                    part.push_rows(&result.batch, rows)?;
                }
            }
        }
        drop(shuffle_span);

        // ---- reduce phase ----------------------------------------------
        let reduce_span = gumbo_obs::span_with("reduce", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });
        let mut reducer_bytes: Vec<u64> = Vec::with_capacity(reducers);
        let mut spill_stats = SpillStats::default();
        let mut partition_outputs = Vec::with_capacity(reducers);
        for part in parts {
            reducer_bytes.push(part.total_bytes());
            let (groups, stats) = part.into_groups()?;
            spill_stats.absorb(stats);
            partition_outputs.push(run_reduce_stream(job, Groups::Columnar(groups))?);
        }
        drop(reduce_span);

        Ok(ComputedJob {
            partitions: plan.partitions,
            reducers,
            reducer_bytes,
            partition_outputs,
            spill: spill_stats,
            filter: filters.map(|f| f.stats()).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobConfig, Mapper, Reducer, ReducerPolicy};
    use crate::message::{Message, Payload};
    use crate::program::MrProgram;
    use gumbo_common::{ByteSize, Fact, Relation, RelationName, Tuple};
    use gumbo_storage::SimDfs;

    /// A miniature single-semi-join job (§4.1's repartition join): guard
    /// R(x, z) requests on key z; conditional S(z, y) asserts on key z.
    struct SemiJoinMapper;
    impl Mapper for SemiJoinMapper {
        fn map(&self, fact: &Fact, _index: u64, emit: &mut dyn FnMut(Tuple, Message)) {
            let key = Tuple::new(vec![fact
                .tuple
                .get(if fact.relation.as_str() == "R" { 1 } else { 0 })
                .unwrap()
                .clone()]);
            if fact.relation.as_str() == "R" {
                let out = Tuple::new(vec![fact.tuple.get(0).unwrap().clone()]);
                emit(
                    key,
                    Message::Req {
                        cond: 0,
                        payload: Payload::Tuple(out),
                    },
                );
            } else {
                emit(key, Message::Assert { cond: 0 });
            }
        }
    }

    struct SemiJoinReducer;
    impl Reducer for SemiJoinReducer {
        fn reduce(
            &self,
            _key: &Tuple,
            values: &[Message],
            emit: &mut dyn FnMut(&RelationName, Tuple),
        ) {
            let asserted = values
                .iter()
                .any(|m| matches!(m, Message::Assert { cond: 0 }));
            if asserted {
                for m in values {
                    if let Message::Req {
                        cond: 0,
                        payload: Payload::Tuple(t),
                    } = m
                    {
                        emit(&"Z".into(), t.clone());
                    }
                }
            }
        }
    }

    fn semi_join_job() -> Job {
        Job {
            name: "MSJ(Z)".into(),
            inputs: vec!["R".into(), "S".into()],
            outputs: vec![("Z".into(), 1)],
            mapper: Box::new(SemiJoinMapper),
            reducer: Box::new(SemiJoinReducer),
            config: JobConfig::default(),
            estimate: None,
            filter: None,
        }
    }

    fn example3_dfs() -> SimDfs {
        // Example 3: I = {R(1,2), R(4,5), S(2,3)}.
        let dfs = SimDfs::new();
        dfs.store(
            Relation::from_tuples(
                "R",
                2,
                vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[4, 5])],
            )
            .unwrap(),
        );
        dfs.store(Relation::from_tuples("S", 2, vec![Tuple::from_ints(&[2, 3])]).unwrap());
        dfs
    }

    #[test]
    fn example3_semijoin_executes_correctly() {
        let dfs = example3_dfs();
        let engine = Engine::new(EngineConfig::unscaled());
        let mut program = MrProgram::new();
        program.push_job(semi_join_job());
        let stats = engine.execute(&dfs, &program).unwrap();
        let z = dfs.peek(&"Z".into()).unwrap();
        assert_eq!(z.len(), 1);
        assert!(z.contains(&Tuple::from_ints(&[1])));
        assert_eq!(stats.jobs[0].output_tuples, 1);
        assert!(stats.net_time() > 0.0);
        assert!(stats.total_time() >= stats.net_time() || stats.num_jobs() == 1);
    }

    #[test]
    fn per_input_partitions_are_metered_separately() {
        let dfs = example3_dfs();
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = engine.execute_job(&dfs, &semi_join_job(), 0).unwrap();
        assert_eq!(stats.profile.partitions.len(), 2);
        assert_eq!(stats.profile.partitions[0].label, "R");
        // R has 2 tuples of 20 B; S has 1.
        assert_eq!(stats.profile.partitions[0].input, ByteSize::bytes(40));
        assert_eq!(stats.profile.partitions[1].input, ByteSize::bytes(20));
    }

    #[test]
    fn scale_multiplies_metrics_but_not_results() {
        let dfs1 = example3_dfs();
        let dfs2 = example3_dfs();
        let e1 = Engine::new(EngineConfig {
            scale: 1,
            ..EngineConfig::default()
        });
        let e2 = Engine::new(EngineConfig {
            scale: 1_000_000,
            ..EngineConfig::default()
        });
        let s1 = e1.execute_job(&dfs1, &semi_join_job(), 0).unwrap();
        let s2 = e2.execute_job(&dfs2, &semi_join_job(), 0).unwrap();
        // Same logical result.
        assert_eq!(
            dfs1.peek(&"Z".into()).unwrap(),
            dfs2.peek(&"Z".into()).unwrap()
        );
        // Scaled metrics.
        assert_eq!(s2.input_bytes(), s1.input_bytes().scaled(1_000_000));
        assert!(s2.total_cost > s1.total_cost);
    }

    #[test]
    fn undeclared_output_is_an_error() {
        struct BadReducer;
        impl Reducer for BadReducer {
            fn reduce(&self, _: &Tuple, _: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
                emit(&"Nope".into(), Tuple::from_ints(&[1]));
            }
        }
        let dfs = example3_dfs();
        let job = Job {
            name: "bad".into(),
            inputs: vec!["R".into()],
            outputs: vec![],
            mapper: Box::new(SemiJoinMapper),
            reducer: Box::new(BadReducer),
            config: JobConfig::default(),
            estimate: None,
            filter: None,
        };
        let engine = Engine::new(EngineConfig::unscaled());
        assert!(engine.execute_job(&dfs, &job, 0).is_err());
    }

    #[test]
    fn declared_outputs_exist_even_when_empty() {
        let dfs = SimDfs::new();
        dfs.store(Relation::new("R", 2));
        dfs.store(Relation::new("S", 2));
        let engine = Engine::new(EngineConfig::unscaled());
        engine.execute_job(&dfs, &semi_join_job(), 0).unwrap();
        assert!(dfs.exists(&"Z".into()));
        assert_eq!(dfs.peek(&"Z".into()).unwrap().len(), 0);
    }

    #[test]
    fn packing_reduces_shuffle_bytes() {
        // Many R tuples sharing one join key: packed key bytes counted once.
        let mut rel = Relation::new("R", 2);
        for i in 0..100 {
            rel.insert(Tuple::from_ints(&[i, 7])).unwrap();
        }
        let dfs_packed = SimDfs::new();
        dfs_packed.store(rel.clone());
        dfs_packed.store(Relation::from_tuples("S", 2, vec![Tuple::from_ints(&[7, 0])]).unwrap());
        let dfs_plain = SimDfs::new();
        dfs_plain.store(rel);
        dfs_plain.store(Relation::from_tuples("S", 2, vec![Tuple::from_ints(&[7, 0])]).unwrap());

        let engine = Engine::new(EngineConfig::unscaled());
        let mut packed_job = semi_join_job();
        packed_job.config.packing = true;
        let mut plain_job = semi_join_job();
        plain_job.config.packing = false;

        let packed = engine.execute_job(&dfs_packed, &packed_job, 0).unwrap();
        let plain = engine.execute_job(&dfs_plain, &plain_job, 0).unwrap();
        assert!(packed.communication_bytes() < plain.communication_bytes());
        // Results identical.
        assert_eq!(
            dfs_packed.peek(&"Z".into()).unwrap(),
            dfs_plain.peek(&"Z".into()).unwrap()
        );
    }

    #[test]
    fn fixed_reducer_policy_is_respected() {
        let dfs = example3_dfs();
        let mut job = semi_join_job();
        job.config.reducer_policy = ReducerPolicy::Fixed(7);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = engine.execute_job(&dfs, &job, 0).unwrap();
        assert_eq!(stats.profile.reducers, 7);
        assert_eq!(stats.reduce_task_durations.len(), 7);
    }

    #[test]
    fn missing_input_errors() {
        let dfs = SimDfs::new();
        let engine = Engine::new(EngineConfig::unscaled());
        assert!(engine.execute_job(&dfs, &semi_join_job(), 0).is_err());
    }

    #[test]
    fn round_concurrency_lowers_net_time() {
        // Two identical independent jobs: one round of two jobs must have a
        // lower net time than two rounds of one (same total time).
        let make_dfs = || {
            let dfs = example3_dfs();
            dfs.store(
                Relation::from_tuples(
                    "R2",
                    2,
                    vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[4, 5])],
                )
                .unwrap(),
            );
            dfs.store(Relation::from_tuples("S2", 2, vec![Tuple::from_ints(&[2, 3])]).unwrap());
            dfs
        };
        let job2 = || Job {
            name: "MSJ(Z2)".into(),
            inputs: vec!["R2".into(), "S2".into()],
            outputs: vec![("Z2".into(), 1)],
            mapper: Box::new(SemiJoinMapper2),
            reducer: Box::new(SemiJoinReducer2),
            config: JobConfig::default(),
            estimate: None,
            filter: None,
        };

        struct SemiJoinMapper2;
        impl Mapper for SemiJoinMapper2 {
            fn map(&self, fact: &Fact, _i: u64, emit: &mut dyn FnMut(Tuple, Message)) {
                let pos = if fact.relation.as_str() == "R2" { 1 } else { 0 };
                let key = Tuple::new(vec![fact.tuple.get(pos).unwrap().clone()]);
                if fact.relation.as_str() == "R2" {
                    let out = Tuple::new(vec![fact.tuple.get(0).unwrap().clone()]);
                    emit(
                        key,
                        Message::Req {
                            cond: 0,
                            payload: Payload::Tuple(out),
                        },
                    );
                } else {
                    emit(key, Message::Assert { cond: 0 });
                }
            }
        }
        struct SemiJoinReducer2;
        impl Reducer for SemiJoinReducer2 {
            fn reduce(
                &self,
                _k: &Tuple,
                values: &[Message],
                emit: &mut dyn FnMut(&RelationName, Tuple),
            ) {
                if values.iter().any(|m| matches!(m, Message::Assert { .. })) {
                    for m in values {
                        if let Message::Req {
                            payload: Payload::Tuple(t),
                            ..
                        } = m
                        {
                            emit(&"Z2".into(), t.clone());
                        }
                    }
                }
            }
        }

        let engine = Engine::new(EngineConfig::default());
        let mut parallel = MrProgram::new();
        parallel.push_round(vec![semi_join_job(), job2()]);
        let mut sequential = MrProgram::new();
        sequential.push_job(semi_join_job());
        sequential.push_job(job2());

        let d1 = make_dfs();
        let p_stats = engine.execute(&d1, &parallel).unwrap();
        let d2 = make_dfs();
        let s_stats = engine.execute(&d2, &sequential).unwrap();

        assert!(p_stats.net_time() < s_stats.net_time());
        assert!((p_stats.total_time() - s_stats.total_time()).abs() < 1e-9);
    }
}
