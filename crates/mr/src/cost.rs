//! The MapReduce I/O cost model of §3.3.
//!
//! For a job with input partitions `I₁ ∪ … ∪ I_k` (sizes `Nᵢ`, map outputs
//! `Mᵢ`, metadata `M̂ᵢ`, mapper counts `mᵢ`), `M = Σ Mᵢ`, reducer count `r`
//! and output size `K`:
//!
//! ```text
//! cost_map(Nᵢ, Mᵢ)  = hr·Nᵢ + merge_map(Mᵢ) + lw·Mᵢ
//! merge_map(Mᵢ)     = (lr+lw) · Mᵢ · log_D ⌈((Mᵢ+M̂ᵢ)/mᵢ) / buf_map⌉
//! cost_red(M, K)    = t·M + merge_red(M) + hw·K
//! merge_red(M)      = (lr+lw) · M · log_D ⌈(M/r) / buf_red⌉
//! total             = cost_h + Σᵢ cost_map(Nᵢ, Mᵢ) + cost_red(M, K)
//! ```
//!
//! The **Gumbo** model (Eq. 2) sums `cost_map` per partition; the **Wang**
//! model (Eq. 3, Wang & Chan / MRShare) applies `cost_map` once to the
//! aggregated `(ΣNᵢ, ΣMᵢ)`, which blurs per-input input/output ratios —
//! the difference §5.2's cost-model experiment measures.

use gumbo_common::ByteSize;

use crate::profile::{InputPartition, JobProfile};

/// The constants of Table 1/Table 5, measured on the paper's cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// `lr`: local disk read cost (per MB).
    pub lr: f64,
    /// `lw`: local disk write cost (per MB).
    pub lw: f64,
    /// `hr`: HDFS read cost (per MB).
    pub hr: f64,
    /// `hw`: HDFS write cost (per MB).
    pub hw: f64,
    /// `t`: shuffle transfer cost (per MB).
    pub transfer: f64,
    /// `D`: external sort merge factor.
    pub merge_factor: f64,
    /// `buf_map`: map task sort buffer limit (MB).
    pub buf_map_mb: f64,
    /// `buf_red`: reduce task merge buffer limit (MB).
    pub buf_red_mb: f64,
    /// `cost_h`: fixed overhead of starting an MR job (seconds).
    ///
    /// The paper leaves the value implicit; Hadoop job startup on its
    /// cluster is on the order of ten seconds, consistent with the ~10 s
    /// planning overhead cited in §5.3.
    pub job_overhead: f64,
    /// Map-output metadata per record (16 B in Hadoop, §3.3 footnote 2).
    pub meta_bytes_per_record: u64,
}

impl Default for CostConstants {
    /// The measured values of Table 5.
    fn default() -> Self {
        CostConstants {
            lr: 0.03,
            lw: 0.085,
            hr: 0.15,
            hw: 0.25,
            transfer: 0.017,
            merge_factor: 10.0,
            buf_map_mb: 409.0,
            buf_red_mb: 512.0,
            job_overhead: 10.0,
            meta_bytes_per_record: 16,
        }
    }
}

impl CostConstants {
    /// Constants used by the NP-hardness reduction of Appendix A: all I/O
    /// costs zero except `hr = 1` (and no job overhead).
    pub fn appendix_a() -> Self {
        CostConstants {
            lr: 0.0,
            lw: 0.0,
            hr: 1.0,
            hw: 0.0,
            transfer: 0.0,
            merge_factor: 10.0,
            buf_map_mb: 409.0,
            buf_red_mb: 512.0,
            job_overhead: 0.0,
            meta_bytes_per_record: 0,
        }
    }

    /// Number of merge passes for `data_mb` of data per task with the given
    /// buffer: `log_D ⌈data/buf⌉`, clamped to ≥ 0.
    fn merge_passes(&self, data_mb: f64, buf_mb: f64) -> f64 {
        if data_mb <= 0.0 {
            return 0.0;
        }
        let runs = (data_mb / buf_mb).ceil();
        if runs <= 1.0 {
            0.0
        } else {
            runs.log(self.merge_factor).max(0.0)
        }
    }

    /// `cost_map(Nᵢ, Mᵢ)` for one input partition.
    pub fn cost_map(&self, p: &InputPartition) -> f64 {
        let n_mb = p.input.as_mb();
        let m_mb = p.map_output.as_mb();
        let meta_mb = p.meta(self.meta_bytes_per_record).as_mb();
        let mappers = p.mappers.max(1) as f64;
        let passes = self.merge_passes((m_mb + meta_mb) / mappers, self.buf_map_mb);
        self.hr * n_mb + (self.lr + self.lw) * m_mb * passes + self.lw * m_mb
    }

    /// `cost_red(M, K)`.
    pub fn cost_red(&self, total_map_output: ByteSize, reducers: usize, output: ByteSize) -> f64 {
        let m_mb = total_map_output.as_mb();
        let k_mb = output.as_mb();
        let r = reducers.max(1) as f64;
        let passes = self.merge_passes(m_mb / r, self.buf_red_mb);
        self.transfer * m_mb + (self.lr + self.lw) * m_mb * passes + self.hw * k_mb
    }
}

/// Which map-cost aggregation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostModelKind {
    /// The paper's per-partition model (`cost_gumbo`, Eq. 2).
    #[default]
    Gumbo,
    /// The aggregated model of Wang & Chan (`cost_wang`, Eq. 3).
    Wang,
}

/// Total cost of a job under the chosen model.
pub fn job_cost(kind: CostModelKind, c: &CostConstants, profile: &JobProfile) -> f64 {
    let map_cost = match kind {
        CostModelKind::Gumbo => profile
            .partitions
            .iter()
            .map(|p| c.cost_map(p))
            .sum::<f64>(),
        CostModelKind::Wang => {
            // Collapse all partitions into one aggregate partition: the
            // global-average behaviour the paper criticizes.
            let agg = InputPartition {
                label: "aggregate".into(),
                input: profile.total_input(),
                map_output: profile.total_map_output(),
                records_out: profile.total_records_out(),
                mappers: profile.total_mappers().max(1),
            };
            c.cost_map(&agg)
        }
    };
    c.job_overhead
        + map_cost
        + c.cost_red(profile.total_map_output(), profile.reducers, profile.output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(label: &str, n_mb: u64, m_mb: u64, records: u64, mappers: usize) -> InputPartition {
        InputPartition {
            label: label.into(),
            input: ByteSize::mb(n_mb),
            map_output: ByteSize::mb(m_mb),
            records_out: records,
            mappers,
        }
    }

    #[test]
    fn no_merge_cost_when_output_fits_buffer() {
        let c = CostConstants::default();
        // 100 MB over 1 mapper < 409 MB buffer -> zero merge passes.
        let p = part("R", 100, 100, 0, 1);
        let expected = c.hr * 100.0 + c.lw * 100.0;
        assert!((c.cost_map(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_cost_appears_beyond_buffer() {
        let c = CostConstants::default();
        // 5000 MB over 1 mapper: ⌈5000/409⌉ = 13 runs, log10(13) ≈ 1.11 passes.
        let p = part("R", 5000, 5000, 0, 1);
        let base = c.hr * 5000.0 + c.lw * 5000.0;
        assert!(c.cost_map(&p) > base);
        // With enough mappers the per-task share fits the buffer again.
        let p_many = part("R", 5000, 5000, 0, 64);
        let expected = c.hr * 5000.0 + c.lw * 5000.0;
        assert!((c.cost_map(&p_many) - expected).abs() < 1e-9);
    }

    #[test]
    fn metadata_contributes_to_merge_threshold() {
        let c = CostConstants::default();
        // 400 MB output fits the 409 MB buffer...
        let without_meta = part("R", 400, 400, 0, 1);
        assert!((c.cost_map(&without_meta) - (c.hr * 400.0 + c.lw * 400.0)).abs() < 1e-9);
        // ...but 400 MB + 16 B × 1M records of metadata does not.
        let with_meta = part("R", 400, 400, 1_000_000, 1);
        assert!(c.cost_map(&with_meta) > c.cost_map(&without_meta));
    }

    #[test]
    fn gumbo_vs_wang_differ_on_skewed_ratios() {
        // The §3.3 example: R's mapper amplifies output, S's filters. The
        // aggregate model averages the two, misestimating merge costs.
        let c = CostConstants::default();
        let profile = JobProfile {
            partitions: vec![
                part("R", 1000, 12000, 0, 8), // 12x amplification: 1500 MB/task
                part("S", 8000, 80, 0, 64),   // heavy filtering
            ],
            reducers: 32,
            output: ByteSize::mb(500),
        };
        let g = job_cost(CostModelKind::Gumbo, &c, &profile);
        let w = job_cost(CostModelKind::Wang, &c, &profile);
        // Gumbo sees R's 1500 MB/task (multi-pass merges); Wang sees
        // (12080/72) ≈ 168 MB/task (no merge) -> Gumbo must price higher.
        assert!(g > w, "gumbo {g} should exceed wang {w}");
    }

    #[test]
    fn models_agree_on_proportional_inputs() {
        // When every input has the same in/out ratio and per-task share,
        // Eq. 2 and Eq. 3 coincide (§5.2: "automatically resorts to
        // cost_wang in the case of an equal contribution").
        let c = CostConstants::default();
        let profile = JobProfile {
            partitions: vec![part("R", 1000, 1000, 0, 8), part("S", 2000, 2000, 0, 16)],
            reducers: 16,
            output: ByteSize::mb(100),
        };
        let g = job_cost(CostModelKind::Gumbo, &c, &profile);
        let w = job_cost(CostModelKind::Wang, &c, &profile);
        assert!((g - w).abs() < 1e-6, "gumbo {g} vs wang {w}");
    }

    #[test]
    fn appendix_a_constants_reduce_to_hr_times_input() {
        let c = CostConstants::appendix_a();
        let profile = JobProfile {
            partitions: vec![part("f", 37, 37, 0, 1)],
            reducers: 1,
            output: ByteSize::mb(37),
        };
        let cost = job_cost(CostModelKind::Gumbo, &c, &profile);
        assert!((cost - 37.0).abs() < 1e-9, "got {cost}");
    }

    #[test]
    fn reduce_cost_components() {
        let c = CostConstants::default();
        // Small M: no reduce-side merge.
        let red = c.cost_red(ByteSize::mb(100), 4, ByteSize::mb(10));
        let expected = c.transfer * 100.0 + c.hw * 10.0;
        assert!((red - expected).abs() < 1e-9);
        // Big M per reducer: merge passes appear.
        let red_big = c.cost_red(ByteSize::mb(100_000), 4, ByteSize::mb(10));
        assert!(red_big > c.transfer * 100_000.0 + c.hw * 10.0);
    }

    #[test]
    fn zero_sized_job_costs_only_overhead() {
        let c = CostConstants::default();
        let profile = JobProfile {
            partitions: vec![part("e", 0, 0, 0, 1)],
            reducers: 1,
            output: ByteSize::ZERO,
        };
        let cost = job_cost(CostModelKind::Gumbo, &c, &profile);
        assert!((cost - c.job_overhead).abs() < 1e-9);
    }
}
