//! The [`Executor`] trait: one job/program execution contract, two
//! swappable runtimes.
//!
//! The paper's algorithms are defined against an abstract MapReduce
//! substrate; this module pins down that substrate as a trait so the
//! query layers (`gumbo-core`, `gumbo-baselines`, `gumbo-bench`) never
//! depend on *how* a job runs:
//!
//! * [`crate::simulated::SimulatedExecutor`] — the deterministic metered
//!   simulator: single-threaded, every stage priced by the paper's cost
//!   model (§3.3) and scheduled onto the simulated cluster (§5.1);
//! * [`crate::parallel::ParallelExecutor`] — a real multi-threaded
//!   runtime: map tasks, the partitioned shuffle and reduce tasks run on
//!   a worker pool, while the *same* metering is collected, so the
//!   paper's four metrics are identical across runtimes.
//!
//! Both runtimes share the split planning, per-task map execution,
//! packing byte-accounting, reduce semantics and cost metering defined
//! here — which is what makes the "byte-identical answers, identical
//! stats" guarantee structural rather than aspirational (see
//! `tests/executor_equivalence.rs` at the workspace root).

use std::collections::BTreeMap;

use gumbo_common::{ByteSize, Fact, GumboError, Relation, RelationName, Result, Tuple};
use gumbo_storage::{Dfs, RelationScan};

use crate::batch_shuffle::{BatchGroupStream, PairBatch};
use crate::cluster::Cluster;
use crate::cost::{job_cost, CostConstants, CostModelKind};
use crate::job::Job;
use crate::message::Message;
use crate::metrics::{JobStats, ProgramStats, RoundStats};
use crate::profile::{InputPartition, JobProfile};
use crate::program::MrProgram;
use crate::shuffle::{GroupStream, MemBudget, MemoryBudget, SpillStats};
use crate::shuffle_filter::{
    FilterCollector, FilterStats, JobFilters, ProbeTally, ShuffleFilterMode,
};

/// Which in-memory representation carries pairs from the mappers through
/// the shuffle to the reducers. Purely representational: both planes
/// produce byte-identical answers and identical [`JobStats`]
/// (`tests/data_plane_equivalence.rs` enforces this across runtimes,
/// schedulers and memory budgets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPlane {
    /// Owned `(Tuple, Message)` pairs — one heap allocation per tuple,
    /// one budget interaction per pair ([`crate::shuffle`]). The
    /// historical representation, kept as the reference plane.
    Pairs,
    /// Columnar batches ([`crate::batch_shuffle`]): contiguous `i64`
    /// cells plus per-batch string dictionaries, index sorts, batched
    /// budget charges and columnar spill frames.
    #[default]
    Columnar,
}

impl DataPlane {
    /// Parse a CLI spelling: `pairs` or `columnar`.
    pub fn parse(s: &str) -> Option<DataPlane> {
        match s {
            "pairs" => Some(DataPlane::Pairs),
            "columnar" => Some(DataPlane::Columnar),
            _ => None,
        }
    }

    /// The CLI spelling of this plane.
    pub fn label(&self) -> &'static str {
        match self {
            DataPlane::Pairs => "pairs",
            DataPlane::Columnar => "columnar",
        }
    }
}

/// Engine configuration, shared by every executor.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Byte scale factor: measured byte/record counts are multiplied by this
    /// before entering the cost model, mapping laptop-sized relations onto
    /// the paper's 100M-tuple regime (e.g. 100k real tuples × scale 1000).
    pub scale: u64,
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Cost-model constants (Table 5).
    pub constants: CostConstants,
    /// Cost model used for *measured* accounting. Execution always behaves
    /// the same; this only affects how observed jobs are priced. The
    /// planner may use a different model (that mismatch is the §5.2
    /// cost-model experiment).
    pub model: CostModelKind,
    /// Shuffle memory budget. When limited, each executor's jobs charge a
    /// shared [`MemoryBudget`] as map output lands in the per-reducer
    /// buffers, spilling sorted runs to disk (see [`crate::shuffle`])
    /// instead of exceeding it. Answers are byte-identical either way.
    pub mem_budget: MemBudget,
    /// Which representation carries the shuffle (see [`DataPlane`]).
    /// Representation only — answers and statistics are identical on
    /// either plane.
    pub data_plane: DataPlane,
    /// Bloom-filtered semijoin shuffle ([`crate::shuffle_filter`]): when
    /// enabled, jobs carrying a [`crate::shuffle_filter::FilterSpec`]
    /// build per-side key filters before the map phase and suppress
    /// `Assert`/`Req` messages whose keys cannot match. Answers are
    /// byte-identical either way; only shuffled bytes (and the filter
    /// broadcast accounting) change.
    pub shuffle_filter: ShuffleFilterMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scale: 1000,
            cluster: Cluster::default(),
            constants: CostConstants::default(),
            model: CostModelKind::Gumbo,
            mem_budget: MemBudget::UNLIMITED,
            data_plane: DataPlane::default(),
            shuffle_filter: ShuffleFilterMode::Off,
        }
    }
}

impl EngineConfig {
    /// An unscaled configuration (bytes enter the cost model as measured).
    pub fn unscaled() -> Self {
        EngineConfig {
            scale: 1,
            ..EngineConfig::default()
        }
    }

    /// Builder-style: set the shuffle memory budget.
    pub fn with_mem_budget(mut self, budget: MemBudget) -> Self {
        self.mem_budget = budget;
        self
    }

    /// Builder-style: set the shuffle data plane.
    pub fn with_data_plane(mut self, plane: DataPlane) -> Self {
        self.data_plane = plane;
        self
    }

    /// Builder-style: set the Bloom-filtered shuffle mode.
    pub fn with_shuffle_filter(mut self, mode: ShuffleFilterMode) -> Self {
        self.shuffle_filter = mode;
        self
    }
}

/// A MapReduce runtime: executes jobs and programs against a DFS while
/// collecting the paper's metrics.
///
/// Implementations must be *observationally identical*: the same program
/// over the same DFS yields the same answer relations and the same
/// [`JobStats`], whatever the runtime's internal scheduling. The shared
/// pipeline in this module provides that by construction; implementors
/// only decide **where** each map/shuffle/reduce task runs.
///
/// Job execution is split into three phases so that concurrent schedulers
/// (the DAG scheduler in `gumbo-sched`) can interleave jobs on a shared
/// DFS: [`plan_job`] reads the inputs (shared access suffices — planning
/// owns its fact snapshots), [`Executor::run_phases`] does the
/// map/shuffle/reduce compute without touching the DFS at all, and
/// [`commit_job`] stores the outputs (exclusive access). The provided
/// [`Executor::execute_job`] chains the three, which is exactly the old
/// monolithic behavior.
///
/// Executors are `Send + Sync`: the scheduler shares one executor across
/// its worker threads.
pub trait Executor: Send + Sync {
    /// The configuration this executor runs under.
    fn config(&self) -> &EngineConfig;

    /// A short human-readable runtime name (for logs and reports).
    fn name(&self) -> &'static str;

    /// The shuffle memory tracker every job of this executor charges.
    /// One tracker per executor instance: jobs scheduled concurrently on
    /// the same executor (the DAG scheduler's mode of operation) share —
    /// and are collectively bounded by — a single budget.
    fn budget(&self) -> &MemoryBudget;

    /// Run the map, shuffle and reduce phases of a planned job. This is
    /// the pure compute part — no DFS access — and the only phase the two
    /// runtimes implement differently (serial vs worker pool).
    fn run_phases(&self, job: &Job, plan: MapPlan) -> Result<ComputedJob>;

    /// [`Executor::run_phases`] with an explicit per-job worker count
    /// (`0` = keep this executor's own sizing). The DAG scheduler uses
    /// this to size each job's pool from its cost estimate under a
    /// total-core budget; runtimes without internal parallelism (the
    /// simulator) ignore the hint. Observational identity is preserved
    /// for any thread count, so per-job sizing can never change answers
    /// or metered statistics.
    fn run_phases_with(&self, job: &Job, plan: MapPlan, threads: usize) -> Result<ComputedJob> {
        let _ = threads;
        self.run_phases(job, plan)
    }

    /// Execute a single job: map → shuffle → reduce, with full metering.
    fn execute_job(&self, dfs: &dyn Dfs, job: &Job, round: usize) -> Result<JobStats> {
        let _span = gumbo_obs::span_with("job", |f| {
            f.str("job", &job.name);
            f.u64("round", round as u64);
        });
        let plan = plan_job(self.config(), dfs, job)?;
        let computed = self.run_phases(job, plan)?;
        commit_job(self.config(), dfs, job, round, computed)
    }

    /// Execute a program round by round against the DFS, returning the
    /// paper's four metrics plus per-job detail.
    fn execute(&self, dfs: &dyn Dfs, program: &MrProgram) -> Result<ProgramStats> {
        let mut stats = ProgramStats::default();
        for (round_idx, round) in program.rounds().iter().enumerate() {
            let mut round_jobs = Vec::with_capacity(round.len());
            for job in round {
                round_jobs.push(self.execute_job(dfs, job, round_idx)?);
            }
            stats.round_stats.push(RoundStats::pooled(
                round_jobs.iter(),
                self.config().cluster,
                self.config().constants.job_overhead,
            ));
            stats.jobs.extend(round_jobs);
        }
        Ok(stats)
    }
}

/// Which runtime to execute on — a small `Copy` token the upper layers
/// (engine options, CLI flags, bench configs) carry around and resolve
/// into a boxed [`Executor`] on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// The deterministic metered simulator.
    #[default]
    Simulated,
    /// The multi-threaded runtime with this many worker threads
    /// (`0` = auto: min(available parallelism, cluster map slots)).
    Parallel {
        /// Worker thread count; `0` sizes the pool automatically.
        threads: usize,
    },
}

impl ExecutorKind {
    /// Build the runtime for a configuration.
    pub fn build(self, config: EngineConfig) -> Box<dyn Executor> {
        match self {
            ExecutorKind::Simulated => Box::new(crate::simulated::SimulatedExecutor::new(config)),
            ExecutorKind::Parallel { threads } => Box::new(
                crate::parallel::ParallelExecutor::with_threads(config, threads),
            ),
        }
    }

    /// Parse a CLI spelling: `sim` / `simulated`, `parallel`, or
    /// `parallel:N` for an explicit thread count.
    pub fn parse(s: &str) -> Option<ExecutorKind> {
        match s {
            "sim" | "simulated" => Some(ExecutorKind::Simulated),
            "parallel" => Some(ExecutorKind::Parallel { threads: 0 }),
            _ => {
                let threads = s.strip_prefix("parallel:")?.parse().ok()?;
                Some(ExecutorKind::Parallel { threads })
            }
        }
    }

    /// The CLI spelling of this kind.
    pub fn label(&self) -> String {
        match self {
            ExecutorKind::Simulated => "sim".to_string(),
            ExecutorKind::Parallel { threads: 0 } => "parallel".to_string(),
            ExecutorKind::Parallel { threads } => format!("parallel:{threads}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared execution pipeline
// ---------------------------------------------------------------------------

/// One map task: a split of one input partition, with the facts it covers
/// (fact indices are positions in the relation's canonical order — the
/// tuple ids of the guard-reference optimization, §5.1 (2)).
pub(crate) struct MapTaskSpec {
    /// Index into `MapPlan::partitions` / `MapPlan::input_facts`.
    pub input_idx: usize,
    /// This split's range within the input's fact list.
    pub split: std::ops::Range<usize>,
}

/// What one map task produced.
pub(crate) struct MapTaskResult {
    /// Emitted key-value pairs, in emission order.
    pub emitted: Vec<(Tuple, Message)>,
    /// Charged map-output bytes (packing-aware), unscaled.
    pub output_bytes: u64,
    /// Charged map-output records (packing-aware).
    pub records_out: u64,
}

/// The planned map phase of one job: per-input partitions (with mapper
/// counts fixed by the split-size rule) plus the concrete task list.
///
/// Inputs are held as *scans*, not materialized relations: a task's
/// facts are fetched from its input's [`RelationScan`] only when the
/// task runs (`MapPlan::task_facts`), so the whole relation is never
/// resident at once — on the file backend a task touches only the
/// segment frames covering its split. The scans are snapshots with no
/// borrow of the DFS instance, which is what lets a concurrent
/// scheduler run [`Executor::run_phases`] without holding any storage
/// lock. All read metering already happened at [`plan_job`] time.
pub struct MapPlan {
    /// Per-input metering skeletons; `map_output`/`records_out` are filled
    /// in by [`MapPlan::apply`].
    pub(crate) partitions: Vec<InputPartition>,
    /// One open scan per input relation, in `job.inputs` order.
    pub(crate) input_scans: Vec<RelationScan>,
    /// All map tasks of the job, grouped by input and ordered by split.
    pub(crate) tasks: Vec<MapTaskSpec>,
}

impl MapPlan {
    /// Fetch the facts a task covers from its input's scan. Tuple ids are
    /// positions in the relation's canonical order (the guard-reference
    /// ids of §5.1 (2)) — the split's offset pins them regardless of
    /// which frames back the fetch.
    pub(crate) fn task_facts(&self, task: &MapTaskSpec) -> Result<Vec<(u64, Fact)>> {
        let scan = &self.input_scans[task.input_idx];
        let tuples = scan.fetch(task.split.clone())?;
        Ok(tuples
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                (
                    (task.split.start + i) as u64,
                    Fact::new(scan.name().clone(), t),
                )
            })
            .collect())
    }

    /// Resolve the job's reduce-task count from the measured input and
    /// intermediate sizes (call after [`MapPlan::apply`]). Shared so both
    /// runtimes derive reducer counts from one definition — a divergence
    /// here would silently break cross-runtime equivalence.
    pub(crate) fn resolve_reducers(&self, job: &Job) -> usize {
        let total_input = self.partitions.iter().map(|p| p.input).sum();
        let total_map_output = self.partitions.iter().map(|p| p.map_output).sum();
        job.config
            .reducer_policy
            .reducers(total_input, total_map_output)
    }
}

/// Plan the map phase: open a metered scan over every input, derive
/// mapper counts from the *scaled* sizes (the paper's regime), and cut
/// each relation into per-task splits.
///
/// Shared DFS access suffices: scans are metered through atomic counters
/// and the returned plan holds snapshot scans, not materialized
/// relations — facts stream in per task during the map phase.
pub fn plan_job(config: &EngineConfig, dfs: &dyn Dfs, job: &Job) -> Result<MapPlan> {
    let mut span = gumbo_obs::span_with("plan", |f| f.str("job", &job.name));
    let scale = config.scale.max(1);
    let mut partitions = Vec::with_capacity(job.inputs.len());
    let mut input_scans = Vec::with_capacity(job.inputs.len());
    let mut tasks = Vec::new();
    for (input_idx, input_name) in job.inputs.iter().enumerate() {
        let scan = dfs.scan(input_name)?;
        let real_input = scan.bytes();
        let scaled_input = real_input.scaled(scale);
        let n_facts = scan.len();
        // Mapper (split) count from the *scaled* size, clamped so every
        // task has at least one real fact.
        let mut mappers = job.config.mappers_for(scaled_input);
        if n_facts > 0 {
            mappers = mappers.min(n_facts);
        }
        let chunk = if n_facts == 0 {
            1
        } else {
            n_facts.div_ceil(mappers)
        };

        let chunk = chunk.max(1);
        for start in (0..n_facts).step_by(chunk) {
            tasks.push(MapTaskSpec {
                input_idx,
                split: start..(start + chunk).min(n_facts),
            });
        }
        input_scans.push(scan);

        partitions.push(InputPartition {
            label: input_name.to_string(),
            input: scaled_input,
            map_output: ByteSize::ZERO,
            records_out: 0,
            mappers,
        });
    }
    span.record(|f| {
        f.u64("inputs", partitions.len() as u64);
        f.u64("map_tasks", tasks.len() as u64);
    });
    Ok(MapPlan {
        partitions,
        input_scans,
        tasks,
    })
}

/// Build a planned job's shuffle filters (the **build** stage of the
/// two-stage filtered shuffle), or `None` when the configured mode, the
/// job's missing [`crate::shuffle_filter::FilterSpec`] or the planner's
/// `auto` verdict say to run unfiltered.
///
/// Runs the mapper once over every task's facts in collect-only mode.
/// Scan fetches are unmetered (read metering happened at [`plan_job`]),
/// so the prepass never perturbs DFS byte counters — filtered and
/// unfiltered runs stay byte-identical on every metered quantity except
/// the shuffle itself. Must run *before* map fan-out; the sealed filters
/// are immutable and safely probed from any number of worker threads.
pub(crate) fn build_job_filters(
    config: &EngineConfig,
    job: &Job,
    plan: &MapPlan,
) -> Result<Option<JobFilters>> {
    let Some(spec) = &job.filter else {
        return Ok(None);
    };
    let bits_per_key = match config.shuffle_filter {
        ShuffleFilterMode::Off => return Ok(None),
        ShuffleFilterMode::Bloom { bits_per_key } => bits_per_key,
        ShuffleFilterMode::Auto { bits_per_key } => {
            if spec.auto_profitable != Some(true) {
                return Ok(None);
            }
            bits_per_key
        }
    };
    let mut span = gumbo_obs::span_with("filter:build", |f| {
        f.str("job", &job.name);
        f.u64("groups", spec.groups as u64);
    });
    let mut collector = FilterCollector::new(spec);
    for task in &plan.tasks {
        let facts = plan.task_facts(task)?;
        for (index, fact) in &facts {
            job.mapper
                .map(fact, *index, &mut |k, v| collector.observe(&k, &v));
        }
    }
    let filters = collector.seal(bits_per_key);
    span.record(|f| {
        f.u64("distinct_keys", filters.distinct_keys());
        f.u64("filter_bytes", filters.filter_bytes());
    });
    Ok(Some(filters))
}

/// Emit one `filter:probe` span summarizing a finished map task's probe
/// counters (task-local, so concurrent tasks never race on telemetry).
fn record_probe_span(job: &Job, tally: &ProbeTally) {
    let mut span = gumbo_obs::span_with("filter:probe", |f| f.str("job", &job.name));
    span.record(|f| {
        f.u64("probes", tally.probes);
        f.u64("suppressed", tally.suppressed);
        f.u64("false_positives", tally.false_positives);
    });
}

/// Run one map task: apply the mapper to every fact of the split and
/// account bytes/records, charging key bytes once per distinct key within
/// the task when packing is enabled (§5.1 (1)). With `filters` present,
/// each emitted pair is probed first (the **probe** stage of the filtered
/// shuffle) and suppressed pairs never reach the packing accounting — so
/// map-output bytes/records are post-suppression on both data planes.
pub(crate) fn run_map_task(
    job: &Job,
    facts: &[(u64, Fact)],
    filters: Option<&JobFilters>,
) -> MapTaskResult {
    let mut span = gumbo_obs::span_with("map:task", |f| {
        f.str("job", &job.name);
        f.u64("facts", facts.len() as u64);
    });
    let mut emitted: Vec<(Tuple, Message)> = Vec::new();
    let mut tally = ProbeTally::default();
    match filters {
        Some(f) => {
            for (index, fact) in facts {
                job.mapper.map(fact, *index, &mut |k, v| {
                    if f.keep(&k, &v, &mut tally) {
                        emitted.push((k, v));
                    }
                });
            }
        }
        None => {
            for (index, fact) in facts {
                job.mapper
                    .map(fact, *index, &mut |k, v| emitted.push((k, v)));
            }
        }
    }
    if let Some(f) = filters {
        record_probe_span(job, &tally);
        f.absorb(tally);
    }
    let mut output_bytes: u64 = 0;
    let mut records_out: u64 = 0;
    if job.config.packing {
        let mut by_key: BTreeMap<&Tuple, u64> = BTreeMap::new();
        for (k, v) in &emitted {
            *by_key.entry(k).or_insert(0) += v.estimated_bytes();
        }
        for (k, value_bytes) in &by_key {
            output_bytes += k.estimated_bytes() + value_bytes;
        }
        records_out += by_key.len() as u64;
    } else {
        for (k, v) in &emitted {
            output_bytes += k.estimated_bytes() + v.estimated_bytes();
        }
        records_out += emitted.len() as u64;
    }
    span.record(|f| f.u64("records_out", records_out));
    MapTaskResult {
        emitted,
        output_bytes,
        records_out,
    }
}

/// What one map task produced on the columnar plane: the same pairs as
/// [`MapTaskResult`] in the same emission order, held as one
/// [`PairBatch`] instead of a vector of owned pairs.
pub(crate) struct BatchMapResult {
    /// Emitted pairs in emission order, columnar.
    pub batch: PairBatch,
    /// Charged map-output bytes (packing-aware), unscaled.
    pub output_bytes: u64,
    /// Charged map-output records (packing-aware).
    pub records_out: u64,
}

/// The columnar twin of [`run_map_task`]: mapper output lands directly in
/// a [`PairBatch`], and the packing byte-accounting (§5.1 (1)) runs as an
/// index sort plus one linear scan instead of a `BTreeMap` build. Per-key
/// byte sums are order-independent, so `output_bytes` / `records_out`
/// equal the pair plane's exactly. Probing hashes the same owned key
/// tuples as the pair plane ([`crate::hash::hash_tuple`]), so filter
/// decisions are plane-identical by construction.
pub(crate) fn run_map_task_batch(
    job: &Job,
    facts: &[(u64, Fact)],
    filters: Option<&JobFilters>,
) -> BatchMapResult {
    let mut span = gumbo_obs::span_with("map:task", |f| {
        f.str("job", &job.name);
        f.u64("facts", facts.len() as u64);
    });
    let mut batch = PairBatch::new();
    let mut tally = ProbeTally::default();
    match filters {
        Some(f) => {
            for (index, fact) in facts {
                job.mapper.map(fact, *index, &mut |k, v| {
                    if f.keep(&k, &v, &mut tally) {
                        batch.push_pair(&k, &v);
                    }
                });
            }
        }
        None => {
            for (index, fact) in facts {
                job.mapper
                    .map(fact, *index, &mut |k, v| batch.push_pair(&k, &v));
            }
        }
    }
    if let Some(f) = filters {
        record_probe_span(job, &tally);
        f.absorb(tally);
    }
    let (output_bytes, records_out) = if job.config.packing {
        let order = batch.sort_indices();
        let mut bytes = 0u64;
        let mut records = 0u64;
        let mut at = 0;
        while at < order.len() {
            let first = order[at] as usize;
            let key = batch.key_view(first);
            // Key bytes counted once per distinct key within the task;
            // message bytes always.
            bytes += key.estimated_bytes();
            records += 1;
            while at < order.len() {
                let row = order[at] as usize;
                if batch.key_view(row) != key {
                    break;
                }
                bytes += batch.row_bytes(row) - key.estimated_bytes();
                at += 1;
            }
        }
        (bytes, records)
    } else {
        (batch.estimated_bytes(), batch.len() as u64)
    };
    span.record(|f| f.u64("records_out", records_out));
    BatchMapResult {
        batch,
        output_bytes,
        records_out,
    }
}

impl MapPlan {
    /// Fold per-task results (in task order) into the per-input partition
    /// metering, applying the byte scale once per partition.
    pub(crate) fn apply(&mut self, scale: u64, results: &[MapTaskResult]) {
        let counts: Vec<(u64, u64)> = results
            .iter()
            .map(|r| (r.output_bytes, r.records_out))
            .collect();
        self.apply_counts(scale, &counts);
    }

    /// [`MapPlan::apply`] over bare `(output_bytes, records_out)` pairs —
    /// the shape both data planes produce.
    pub(crate) fn apply_counts(&mut self, scale: u64, counts: &[(u64, u64)]) {
        debug_assert_eq!(counts.len(), self.tasks.len());
        let mut raw_bytes = vec![0u64; self.partitions.len()];
        let mut raw_records = vec![0u64; self.partitions.len()];
        for (task, &(bytes, records)) in self.tasks.iter().zip(counts) {
            raw_bytes[task.input_idx] += bytes;
            raw_records[task.input_idx] += records;
        }
        for (i, p) in self.partitions.iter_mut().enumerate() {
            p.map_output = ByteSize::bytes(raw_bytes[i]).scaled(scale);
            p.records_out = raw_records[i] * scale;
        }
    }
}

/// One reducer partition's grouped stream, from either data plane. Both
/// variants observe the same contract — keys ascend in `Tuple` order,
/// values stay in global emission order — so [`run_reduce_stream`] is
/// plane-agnostic.
pub(crate) enum Groups<'a> {
    /// The pair plane's merge ([`crate::shuffle`]).
    Pairs(GroupStream<'a>),
    /// The columnar plane's merge ([`crate::batch_shuffle`]).
    Columnar(BatchGroupStream<'a>),
}

impl Groups<'_> {
    /// The next key group, its values appended into a caller-owned
    /// scratch vector (cleared first).
    fn next_group_into(&mut self, values: &mut Vec<Message>) -> Result<Option<Tuple>> {
        match self {
            Groups::Pairs(stream) => stream.next_group_into(values),
            Groups::Columnar(stream) => stream.next_group_into(values),
        }
    }
}

/// Reduce one shuffle partition by streaming its key groups (keys in
/// canonical order, values in emission order — the order the bounded and
/// unlimited shuffles both guarantee) and collect the reducer's output
/// into fresh per-partition relations, rejecting emissions to undeclared
/// outputs exactly like the original engine did. One scratch value vector
/// is reused across groups.
pub(crate) fn run_reduce_stream(
    job: &Job,
    mut groups: Groups<'_>,
) -> Result<BTreeMap<RelationName, Relation>> {
    let mut span = gumbo_obs::span_with("reduce:task", |f| f.str("job", &job.name));
    let mut outputs: BTreeMap<RelationName, Relation> = job
        .outputs
        .iter()
        .map(|(name, arity)| (name.clone(), Relation::new(name.clone(), *arity)))
        .collect();
    let mut values: Vec<Message> = Vec::new();
    while let Some(key) = groups.next_group_into(&mut values)? {
        let mut err: Option<GumboError> = None;
        job.reducer.reduce(&key, &values, &mut |rel_name, tuple| {
            if err.is_some() {
                return;
            }
            match outputs.get_mut(rel_name) {
                Some(rel) => {
                    if let Err(e) = rel.insert(tuple) {
                        err = Some(e);
                    }
                }
                None => {
                    err = Some(GumboError::Plan(format!(
                        "job {} emitted to undeclared output {rel_name}",
                        job.name
                    )));
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    span.record(|f| {
        f.u64(
            "output_tuples",
            outputs.values().map(|r| r.len() as u64).sum(),
        );
    });
    Ok(outputs)
}

/// The outcome of a job's map/shuffle/reduce phases, not yet committed to
/// the DFS: per-input metering, reducer accounting, and the per-partition
/// output relations awaiting the merge in [`commit_job`].
pub struct ComputedJob {
    pub(crate) partitions: Vec<InputPartition>,
    pub(crate) reducers: usize,
    pub(crate) reducer_bytes: Vec<u64>,
    pub(crate) partition_outputs: Vec<BTreeMap<RelationName, Relation>>,
    pub(crate) spill: SpillStats,
    pub(crate) filter: FilterStats,
}

/// Merge per-partition reduce outputs (in partition order), store every
/// declared output to the DFS, and assemble the job's metered statistics.
/// This is the only phase that mutates the DFS.
pub fn commit_job(
    config: &EngineConfig,
    dfs: &dyn Dfs,
    job: &Job,
    round: usize,
    computed: ComputedJob,
) -> Result<JobStats> {
    let mut span = gumbo_obs::span_with("commit", |f| f.str("job", &job.name));
    let ComputedJob {
        partitions,
        reducers,
        reducer_bytes,
        partition_outputs,
        spill,
        filter,
    } = computed;
    let scale = config.scale.max(1);
    let consts = &config.constants;

    let mut outputs: BTreeMap<RelationName, Relation> = job
        .outputs
        .iter()
        .map(|(name, arity)| (name.clone(), Relation::new(name.clone(), *arity)))
        .collect();
    for partial in partition_outputs {
        for (name, rel) in partial {
            let target = outputs.get_mut(&name).expect("declared output");
            for tuple in rel.iter() {
                target.insert(tuple.clone())?;
            }
        }
    }

    let mut output_tuples = 0u64;
    let mut output_bytes = ByteSize::ZERO;
    for rel in outputs.into_values() {
        output_tuples += rel.len() as u64;
        output_bytes += ByteSize::bytes(rel.estimated_bytes()).scaled(scale);
        dfs.store(rel)?;
    }

    let profile = JobProfile {
        partitions,
        reducers,
        output: output_bytes,
    };
    let base_map_cost: f64 = match config.model {
        CostModelKind::Gumbo => profile.partitions.iter().map(|p| consts.cost_map(p)).sum(),
        CostModelKind::Wang => {
            job_cost(CostModelKind::Wang, consts, &profile)
                - consts.job_overhead
                - consts.cost_red(profile.total_map_output(), reducers, output_bytes)
        }
    };
    // The filter broadcast is communication like any other relation: its
    // (scaled) bytes are priced with the transfer constant and charged to
    // the map phase, preserving total = overhead + map + reduce.
    let filter_bytes = ByteSize::bytes(filter.filter_bytes).scaled(scale);
    let filter_cost = consts.transfer * filter_bytes.as_mb();
    let map_cost = base_map_cost + filter_cost;
    let reduce_cost = consts.cost_red(profile.total_map_output(), reducers, output_bytes);
    let total_cost = consts.job_overhead + map_cost + reduce_cost;

    let mut map_task_durations = Vec::new();
    for p in &profile.partitions {
        let per_task = consts.cost_map(p) / p.mappers.max(1) as f64;
        map_task_durations.extend(std::iter::repeat_n(per_task, p.mappers));
    }
    // Every mapper downloads the broadcast filters, so the filter cost is
    // spread uniformly over map tasks and durations keep summing (for the
    // paper's model) to map_cost.
    if filter_cost > 0.0 && !map_task_durations.is_empty() {
        let per_task = filter_cost / map_task_durations.len() as f64;
        for d in &mut map_task_durations {
            *d += per_task;
        }
    }
    // Distribute the (cost-model) reduce cost over tasks proportionally to
    // their actual byte loads — uniform when there is no data (or no
    // skew). Totals stay faithful to the paper's cost_red; only the
    // wall-clock distribution reflects skew.
    let shuffled: u64 = reducer_bytes.iter().sum();
    let reduce_task_durations: Vec<f64> = if shuffled == 0 {
        vec![reduce_cost / reducers.max(1) as f64; reducers]
    } else {
        reducer_bytes
            .iter()
            .map(|&b| reduce_cost * b as f64 / shuffled as f64)
            .collect()
    };

    static JOBS_COMMITTED: gumbo_obs::Counter = gumbo_obs::Counter::new("executor.jobs_committed");
    JOBS_COMMITTED.incr();
    static FILTERED_OUT: gumbo_obs::Counter = gumbo_obs::Counter::new("shuffle.filtered_out");
    FILTERED_OUT.add(filter.suppressed_messages);

    let estimated_cost = job.estimate.as_ref().map(|e| e.total_cost);
    // The calibration ledger: every estimated job's span ends with the
    // estimated/observed cost pair and their ratio.
    span.record(|f| {
        // The job name again on the End event, so ledger consumers can
        // match commits without pairing Begin/End records first.
        f.str("job", &job.name);
        f.u64("output_tuples", output_tuples);
        f.f64("observed_cost", total_cost);
        if let Some(est) = estimated_cost {
            f.f64("estimated_cost", est);
            if est > 0.0 {
                f.f64("estimate_error", total_cost / est);
            }
        }
        if spill.spilled_bytes > 0 {
            f.u64("spilled_bytes", spill.spilled_bytes);
        }
        if filter.filter_probes > 0 || filter.filter_bytes > 0 {
            f.u64("filter_bytes", filter_bytes.as_bytes());
            f.u64("suppressed_messages", filter.suppressed_messages);
            f.u64("filter_false_positives", filter.filter_false_positives);
        }
    });

    Ok(JobStats {
        name: job.name.clone(),
        round,
        profile,
        map_cost,
        reduce_cost,
        total_cost,
        map_task_durations,
        reduce_task_durations,
        output_tuples,
        spilled_bytes: spill.spilled_bytes,
        spilled_disk_bytes: spill.spilled_disk_bytes,
        spill_files: spill.spill_files,
        spill_merge_passes: spill.merge_passes,
        filter_bytes: filter_bytes.as_bytes(),
        suppressed_messages: filter.suppressed_messages,
        filter_probes: filter.filter_probes,
        filter_false_positives: filter.filter_false_positives,
        estimated_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_kind_parses_cli_spellings() {
        assert_eq!(ExecutorKind::parse("sim"), Some(ExecutorKind::Simulated));
        assert_eq!(
            ExecutorKind::parse("simulated"),
            Some(ExecutorKind::Simulated)
        );
        assert_eq!(
            ExecutorKind::parse("parallel"),
            Some(ExecutorKind::Parallel { threads: 0 })
        );
        assert_eq!(
            ExecutorKind::parse("parallel:8"),
            Some(ExecutorKind::Parallel { threads: 8 })
        );
        assert_eq!(ExecutorKind::parse("hadoop"), None);
        assert_eq!(ExecutorKind::parse("parallel:x"), None);
    }

    #[test]
    fn executor_kind_labels_round_trip() {
        for kind in [
            ExecutorKind::Simulated,
            ExecutorKind::Parallel { threads: 0 },
            ExecutorKind::Parallel { threads: 4 },
        ] {
            assert_eq!(ExecutorKind::parse(&kind.label()), Some(kind));
        }
    }

    #[test]
    fn built_executors_report_config_and_name() {
        let config = EngineConfig::unscaled();
        let sim = ExecutorKind::Simulated.build(config);
        assert_eq!(sim.name(), "simulated");
        assert_eq!(sim.config().scale, 1);
        let par = ExecutorKind::Parallel { threads: 2 }.build(config);
        assert_eq!(par.name(), "parallel");
        assert_eq!(par.config().scale, 1);
    }
}
