//! MapReduce programs: DAGs of jobs organized into rounds.
//!
//! §3.2 defines an MR program as a DAG of jobs; its *rounds* are the levels
//! of the DAG (longest-path depth). All of the paper's plans are naturally
//! expressed as an explicit sequence of rounds — e.g. a basic MR program is
//! round 1 = all `MSJ(Sᵢ)` jobs, round 2 = `EVAL` (§4.4) — so the program
//! representation stores rounds directly; jobs within one round execute
//! concurrently on the simulated cluster.

use std::fmt;

use crate::job::Job;

/// A MapReduce program: rounds of concurrently-executing jobs.
///
/// # Invariant
///
/// A program never contains an empty round — every constructor
/// ([`MrProgram::push_round`], [`MrProgram::push_job`],
/// [`MrProgram::extend`]) drops empty rounds, so `num_rounds()` counts
/// only rounds that execute at least one job:
///
/// ```
/// let mut p = gumbo_mr::MrProgram::new();
/// p.push_round(vec![]);
/// assert_eq!(p.num_rounds(), 0);
/// assert!(p.rounds().iter().all(|round| !round.is_empty()));
/// ```
#[derive(Default)]
pub struct MrProgram {
    rounds: Vec<Vec<Job>>,
}

impl MrProgram {
    /// Create an empty program.
    pub fn new() -> Self {
        MrProgram::default()
    }

    /// Append a round of concurrent jobs. Empty rounds are ignored.
    pub fn push_round(&mut self, jobs: Vec<Job>) {
        if !jobs.is_empty() {
            self.rounds.push(jobs);
        }
    }

    /// Append a round consisting of a single job. Routed through
    /// [`MrProgram::push_round`] so the no-empty-rounds invariant has a
    /// single enforcement point.
    pub fn push_job(&mut self, job: Job) {
        self.push_round(vec![job]);
    }

    /// Concatenate another program's rounds after this one's.
    pub fn extend(&mut self, other: MrProgram) {
        for round in other.rounds {
            self.push_round(round);
        }
    }

    /// The rounds, in execution order.
    pub fn rounds(&self) -> &[Vec<Job>] {
        &self.rounds
    }

    /// Consume the program, yielding its rounds (used when rebasing jobs
    /// into another program, e.g. the SEQ baseline's chains).
    pub fn into_rounds(self) -> Vec<Vec<Job>> {
        self.rounds
    }

    /// Number of rounds (the paper's "number of rounds" metric).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total number of jobs across all rounds.
    pub fn num_jobs(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

impl fmt::Debug for MrProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MrProgram [{} rounds, {} jobs]",
            self.num_rounds(),
            self.num_jobs()
        )?;
        for (i, round) in self.rounds.iter().enumerate() {
            let names: Vec<&str> = round.iter().map(|j| j.name.as_str()).collect();
            writeln!(f, "  round {}: {}", i + 1, names.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::test_support::noop_job;

    fn job(name: &str) -> Job {
        noop_job(name, Vec::<&str>::new(), Vec::<&str>::new())
    }

    #[test]
    fn rounds_and_jobs_counted() {
        let mut p = MrProgram::new();
        p.push_round(vec![job("a"), job("b")]);
        p.push_job(job("c"));
        assert_eq!(p.num_rounds(), 2);
        assert_eq!(p.num_jobs(), 3);
    }

    #[test]
    fn empty_rounds_dropped() {
        let mut p = MrProgram::new();
        p.push_round(vec![]);
        assert_eq!(p.num_rounds(), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut p = MrProgram::new();
        p.push_job(job("a"));
        let mut q = MrProgram::new();
        q.push_job(job("b"));
        p.extend(q);
        assert_eq!(p.num_rounds(), 2);
        assert_eq!(p.rounds()[1][0].name, "b");
    }

    #[test]
    fn debug_lists_rounds() {
        let mut p = MrProgram::new();
        p.push_round(vec![job("MSJ(X1,X2)"), job("MSJ(X3)")]);
        p.push_job(job("EVAL(R)"));
        let s = format!("{p:?}");
        assert!(s.contains("round 1: MSJ(X1,X2) | MSJ(X3)"));
        assert!(s.contains("round 2: EVAL(R)"));
    }
}
