//! Job profiles: the measured (or estimated) quantities the cost model
//! consumes.
//!
//! Planner and engine both produce [`JobProfile`]s — the planner from DFS
//! metadata plus sampling, the engine from actual execution — so the same
//! cost functions price estimated and real jobs identically.

use gumbo_common::ByteSize;

/// Per-input-partition measurements (`Iᵢ` of §3.3).
///
/// The paper's refinement over MRShare/Wang & Chan is precisely to keep
/// these *separate* per input, because the mapper's input/output ratio may
/// differ wildly between inputs (Eq. 2 vs Eq. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct InputPartition {
    /// Human-readable label (the input relation's name).
    pub label: String,
    /// `Nᵢ`: input size read from the DFS.
    pub input: ByteSize,
    /// `Mᵢ`: intermediate (map output) size produced from this input.
    pub map_output: ByteSize,
    /// Number of map-output records (for the 16 B/record metadata `M̂ᵢ`).
    pub records_out: u64,
    /// `mᵢ`: number of map tasks over this input.
    pub mappers: usize,
}

impl InputPartition {
    /// `M̂ᵢ`: map-output metadata, 16 bytes per record (§3.3, footnote 2).
    pub fn meta(&self, meta_bytes_per_record: u64) -> ByteSize {
        ByteSize::bytes(self.records_out * meta_bytes_per_record)
    }
}

/// The complete profile of one MapReduce job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// One entry per input partition.
    pub partitions: Vec<InputPartition>,
    /// `r`: number of reduce tasks.
    pub reducers: usize,
    /// `K`: size of the reduce output written to the DFS.
    pub output: ByteSize,
}

impl JobProfile {
    /// `M`: total intermediate data, `Σᵢ Mᵢ`.
    pub fn total_map_output(&self) -> ByteSize {
        self.partitions.iter().map(|p| p.map_output).sum()
    }

    /// Total input, `Σᵢ Nᵢ`.
    pub fn total_input(&self) -> ByteSize {
        self.partitions.iter().map(|p| p.input).sum()
    }

    /// Total map-output records.
    pub fn total_records_out(&self) -> u64 {
        self.partitions.iter().map(|p| p.records_out).sum()
    }

    /// Total number of map tasks.
    pub fn total_mappers(&self) -> usize {
        self.partitions.iter().map(|p| p.mappers).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> JobProfile {
        JobProfile {
            partitions: vec![
                InputPartition {
                    label: "R".into(),
                    input: ByteSize::mb(4000),
                    map_output: ByteSize::mb(16000),
                    records_out: 400_000_000,
                    mappers: 32,
                },
                InputPartition {
                    label: "S".into(),
                    input: ByteSize::mb(1000),
                    map_output: ByteSize::mb(1000),
                    records_out: 100_000_000,
                    mappers: 8,
                },
            ],
            reducers: 66,
            output: ByteSize::mb(4000),
        }
    }

    #[test]
    fn aggregates() {
        let p = profile();
        assert_eq!(p.total_input(), ByteSize::mb(5000));
        assert_eq!(p.total_map_output(), ByteSize::mb(17000));
        assert_eq!(p.total_records_out(), 500_000_000);
        assert_eq!(p.total_mappers(), 40);
    }

    #[test]
    fn meta_is_16b_per_record() {
        let p = profile();
        assert_eq!(p.partitions[1].meta(16), ByteSize::bytes(1_600_000_000));
    }
}
