//! Intermediate key-value messages.
//!
//! The MSJ and EVAL jobs of the paper exchange a small vocabulary of
//! messages (§4.1–§4.3):
//!
//! * `[Req (κᵢ, i); Out ā]` — a guard fact asks whether a conditional fact
//!   with its join key exists, and says what to output if so;
//! * `[Assert κᵢ]` — a conditional fact asserts its existence;
//! * EVAL's tag messages `⟨ā : i⟩` — "tuple ā belongs to relation Xᵢ";
//! * guard-tuple messages used when the *reference* optimization (§5.1 (2))
//!   makes EVAL re-read the guard relation.
//!
//! Byte sizes follow the paper's data layout (10 B per value) with a 4-byte
//! tag per message; a `Ref` payload is a single id value.

use gumbo_common::Tuple;

/// Payload of a request message: what to output when the assert matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// The projected output tuple itself.
    Tuple(Tuple),
    /// A reference `(guard index, tuple id)` to a guard tuple — Gumbo
    /// optimization (2): emit a tuple id rather than the tuple.
    Ref {
        /// Which guard relation (for multi-query EVAL jobs).
        guard: u32,
        /// Position of the tuple in the guard relation's canonical order.
        id: u64,
    },
}

impl Payload {
    /// Estimated wire size in bytes.
    pub fn estimated_bytes(&self) -> u64 {
        match self {
            Payload::Tuple(t) => t.estimated_bytes(),
            // One id value: matches the paper's "reference" being one field.
            Payload::Ref { .. } => 10,
        }
    }
}

/// A map-output value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Message {
    /// `[Assert κᵢ]`: a conditional fact for atom `i` exists with this key.
    Assert {
        /// Index of the conditional atom (semi-join) within the job.
        cond: u32,
    },
    /// `[Req (κᵢ, i); Out payload]`: output `payload` into `Xᵢ` if an assert
    /// for atom `i` arrives at the same key.
    Req {
        /// Index of the conditional atom (semi-join) within the job.
        cond: u32,
        /// What to emit on success.
        payload: Payload,
    },
    /// EVAL input tag: this key belongs to relation `Xᵢ`.
    Tag {
        /// Index of the `X` relation within the EVAL job.
        rel: u32,
    },
    /// EVAL guard re-read: the guard tuple identified by the key.
    GuardTuple {
        /// Which guard relation.
        guard: u32,
        /// The tuple itself.
        tuple: Tuple,
    },
}

/// Per-message fixed overhead (variant tag + small header), in bytes.
const MSG_HEADER_BYTES: u64 = 4;

impl Message {
    /// Estimated wire size in bytes (value part only; key bytes are
    /// accounted by the engine, once per message or once per packed group).
    pub fn estimated_bytes(&self) -> u64 {
        match self {
            Message::Assert { .. } | Message::Tag { .. } => MSG_HEADER_BYTES,
            Message::Req { payload, .. } => MSG_HEADER_BYTES + payload.estimated_bytes(),
            Message::GuardTuple { tuple, .. } => MSG_HEADER_BYTES + tuple.estimated_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_is_small() {
        assert_eq!(Message::Assert { cond: 3 }.estimated_bytes(), 4);
        assert_eq!(Message::Tag { rel: 1 }.estimated_bytes(), 4);
    }

    #[test]
    fn req_with_tuple_counts_payload() {
        let m = Message::Req {
            cond: 0,
            payload: Payload::Tuple(Tuple::from_ints(&[1, 2])),
        };
        assert_eq!(m.estimated_bytes(), 4 + 20);
    }

    #[test]
    fn ref_is_cheaper_than_wide_tuple() {
        let wide = Payload::Tuple(Tuple::from_ints(&[1, 2, 3, 4]));
        let r = Payload::Ref { guard: 0, id: 17 };
        assert!(r.estimated_bytes() < wide.estimated_bytes());
    }

    #[test]
    fn guard_tuple_counts_tuple() {
        let m = Message::GuardTuple {
            guard: 0,
            tuple: Tuple::from_ints(&[1, 2, 3, 4]),
        };
        assert_eq!(m.estimated_bytes(), 44);
    }
}
